// ncast_lint — project-specific two-pass semantic analysis: layering (include
// graph vs the declared DAG), shard-concurrency, determinism, hot-path
// hygiene, header hygiene, and observability naming (docs/static_analysis.md).
//
//   ncast_lint [--repo DIR] [--json FILE] [--baseline FILE]
//              [--write-baseline FILE] [--quiet] [PATH...]
//
// PATHs are repo-relative files or directories (default: src bench tools).
// Human-readable diagnostics go to stdout; --json also writes the
// machine-readable ncast.lint.v2 report (validated by tools/bench_validate).
// --baseline applies the committed suppressions file (findings it matches are
// reported but don't fail the run); --write-baseline regenerates it from the
// current findings (the ratchet refuses to grow budgets). Exit codes:
// 0 = clean (suppressed/baselined findings are fine), 1 = new violations or
// ratchet errors, 2 = usage, I/O, or internal error.

#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint_baseline.hpp"
#include "lint/lint_engine.hpp"

namespace {

int run(int argc, char** argv) {
  ncast::lint::Options opts;
  opts.repo_root = ".";
  std::string json_path;
  std::string baseline_path;
  std::string write_baseline_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repo" && i + 1 < argc) {
      opts.repo_root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: ncast_lint [--repo DIR] [--json FILE] [--baseline FILE]\n"
          "                  [--write-baseline FILE] [--quiet] [PATH...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ncast_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      opts.roots.push_back(arg);
    }
  }
  if (opts.roots.empty()) opts.roots = {"src", "bench", "tools"};

  ncast::lint::Report report = ncast::lint::lint_tree(opts);
  if (report.files_scanned == 0) {
    std::fprintf(stderr,
                 "ncast_lint: no lintable files under the given roots\n");
    return 2;
  }

  ncast::lint::Baseline baseline;
  bool have_baseline = false;
  std::vector<std::string> ratchet_errors;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "ncast_lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    baseline = ncast::lint::parse_baseline(buf.str());
    have_baseline = true;
    ratchet_errors = ncast::lint::apply_baseline(report, baseline);
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "ncast_lint: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    out << ncast::lint::write_baseline_json(
        report, have_baseline ? &baseline : nullptr);
  }

  if (!quiet) {
    for (const auto& f : report.findings) {
      if (f.suppressed || f.baselined) continue;
      std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
    for (const std::string& e : ratchet_errors) {
      std::printf("ratchet: %s\n", e.c_str());
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "ncast_lint: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << ncast::lint::report_json(report);
  }

  const std::size_t violations = ncast::lint::violation_count(report);
  std::printf(
      "ncast_lint: %zu files, %zu violations, %zu suppressed, %zu baselined "
      "(include graph: %zu edges, %zu cycles)\n",
      report.files_scanned, violations,
      ncast::lint::suppressed_count(report),
      ncast::lint::baselined_count(report), report.graph.edges,
      report.graph.cycles);
  return (violations == 0 && ratchet_errors.empty()) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ncast_lint: internal error: %s\n", e.what());
    return 2;
  }
}
