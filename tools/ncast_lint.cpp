// ncast_lint — project-specific static analysis for determinism, hot-path
// hygiene, header hygiene, and observability naming (docs/static_analysis.md).
//
//   ncast_lint [--repo DIR] [--json FILE] [--quiet] [PATH...]
//
// PATHs are repo-relative files or directories (default: src bench tools).
// Human-readable diagnostics go to stdout; --json also writes the
// machine-readable ncast.lint.v1 report (validated by tools/bench_validate).
// Exit codes: 0 = clean (suppressed findings are fine), 1 = unsuppressed
// violations, 2 = usage or I/O error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "lint/lint_engine.hpp"

int main(int argc, char** argv) {
  ncast::lint::Options opts;
  opts.repo_root = ".";
  std::string json_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repo" && i + 1 < argc) {
      opts.repo_root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: ncast_lint [--repo DIR] [--json FILE] [--quiet] [PATH...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ncast_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      opts.roots.push_back(arg);
    }
  }
  if (opts.roots.empty()) opts.roots = {"src", "bench", "tools"};

  const ncast::lint::Report report = ncast::lint::lint_tree(opts);
  if (report.files_scanned == 0) {
    std::fprintf(stderr, "ncast_lint: no lintable files under the given roots\n");
    return 2;
  }

  if (!quiet) {
    for (const auto& f : report.findings) {
      if (f.suppressed) continue;
      std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "ncast_lint: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << ncast::lint::report_json(report);
  }

  const std::size_t violations = ncast::lint::violation_count(report);
  std::printf("ncast_lint: %zu files, %zu violations, %zu suppressed\n",
              report.files_scanned, violations,
              ncast::lint::suppressed_count(report));
  return violations == 0 ? 0 : 1;
}
