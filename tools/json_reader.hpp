#pragma once
// Minimal JSON model + recursive-descent parser shared by the offline
// tooling (bench_validate, bench_compare). RFC 8259 subset: no \uXXXX
// surrogate-pair decoding — escapes are validated and kept verbatim.
//
// Deliberately independent of obs/json.hpp (the writer): a shared
// implementation could hide a bug on both sides of the contract. Tools-only;
// never linked into the simulators.

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace ncast::tools {

struct Value;
using ValuePtr = std::unique_ptr<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<ValuePtr> array;
  std::map<std::string, ValuePtr> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  const Value* get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : it->second.get();
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  ValuePtr parse() {
    ValuePtr v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content after top-level value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < s_.size(); ++i) {
      if (s_[i] == '\n') ++line;
    }
    throw std::runtime_error("parse error at line " + std::to_string(line) +
                             ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  ValuePtr parse_value() {
    skip_ws();
    auto v = std::make_unique<Value>();
    switch (peek()) {
      case '{': parse_object(*v); break;
      case '[': parse_array(*v); break;
      case '"':
        v->kind = Value::Kind::kString;
        v->string = parse_string();
        break;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v->kind = Value::Kind::kBool;
        v->boolean = true;
        break;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v->kind = Value::Kind::kBool;
        break;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        break;
      default: parse_number(*v);
    }
    return v;
  }

  void parse_object(Value& v) {
    v.kind = Value::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (!v.object.emplace(std::move(key), parse_value()).second) {
        fail("duplicate object key");
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_array(Value& v) {
    v.kind = Value::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              fail("bad \\u escape");
            }
          }
          out += "\\u" + s_.substr(pos_, 4);  // kept verbatim
          pos_ += 4;
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  void parse_number(Value& v) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    char* end = nullptr;
    const std::string token = s_.substr(start, pos_ - start);
    v.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + token + "'");
    v.kind = Value::Kind::kNumber;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace ncast::tools
