// ncast_explore — command-line experiment explorer.
//
// The bench binaries regenerate the paper's experiments with fixed
// parameters; this tool lets you poke the system interactively:
//
//   ncast_explore overlay   --k 16 --d 3 --n 2000 --p 0.02 [--seed 1]
//       grow an overlay, tag iid failures, report connectivity statistics
//   ncast_explore defect    --k 16 --d 3 --p 0.01 --steps 5000
//       run the exact polymatroid defect process, report E[B]/A vs pd
//   ncast_explore broadcast --k 12 --d 3 --n 300 --p 0.05 --g 16
//       packet-level RLNC broadcast, report decode/corruption outcomes
//   ncast_explore stream    --k 8 --d 3 --n 25 --bytes 4096
//       run the message-level protocol endpoints end to end
//
// Every run prints the effective parameters so results are reproducible.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "node/driver.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "overlay/curtain_server.hpp"
#include "overlay/defect.hpp"
#include "overlay/flow_graph.hpp"
#include "overlay/polymatroid.hpp"
#include "sim/broadcast.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ncast;

namespace {

struct Args {
  std::map<std::string, std::string> kv;

  std::uint64_t get(const std::string& key, std::uint64_t def) const {
    const auto it = kv.find(key);
    return it == kv.end() ? def : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  double getf(const std::string& key, double def) const {
    const auto it = kv.find(key);
    return it == kv.end() ? def : std::strtod(it->second.c_str(), nullptr);
  }
};

Args parse(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    args.kv[key] = argv[i + 1];
  }
  return args;
}

int cmd_overlay(const Args& a) {
  const auto k = static_cast<std::uint32_t>(a.get("k", 16));
  const auto d = static_cast<std::uint32_t>(a.get("d", 3));
  const auto n = a.get("n", 2000);
  const double p = a.getf("p", 0.02);
  const auto seed = a.get("seed", 1);
  std::printf("overlay: k=%u d=%u n=%llu p=%.4f seed=%llu\n", k, d,
              static_cast<unsigned long long>(n),
              p, static_cast<unsigned long long>(seed));

  overlay::CurtainServer server(k, d, Rng(seed));
  for (std::uint64_t i = 0; i < n; ++i) server.join();
  auto m = server.matrix();
  Rng rng(seed ^ 0xF00);
  for (auto node : m.nodes_in_order()) {
    if (rng.chance(p)) m.mark_failed(node);
  }
  const auto fg = build_flow_graph(m);

  std::vector<overlay::NodeId> working;
  for (auto node : m.nodes_in_order()) {
    if (!m.row(node).failed) working.push_back(node);
  }
  rng.shuffle(working);
  const std::size_t samples = std::min<std::size_t>(500, working.size());
  RunningStats conn;
  std::size_t degraded = 0, cut = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto c = node_connectivity(fg, working[i]);
    conn.add(static_cast<double>(c));
    if (c < d) ++degraded;
    if (c == 0) ++cut;
  }
  const auto depths = node_depths(fg);
  std::int64_t max_depth = 0;
  for (auto dep : depths) max_depth = std::max(max_depth, dep);

  Table t({"metric", "value"});
  t.add_row({"nodes (working/failed)",
             std::to_string(working.size()) + " / " + std::to_string(m.failed_count())});
  t.add_row({"sampled working nodes", std::to_string(samples)});
  t.add_row({"mean connectivity", fmt(conn.mean(), 3)});
  t.add_row({"P(conn < d)", fmt(static_cast<double>(degraded) / samples, 4)});
  t.add_row({"P(cut off)", fmt(static_cast<double>(cut) / samples, 4)});
  t.add_row({"pd (Theorem 4 yardstick)", fmt(p * d, 4)});
  t.add_row({"max depth", std::to_string(max_depth)});
  t.print();
  return 0;
}

int cmd_defect(const Args& a) {
  const auto k = static_cast<std::uint32_t>(a.get("k", 16));
  const auto d = static_cast<std::uint32_t>(a.get("d", 3));
  const double p = a.getf("p", 0.01);
  const auto steps = a.get("steps", 5000);
  const auto seed = a.get("seed", 1);
  if (k > 22) {
    std::fprintf(stderr, "defect: exact engine needs k <= 22\n");
    return 1;
  }
  std::printf("defect: k=%u d=%u p=%.4f steps=%llu seed=%llu\n", k, d, p,
              static_cast<unsigned long long>(steps),
              static_cast<unsigned long long>(seed));

  overlay::PolymatroidCurtain pc(k);
  Rng rng(seed);
  RunningStats defect, loss;
  for (std::uint64_t t = 0; t < steps; ++t) {
    const auto connectivity = pc.join_random(d, p, rng);
    if (t < steps / 10) continue;  // warmup
    loss.add(static_cast<double>(d - connectivity));
    if (t % 10 == 0) defect.add(pc.mean_defect(d));
  }
  Table t({"metric", "value"});
  t.add_row({"E[B]/A (time averaged)", fmt(defect.mean(), 5)});
  t.add_row({"arrival loss (Lemma 3)", fmt(loss.mean(), 5)});
  t.add_row({"pd", fmt(p * d, 5)});
  t.add_row({"ratio", fmt(defect.mean() / (p * d), 3)});
  t.print();
  return 0;
}

int cmd_broadcast(const Args& a) {
  const auto k = static_cast<std::uint32_t>(a.get("k", 12));
  const auto d = static_cast<std::uint32_t>(a.get("d", 3));
  const auto n = a.get("n", 300);
  const double p = a.getf("p", 0.05);
  const auto g = a.get("g", 16);
  const auto seed = a.get("seed", 1);
  std::printf("broadcast: k=%u d=%u n=%llu p=%.4f g=%llu seed=%llu\n", k, d,
              static_cast<unsigned long long>(n), p,
              static_cast<unsigned long long>(g),
              static_cast<unsigned long long>(seed));

  overlay::CurtainServer server(k, d, Rng(seed));
  for (std::uint64_t i = 0; i < n; ++i) server.join();
  auto m = server.matrix();
  Rng rng(seed ^ 0xF01);
  for (auto node : m.nodes_in_order()) {
    if (rng.chance(p)) m.mark_failed(node);
  }
  sim::BroadcastConfig cfg;
  cfg.generation_size = g;
  cfg.symbols = 16;
  cfg.seed = seed ^ 0xF02;
  const auto report = sim::simulate_broadcast(m, cfg);

  Table t({"metric", "value"});
  t.add_row({"rounds", std::to_string(report.rounds)});
  t.add_row({"working nodes", std::to_string(report.outcomes.size())});
  t.add_row({"decoded", fmt(report.decoded_fraction() * 100, 1) + "%"});
  t.add_row({"corrupted", fmt(report.corrupted_fraction() * 100, 1) + "%"});
  RunningStats cutfrac;
  for (const auto& o : report.outcomes) {
    cutfrac.add(static_cast<double>(o.max_flow) / d);
  }
  t.add_row({"mean min-cut / d", fmt(cutfrac.mean(), 3)});
  t.print();
  return 0;
}

int cmd_stream(const Args& a) {
  const auto k = static_cast<std::uint32_t>(a.get("k", 8));
  const auto d = static_cast<std::uint32_t>(a.get("d", 3));
  const auto n = a.get("n", 25);
  const auto bytes = a.get("bytes", 4096);
  const auto seed = a.get("seed", 1);
  std::printf("stream: k=%u d=%u n=%llu bytes=%llu seed=%llu\n", k, d,
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(bytes),
              static_cast<unsigned long long>(seed));

  node::ServerConfig scfg;
  scfg.k = k;
  scfg.default_degree = d;
  scfg.generation_size = 16;
  scfg.symbols = 64;
  scfg.seed = seed;
  Rng data_rng(seed ^ 0xF03);
  std::vector<std::uint8_t> content(bytes);
  for (auto& b : content) b = static_cast<std::uint8_t>(data_rng.below(256));
  node::ServerNode server(scfg, content);

  node::ClientConfig ccfg;
  std::vector<std::unique_ptr<node::ClientNode>> clients;
  std::vector<node::ClientNode*> ptrs;
  for (std::uint64_t i = 0; i < n; ++i) {
    clients.push_back(std::make_unique<node::ClientNode>(
        static_cast<node::Address>(i + 1), ccfg));
    ptrs.push_back(clients.back().get());
  }
  node::TickDriver driver(server, ptrs);
  for (auto& c : clients) c->join(driver.network());
  const bool done = driver.run_until_decoded(20000);

  std::size_t verified = 0;
  for (auto& c : clients) {
    if (c->decoded() && c->data() == server.data()) ++verified;
  }
  Table t({"metric", "value"});
  t.add_row({"completed", done ? "yes" : "NO"});
  t.add_row({"ticks", std::to_string(driver.now())});
  t.add_row({"verified payloads", std::to_string(verified) + "/" + std::to_string(n)});
  t.add_row({"data msgs", std::to_string(driver.network().data_messages())});
  t.add_row({"control msgs", std::to_string(driver.network().control_messages())});
  t.print();
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: ncast_explore <overlay|defect|broadcast|stream> [--key value]...\n"
      "  overlay   --k --d --n --p --seed      connectivity under failures\n"
      "  defect    --k --d --p --steps --seed  exact Theorem-4 process\n"
      "  broadcast --k --d --n --p --g --seed  packet-level RLNC broadcast\n"
      "  stream    --k --d --n --bytes --seed  protocol endpoints end-to-end\n"
      "observability (any command):\n"
      "  --metrics <file>   dump the metrics registry snapshot as JSON\n"
      "  --trace <file>     dump the structured trace as JSONL\n");
}

/// Post-run observability dumps requested via --metrics / --trace.
/// Returns false if a requested dump could not be written.
bool dump_observability(const Args& args) {
  bool ok = true;
  const auto metrics_it = args.kv.find("metrics");
  if (metrics_it != args.kv.end()) {
    const std::string& path = metrics_it->second;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      ok = false;
    } else {
      const std::string body = obs::metrics().snapshot_json();
      std::fwrite(body.data(), 1, body.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("[obs] metrics snapshot -> %s (%zu metrics)\n", path.c_str(),
                  obs::metrics().size());
    }
  }
  const auto trace_it = args.kv.find("trace");
  if (trace_it != args.kv.end()) {
    const std::string& path = trace_it->second;
    if (obs::trace().write_jsonl(path)) {
      std::printf("[obs] trace -> %s (%zu events retained, %llu emitted)\n",
                  path.c_str(), obs::trace().size(),
                  static_cast<unsigned long long>(obs::trace().total_emitted()));
    } else {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv, 2);
  int rc = 2;
  if (cmd == "overlay") {
    rc = cmd_overlay(args);
  } else if (cmd == "defect") {
    rc = cmd_defect(args);
  } else if (cmd == "broadcast") {
    rc = cmd_broadcast(args);
  } else if (cmd == "stream") {
    rc = cmd_stream(args);
  } else {
    usage();
    return 2;
  }
  if (!dump_observability(args) && rc == 0) rc = 1;
  return rc;
}
