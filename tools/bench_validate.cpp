// bench_validate — schema validator for the repo's machine-readable
// telemetry formats, dispatched on the top-level "schema" key:
//
//   bench_validate FILE [--require key1,key2,...]
//
//   ncast.bench.v1 — BENCH_<name>.json: schema/bench/run_id strings,
//     params/counters/gauges/histograms objects, p50/p90/p99 numbers inside
//     every histogram entry, and non-negative numeric peak_rss_bytes /
//     worker_threads resource-footprint fields. The optional --require list
//     names parameter keys that must be present in "params" (the smoke test
//     passes k,d,n,seed).
//   ncast.lint.v1 — LINT_*.json from tools/ncast_lint: tool/roots/rules,
//     a counts object consistent with the violations and suppressed arrays,
//     and well-formed finding entries (known rule, file, 1-based line).
//   ncast.lint.v2 — the two-pass report: everything v1 checks, plus a
//     baselined array (counts must agree), per-finding fingerprints on
//     violations and baselined entries, a rule_counts object covering every
//     declared rule, and an include_graph summary (files/edges/cycles plus
//     the observed module dependency map).
//   ncast.lint.baseline.v1 — the committed suppressions file
//     (tools/lint/lint_baseline.json): per-rule budgets, entries with
//     rule/file/fingerprint, no duplicate fingerprints, and per-rule entry
//     counts within budget (the ratchet invariant).
//   ncast.trace.v1 — TRACE_*.jsonl from obs::TraceBuffer::to_jsonl(): a
//     header line carrying capacity / total_emitted / dropped_events, then
//     one event object per line with a numeric timestamp, a non-empty kind,
//     non-decreasing t, and span/parent ids that are positive when present
//     (0 is spelled by omission). The event line count must equal
//     total_emitted - dropped_events (what the ring retained).
//
// Exits 0 on success, 1 with a diagnostic on the first violation.
//
// The parser (tools/json_reader.hpp) is deliberately independent of
// obs/json.hpp (writer): a shared implementation could hide a bug on both
// sides of the contract.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "json_reader.hpp"

namespace {

using ncast::tools::Parser;
using ncast::tools::Value;
using ncast::tools::ValuePtr;

int violation(const std::string& why) {
  std::fprintf(stderr, "bench_validate: FAIL: %s\n", why.c_str());
  return 1;
}

int validate_lint(const Value& root, bool v2) {
  for (const char* key : {"tool"}) {
    const Value* v = root.get(key);
    if (v == nullptr || !v->is_string() || v->string.empty()) {
      return violation(std::string("missing non-empty string key '") + key + "'");
    }
  }

  const Value* rules = root.get("rules");
  if (rules == nullptr || rules->kind != Value::Kind::kArray ||
      rules->array.empty()) {
    return violation("missing non-empty array key 'rules'");
  }
  std::map<std::string, bool> known_rules;
  for (const auto& r : rules->array) {
    if (!r->is_string() || r->string.empty()) {
      return violation("'rules' entries must be non-empty strings");
    }
    known_rules[r->string] = true;
  }

  const Value* roots = root.get("roots");
  if (roots == nullptr || roots->kind != Value::Kind::kArray) {
    return violation("missing array key 'roots'");
  }

  const Value* counts = root.get("counts");
  if (counts == nullptr || !counts->is_object()) {
    return violation("missing object key 'counts'");
  }
  std::vector<const char*> count_keys = {"files", "violations", "suppressed"};
  if (v2) count_keys.push_back("baselined");
  for (const char* key : count_keys) {
    const Value* v = counts->get(key);
    if (v == nullptr || !v->is_number()) {
      return violation(std::string("counts lacks numeric '") + key + "'");
    }
  }

  if (v2) {
    const Value* rule_counts = root.get("rule_counts");
    if (rule_counts == nullptr || !rule_counts->is_object()) {
      return violation("missing object key 'rule_counts'");
    }
    for (const auto& [rule, known] : known_rules) {
      (void)known;
      const Value* entry = rule_counts->get(rule);
      if (entry == nullptr || !entry->is_object()) {
        return violation("rule_counts lacks an object for rule '" + rule + "'");
      }
      for (const char* key : {"violations", "suppressed", "baselined"}) {
        const Value* v = entry->get(key);
        if (v == nullptr || !v->is_number() || v->number < 0) {
          return violation("rule_counts['" + rule + "'] lacks numeric '" +
                           key + "'");
        }
      }
    }
    const Value* graph = root.get("include_graph");
    if (graph == nullptr || !graph->is_object()) {
      return violation("missing object key 'include_graph'");
    }
    for (const char* key : {"files", "edges", "cycles"}) {
      const Value* v = graph->get(key);
      if (v == nullptr || !v->is_number() || v->number < 0) {
        return violation(std::string("include_graph lacks numeric '") + key +
                         "'");
      }
    }
    const Value* modules = graph->get("modules");
    if (modules == nullptr || !modules->is_object()) {
      return violation("include_graph lacks object key 'modules'");
    }
    for (const auto& [module, deps] : modules->object) {
      if (deps->kind != Value::Kind::kArray) {
        return violation("include_graph.modules['" + module +
                         "'] is not an array");
      }
    }
  }

  std::vector<const char*> sections = {"violations", "suppressed"};
  if (v2) sections.insert(sections.begin() + 1, "baselined");
  for (const char* section : sections) {
    const Value* arr = root.get(section);
    if (arr == nullptr || arr->kind != Value::Kind::kArray) {
      return violation(std::string("missing array key '") + section + "'");
    }
    const double declared = counts->get(section)->number;
    if (declared != static_cast<double>(arr->array.size())) {
      return violation(std::string("counts.") + section +
                       " disagrees with the array length");
    }
    const bool suppressed = std::string(section) == "suppressed";
    for (const auto& f : arr->array) {
      if (!f->is_object()) {
        return violation(std::string(section) + " entries must be objects");
      }
      const Value* rule = f->get("rule");
      if (rule == nullptr || !rule->is_string() || !known_rules.count(rule->string)) {
        return violation(std::string(section) +
                         " entry has a rule id absent from 'rules'");
      }
      const Value* file = f->get("file");
      if (file == nullptr || !file->is_string() || file->string.empty()) {
        return violation(std::string(section) + " entry lacks a file");
      }
      const Value* line = f->get("line");
      if (line == nullptr || !line->is_number() || line->number < 1) {
        return violation(std::string(section) + " entry lacks a 1-based line");
      }
      const char* text_key = suppressed ? "justification" : "message";
      const Value* text = f->get(text_key);
      if (text == nullptr || !text->is_string()) {
        return violation(std::string(section) + " entry lacks string '" +
                         text_key + "'");
      }
      if (v2 && !suppressed) {
        const Value* fp = f->get("fingerprint");
        if (fp == nullptr || !fp->is_string() || fp->string.empty()) {
          return violation(std::string(section) +
                           " entry lacks a non-empty fingerprint");
        }
      }
    }
  }
  return 0;
}

int validate_lint_baseline(const Value& root) {
  const Value* tool = root.get("tool");
  if (tool == nullptr || !tool->is_string() || tool->string.empty()) {
    return violation("missing non-empty string key 'tool'");
  }
  const Value* budgets = root.get("budgets");
  if (budgets == nullptr || !budgets->is_object()) {
    return violation("missing object key 'budgets'");
  }
  for (const auto& [rule, v] : budgets->object) {
    if (!v->is_number() || v->number < 0) {
      return violation("budget for '" + rule +
                       "' is not a non-negative number");
    }
  }
  const Value* entries = root.get("entries");
  if (entries == nullptr || entries->kind != Value::Kind::kArray) {
    return violation("missing array key 'entries'");
  }
  std::map<std::string, double> per_rule;
  std::map<std::string, bool> fingerprints;
  for (const auto& e : entries->array) {
    if (!e->is_object()) return violation("entries must be objects");
    for (const char* key : {"rule", "file", "fingerprint"}) {
      const Value* v = e->get(key);
      if (v == nullptr || !v->is_string() || v->string.empty()) {
        return violation(std::string("entry lacks non-empty string '") + key +
                         "'");
      }
    }
    const std::string fp = e->get("fingerprint")->string;
    if (fingerprints.count(fp)) {
      return violation("fingerprint '" + fp + "' appears twice");
    }
    fingerprints[fp] = true;
    per_rule[e->get("rule")->string] += 1.0;
  }
  for (const auto& [rule, count] : per_rule) {
    const Value* budget = budgets->get(rule);
    if (budget == nullptr) {
      return violation("entries for '" + rule + "' have no budget");
    }
    if (count > budget->number) {
      return violation("entries for '" + rule + "' exceed the budget (" +
                       std::to_string(static_cast<long long>(count)) + " > " +
                       std::to_string(static_cast<long long>(budget->number)) +
                       ")");
    }
  }
  return 0;
}

// ncast.trace.v1 is line-oriented: `header` is the already-parsed first
// line, `rest` the remaining raw lines (one event object each).
int validate_trace(const Value& header, const std::vector<std::string>& rest) {
  for (const char* key : {"capacity", "total_emitted", "dropped_events"}) {
    const Value* v = header.get(key);
    if (v == nullptr || !v->is_number() || v->number < 0) {
      return violation(std::string("trace header lacks numeric '") + key + "'");
    }
  }
  const double capacity = header.get("capacity")->number;
  const double total = header.get("total_emitted")->number;
  const double dropped = header.get("dropped_events")->number;
  if (dropped > total) {
    return violation("trace header: dropped_events exceeds total_emitted");
  }
  const double retained = total - dropped;
  if (retained > capacity) {
    return violation("trace header: retained events exceed capacity");
  }
  if (static_cast<double>(rest.size()) != retained) {
    return violation("trace event line count (" + std::to_string(rest.size()) +
                     ") disagrees with total_emitted - dropped_events (" +
                     std::to_string(static_cast<long long>(retained)) + ")");
  }

  double last_t = 0.0;
  bool first = true;
  std::size_t lineno = 1;
  for (const std::string& line : rest) {
    ++lineno;
    ValuePtr event;
    try {
      event = Parser(line).parse();
    } catch (const std::exception& e) {
      return violation("trace line " + std::to_string(lineno) + ": " + e.what());
    }
    if (!event->is_object()) {
      return violation("trace line " + std::to_string(lineno) +
                       " is not an object");
    }
    const Value* t = event->get("t");
    if (t == nullptr || !t->is_number()) {
      return violation("trace line " + std::to_string(lineno) +
                       " lacks numeric 't'");
    }
    if (!first && t->number < last_t) {
      return violation("trace line " + std::to_string(lineno) +
                       ": timestamps must be non-decreasing");
    }
    last_t = t->number;
    first = false;
    const Value* kind = event->get("kind");
    if (kind == nullptr || !kind->is_string() || kind->string.empty()) {
      return violation("trace line " + std::to_string(lineno) +
                       " lacks non-empty string 'kind'");
    }
    for (const char* key : {"span", "parent"}) {
      if (const Value* v = event->get(key)) {
        // 0 (= no span) is spelled by omitting the key.
        if (!v->is_number() || v->number < 1) {
          return violation("trace line " + std::to_string(lineno) + ": '" +
                           key + "' must be a positive span id when present");
        }
      }
    }
  }
  return 0;
}

int validate(const Value& root, const std::vector<std::string>& required_params) {
  if (!root.is_object()) return violation("top level is not an object");

  const Value* schema = root.get("schema");
  if (schema == nullptr || !schema->is_string()) {
    return violation("missing string key 'schema'");
  }
  if (schema->string == "ncast.lint.v1") return validate_lint(root, false);
  if (schema->string == "ncast.lint.v2") return validate_lint(root, true);
  if (schema->string == "ncast.lint.baseline.v1") {
    return validate_lint_baseline(root);
  }
  if (schema->string != "ncast.bench.v1") {
    return violation("unsupported schema '" + schema->string + "'");
  }

  for (const char* key : {"bench", "run_id"}) {
    const Value* v = root.get(key);
    if (v == nullptr || !v->is_string() || v->string.empty()) {
      return violation(std::string("missing non-empty string key '") + key + "'");
    }
  }
  for (const char* key : {"params", "counters", "gauges", "histograms"}) {
    const Value* v = root.get(key);
    if (v == nullptr || !v->is_object()) {
      return violation(std::string("missing object key '") + key + "'");
    }
  }
  // Resource-footprint fields (emitted by every MetricsSession since the
  // scale benches started budgeting memory): numeric and non-negative.
  for (const char* key : {"peak_rss_bytes", "worker_threads"}) {
    const Value* v = root.get(key);
    if (v == nullptr || !v->is_number() || v->number < 0) {
      return violation(std::string("missing non-negative numeric key '") + key +
                       "'");
    }
  }

  const Value& params = *root.get("params");
  for (const std::string& key : required_params) {
    if (params.get(key) == nullptr) {
      return violation("params is missing required key '" + key + "'");
    }
  }

  for (const auto& [name, counter] : root.get("counters")->object) {
    if (!counter->is_number()) {
      return violation("counter '" + name + "' is not a number");
    }
  }

  for (const auto& [name, hist] : root.get("histograms")->object) {
    if (!hist->is_object()) {
      return violation("histogram '" + name + "' is not an object");
    }
    for (const char* stat : {"count", "p50", "p90", "p99"}) {
      const Value* v = hist->get(stat);
      if (v == nullptr || !v->is_number()) {
        return violation("histogram '" + name + "' lacks numeric '" + stat + "'");
      }
    }
  }

  // Tables are optional, but when present must be {header: [...], rows: [[..]]}.
  if (const Value* tables = root.get("tables")) {
    if (!tables->is_object()) return violation("'tables' is not an object");
    for (const auto& [name, table] : tables->object) {
      if (!table->is_object() || table->get("header") == nullptr ||
          table->get("rows") == nullptr) {
        return violation("table '" + name + "' lacks header/rows");
      }
    }
  }

  return 0;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::stringstream ss(csv);
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bench_validate FILE [--require key1,key2,...]\n");
    return 2;
  }
  const std::string path = argv[1];
  std::vector<std::string> required;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::string(argv[i]) == "--require") required = split_csv(argv[i + 1]);
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_validate: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (text.empty()) return violation("file is empty");

  // Line-oriented schemas (ncast.trace.v1) are detected from the first line
  // alone; whole-file JSON documents are parsed in one piece.
  const std::size_t eol = text.find('\n');
  const std::string first_line = text.substr(0, eol);
  if (first_line.find("\"ncast.trace.v1\"") != std::string::npos) {
    ValuePtr header;
    try {
      header = Parser(first_line).parse();
    } catch (const std::exception& e) {
      return violation(std::string("trace header: ") + e.what());
    }
    if (!header->is_object() || header->get("schema") == nullptr) {
      return violation("trace header is not an object with 'schema'");
    }
    std::vector<std::string> rest;
    if (eol != std::string::npos) {
      std::stringstream lines(text.substr(eol + 1));
      std::string line;
      while (std::getline(lines, line)) {
        if (!line.empty()) rest.push_back(line);
      }
    }
    const int rc = validate_trace(*header, rest);
    if (rc == 0) {
      std::printf("bench_validate: OK: %s (%zu bytes, %zu events)\n",
                  path.c_str(), text.size(), rest.size());
    }
    return rc;
  }

  ValuePtr root;
  try {
    root = Parser(text).parse();
  } catch (const std::exception& e) {
    return violation(e.what());
  }

  const int rc = validate(*root, required);
  if (rc == 0) {
    std::printf("bench_validate: OK: %s (%zu bytes)\n", path.c_str(), text.size());
  }
  return rc;
}
