// bench_validate — schema validator for the repo's machine-readable
// telemetry formats, dispatched on the top-level "schema" key:
//
//   bench_validate FILE [--require key1,key2,...]
//
//   ncast.bench.v1 — BENCH_<name>.json: schema/bench/run_id strings,
//     params/counters/gauges/histograms objects, p50/p90/p99 numbers inside
//     every histogram entry. The optional --require list names parameter
//     keys that must be present in "params" (the smoke test passes
//     k,d,n,seed).
//   ncast.lint.v1 — LINT_*.json from tools/ncast_lint: tool/roots/rules,
//     a counts object consistent with the violations and suppressed arrays,
//     and well-formed finding entries (known rule, file, 1-based line).
//
// Exits 0 on success, 1 with a diagnostic on the first violation.
//
// The parser is deliberately independent of obs/json.hpp (writer): a shared
// implementation could hide a bug on both sides of the contract.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON model + recursive-descent parser (RFC 8259 subset: no \uXXXX
// surrogate-pair decoding — escapes are validated and kept verbatim).
// ---------------------------------------------------------------------------

struct Value;
using ValuePtr = std::unique_ptr<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<ValuePtr> array;
  std::map<std::string, ValuePtr> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  const Value* get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : it->second.get();
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  ValuePtr parse() {
    ValuePtr v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content after top-level value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < s_.size(); ++i) {
      if (s_[i] == '\n') ++line;
    }
    throw std::runtime_error("parse error at line " + std::to_string(line) +
                             ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  ValuePtr parse_value() {
    skip_ws();
    auto v = std::make_unique<Value>();
    switch (peek()) {
      case '{': parse_object(*v); break;
      case '[': parse_array(*v); break;
      case '"':
        v->kind = Value::Kind::kString;
        v->string = parse_string();
        break;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v->kind = Value::Kind::kBool;
        v->boolean = true;
        break;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v->kind = Value::Kind::kBool;
        break;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        break;
      default: parse_number(*v);
    }
    return v;
  }

  void parse_object(Value& v) {
    v.kind = Value::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (!v.object.emplace(std::move(key), parse_value()).second) {
        fail("duplicate object key");
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_array(Value& v) {
    v.kind = Value::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              fail("bad \\u escape");
            }
          }
          out += "\\u" + s_.substr(pos_, 4);  // kept verbatim
          pos_ += 4;
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  void parse_number(Value& v) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    char* end = nullptr;
    const std::string token = s_.substr(start, pos_ - start);
    v.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + token + "'");
    v.kind = Value::Kind::kNumber;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Schema checks
// ---------------------------------------------------------------------------

int violation(const std::string& why) {
  std::fprintf(stderr, "bench_validate: FAIL: %s\n", why.c_str());
  return 1;
}

int validate_lint(const Value& root) {
  for (const char* key : {"tool"}) {
    const Value* v = root.get(key);
    if (v == nullptr || !v->is_string() || v->string.empty()) {
      return violation(std::string("missing non-empty string key '") + key + "'");
    }
  }

  const Value* rules = root.get("rules");
  if (rules == nullptr || rules->kind != Value::Kind::kArray ||
      rules->array.empty()) {
    return violation("missing non-empty array key 'rules'");
  }
  std::map<std::string, bool> known_rules;
  for (const auto& r : rules->array) {
    if (!r->is_string() || r->string.empty()) {
      return violation("'rules' entries must be non-empty strings");
    }
    known_rules[r->string] = true;
  }

  const Value* roots = root.get("roots");
  if (roots == nullptr || roots->kind != Value::Kind::kArray) {
    return violation("missing array key 'roots'");
  }

  const Value* counts = root.get("counts");
  if (counts == nullptr || !counts->is_object()) {
    return violation("missing object key 'counts'");
  }
  for (const char* key : {"files", "violations", "suppressed"}) {
    const Value* v = counts->get(key);
    if (v == nullptr || !v->is_number()) {
      return violation(std::string("counts lacks numeric '") + key + "'");
    }
  }

  for (const char* section : {"violations", "suppressed"}) {
    const Value* arr = root.get(section);
    if (arr == nullptr || arr->kind != Value::Kind::kArray) {
      return violation(std::string("missing array key '") + section + "'");
    }
    const double declared = counts->get(section)->number;
    if (declared != static_cast<double>(arr->array.size())) {
      return violation(std::string("counts.") + section +
                       " disagrees with the array length");
    }
    const bool suppressed = std::string(section) == "suppressed";
    for (const auto& f : arr->array) {
      if (!f->is_object()) {
        return violation(std::string(section) + " entries must be objects");
      }
      const Value* rule = f->get("rule");
      if (rule == nullptr || !rule->is_string() || !known_rules.count(rule->string)) {
        return violation(std::string(section) +
                         " entry has a rule id absent from 'rules'");
      }
      const Value* file = f->get("file");
      if (file == nullptr || !file->is_string() || file->string.empty()) {
        return violation(std::string(section) + " entry lacks a file");
      }
      const Value* line = f->get("line");
      if (line == nullptr || !line->is_number() || line->number < 1) {
        return violation(std::string(section) + " entry lacks a 1-based line");
      }
      const char* text_key = suppressed ? "justification" : "message";
      const Value* text = f->get(text_key);
      if (text == nullptr || !text->is_string()) {
        return violation(std::string(section) + " entry lacks string '" +
                         text_key + "'");
      }
    }
  }
  return 0;
}

int validate(const Value& root, const std::vector<std::string>& required_params) {
  if (!root.is_object()) return violation("top level is not an object");

  const Value* schema = root.get("schema");
  if (schema == nullptr || !schema->is_string()) {
    return violation("missing string key 'schema'");
  }
  if (schema->string == "ncast.lint.v1") return validate_lint(root);
  if (schema->string != "ncast.bench.v1") {
    return violation("unsupported schema '" + schema->string + "'");
  }

  for (const char* key : {"bench", "run_id"}) {
    const Value* v = root.get(key);
    if (v == nullptr || !v->is_string() || v->string.empty()) {
      return violation(std::string("missing non-empty string key '") + key + "'");
    }
  }
  for (const char* key : {"params", "counters", "gauges", "histograms"}) {
    const Value* v = root.get(key);
    if (v == nullptr || !v->is_object()) {
      return violation(std::string("missing object key '") + key + "'");
    }
  }

  const Value& params = *root.get("params");
  for (const std::string& key : required_params) {
    if (params.get(key) == nullptr) {
      return violation("params is missing required key '" + key + "'");
    }
  }

  for (const auto& [name, counter] : root.get("counters")->object) {
    if (!counter->is_number()) {
      return violation("counter '" + name + "' is not a number");
    }
  }

  for (const auto& [name, hist] : root.get("histograms")->object) {
    if (!hist->is_object()) {
      return violation("histogram '" + name + "' is not an object");
    }
    for (const char* stat : {"count", "p50", "p90", "p99"}) {
      const Value* v = hist->get(stat);
      if (v == nullptr || !v->is_number()) {
        return violation("histogram '" + name + "' lacks numeric '" + stat + "'");
      }
    }
  }

  // Tables are optional, but when present must be {header: [...], rows: [[..]]}.
  if (const Value* tables = root.get("tables")) {
    if (!tables->is_object()) return violation("'tables' is not an object");
    for (const auto& [name, table] : tables->object) {
      if (!table->is_object() || table->get("header") == nullptr ||
          table->get("rows") == nullptr) {
        return violation("table '" + name + "' lacks header/rows");
      }
    }
  }

  return 0;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::stringstream ss(csv);
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bench_validate FILE [--require key1,key2,...]\n");
    return 2;
  }
  const std::string path = argv[1];
  std::vector<std::string> required;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::string(argv[i]) == "--require") required = split_csv(argv[i + 1]);
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_validate: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (text.empty()) return violation("file is empty");

  ValuePtr root;
  try {
    root = Parser(text).parse();
  } catch (const std::exception& e) {
    return violation(e.what());
  }

  const int rc = validate(*root, required);
  if (rc == 0) {
    std::printf("bench_validate: OK: %s (%zu bytes)\n", path.c_str(), text.size());
  }
  return rc;
}
