#include "compare/bench_compare_core.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace ncast::tools::compare {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string item;
  std::stringstream ss(s);
  while (std::getline(ss, item, sep)) out.push_back(item);
  return out;
}

bool is_histogram_stat(const std::string& s) {
  return s == "count" || s == "sum" || s == "min" || s == "max" ||
         s == "mean" || s == "p50" || s == "p90" || s == "p99";
}

/// Resolves a budget's metric inside one parsed document; returns false when
/// any link of the path is absent or non-numeric.
bool lookup(const Value& root, const Budget& b, double* out) {
  const Value* section = root.get(b.section);
  if (section == nullptr || !section->is_object()) return false;
  const Value* entry = section->get(b.name);
  if (entry == nullptr) return false;
  if (!b.stat.empty()) {
    if (!entry->is_object()) return false;
    entry = entry->get(b.stat);
    if (entry == nullptr) return false;
  }
  if (!entry->is_number()) return false;
  *out = entry->number;
  return true;
}

std::string metric_path(const Budget& b) {
  std::string p = b.section + ":" + b.name;
  if (!b.stat.empty()) p += ":" + b.stat;
  return p;
}

std::string render(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

bool parse_budget(const std::string& spec, Budget* out, std::string* error) {
  const auto parts = split(spec, ':');
  if (parts.size() != 4 && parts.size() != 5) {
    *error = "expected SECTION:NAME[:STAT]:le|ge:RATIO, got '" + spec + "'";
    return false;
  }
  Budget b;
  b.spec = spec;
  b.section = parts[0];
  b.name = parts[1];
  std::size_t i = 2;
  if (parts.size() == 5) b.stat = parts[i++];

  if (b.section != "counters" && b.section != "gauges" &&
      b.section != "histograms" && b.section != "notes") {
    *error = "unknown section '" + b.section + "' in '" + spec + "'";
    return false;
  }
  if (b.section == "histograms") {
    if (b.stat.empty()) {
      *error = "histogram budget '" + spec + "' needs a STAT (e.g. p99)";
      return false;
    }
    if (!is_histogram_stat(b.stat)) {
      *error = "unknown histogram stat '" + b.stat + "' in '" + spec + "'";
      return false;
    }
  } else if (!b.stat.empty()) {
    *error = "section '" + b.section + "' takes no STAT ('" + spec + "')";
    return false;
  }
  if (b.name.empty()) {
    *error = "empty metric name in '" + spec + "'";
    return false;
  }

  const std::string& dir = parts[i++];
  if (dir == "le") {
    b.dir = Budget::Dir::kLe;
  } else if (dir == "ge") {
    b.dir = Budget::Dir::kGe;
  } else {
    *error = "direction must be 'le' or 'ge' in '" + spec + "'";
    return false;
  }

  char* end = nullptr;
  b.ratio = std::strtod(parts[i].c_str(), &end);
  if (end == nullptr || *end != '\0' || parts[i].empty() || b.ratio <= 0.0) {
    *error = "ratio must be a positive number in '" + spec + "'";
    return false;
  }
  *out = std::move(b);
  return true;
}

const char* to_string(Finding::Kind kind) {
  switch (kind) {
    case Finding::Kind::kPass: return "pass";
    case Finding::Kind::kFail: return "fail";
    case Finding::Kind::kMissingFresh: return "missing-fresh";
    case Finding::Kind::kNewMetric: return "new-metric";
    case Finding::Kind::kModeMismatch: return "mode-mismatch";
  }
  return "unknown";
}

bool Report::ok() const {
  for (const Finding& f : findings) {
    if (f.kind == Finding::Kind::kFail ||
        f.kind == Finding::Kind::kMissingFresh ||
        f.kind == Finding::Kind::kModeMismatch) {
      return false;
    }
  }
  return true;
}

std::size_t Report::count(Finding::Kind kind) const {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (f.kind == kind) ++n;
  }
  return n;
}

Report compare(const Value& baseline, const Value& fresh,
               const std::vector<Budget>& budgets) {
  Report report;

  // Mode guard first: a budget verdict computed across modes is noise.
  for (const char* flag : {"smoke", "obs_enabled"}) {
    const Value* b = baseline.get(flag);
    const Value* f = fresh.get(flag);
    const bool bv = b != nullptr && b->kind == Value::Kind::kBool && b->boolean;
    const bool fv = f != nullptr && f->kind == Value::Kind::kBool && f->boolean;
    if (b != nullptr && f != nullptr && bv != fv) {
      Finding finding;
      finding.kind = Finding::Kind::kModeMismatch;
      finding.metric = flag;
      finding.message = std::string(flag) + " differs: baseline=" +
                        (bv ? "true" : "false") + " fresh=" +
                        (fv ? "true" : "false");
      report.findings.push_back(std::move(finding));
    }
  }

  for (const Budget& b : budgets) {
    Finding finding;
    finding.metric = metric_path(b);

    double base_v = 0.0;
    const bool has_base = lookup(baseline, b, &base_v);
    double fresh_v = 0.0;
    const bool has_fresh = lookup(fresh, b, &fresh_v);

    if (!has_base) {
      // Can't gate without a reference point; surface it so the baseline
      // gets refreshed instead of silently skipping the budget forever.
      finding.kind = Finding::Kind::kNewMetric;
      finding.fresh = fresh_v;
      finding.message = "no baseline value for '" + b.spec +
                        "' — refresh the baseline to start gating it";
      report.findings.push_back(std::move(finding));
      continue;
    }
    if (!has_fresh) {
      finding.kind = Finding::Kind::kMissingFresh;
      finding.baseline = base_v;
      finding.message = "budgeted metric missing from the fresh run ('" +
                        b.spec + "')";
      report.findings.push_back(std::move(finding));
      continue;
    }

    const double bound = base_v * b.ratio;
    const bool pass = b.dir == Budget::Dir::kLe ? fresh_v <= bound
                                                : fresh_v >= bound;
    finding.kind = pass ? Finding::Kind::kPass : Finding::Kind::kFail;
    finding.baseline = base_v;
    finding.fresh = fresh_v;
    finding.bound = bound;
    finding.message = render(fresh_v) +
                      (b.dir == Budget::Dir::kLe ? " <= " : " >= ") +
                      render(bound) + " (baseline " + render(base_v) + " * " +
                      render(b.ratio) + ")" + (pass ? "" : " VIOLATED");
    report.findings.push_back(std::move(finding));
  }
  return report;
}

std::string Report::to_json() const {
  // Hand-rolled on purpose: the tools depend on json_reader.hpp only, and
  // the document is flat. Metric names and messages contain no characters
  // needing escapes beyond quotes/backslashes, but escape those anyway.
  const auto esc = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };
  std::string j = "{\"schema\":\"ncast.compare.v1\",\"ok\":";
  j += ok() ? "true" : "false";
  j += ",\"counts\":{";
  const Finding::Kind kinds[] = {
      Finding::Kind::kPass, Finding::Kind::kFail, Finding::Kind::kMissingFresh,
      Finding::Kind::kNewMetric, Finding::Kind::kModeMismatch};
  bool first = true;
  for (const Finding::Kind k : kinds) {
    if (!first) j += ",";
    first = false;
    j += "\"" + std::string(to_string(k)) + "\":" + std::to_string(count(k));
  }
  j += "},\"findings\":[";
  first = true;
  for (const Finding& f : findings) {
    if (!first) j += ",";
    first = false;
    j += "{\"kind\":\"" + std::string(to_string(f.kind)) + "\",\"metric\":\"" +
         esc(f.metric) + "\",\"baseline\":" + render(f.baseline) +
         ",\"fresh\":" + render(f.fresh) + ",\"bound\":" + render(f.bound) +
         ",\"message\":\"" + esc(f.message) + "\"}";
  }
  j += "]}\n";
  return j;
}

}  // namespace ncast::tools::compare
