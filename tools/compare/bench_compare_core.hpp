#pragma once
// bench_compare engine: diffs a fresh BENCH_<name>.json against a committed
// baseline under per-metric tolerance budgets. The engine is a standalone
// library (mirroring ncast_lint_core) so the tolerance-logic unit tests
// (tests/test_bench_compare.cpp) can drive it in-process; the CLI
// (tools/bench_compare.cpp) is a thin argv wrapper wired into ctest under
// the "perf" label.
//
// Budget syntax:  SECTION:NAME[:STAT]:DIR:RATIO
//   SECTION  counters | gauges | histograms | notes
//   NAME     the metric key inside the section (dots allowed, colons not)
//   STAT     histograms only: count | sum | min | max | mean | p50 | p90 | p99
//   DIR      le — fresh must be <= baseline * ratio (bigger is worse:
//                 nanoseconds, bytes, drops);
//            ge — fresh must be >= baseline * ratio (smaller is worse:
//                 events/s, decoded fraction). Ratio < 1 here.
//   RATIO    the tolerance multiplier, a positive double.
//
// e.g.  counters:net.control_bytes:le:1.25
//       histograms:decoder.absorb_ns:p99:le:10
//       notes:events_per_sec:ge:0.1
//
// Verdicts per budget: pass, fail, or missing-fresh (the budgeted metric
// vanished from the fresh run — a fail: silently losing a gated metric is
// how regressions hide). A budget whose metric is absent from the
// *baseline* reports new-metric (non-fail) — it cannot gate until the
// baseline is refreshed, and the finding is the reminder. Fresh-side
// metrics nobody budgeted are not findings at all.
//
// Mode guard: comparing a smoke run against a full run (or an obs-enabled
// run against a kill-switched one) is meaningless, so differing
// smoke/obs_enabled header flags produce a mode-mismatch finding and an
// overall fail.

#include <string>
#include <vector>

#include "json_reader.hpp"

namespace ncast::tools::compare {

struct Budget {
  std::string section;
  std::string name;
  std::string stat;  ///< empty for scalar sections
  enum class Dir { kLe, kGe } dir = Dir::kLe;
  double ratio = 1.0;
  std::string spec;  ///< the original text, echoed in findings
};

/// Parses one budget spec; on failure returns false and sets *error.
bool parse_budget(const std::string& spec, Budget* out, std::string* error);

struct Finding {
  enum class Kind { kPass, kFail, kMissingFresh, kNewMetric, kModeMismatch };
  Kind kind = Kind::kPass;
  std::string metric;  ///< "section:name[:stat]"
  double baseline = 0.0;
  double fresh = 0.0;
  double bound = 0.0;  ///< baseline * ratio — the admissible limit
  std::string message;
};

const char* to_string(Finding::Kind kind);

struct Report {
  std::vector<Finding> findings;

  /// False when any finding is kFail, kMissingFresh or kModeMismatch.
  bool ok() const;
  std::size_t count(Finding::Kind kind) const;

  /// "ncast.compare.v1" JSON document (findings + counts + verdict).
  std::string to_json() const;
};

/// Evaluates every budget against the two parsed bench documents.
Report compare(const Value& baseline, const Value& fresh,
               const std::vector<Budget>& budgets);

}  // namespace ncast::tools::compare
