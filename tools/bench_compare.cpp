// bench_compare — the perf-regression gate (ROADMAP item 5). Diffs a fresh
// BENCH_<name>.json against a committed baseline under explicit per-metric
// tolerance budgets:
//
//   bench_compare BASELINE FRESH --budget SPEC [--budget SPEC ...]
//                 [--json OUT]
//
// with SPEC = SECTION:NAME[:STAT]:le|ge:RATIO (see
// tools/compare/bench_compare_core.hpp for the full syntax and verdict
// semantics). Exits 0 when every budget passes, 1 on any fail /
// missing-fresh / mode-mismatch finding, 2 on usage or parse errors. Wired
// into ctest under the "perf" label: each bench family's smoke run is
// compared against bench/baselines/BENCH_<family>.json.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "compare/bench_compare_core.hpp"

namespace {

using ncast::tools::Parser;
using ncast::tools::ValuePtr;
namespace compare = ncast::tools::compare;

ValuePtr load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    return nullptr;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  try {
    return Parser(buf.str()).parse();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(), e.what());
    return nullptr;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: bench_compare BASELINE FRESH --budget SPEC "
                 "[--budget SPEC ...] [--json OUT]\n");
    return 2;
  }
  const std::string baseline_path = argv[1];
  const std::string fresh_path = argv[2];
  std::vector<compare::Budget> budgets;
  std::string json_out;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "--budget" || arg == "--json") && i + 1 >= argc) {
      std::fprintf(stderr, "bench_compare: %s needs a value\n", arg.c_str());
      return 2;
    }
    if (arg == "--budget") {
      compare::Budget b;
      std::string error;
      if (!compare::parse_budget(argv[++i], &b, &error)) {
        std::fprintf(stderr, "bench_compare: %s\n", error.c_str());
        return 2;
      }
      budgets.push_back(std::move(b));
    } else if (arg == "--json") {
      json_out = argv[++i];
    } else {
      std::fprintf(stderr, "bench_compare: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (budgets.empty()) {
    std::fprintf(stderr, "bench_compare: at least one --budget is required\n");
    return 2;
  }

  const ValuePtr baseline = load(baseline_path);
  const ValuePtr fresh = load(fresh_path);
  if (!baseline || !fresh) return 2;
  if (!baseline->is_object() || !fresh->is_object()) {
    std::fprintf(stderr, "bench_compare: inputs must be JSON objects\n");
    return 2;
  }

  const compare::Report report = compare::compare(*baseline, *fresh, budgets);

  for (const auto& f : report.findings) {
    const bool bad = f.kind != compare::Finding::Kind::kPass &&
                     f.kind != compare::Finding::Kind::kNewMetric;
    std::fprintf(bad ? stderr : stdout, "bench_compare: %-13s %s  %s\n",
                 compare::to_string(f.kind), f.metric.c_str(),
                 f.message.c_str());
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bench_compare: cannot write %s\n", json_out.c_str());
      return 2;
    }
    out << report.to_json();
  }

  std::printf("bench_compare: %s (%zu budgets: %zu pass, %zu fail, "
              "%zu missing, %zu new)\n",
              report.ok() ? "OK" : "FAIL", budgets.size(),
              report.count(compare::Finding::Kind::kPass),
              report.count(compare::Finding::Kind::kFail),
              report.count(compare::Finding::Kind::kMissingFresh),
              report.count(compare::Finding::Kind::kNewMetric));
  return report.ok() ? 0 : 1;
}
