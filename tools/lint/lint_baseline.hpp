#pragma once
// Baseline suppressions + the ratchet. The committed baseline file
// (tools/lint/lint_baseline.json, schema ncast.lint.baseline.v1) lists the
// fingerprints of findings that predate a rule's introduction; CI fails only
// on findings *not* in the baseline, so new rules can land against an
// imperfect tree without hiding new regressions.
//
// The ratchet: every baseline entry must match a live finding (stale entries
// are an error — you must shrink the file when you fix a finding, never pad
// it), and the per-rule entry count may not exceed the rule's committed
// budget. `write_baseline_json` refuses to raise a budget; raising one
// requires a hand edit of the committed file, which review catches. See
// docs/static_analysis.md for the refresh procedure.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint/lint_engine.hpp"

namespace ncast::lint {

struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string fingerprint;
};

struct Baseline {
  /// Per-rule ceiling on entries. A rule absent here may carry no entries.
  std::map<std::string, std::size_t> budgets;
  std::vector<BaselineEntry> entries;
};

/// Parses a baseline document. Throws std::runtime_error on malformed input
/// (JSON errors, wrong schema, non-string fields) — an unreadable baseline
/// is an internal error (exit 2), not a finding.
Baseline parse_baseline(const std::string& json_text);

/// Marks report findings whose fingerprint appears in the baseline as
/// baselined (they no longer count as violations). Returns ratchet errors:
/// stale entries (fingerprint matches nothing), per-rule counts above
/// budget, and entries whose rule is unknown. Empty return = clean.
std::vector<std::string> apply_baseline(Report& report,
                                        const Baseline& baseline);

/// Serializes the current unsuppressed findings of `report` as a fresh
/// baseline. Budgets ratchet: a rule keeps min(previous budget, new count);
/// if the new count exceeds a previous budget the function throws (the
/// ratchet only turns one way). Rules with no findings drop out entirely.
std::string write_baseline_json(const Report& report, const Baseline* previous);

}  // namespace ncast::lint
