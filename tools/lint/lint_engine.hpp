#pragma once
// ncast_lint engine: a project-specific token/line-level static-analysis pass
// over the C++ tree (no libclang). It enforces the invariants the runtime
// regression suites can only spot-check:
//
//   determinism.*  — no libc PRNG, no entropy sources, no wall-clock reads,
//                    monotonic clocks confined to src/obs, and no iteration
//                    over unordered containers in src/sim, src/overlay,
//                    src/node (where hash order could leak into the RNG draw
//                    sequence and silently break seed-stable runs).
//   hot_path.*     — inside annotated hot regions (see docs/static_analysis.md
//                    for the marker syntax) no allocation, no std::string
//                    construction, no throw; guards PR 2's allocation-free
//                    RLNC invariant at build time.
//   header.*       — #pragma once, no using-namespace directives in headers,
//                    quoted includes must resolve against the project roots.
//   obs.*          — metric names must be dotted snake_case string literals.
//
// Every rule is individually suppressible with an inline allow annotation
// (exact syntax in docs/static_analysis.md); suppressions are reported, not
// hidden. The engine is dependency-free (std only) so the lint binary and its
// tests build before — and independently of — the ncast libraries.

#include <cstddef>
#include <string>
#include <vector>

namespace ncast::lint {

/// One diagnostic. `file` is repo-relative with '/' separators; `line` is
/// 1-based. Suppressed findings carry the annotation's justification text.
struct Finding {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::string message;
  bool suppressed = false;
  std::string justification;
};

struct Options {
  /// Absolute (or cwd-relative) repo root. Scoped rules classify files by
  /// their path below this root; quoted includes resolve against it. When
  /// empty, include resolution is skipped (unit tests lint raw buffers).
  std::string repo_root;
  /// Repo-relative files or directories to scan (default: src bench tools).
  std::vector<std::string> roots;
};

struct Report {
  std::vector<std::string> roots;
  std::size_t files_scanned = 0;
  /// All findings, suppressed and not, sorted by (file, line, rule).
  std::vector<Finding> findings;
};

/// Every rule id the engine knows, sorted; the report embeds this list so
/// downstream tooling can detect rule-set drift.
const std::vector<std::string>& rule_ids();

/// Lints one in-memory translation unit. `rel_path` drives path-scoped rules
/// ("src/obs/...", header-vs-source); `repo_root` may be empty (skips include
/// resolution). Appends findings to `out`.
void lint_source(const std::string& rel_path, const std::string& text,
                 const std::string& repo_root, std::vector<Finding>& out);

/// Walks `opts.roots` under `opts.repo_root` (extensions: hpp/h/ipp/cpp/cc/
/// cxx), lints every file, and returns the sorted report.
Report lint_tree(const Options& opts);

/// Serializes a report as the machine-readable `ncast.lint.v1` document.
/// Deterministic: stable key order, findings pre-sorted by lint_tree.
std::string report_json(const Report& report);

std::size_t violation_count(const Report& report);
std::size_t suppressed_count(const Report& report);

}  // namespace ncast::lint
