#pragma once
// ncast_lint engine: a project-specific two-pass semantic-analysis pass over
// the C++ tree (no libclang). Pass 1 (lint_index) builds a whole-tree index
// — the resolved include graph, module classification, and annotation
// regions — from the shared scanner (lint_scan); pass 2 runs the rule
// families over it. The rules enforce the invariants the runtime regression
// suites can only spot-check:
//
//   determinism.*  — no libc PRNG, no entropy sources, no wall-clock reads,
//                    monotonic clocks confined to src/obs, no iteration over
//                    unordered containers in src/sim, src/overlay, src/node,
//                    no default-seeded RNG construction outside RngStreams,
//                    no float accumulation and balanced markers inside
//                    merge-order-sensitive regions.
//   layering.*     — the include graph must fit the declared allowed-edge
//                    DAG (lint_index.cpp) under transitive closure and must
//                    be cycle-free; violations carry the include chain.
//   concurrency.*  — in src/sim and src/node (code reachable from
//                    ShardedEngine workers): no unguarded mutable static or
//                    namespace-scope state, no pointer-keyed ordered
//                    containers, no thread-identity reads.
//   hot_path.*     — inside annotated hot regions no allocation, no
//                    std::string construction, no throw.
//   header.*       — #pragma once, no using-namespace in headers, quoted
//                    includes must resolve against the project roots.
//   obs.*          — metric names must be dotted snake_case literals.
//
// Every rule is individually suppressible with an inline allow annotation;
// intentionally shared state carries a shared annotation whose argument is
// the justification (exact syntax in docs/static_analysis.md). Suppressions
// are reported, not hidden. Pre-existing findings can additionally be
// baselined (lint_baseline.hpp) so CI fails only on *new* findings. The
// engine is dependency-free (std only) so the lint binary and its tests
// build before — and independently of — the ncast libraries.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace ncast::lint {

/// One diagnostic. `file` is repo-relative with '/' separators; `line` is
/// 1-based. Suppressed findings carry the annotation's justification text.
/// `fingerprint` identifies the finding stably across unrelated edits (hash
/// of rule, file, and message — not the line number); `baselined` marks a
/// finding matched by the committed baseline (reported, not counted).
struct Finding {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::string message;
  bool suppressed = false;
  std::string justification;
  std::string fingerprint;
  bool baselined = false;
};

struct Options {
  /// Absolute (or cwd-relative) repo root. Scoped rules classify files by
  /// their path below this root; quoted includes resolve against it. When
  /// empty, include resolution is skipped (unit tests lint raw buffers).
  std::string repo_root;
  /// Repo-relative files or directories to scan (default: src bench tools).
  std::vector<std::string> roots;
};

/// The report's include-graph section (pass 1 summary).
struct IncludeGraphSummary {
  std::size_t files = 0;   ///< files indexed
  std::size_t edges = 0;   ///< resolved project-internal include edges
  std::size_t cycles = 0;  ///< distinct include cycles found
  /// Observed module-level dependencies (src modules only, no self-edges).
  std::map<std::string, std::vector<std::string>> module_deps;
};

struct Report {
  std::vector<std::string> roots;
  std::size_t files_scanned = 0;
  IncludeGraphSummary graph;
  /// All findings — active, suppressed, and baselined — sorted by
  /// (file, line, rule), fingerprints assigned.
  std::vector<Finding> findings;
};

/// Every rule id the engine knows, sorted; the report embeds this list so
/// downstream tooling can detect rule-set drift.
const std::vector<std::string>& rule_ids();

/// Lints one in-memory translation unit (pass-2 rules only; tree-wide
/// layering needs lint_tree). `rel_path` drives path-scoped rules
/// ("src/obs/...", header-vs-source); `repo_root` may be empty (skips
/// include resolution). Appends findings to `out` (no fingerprints — those
/// are assigned per report by lint_tree).
void lint_source(const std::string& rel_path, const std::string& text,
                 const std::string& repo_root, std::vector<Finding>& out);

/// Walks `opts.roots` under `opts.repo_root` (extensions: hpp/h/ipp/cpp/cc/
/// cxx), builds the pass-1 index, runs every per-file and tree-wide rule,
/// and returns the sorted, fingerprinted report.
Report lint_tree(const Options& opts);

/// Assigns fingerprints to `report.findings` (stable hash of rule, file,
/// message + duplicate ordinal). lint_tree calls this; exposed for tests
/// that assemble reports by hand.
void assign_fingerprints(Report& report);

/// Serializes a report as the machine-readable `ncast.lint.v2` document.
/// Deterministic: stable key order, findings pre-sorted by lint_tree.
std::string report_json(const Report& report);

/// Unsuppressed, non-baselined findings — what the exit code keys on.
std::size_t violation_count(const Report& report);
std::size_t suppressed_count(const Report& report);
std::size_t baselined_count(const Report& report);

}  // namespace ncast::lint
