#include "lint/lint_index.hpp"

#include <algorithm>
#include <filesystem>
#include <regex>

namespace ncast::lint {
namespace {

namespace fs = std::filesystem;

/// Leaf modules every layer may use: observability and generic utilities
/// carry no simulation semantics, so depending on them cannot invert the
/// pipeline.
const std::vector<std::string>& leaf_modules() {
  static const std::vector<std::string> leaves = {"obs", "util"};
  return leaves;
}

}  // namespace

std::string module_of(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return "";
  const std::size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel.substr(4, slash - 4);
}

const std::map<std::string, std::vector<std::string>>& allowed_direct_deps() {
  // The pipeline, low to high: gf -> linalg -> coding -> overlay -> sim ->
  // node, with graph feeding overlay's flow machinery and baselines as a
  // side consumer of the overlay state. `sim` sits *above* overlay in this
  // tree: the scenario runner drives ThreadMatrix/CurtainServer state, the
  // overlay structures never schedule events. obs/util are leaf-usable
  // everywhere (see leaf_modules) and are therefore not spelled per module.
  static const std::map<std::string, std::vector<std::string>> dag = {
      {"gf", {}},
      {"graph", {}},
      {"obs", {}},
      {"util", {}},
      {"linalg", {"gf"}},
      {"coding", {"linalg"}},
      {"overlay", {"graph"}},
      {"sim", {"coding", "overlay"}},
      {"node", {"sim"}},
      {"baselines", {"overlay", "graph"}},
  };
  return dag;
}

std::set<std::string> allowed_closure(const std::string& module) {
  std::set<std::string> closure;
  closure.insert(module);
  for (const std::string& leaf : leaf_modules()) closure.insert(leaf);
  const auto& dag = allowed_direct_deps();
  std::vector<std::string> work = {module};
  while (!work.empty()) {
    const std::string cur = work.back();
    work.pop_back();
    const auto it = dag.find(cur);
    if (it == dag.end()) continue;
    for (const std::string& dep : it->second) {
      if (closure.insert(dep).second) work.push_back(dep);
    }
  }
  return closure;
}

Index build_index(const std::string& repo_root,
                  const std::vector<SourceFile>& files) {
  static const std::regex include_re(
      R"rx(^\s*#\s*include\s*"([^"]+)")rx");
  Index index;
  index.repo_root = repo_root;
  const fs::path root(repo_root.empty() ? "." : repo_root);

  for (const SourceFile& src : files) {
    FileNode node;
    node.module = module_of(src.rel);
    const auto dot = src.rel.find_last_of('.');
    const std::string ext =
        dot == std::string::npos ? "" : src.rel.substr(dot);
    node.is_header = ext == ".hpp" || ext == ".h" || ext == ".ipp";

    const fs::path self_dir = (root / src.rel).parent_path();
    for (std::size_t i = 0; i < src.sc->code_strings.size(); ++i) {
      std::smatch m;
      const std::string& cs = src.sc->code_strings[i];
      if (!std::regex_search(cs, m, include_re)) continue;
      const std::string inc = m.str(1);
      for (const fs::path& base :
           {self_dir, root / "src", root, root / "bench", root / "tools"}) {
        std::error_code ec;
        if (!fs::exists(base / inc, ec)) continue;
        const fs::path rel = fs::relative(base / inc, root, ec);
        if (ec) break;
        const std::string target = rel.generic_string();
        if (target.rfind("..", 0) == 0) break;  // escapes the repo
        node.edges.push_back(IncludeEdge{target, i + 1});
        ++index.edge_count;
        break;
      }
    }
    std::sort(node.edges.begin(), node.edges.end(),
              [](const IncludeEdge& a, const IncludeEdge& b) {
                if (a.line != b.line) return a.line < b.line;
                return a.target < b.target;
              });
    index.files.emplace(src.rel, std::move(node));
  }
  return index;
}

namespace {

std::string chain_string(const std::vector<std::string>& chain) {
  std::string out;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i != 0) out += " -> ";
    out += chain[i];
  }
  return out;
}

/// Depth-first cycle hunt. Reports each distinct cycle once, at the include
/// (back edge) that closes it, with the full chain in the message.
std::size_t find_cycles(const Index& index, std::vector<Finding>& out) {
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const auto& [rel, node] : index.files) color[rel] = Color::kWhite;

  std::set<std::string> reported;  // canonical cycle keys
  std::vector<std::string> stack;

  // Recursive lambda via explicit frames: (file, next edge idx).
  struct Frame {
    const std::string* rel;
    const FileNode* node;
    std::size_t next = 0;
  };

  std::size_t cycles = 0;
  for (const auto& [start, start_node] : index.files) {
    if (color[start] != Color::kWhite) continue;
    std::vector<Frame> frames;
    frames.push_back(Frame{&start, &start_node});
    color[start] = Color::kGray;
    stack.push_back(start);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next >= f.node->edges.size()) {
        color[*f.rel] = Color::kBlack;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const IncludeEdge& edge = f.node->edges[f.next++];
      const auto it = index.files.find(edge.target);
      if (it == index.files.end()) continue;  // target outside the scan set
      const Color c = color[edge.target];
      if (c == Color::kGray) {
        // Back edge: the chain runs from the target's stack position to the
        // top, then back to the target.
        const auto pos =
            std::find(stack.begin(), stack.end(), edge.target);
        std::vector<std::string> chain(pos, stack.end());
        // Canonical key: rotate so the lexicographically smallest file
        // leads, so the same cycle found from another entry point dedupes.
        std::vector<std::string> canon = chain;
        std::rotate(canon.begin(),
                    std::min_element(canon.begin(), canon.end()),
                    canon.end());
        std::string key;
        for (const std::string& s : canon) key += s + ";";
        if (reported.insert(key).second) {
          ++cycles;
          chain.push_back(edge.target);
          Finding finding;
          finding.rule = "layering.cycle";
          finding.file = *f.rel;
          finding.line = edge.line;
          finding.message = "include cycle: " + chain_string(chain);
          out.push_back(std::move(finding));
        }
      } else if (c == Color::kWhite) {
        color[edge.target] = Color::kGray;
        stack.push_back(edge.target);
        frames.push_back(Frame{&it->first, &it->second});
      }
    }
  }
  return cycles;
}

/// BFS from every src-module file: any reachable file whose module falls
/// outside the allowed closure is a layering violation, reported at the
/// direct include that starts the (shortest) chain.
void find_forbidden(const Index& index, std::vector<Finding>& out) {
  const auto& dag = allowed_direct_deps();
  for (const auto& [rel, node] : index.files) {
    if (node.module.empty()) continue;  // bench/tools: application layer
    if (dag.find(node.module) == dag.end()) {
      Finding finding;
      finding.rule = "layering.forbidden_include";
      finding.file = rel;
      finding.line = 1;
      finding.message = "module '" + node.module +
                        "' is not declared in the layering DAG "
                        "(tools/lint/lint_index.cpp)";
      out.push_back(std::move(finding));
      continue;
    }
    const std::set<std::string> closure = allowed_closure(node.module);

    // BFS with predecessor links; visit order is deterministic (edges are
    // sorted, queue is FIFO), so the first chain to an offender is both
    // shortest and stable.
    std::map<std::string, std::string> pred;
    std::vector<std::string> queue = {rel};
    pred[rel] = "";
    std::set<std::pair<std::size_t, std::string>> seen;  // (line, module)
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const std::string cur = queue[qi];
      const auto it = index.files.find(cur);
      if (it == index.files.end()) continue;
      for (const IncludeEdge& edge : it->second.edges) {
        if (pred.count(edge.target)) continue;
        pred[edge.target] = cur;
        queue.push_back(edge.target);
        const std::string dep_module = module_of(edge.target);
        if (dep_module.empty() || closure.count(dep_module)) continue;
        // Walk back to the direct include of `rel` that starts this chain.
        std::vector<std::string> chain = {edge.target};
        std::string hop = cur;
        while (hop != rel) {
          chain.push_back(hop);
          hop = pred[hop];
        }
        chain.push_back(rel);
        std::reverse(chain.begin(), chain.end());
        const std::string& first_hop = chain[1];
        std::size_t line = 1;
        for (const IncludeEdge& direct : node.edges) {
          if (direct.target == first_hop) {
            line = direct.line;
            break;
          }
        }
        if (!seen.insert({line, dep_module}).second) continue;
        Finding finding;
        finding.rule = "layering.forbidden_include";
        finding.file = rel;
        finding.line = line;
        finding.message =
            "module '" + node.module + "' must not depend on '" + dep_module +
            "' (allowed: " + [&] {
              std::string s;
              for (const std::string& a : closure) {
                if (a == node.module) continue;
                s += s.empty() ? a : ", " + a;
              }
              return s.empty() ? std::string("none") : s;
            }() + "); include chain: " + chain_string(chain);
        out.push_back(std::move(finding));
      }
    }
  }
}

}  // namespace

std::size_t check_layering(const Index& index, std::vector<Finding>& out) {
  const std::size_t cycles = find_cycles(index, out);
  find_forbidden(index, out);
  return cycles;
}

std::map<std::string, std::vector<std::string>> observed_module_deps(
    const Index& index) {
  std::map<std::string, std::set<std::string>> deps;
  for (const auto& [rel, node] : index.files) {
    if (node.module.empty()) continue;
    deps[node.module];  // modules with no deps still appear
    for (const IncludeEdge& edge : node.edges) {
      const std::string dep = module_of(edge.target);
      if (!dep.empty() && dep != node.module) deps[node.module].insert(dep);
    }
  }
  std::map<std::string, std::vector<std::string>> out;
  for (auto& [module, set] : deps) {
    out.emplace(module, std::vector<std::string>(set.begin(), set.end()));
  }
  return out;
}

}  // namespace ncast::lint
