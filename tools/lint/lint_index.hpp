#pragma once
// Pass 1 of the two-pass analyzer: a whole-tree index built from the scanned
// sources — the resolved quoted-include graph, per-file module classification
// (the `src/<module>/` prefix), and the declared layering DAG the include
// graph is checked against.
//
// The layering spec is *data*, not convention: `allowed_direct_deps()` below
// is the single authoritative statement of which module may include which,
// and `check_layering()` enforces its reflexive-transitive closure over the
// real include graph, reporting the offending include chain for every
// violation plus every include cycle. `tests/test_lint_layering.cpp` holds
// the spec to reality (the current tree must be cycle-free and fit the DAG).

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lint_engine.hpp"
#include "lint/lint_scan.hpp"

namespace ncast::lint {

/// One source file handed to the index builder (pass 0 output).
struct SourceFile {
  std::string rel;     ///< repo-relative path, '/' separators
  const Scanned* sc;   ///< scanned views; must outlive the index build
};

/// A resolved project-internal include: `target` is repo-relative.
struct IncludeEdge {
  std::string target;
  std::size_t line;  ///< 1-based line of the #include
};

struct FileNode {
  std::string module;  ///< "sim" for src/sim/..., "" outside src/
  bool is_header = false;
  std::vector<IncludeEdge> edges;  ///< sorted by (line, target)
};

struct Index {
  std::string repo_root;
  std::map<std::string, FileNode> files;
  std::size_t edge_count = 0;  ///< resolved project-internal includes
};

/// "sim" for "src/sim/...", "" for anything outside src/.
std::string module_of(const std::string& rel);

/// The declared allowed-edge DAG: module -> modules it may *directly*
/// include. Leaf modules (obs, util) are implicitly usable everywhere and
/// every module may include itself. Files outside src/ (bench, tools) are
/// the application layer and may include any module.
const std::map<std::string, std::vector<std::string>>& allowed_direct_deps();

/// Reflexive-transitive closure of the declared DAG for `module`, plus the
/// leaf modules. Unknown modules get only themselves + leaves.
std::set<std::string> allowed_closure(const std::string& module);

/// Builds the index: extracts quoted includes from the code_strings view and
/// resolves them against the project include roots (self dir, src/, repo
/// root, bench/, tools/). Unresolvable includes are not edges (the
/// header.include_resolves rule reports those separately).
Index build_index(const std::string& repo_root,
                  const std::vector<SourceFile>& files);

/// Layering enforcement over the index: `layering.cycle` for every include
/// cycle (reported once, at the back edge, with the cycle chain) and
/// `layering.forbidden_include` for every src-module file whose transitive
/// includes reach a module outside its allowed closure (reported at the
/// direct include that starts the chain, with the full chain). Appends
/// findings to `out`; returns the number of distinct cycles.
std::size_t check_layering(const Index& index, std::vector<Finding>& out);

/// Observed module-level dependencies (src modules only, self-edges
/// excluded), for the report's include-graph section and the spec test.
std::map<std::string, std::vector<std::string>> observed_module_deps(
    const Index& index);

}  // namespace ncast::lint
