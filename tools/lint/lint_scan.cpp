#include "lint/lint_scan.hpp"

#include <cctype>

namespace ncast::lint {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

Scanned scan(const std::string& text) {
  enum class Mode { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  Scanned out;
  std::string code, code_strings, comment;
  Mode mode = Mode::kCode;
  std::string raw_end;     // ")delim\"" terminator of the active raw literal
  char prev_sig = '\0';    // last non-space code char (digit-separator check)

  auto flush_line = [&]() {
    out.code.push_back(code);
    out.code_strings.push_back(code_strings);
    out.comment.push_back(comment);
    code.clear();
    code_strings.clear();
    comment.clear();
  };

  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (mode == Mode::kLineComment || mode == Mode::kString ||
          mode == Mode::kChar) {
        mode = Mode::kCode;  // strings/chars cannot span lines; be tolerant
      }
      flush_line();
      continue;
    }
    switch (mode) {
      case Mode::kCode: {
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          mode = Mode::kLineComment;
          code += "  ";
          code_strings += "  ";
          ++i;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          mode = Mode::kBlockComment;
          code += "  ";
          code_strings += "  ";
          ++i;
        } else if (c == '"') {
          // Raw literal? Only the plain R"..( prefix is recognized; the rare
          // u8R/LR spellings degrade to ordinary-string handling.
          if (prev_sig == 'R' && !code.empty() && code.back() == 'R' &&
              (code.size() < 2 || !is_ident_char(code[code.size() - 2]))) {
            std::string delim;
            std::size_t j = i + 1;
            while (j < n && text[j] != '(' && text[j] != '\n') {
              delim += text[j++];
            }
            if (j < n && text[j] == '(') {
              mode = Mode::kRaw;
              raw_end = ")" + delim + "\"";
              code += std::string(j - i + 1, ' ');
              code_strings.append(text, i, j - i + 1);
              i = j;
              break;
            }
          }
          mode = Mode::kString;
          code += ' ';
          code_strings += '"';
        } else if (c == '\'' && !is_ident_char(prev_sig)) {
          mode = Mode::kChar;
          code += ' ';
          code_strings += ' ';
        } else {
          code += c;
          code_strings += c;
          if (c != ' ' && c != '\t') prev_sig = c;
        }
        break;
      }
      case Mode::kLineComment:
        comment += c;
        code += ' ';
        code_strings += ' ';
        break;
      case Mode::kBlockComment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          mode = Mode::kCode;
          code += "  ";
          code_strings += "  ";
          ++i;
        } else {
          comment += c;
          code += ' ';
          code_strings += ' ';
        }
        break;
      case Mode::kString:
        code += ' ';
        if (c == '\\' && i + 1 < n && text[i + 1] != '\n') {
          code_strings += c;
          code_strings += text[i + 1];
          code += ' ';
          ++i;
        } else {
          code_strings += c;
          if (c == '"') mode = Mode::kCode;
        }
        break;
      case Mode::kChar:
        code += ' ';
        code_strings += ' ';
        if (c == '\\' && i + 1 < n && text[i + 1] != '\n') {
          code += ' ';
          code_strings += ' ';
          ++i;
        } else if (c == '\'') {
          mode = Mode::kCode;
        }
        break;
      case Mode::kRaw:
        if (text.compare(i, raw_end.size(), raw_end) == 0) {
          code += std::string(raw_end.size(), ' ');
          code_strings += raw_end;
          i += raw_end.size() - 1;
          mode = Mode::kCode;
        } else {
          code += ' ';
          code_strings += c;
        }
        break;
    }
  }
  flush_line();  // final (possibly unterminated) line
  return out;
}

}  // namespace ncast::lint
