#include "lint/lint_baseline.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "json_reader.hpp"

namespace ncast::lint {

namespace {

void escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  escape_into(out, s);
  out += '"';
  return out;
}

}  // namespace

Baseline parse_baseline(const std::string& json_text) {
  using ncast::tools::Parser;
  using ncast::tools::Value;

  const auto root = Parser(json_text).parse();
  if (!root->is_object()) {
    throw std::runtime_error("baseline: top level is not an object");
  }
  const Value* schema = root->get("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "ncast.lint.baseline.v1") {
    throw std::runtime_error("baseline: schema is not ncast.lint.baseline.v1");
  }

  Baseline baseline;
  if (const Value* budgets = root->get("budgets")) {
    if (!budgets->is_object()) {
      throw std::runtime_error("baseline: 'budgets' is not an object");
    }
    for (const auto& [rule, v] : budgets->object) {
      if (!v->is_number() || v->number < 0) {
        throw std::runtime_error("baseline: budget for '" + rule +
                                 "' is not a non-negative number");
      }
      baseline.budgets[rule] = static_cast<std::size_t>(v->number);
    }
  }
  const Value* entries = root->get("entries");
  if (entries == nullptr || entries->kind != Value::Kind::kArray) {
    throw std::runtime_error("baseline: missing array key 'entries'");
  }
  for (const auto& e : entries->array) {
    if (!e->is_object()) {
      throw std::runtime_error("baseline: entries must be objects");
    }
    BaselineEntry entry;
    for (const char* key : {"rule", "file", "fingerprint"}) {
      const Value* v = e->get(key);
      if (v == nullptr || !v->is_string() || v->string.empty()) {
        throw std::runtime_error(
            std::string("baseline: entry lacks non-empty string '") + key +
            "'");
      }
    }
    entry.rule = e->get("rule")->string;
    entry.file = e->get("file")->string;
    entry.fingerprint = e->get("fingerprint")->string;
    baseline.entries.push_back(std::move(entry));
  }
  return baseline;
}

std::vector<std::string> apply_baseline(Report& report,
                                        const Baseline& baseline) {
  std::vector<std::string> errors;

  const auto& known = rule_ids();
  std::map<std::string, std::size_t> per_rule;
  std::set<std::string> fingerprints;
  for (const BaselineEntry& entry : baseline.entries) {
    if (std::find(known.begin(), known.end(), entry.rule) == known.end()) {
      errors.push_back("baseline entry names unknown rule '" + entry.rule +
                       "'");
    }
    if (!fingerprints.insert(entry.fingerprint).second) {
      errors.push_back("baseline fingerprint '" + entry.fingerprint +
                       "' appears twice");
    }
    ++per_rule[entry.rule];
  }

  for (const auto& [rule, count] : per_rule) {
    const auto it = baseline.budgets.find(rule);
    if (it == baseline.budgets.end()) {
      errors.push_back("baseline carries entries for '" + rule +
                       "' but no budget");
    } else if (count > it->second) {
      errors.push_back("baseline entries for '" + rule + "' (" +
                       std::to_string(count) + ") exceed the budget (" +
                       std::to_string(it->second) +
                       "); the ratchet only turns down");
    }
  }

  std::set<std::string> matched;
  for (Finding& f : report.findings) {
    if (f.suppressed) continue;
    if (fingerprints.count(f.fingerprint)) {
      f.baselined = true;
      matched.insert(f.fingerprint);
    }
  }
  for (const BaselineEntry& entry : baseline.entries) {
    if (!matched.count(entry.fingerprint)) {
      errors.push_back("stale baseline entry " + entry.fingerprint + " (" +
                       entry.rule + " in " + entry.file +
                       "): the finding is gone — remove the entry "
                       "(refresh with --write-baseline)");
    }
  }
  return errors;
}

std::string write_baseline_json(const Report& report,
                                const Baseline* previous) {
  std::vector<const Finding*> live;
  std::map<std::string, std::size_t> counts;
  for (const Finding& f : report.findings) {
    if (f.suppressed) continue;
    live.push_back(&f);
    ++counts[f.rule];
  }
  std::sort(live.begin(), live.end(), [](const Finding* a, const Finding* b) {
    if (a->rule != b->rule) return a->rule < b->rule;
    if (a->file != b->file) return a->file < b->file;
    return a->fingerprint < b->fingerprint;
  });

  std::map<std::string, std::size_t> budgets;
  for (const auto& [rule, count] : counts) {
    std::size_t budget = count;
    if (previous != nullptr) {
      const auto it = previous->budgets.find(rule);
      if (it != previous->budgets.end()) {
        if (count > it->second) {
          throw std::runtime_error(
              "refusing to grow the baseline: rule '" + rule + "' now has " +
              std::to_string(count) + " findings, budget is " +
              std::to_string(it->second) +
              " — fix the new findings instead of re-baselining them");
        }
        budget = std::min(count, it->second);
      }
    }
    budgets[rule] = budget;
  }

  std::string out;
  out += "{\n";
  out += "  \"schema\": \"ncast.lint.baseline.v1\",\n";
  out += "  \"tool\": \"ncast_lint\",\n";
  out += "  \"budgets\": {";
  bool first = true;
  for (const auto& [rule, budget] : budgets) {
    out += first ? "\n" : ",\n";
    out += "    " + quoted(rule) + ": " + std::to_string(budget);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"entries\": [";
  first = true;
  for (const Finding* f : live) {
    out += first ? "\n" : ",\n";
    out += "    {\"rule\": " + quoted(f->rule) + ", \"file\": " +
           quoted(f->file) + ", \"fingerprint\": " + quoted(f->fingerprint) +
           "}";
    first = false;
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace ncast::lint
