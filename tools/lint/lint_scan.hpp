#pragma once
// Pass-0 scanner shared by the lint index (pass 1) and the rule runner
// (pass 2): splits a translation unit into per-line views with comments and
// literals separated, so token rules never fire inside either and the
// include/annotation extractors see exactly the text they care about.

#include <string>
#include <vector>

namespace ncast::lint {

struct Scanned {
  /// Code with comments AND string/char literal bodies blanked to spaces.
  std::vector<std::string> code;
  /// Code with comments blanked but string literals kept verbatim (the obs
  /// rule, include extraction, and include resolution need the literal text).
  std::vector<std::string> code_strings;
  /// Concatenated comment text per line (annotations live here).
  std::vector<std::string> comment;
};

bool is_ident_char(char c);

/// Tokenizes `text` into the three per-line views. Tolerant of unterminated
/// strings/comments (clamps at end of line / end of file).
Scanned scan(const std::string& text);

}  // namespace ncast::lint
