#include "lint/lint_engine.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

#include "lint/lint_index.hpp"
#include "lint/lint_scan.hpp"

namespace ncast::lint {
namespace {

namespace fs = std::filesystem;

// Annotation markers. Kept as string constants (never spelled out in
// comments) so the engine stays clean when linting its own source.
constexpr const char* kAllowMarker = "ncast:allow(";
constexpr const char* kSharedMarker = "ncast:shared(";
constexpr const char* kHotBegin = "ncast:hot-begin";
constexpr const char* kHotEnd = "ncast:hot-end";
constexpr const char* kMergeBegin = "ncast:merge-begin";
constexpr const char* kMergeEnd = "ncast:merge-end";

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

struct TokenRule {
  const char* id;
  const char* pattern;  // ECMAScript; first match is quoted in the message
  const char* why;
};

// Determinism rules, applied to masked code everywhere under the scan roots.
const TokenRule kLibcRand = {
    "determinism.libc_rand",
    R"(\b(?:std\s*::\s*)?s?rand\s*\(|\brandom_shuffle\b)",
    "libc PRNG breaks seed-stable runs; draw from util/rng.hpp streams"};
const TokenRule kRandomDevice = {
    "determinism.random_device", R"(\brandom_device\b)",
    "hardware entropy is nondeterministic; derive seeds from the run seed"};
const TokenRule kWallClock = {
    "determinism.wall_clock",
    R"(\bsystem_clock\b|\bstd\s*::\s*time\s*\(|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)|\bgettimeofday\b|\bclock_gettime\b|\blocaltime\b|\bgmtime\b|\bmktime\b)",
    "wall-clock reads make runs irreproducible"};
const TokenRule kSteadyClock = {
    "determinism.steady_clock",
    R"(\bsteady_clock\b|\bhigh_resolution_clock\b)",
    "monotonic clocks are confined to src/obs (timing is observability)"};
const TokenRule kUnseededRng = {
    "determinism.unseeded_rng",
    R"(\bRng\s*\(\s*\)|\bRng\s*\{\s*\}|\bmt19937(?:_64)?\b|\bdefault_random_engine\b|\bminstd_rand0?\b|\branlux\w+\b|\bknuth_b\b)",
    "default-seeded RNG construction bypasses RngStreams; derive every "
    "stream from the run seed"};

// Shard-concurrency rules, applied in src/sim and src/node (the code that
// executes on ShardedEngine workers).
const TokenRule kThreadAmbient = {
    "concurrency.thread_ambient",
    R"(\bthis_thread\b|\bpthread_self\b|\bgettid\s*\(|\bthread\s*::\s*id\b|\bget_id\s*\()",
    "thread identity is schedule-dependent; results must be a pure function "
    "of the seed"};

// Hot-region rules, applied only between the hot markers.
const TokenRule kHotAlloc = {
    "hot_path.alloc",
    R"(\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|\bpush_back\s*\(|\bemplace_back\s*\(|\bresize\s*\(|\breserve\s*\()",
    "hot regions are allocation-free (see docs/performance.md)"};
const TokenRule kHotString = {
    "hot_path.string",
    R"(\bstd\s*::\s*(?:string|to_string|stringstream|ostringstream)\b)",
    "std::string construction allocates in hot regions"};
const TokenRule kHotThrow = {
    "hot_path.throw", R"(\bthrow\b)",
    "hot regions must not throw (unwinding is not allocation-free)"};

const TokenRule kUsingNamespace = {
    "header.using_namespace", R"(\busing\s+namespace\b)",
    "headers must not inject namespaces into every includer"};

const char* kRuleList[] = {
    "concurrency.pointer_keyed",
    "concurrency.shared_mutable_state",
    "concurrency.thread_ambient",
    "determinism.float_accum",
    "determinism.libc_rand",
    "determinism.merge_region",
    "determinism.random_device",
    "determinism.steady_clock",
    "determinism.unordered_iteration",
    "determinism.unseeded_rng",
    "determinism.wall_clock",
    "header.include_resolves",
    "header.pragma_once",
    "header.using_namespace",
    "hot_path.alloc",
    "hot_path.region",
    "hot_path.string",
    "hot_path.throw",
    "layering.cycle",
    "layering.forbidden_include",
    "lint.bad_annotation",
    "obs.metric_name",
};

bool known_rule(const std::string& id) {
  for (const char* r : kRuleList) {
    if (id == r) return true;
  }
  return false;
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool blank(const std::string& s) {
  return s.find_first_not_of(" \t") == std::string::npos;
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool contains_word(const std::string& s, const char* word) {
  const std::size_t len = std::string(word).size();
  std::size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
    const bool right_ok =
        pos + len >= s.size() || !is_ident_char(s[pos + len]);
    if (left_ok && right_ok) return true;
    pos += len;
  }
  return false;
}

/// Suppression map: 1-based line -> rule id -> justification.
using AllowMap = std::map<std::size_t, std::map<std::string, std::string>>;

/// Lines an annotation on comment line `i` (0-based) covers: its own line
/// plus, when the line carries no code, the next line that does.
std::vector<std::size_t> annotation_targets(const Scanned& sc, std::size_t i) {
  std::vector<std::size_t> targets = {i + 1};
  if (blank(sc.code[i])) {
    std::size_t j = i + 1;
    while (j < sc.code.size() && blank(sc.code[j])) ++j;
    if (j < sc.code.size()) targets.push_back(j + 1);
  }
  return targets;
}

/// Parses allow annotations out of comment text into an AllowMap. Unknown
/// rule ids land in `unknown` (validated by the caller); shared annotations
/// register as suppressions of the shared-state rule, with the reason text
/// as the justification (an empty reason lands in `empty_shared`).
AllowMap collect_allows(const Scanned& sc,
                        std::vector<std::pair<std::size_t, std::string>>* unknown,
                        std::vector<std::size_t>* empty_shared) {
  AllowMap allows;
  const std::size_t lines = sc.comment.size();
  for (std::size_t i = 0; i < lines; ++i) {
    const std::string& comment = sc.comment[i];
    std::size_t pos = 0;
    while ((pos = comment.find(kAllowMarker, pos)) != std::string::npos) {
      const std::size_t open = pos + std::string(kAllowMarker).size();
      const std::size_t close = comment.find(')', open);
      if (close == std::string::npos) break;
      const std::string rule_csv = comment.substr(open, close - open);
      std::string justification;
      std::size_t after = close + 1;
      if (after < comment.size() && comment[after] == ':') {
        justification = trim(comment.substr(after + 1));
      }
      const std::vector<std::size_t> targets = annotation_targets(sc, i);
      std::stringstream ss(rule_csv);
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        rule = trim(rule);
        if (rule.empty()) continue;
        if (!known_rule(rule)) {
          if (unknown != nullptr) unknown->emplace_back(i + 1, rule);
          continue;
        }
        for (const std::size_t t : targets) {
          allows[t][rule] = justification;
        }
      }
      pos = close;
    }
    pos = 0;
    while ((pos = comment.find(kSharedMarker, pos)) != std::string::npos) {
      const std::size_t open = pos + std::string(kSharedMarker).size();
      const std::size_t close = comment.find(')', open);
      if (close == std::string::npos) break;
      const std::string why = trim(comment.substr(open, close - open));
      if (why.empty()) {
        if (empty_shared != nullptr) empty_shared->push_back(i + 1);
      } else {
        for (const std::size_t t : annotation_targets(sc, i)) {
          allows[t]["concurrency.shared_mutable_state"] = why;
        }
      }
      pos = close;
    }
  }
  return allows;
}

// ---------------------------------------------------------------------------
// Per-file lint pass (pass 2, file-scoped rules)
// ---------------------------------------------------------------------------

class FileLinter {
 public:
  FileLinter(const std::string& rel_path, const Scanned& sc,
             const std::string& repo_root, std::vector<Finding>& out)
      : rel_(rel_path),
        repo_root_(repo_root),
        out_(out),
        sc_(sc),
        lines_(sc.code.size()) {}

  void run() {
    classify();
    std::vector<std::pair<std::size_t, std::string>> unknown;
    std::vector<std::size_t> empty_shared;
    allows_ = collect_allows(sc_, &unknown, &empty_shared);
    for (const auto& [line, rule] : unknown) {
      report("lint.bad_annotation", line,
             "allow names unknown rule '" + rule + "'");
    }
    for (const std::size_t line : empty_shared) {
      report("lint.bad_annotation", line,
             "shared annotation needs a reason inside the parentheses");
    }
    collect_unordered_ids();
    if (shard_scope_) {
      collect_float_ids();
      compute_namespace_scope();
    }

    bool hot = false;
    std::size_t hot_begin_line = 0;
    bool merge = false;
    std::size_t merge_begin_line = 0;
    bool saw_pragma_once = false;

    for (std::size_t i = 0; i < lines_; ++i) {
      const std::size_t ln = i + 1;
      const std::string& comment = sc_.comment[i];
      const std::string& code = sc_.code[i];
      const std::string& cs = sc_.code_strings[i];

      if (comment.find(kHotEnd) != std::string::npos) {
        if (!hot) {
          report("hot_path.region", ln, "hot-end marker without a begin");
        }
        hot = false;
      }
      if (comment.find(kMergeEnd) != std::string::npos) {
        if (!merge) {
          report("determinism.merge_region", ln,
                 "merge-end marker without a begin");
        }
        merge = false;
      }

      if (!blank(code)) {
        if (is_header_ &&
            std::regex_search(code, re(R"(^\s*#\s*pragma\s+once\b)"))) {
          saw_pragma_once = true;
        }
        check_token(kLibcRand, code, ln);
        check_token(kRandomDevice, code, ln);
        check_token(kWallClock, code, ln);
        if (!starts_with(rel_, "src/obs/")) {
          check_token(kSteadyClock, code, ln);
        }
        if (!starts_with(rel_, "src/util/")) {
          check_token(kUnseededRng, code, ln);
        }
        if (unordered_scope_) check_unordered_iteration(code, ln);
        if (shard_scope_) {
          check_token(kThreadAmbient, code, ln);
          check_pointer_keyed(code, ln);
          check_shared_state(code, i, ln);
          if (merge) check_float_accum(code, ln);
        }
        if (hot) {
          check_token(kHotAlloc, code, ln);
          check_token(kHotString, code, ln);
          check_token(kHotThrow, code, ln);
        }
        if (is_header_) check_token(kUsingNamespace, code, ln);
        check_include(cs, ln);
      }
      check_obs_names(i, ln);

      if (comment.find(kHotBegin) != std::string::npos) {
        if (hot) {
          report("hot_path.region", ln, "nested hot-begin marker");
        } else {
          hot = true;
          hot_begin_line = ln;
        }
      }
      if (comment.find(kMergeBegin) != std::string::npos) {
        if (merge) {
          report("determinism.merge_region", ln, "nested merge-begin marker");
        } else {
          merge = true;
          merge_begin_line = ln;
        }
      }
    }

    if (hot) {
      report("hot_path.region", hot_begin_line,
             "hot region is never closed (missing end marker)");
    }
    if (merge) {
      report("determinism.merge_region", merge_begin_line,
             "merge region is never closed (missing end marker)");
    }
    if (is_header_ && !saw_pragma_once) {
      report("header.pragma_once", 1, "header lacks #pragma once");
    }
  }

 private:
  static const std::regex& re(const char* pattern) {
    // The rule set is a fixed table, so the cache never grows unbounded.
    static std::map<const char*, std::regex> cache;
    auto it = cache.find(pattern);
    if (it == cache.end()) {
      it = cache.emplace(pattern, std::regex(pattern)).first;
    }
    return it->second;
  }

  void classify() {
    const auto dot = rel_.find_last_of('.');
    const std::string ext = dot == std::string::npos ? "" : rel_.substr(dot);
    is_header_ = ext == ".hpp" || ext == ".h" || ext == ".ipp";
    unordered_scope_ = starts_with(rel_, "src/sim/") ||
                       starts_with(rel_, "src/overlay/") ||
                       starts_with(rel_, "src/node/");
    shard_scope_ =
        starts_with(rel_, "src/sim/") || starts_with(rel_, "src/node/");
  }

  /// Best-effort collection of identifiers declared with an unordered
  /// container type anywhere in the file (members, locals, parameters).
  void collect_unordered_ids() {
    if (!unordered_scope_) return;
    std::string joined;
    for (const auto& l : sc_.code) {
      joined += l;
      joined += '\n';
    }
    std::size_t pos = 0;
    while ((pos = joined.find("unordered_", pos)) != std::string::npos) {
      std::size_t p = pos + 10;
      std::string kind;
      while (p < joined.size() && is_ident_char(joined[p])) kind += joined[p++];
      ++pos;
      if (kind != "map" && kind != "set" && kind != "multimap" &&
          kind != "multiset") {
        continue;
      }
      while (p < joined.size() && std::isspace(static_cast<unsigned char>(joined[p]))) ++p;
      if (p >= joined.size() || joined[p] != '<') continue;
      int depth = 1;
      ++p;
      while (p < joined.size() && depth > 0) {
        if (joined[p] == '<') ++depth;
        if (joined[p] == '>') --depth;
        ++p;
      }
      while (p < joined.size() &&
             (std::isspace(static_cast<unsigned char>(joined[p])) ||
              joined[p] == '&' || joined[p] == '*')) {
        ++p;
      }
      std::string ident;
      while (p < joined.size() && is_ident_char(joined[p])) ident += joined[p++];
      while (p < joined.size() && std::isspace(static_cast<unsigned char>(joined[p]))) ++p;
      if (ident.empty() || p >= joined.size()) continue;
      // Only a terminator that ends a declarator counts — this skips return
      // types (followed by '(') and nested-name uses (followed by ':').
      const char t = joined[p];
      if (t == ';' || t == '=' || t == ',' || t == ')' || t == '{') {
        unordered_ids_.insert(ident);
      }
    }
  }

  /// Identifiers declared with a floating-point type (double/float and the
  /// SimTime alias), for the merge-region accumulation rule.
  void collect_float_ids() {
    static const std::regex decl(
        R"(\b(?:float|double|SimTime)\s+([A-Za-z_]\w*)\s*[=;,\){])");
    for (const std::string& code : sc_.code) {
      for (auto it = std::sregex_iterator(code.begin(), code.end(), decl);
           it != std::sregex_iterator(); ++it) {
        float_ids_.insert(it->str(1));
      }
    }
  }

  /// Marks, per line, whether every enclosing brace at the START of the line
  /// is a namespace (or extern-block) brace — i.e. the line sits at
  /// namespace scope. Class bodies, function bodies, and initializers all
  /// push non-namespace braces.
  void compute_namespace_scope() {
    ns_scope_.assign(lines_, false);
    std::vector<bool> stack;  // true = namespace-like brace
    std::string recent;       // code since the last ; { or }
    int paren = 0;  // a line starting mid-'(' is a parameter list, not a decl
    static const std::regex ns_tail(
        R"((^|[;{}\s])namespace(\s+[A-Za-z_][\w:]*)?\s*$)");
    static const std::regex extern_tail(R"((^|[;{}\s])extern\s*$)");
    for (std::size_t i = 0; i < lines_; ++i) {
      ns_scope_[i] =
          paren == 0 &&
          std::all_of(stack.begin(), stack.end(), [](bool b) { return b; });
      for (const char c : sc_.code[i]) {
        if (c == '(') ++paren;
        if (c == ')' && paren > 0) --paren;
        if (c == '{') {
          const std::string t = trim(recent);
          stack.push_back(std::regex_search(t, ns_tail) ||
                          std::regex_search(t, extern_tail));
          recent.clear();
        } else if (c == '}') {
          if (!stack.empty()) stack.pop_back();
          recent.clear();
        } else if (c == ';') {
          recent.clear();
        } else {
          recent += c;
        }
      }
      recent += ' ';  // line break separates tokens
    }
  }

  void check_token(const TokenRule& rule, const std::string& code,
                   std::size_t ln) {
    std::smatch m;
    if (std::regex_search(code, m, re(rule.pattern))) {
      report(rule.id, ln,
             "'" + trim(m.str(0)) + "': " + std::string(rule.why));
    }
  }

  void check_unordered_iteration(const std::string& code, std::size_t ln) {
    static const char* kMsg =
        "iteration order of an unordered container can leak into the RNG "
        "draw sequence";
    if (code.find("for") != std::string::npos &&
        std::regex_search(code, re(R"(\bfor\s*\(.*:.*unordered_)"))) {
      report("determinism.unordered_iteration", ln, kMsg);
      return;
    }
    for (const std::string& id : unordered_ids_) {
      if (code.find(id) == std::string::npos) continue;
      const std::string range_for = R"(\bfor\s*\(.*:.*\b)" + id + R"(\b)";
      // .begin() exposes the first element in hash order; a bare .end() is
      // the idiomatic find()-lookup sentinel and stays quiet.
      const std::string begin_call =
          R"(\b)" + id + R"(\s*\.\s*c?r?begin\s*\()";
      if (std::regex_search(code, std::regex(range_for)) ||
          std::regex_search(code, std::regex(begin_call))) {
        report("determinism.unordered_iteration", ln,
               "'" + id + "': " + kMsg);
        return;
      }
    }
  }

  /// std::map/std::set keyed by a pointer: iteration order is address
  /// order, which ASLR reshuffles every run.
  void check_pointer_keyed(const std::string& code, std::size_t ln) {
    static const std::regex open_re(
        R"(\b(?:std\s*::\s*)?(?:multi)?(?:map|set)\s*<)");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), open_re);
         it != std::sregex_iterator(); ++it) {
      std::size_t p = static_cast<std::size_t>(it->position() + it->length());
      int depth = 1;
      std::string first_arg;
      while (p < code.size() && depth > 0) {
        const char c = code[p];
        if (c == '<') ++depth;
        if (c == '>') --depth;
        if (depth == 1 && c == ',') break;
        if (depth > 0 || c != '>') first_arg += c;
        ++p;
      }
      const std::string arg = trim(first_arg);
      if (!arg.empty() && arg.back() == '*') {
        report("concurrency.pointer_keyed", ln,
               "'" + arg + "'-keyed container iterates in address order, "
               "which varies run to run (ASLR); key by a stable id instead");
        return;
      }
    }
  }

  /// Mutable static or namespace-scope state in shard scope: shared across
  /// ShardedEngine workers unless guarded or explicitly annotated.
  void check_shared_state(const std::string& code, std::size_t i,
                          std::size_t ln) {
    static const std::regex static_re(R"(\bstatic\b)");
    static const std::regex declarator(
        R"(^\s*(?:inline\s+)?[A-Za-z_][\w:<>,\*&\s\[\]]*[\s\*&][A-Za-z_]\w*\s*(?:\[[^\]]*\])?\s*$)");
    static const char* kGuards[] = {"atomic", "mutex", "condition_variable",
                                    "once_flag"};
    static const char* kExempt[] = {"const",  "constexpr", "thread_local",
                                    "struct", "class",     "using",
                                    "typedef"};

    std::smatch m;
    if (std::regex_search(code, m, static_re)) {
      const std::size_t after =
          static_cast<std::size_t>(m.position() + m.length());
      const std::size_t term = code.find_first_of(";={", after);
      if (term != std::string::npos) {
        const std::string head = code.substr(after, term - after);
        bool skip = head.find('(') != std::string::npos ||
                    head.find(')') != std::string::npos;
        for (const char* w : kExempt) {
          if (!skip && (contains_word(head, w) || contains_word(code, w))) {
            skip = true;
          }
        }
        for (const char* w : kGuards) {
          if (!skip && head.find(w) != std::string::npos) skip = true;
        }
        if (!skip && std::regex_match(head, declarator)) {
          report("concurrency.shared_mutable_state", ln,
                 "mutable static state is shared across ShardedEngine "
                 "workers; guard it (std::atomic, std::mutex) or annotate "
                 "why sharing is safe");
          return;
        }
      }
    }

    // Namespace-scope mutable variables (no static keyword needed).
    if (ns_scope_.size() > i && ns_scope_[i]) {
      const std::size_t term = code.find_first_of(";={");
      if (term == std::string::npos) return;
      const std::string head = code.substr(0, term);
      if (head.find('(') != std::string::npos ||
          head.find(')') != std::string::npos) {
        return;
      }
      if (blank(head) || head.find('#') != std::string::npos) return;
      static const char* kNsExempt[] = {
          "const",    "constexpr", "thread_local", "using",   "typedef",
          "namespace", "template", "class",        "struct",  "enum",
          "union",    "friend",    "extern",       "operator", "return",
          "static"};
      for (const char* w : kNsExempt) {
        if (contains_word(head, w)) return;
      }
      for (const char* w : kGuards) {
        if (head.find(w) != std::string::npos) return;
      }
      if (std::regex_match(head, declarator)) {
        report("concurrency.shared_mutable_state", ln,
               "mutable namespace-scope state is shared across ShardedEngine "
               "workers; guard it (std::atomic, std::mutex) or annotate why "
               "sharing is safe");
      }
    }
  }

  /// Inside a merge region (outbox merge / barrier paths): floating-point
  /// accumulation depends on summation order, which the merge exists to
  /// keep deterministic — accumulate in integers or sort first.
  void check_float_accum(const std::string& code, std::size_t ln) {
    static const std::regex accum(R"(([A-Za-z_]\w*)\s*[+\-]\s*=[^=])");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), accum);
         it != std::sregex_iterator(); ++it) {
      const std::string id = it->str(1);
      if (float_ids_.count(id)) {
        report("determinism.float_accum", ln,
               "'" + id + "': floating-point accumulation in a merge-order-"
               "sensitive region; the result depends on summation order");
        return;
      }
    }
  }

  void check_include(const std::string& cs, std::size_t ln) {
    if (repo_root_.empty()) return;
    std::smatch m;
    if (!std::regex_search(cs, m, re(R"rx(^\s*#\s*include\s*"([^"]+)")rx"))) {
      return;
    }
    const std::string inc = m.str(1);
    const fs::path root(repo_root_);
    const fs::path self_dir = (root / rel_).parent_path();
    for (const fs::path& base :
         {self_dir, root / "src", root, root / "bench", root / "tools"}) {
      std::error_code ec;
      if (fs::exists(base / inc, ec)) return;
    }
    report("header.include_resolves", ln,
           "\"" + inc + "\" does not resolve against the project include "
           "roots (self dir, src/, repo root, bench/, tools/)");
  }

  /// Metric-name hygiene: registry lookups must pass a dotted snake_case
  /// string literal. Handles a call whose literal wraps to the next line.
  void check_obs_names(std::size_t i, std::size_t ln) {
    static const std::regex call(
        R"(\bmetrics\s*\(\s*\)\s*\.\s*(?:counter|gauge|histogram)\s*\()");
    static const std::regex name_ok(
        R"(^[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)+$)");
    const std::string& cur = sc_.code_strings[i];
    if (cur.find("metrics") == std::string::npos) return;
    std::string joined = cur;
    joined += '\n';
    if (i + 1 < lines_) joined += sc_.code_strings[i + 1];
    for (auto it = std::sregex_iterator(joined.begin(), joined.end(), call);
         it != std::sregex_iterator(); ++it) {
      if (static_cast<std::size_t>(it->position()) >= cur.size()) continue;
      std::size_t p = static_cast<std::size_t>(it->position() + it->length());
      while (p < joined.size() &&
             std::isspace(static_cast<unsigned char>(joined[p]))) {
        ++p;
      }
      if (p >= joined.size() || joined[p] != '"') {
        report("obs.metric_name", ln,
               "metric name is not a string literal (dynamic names defeat "
               "grep and the naming convention)");
        continue;
      }
      const std::size_t close = joined.find('"', p + 1);
      if (close == std::string::npos) continue;
      const std::string name = joined.substr(p + 1, close - p - 1);
      if (!std::regex_match(name, name_ok)) {
        report("obs.metric_name", ln,
               "'" + name + "' is not dotted snake_case "
               "(subsystem.metric_name)");
      }
    }
  }

  void report(const std::string& rule, std::size_t ln, std::string message) {
    Finding f;
    f.rule = rule;
    f.file = rel_;
    f.line = ln;
    f.message = std::move(message);
    const auto it = allows_.find(ln);
    if (it != allows_.end()) {
      const auto jt = it->second.find(rule);
      if (jt != it->second.end()) {
        f.suppressed = true;
        f.justification = jt->second;
      }
    }
    out_.push_back(std::move(f));
  }

  const std::string rel_;
  const std::string repo_root_;
  std::vector<Finding>& out_;
  const Scanned& sc_;
  const std::size_t lines_;
  bool is_header_ = false;
  bool unordered_scope_ = false;
  bool shard_scope_ = false;
  AllowMap allows_;
  std::set<std::string> unordered_ids_;
  std::set<std::string> float_ids_;
  std::vector<bool> ns_scope_;
};

// ---------------------------------------------------------------------------
// Tree walk + JSON serialization
// ---------------------------------------------------------------------------

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".ipp" || ext == ".cpp" ||
         ext == ".cc" || ext == ".cxx";
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  json_escape_into(out, s);
  out += '"';
  return out;
}

std::uint64_t fnv1a64(const std::string& s, std::uint64_t h) {
  for (const char c : s) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  return h;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
}

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids(std::begin(kRuleList),
                                            std::end(kRuleList));
  return ids;
}

void lint_source(const std::string& rel_path, const std::string& text,
                 const std::string& repo_root, std::vector<Finding>& out) {
  const Scanned sc = scan(text);
  FileLinter(rel_path, sc, repo_root, out).run();
}

void assign_fingerprints(Report& report) {
  // Line numbers are deliberately excluded so an unrelated edit above a
  // finding does not invalidate its baseline entry; identical (rule, file,
  // message) triples get an ordinal so each occurrence stays addressable.
  std::map<std::uint64_t, std::size_t> ordinals;
  for (Finding& f : report.findings) {
    std::uint64_t h = fnv1a64(f.rule, 0xcbf29ce484222325ULL);
    h = fnv1a64("|", h);
    h = fnv1a64(f.file, h);
    h = fnv1a64("|", h);
    h = fnv1a64(f.message, h);
    const std::size_t ordinal = ordinals[h]++;
    h = fnv1a64("#" + std::to_string(ordinal), h);
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    f.fingerprint = buf;
  }
}

Report lint_tree(const Options& opts) {
  Report report;
  report.roots = opts.roots;
  const fs::path root(opts.repo_root.empty() ? "." : opts.repo_root);

  std::vector<std::string> files;
  for (const std::string& r : opts.roots) {
    const fs::path p = root / r;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (it->is_regular_file(ec) && lintable(it->path())) {
          files.push_back(fs::relative(it->path(), root, ec).generic_string());
        }
      }
    } else if (fs::is_regular_file(p, ec) && lintable(p)) {
      files.push_back(fs::relative(p, root, ec).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Pass 0+1: read and scan every file once, then build the tree index.
  std::vector<std::string> texts;
  std::vector<Scanned> scans;
  std::vector<std::string> kept;
  texts.reserve(files.size());
  for (const std::string& rel : files) {
    std::ifstream in(root / rel, std::ios::binary);
    if (!in) continue;
    std::stringstream buf;
    buf << in.rdbuf();
    texts.push_back(buf.str());
    scans.push_back(scan(texts.back()));
    kept.push_back(rel);
  }
  std::vector<SourceFile> sources;
  sources.reserve(kept.size());
  for (std::size_t i = 0; i < kept.size(); ++i) {
    sources.push_back(SourceFile{kept[i], &scans[i]});
  }
  const Index index = build_index(root.string(), sources);

  // Pass 2a: file-scoped rules.
  for (std::size_t i = 0; i < kept.size(); ++i) {
    FileLinter(kept[i], scans[i], root.string(), report.findings).run();
    ++report.files_scanned;
  }

  // Pass 2b: tree-wide layering rules; allow annotations on the offending
  // include lines suppress them like any other finding.
  std::vector<Finding> layering;
  const std::size_t cycles = check_layering(index, layering);
  for (Finding& f : layering) {
    const auto it = std::find(kept.begin(), kept.end(), f.file);
    if (it != kept.end()) {
      const AllowMap allows =
          collect_allows(scans[it - kept.begin()], nullptr, nullptr);
      const auto at = allows.find(f.line);
      if (at != allows.end()) {
        const auto jt = at->second.find(f.rule);
        if (jt != at->second.end()) {
          f.suppressed = true;
          f.justification = jt->second;
        }
      }
    }
    report.findings.push_back(std::move(f));
  }

  report.graph.files = index.files.size();
  report.graph.edges = index.edge_count;
  report.graph.cycles = cycles;
  report.graph.module_deps = observed_module_deps(index);

  sort_findings(report.findings);
  assign_fingerprints(report);
  return report;
}

std::size_t violation_count(const Report& report) {
  std::size_t n = 0;
  for (const auto& f : report.findings) {
    n += (!f.suppressed && !f.baselined) ? 1 : 0;
  }
  return n;
}

std::size_t suppressed_count(const Report& report) {
  std::size_t n = 0;
  for (const auto& f : report.findings) n += f.suppressed ? 1 : 0;
  return n;
}

std::size_t baselined_count(const Report& report) {
  std::size_t n = 0;
  for (const auto& f : report.findings) n += f.baselined ? 1 : 0;
  return n;
}

std::string report_json(const Report& report) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"ncast.lint.v2\",\n";
  out += "  \"tool\": \"ncast_lint\",\n";
  out += "  \"roots\": [";
  for (std::size_t i = 0; i < report.roots.size(); ++i) {
    out += (i ? ", " : "") + quoted(report.roots[i]);
  }
  out += "],\n";
  out += "  \"counts\": {\"files\": " + std::to_string(report.files_scanned) +
         ", \"violations\": " + std::to_string(violation_count(report)) +
         ", \"suppressed\": " + std::to_string(suppressed_count(report)) +
         ", \"baselined\": " + std::to_string(baselined_count(report)) +
         "},\n";
  out += "  \"rules\": [";
  const auto& ids = rule_ids();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    out += (i ? ", " : "") + quoted(ids[i]);
  }
  out += "],\n";

  // Per-rule tallies, every known rule, stable order.
  std::map<std::string, std::array<std::size_t, 3>> tallies;
  for (const auto& f : report.findings) {
    auto& t = tallies[f.rule];
    if (f.suppressed) {
      ++t[1];
    } else if (f.baselined) {
      ++t[2];
    } else {
      ++t[0];
    }
  }
  out += "  \"rule_counts\": {\n";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto& t = tallies[ids[i]];
    out += "    " + quoted(ids[i]) + ": {\"violations\": " +
           std::to_string(t[0]) + ", \"suppressed\": " + std::to_string(t[1]) +
           ", \"baselined\": " + std::to_string(t[2]) + "}";
    out += i + 1 == ids.size() ? "\n" : ",\n";
  }
  out += "  },\n";

  out += "  \"include_graph\": {\"files\": " +
         std::to_string(report.graph.files) +
         ", \"edges\": " + std::to_string(report.graph.edges) +
         ", \"cycles\": " + std::to_string(report.graph.cycles) +
         ", \"modules\": {";
  bool first = true;
  for (const auto& [module, deps] : report.graph.module_deps) {
    out += first ? "" : ", ";
    out += quoted(module) + ": [";
    for (std::size_t i = 0; i < deps.size(); ++i) {
      out += (i ? ", " : "") + quoted(deps[i]);
    }
    out += "]";
    first = false;
  }
  out += "}},\n";

  const auto emit = [&out](const Finding& f, bool last, bool suppressed) {
    out += "    {\"rule\": " + quoted(f.rule) + ", \"file\": " +
           quoted(f.file) + ", \"line\": " + std::to_string(f.line);
    if (suppressed) {
      out += ", \"justification\": " + quoted(f.justification);
    } else {
      out += ", \"message\": " + quoted(f.message) +
             ", \"fingerprint\": " + quoted(f.fingerprint);
    }
    out += last ? "}\n" : "},\n";
  };

  struct Section {
    const char* key;
    bool suppressed;
    bool baselined;
    bool trailing_comma;
  };
  for (const Section sec : {Section{"violations", false, false, true},
                            Section{"baselined", false, true, true},
                            Section{"suppressed", true, false, false}}) {
    std::vector<const Finding*> sel;
    for (const auto& f : report.findings) {
      if (f.suppressed == sec.suppressed && f.baselined == sec.baselined) {
        sel.push_back(&f);
      }
    }
    out += std::string("  \"") + sec.key + "\": [";
    if (sel.empty()) {
      out += sec.trailing_comma ? "],\n" : "]\n";
      continue;
    }
    out += '\n';
    for (std::size_t i = 0; i < sel.size(); ++i) {
      emit(*sel[i], i + 1 == sel.size(), sec.suppressed);
    }
    out += sec.trailing_comma ? "  ],\n" : "  ]\n";
  }
  out += "}\n";
  return out;
}

}  // namespace ncast::lint
