#include "lint/lint_engine.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace ncast::lint {
namespace {

namespace fs = std::filesystem;

// Annotation markers. Kept as string constants (never spelled out in
// comments) so the engine stays clean when linting its own source.
constexpr const char* kAllowMarker = "ncast:allow(";
constexpr const char* kHotBegin = "ncast:hot-begin";
constexpr const char* kHotEnd = "ncast:hot-end";

// ---------------------------------------------------------------------------
// Scanner: splits a translation unit into per-line views with comments and
// literals separated, so token rules never fire inside either.
// ---------------------------------------------------------------------------

struct Scanned {
  /// Code with comments AND string/char literal bodies blanked to spaces.
  std::vector<std::string> code;
  /// Code with comments blanked but string literals kept verbatim (the obs
  /// rule and include resolution need the literal text).
  std::vector<std::string> code_strings;
  /// Concatenated comment text per line (annotations live here).
  std::vector<std::string> comment;
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

Scanned scan(const std::string& text) {
  enum class Mode { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  Scanned out;
  std::string code, code_strings, comment;
  Mode mode = Mode::kCode;
  std::string raw_end;     // ")delim\"" terminator of the active raw literal
  char prev_sig = '\0';    // last non-space code char (digit-separator check)

  auto flush_line = [&]() {
    out.code.push_back(code);
    out.code_strings.push_back(code_strings);
    out.comment.push_back(comment);
    code.clear();
    code_strings.clear();
    comment.clear();
  };

  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (mode == Mode::kLineComment || mode == Mode::kString ||
          mode == Mode::kChar) {
        mode = Mode::kCode;  // strings/chars cannot span lines; be tolerant
      }
      flush_line();
      continue;
    }
    switch (mode) {
      case Mode::kCode: {
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          mode = Mode::kLineComment;
          code += "  ";
          code_strings += "  ";
          ++i;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          mode = Mode::kBlockComment;
          code += "  ";
          code_strings += "  ";
          ++i;
        } else if (c == '"') {
          // Raw literal? Only the plain R"..( prefix is recognized; the rare
          // u8R/LR spellings degrade to ordinary-string handling.
          if (prev_sig == 'R' && !code.empty() && code.back() == 'R' &&
              (code.size() < 2 || !is_ident_char(code[code.size() - 2]))) {
            std::string delim;
            std::size_t j = i + 1;
            while (j < n && text[j] != '(' && text[j] != '\n') {
              delim += text[j++];
            }
            if (j < n && text[j] == '(') {
              mode = Mode::kRaw;
              raw_end = ")" + delim + "\"";
              code += std::string(j - i + 1, ' ');
              code_strings.append(text, i, j - i + 1);
              i = j;
              break;
            }
          }
          mode = Mode::kString;
          code += ' ';
          code_strings += '"';
        } else if (c == '\'' && !is_ident_char(prev_sig)) {
          mode = Mode::kChar;
          code += ' ';
          code_strings += ' ';
        } else {
          code += c;
          code_strings += c;
          if (c != ' ' && c != '\t') prev_sig = c;
        }
        break;
      }
      case Mode::kLineComment:
        comment += c;
        code += ' ';
        code_strings += ' ';
        break;
      case Mode::kBlockComment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          mode = Mode::kCode;
          code += "  ";
          code_strings += "  ";
          ++i;
        } else {
          comment += c;
          code += ' ';
          code_strings += ' ';
        }
        break;
      case Mode::kString:
        code += ' ';
        if (c == '\\' && i + 1 < n && text[i + 1] != '\n') {
          code_strings += c;
          code_strings += text[i + 1];
          code += ' ';
          ++i;
        } else {
          code_strings += c;
          if (c == '"') mode = Mode::kCode;
        }
        break;
      case Mode::kChar:
        code += ' ';
        code_strings += ' ';
        if (c == '\\' && i + 1 < n && text[i + 1] != '\n') {
          code += ' ';
          code_strings += ' ';
          ++i;
        } else if (c == '\'') {
          mode = Mode::kCode;
        }
        break;
      case Mode::kRaw:
        if (text.compare(i, raw_end.size(), raw_end) == 0) {
          code += std::string(raw_end.size(), ' ');
          code_strings += raw_end;
          i += raw_end.size() - 1;
          mode = Mode::kCode;
        } else {
          code += ' ';
          code_strings += c;
        }
        break;
    }
  }
  flush_line();  // final (possibly unterminated) line
  return out;
}

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

struct TokenRule {
  const char* id;
  const char* pattern;  // ECMAScript; first match is quoted in the message
  const char* why;
};

// Determinism rules, applied to masked code everywhere under the scan roots.
const TokenRule kLibcRand = {
    "determinism.libc_rand",
    R"(\b(?:std\s*::\s*)?s?rand\s*\(|\brandom_shuffle\b)",
    "libc PRNG breaks seed-stable runs; draw from util/rng.hpp streams"};
const TokenRule kRandomDevice = {
    "determinism.random_device", R"(\brandom_device\b)",
    "hardware entropy is nondeterministic; derive seeds from the run seed"};
const TokenRule kWallClock = {
    "determinism.wall_clock",
    R"(\bsystem_clock\b|\bstd\s*::\s*time\s*\(|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)|\bgettimeofday\b|\bclock_gettime\b|\blocaltime\b|\bgmtime\b|\bmktime\b)",
    "wall-clock reads make runs irreproducible"};
const TokenRule kSteadyClock = {
    "determinism.steady_clock",
    R"(\bsteady_clock\b|\bhigh_resolution_clock\b)",
    "monotonic clocks are confined to src/obs (timing is observability)"};

// Hot-region rules, applied only between the hot markers.
const TokenRule kHotAlloc = {
    "hot_path.alloc",
    R"(\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|\bpush_back\s*\(|\bemplace_back\s*\(|\bresize\s*\(|\breserve\s*\()",
    "hot regions are allocation-free (see docs/performance.md)"};
const TokenRule kHotString = {
    "hot_path.string",
    R"(\bstd\s*::\s*(?:string|to_string|stringstream|ostringstream)\b)",
    "std::string construction allocates in hot regions"};
const TokenRule kHotThrow = {
    "hot_path.throw", R"(\bthrow\b)",
    "hot regions must not throw (unwinding is not allocation-free)"};

const TokenRule kUsingNamespace = {
    "header.using_namespace", R"(\busing\s+namespace\b)",
    "headers must not inject namespaces into every includer"};

const char* kRuleList[] = {
    "determinism.libc_rand",     "determinism.random_device",
    "determinism.wall_clock",    "determinism.steady_clock",
    "determinism.unordered_iteration",
    "hot_path.alloc",            "hot_path.string",
    "hot_path.throw",            "hot_path.region",
    "header.pragma_once",        "header.using_namespace",
    "header.include_resolves",   "obs.metric_name",
    "lint.bad_annotation",
};

bool known_rule(const std::string& id) {
  for (const char* r : kRuleList) {
    if (id == r) return true;
  }
  return false;
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool blank(const std::string& s) {
  return s.find_first_not_of(" \t") == std::string::npos;
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

// ---------------------------------------------------------------------------
// Per-file lint pass
// ---------------------------------------------------------------------------

struct AllowEntry {
  std::map<std::string, std::string> rules;  // rule id -> justification
};

class FileLinter {
 public:
  FileLinter(const std::string& rel_path, const std::string& text,
             const std::string& repo_root, std::vector<Finding>& out)
      : rel_(rel_path),
        repo_root_(repo_root),
        out_(out),
        sc_(scan(text)),
        lines_(sc_.code.size()) {}

  void run() {
    classify();
    collect_allows();
    collect_unordered_ids();

    bool hot = false;
    std::size_t hot_begin_line = 0;
    bool saw_pragma_once = false;

    for (std::size_t i = 0; i < lines_; ++i) {
      const std::size_t ln = i + 1;
      const std::string& comment = sc_.comment[i];
      const std::string& code = sc_.code[i];
      const std::string& cs = sc_.code_strings[i];

      if (comment.find(kHotEnd) != std::string::npos) {
        if (!hot) {
          report("hot_path.region", ln, "hot-end marker without a begin");
        }
        hot = false;
      }

      if (!blank(code)) {
        if (is_header_ &&
            std::regex_search(code, re(R"(^\s*#\s*pragma\s+once\b)"))) {
          saw_pragma_once = true;
        }
        check_token(kLibcRand, code, ln);
        check_token(kRandomDevice, code, ln);
        check_token(kWallClock, code, ln);
        if (!starts_with(rel_, "src/obs/")) {
          check_token(kSteadyClock, code, ln);
        }
        if (unordered_scope_) check_unordered_iteration(code, ln);
        if (hot) {
          check_token(kHotAlloc, code, ln);
          check_token(kHotString, code, ln);
          check_token(kHotThrow, code, ln);
        }
        if (is_header_) check_token(kUsingNamespace, code, ln);
        check_include(cs, ln);
      }
      check_obs_names(i, ln);

      if (comment.find(kHotBegin) != std::string::npos) {
        if (hot) {
          report("hot_path.region", ln, "nested hot-begin marker");
        } else {
          hot = true;
          hot_begin_line = ln;
        }
      }
    }

    if (hot) {
      report("hot_path.region", hot_begin_line,
             "hot region is never closed (missing end marker)");
    }
    if (is_header_ && !saw_pragma_once) {
      report("header.pragma_once", 1, "header lacks #pragma once");
    }
  }

 private:
  static const std::regex& re(const char* pattern) {
    // The rule set is a fixed table, so the cache never grows unbounded.
    static std::map<const char*, std::regex> cache;
    auto it = cache.find(pattern);
    if (it == cache.end()) {
      it = cache.emplace(pattern, std::regex(pattern)).first;
    }
    return it->second;
  }

  void classify() {
    const auto dot = rel_.find_last_of('.');
    const std::string ext = dot == std::string::npos ? "" : rel_.substr(dot);
    is_header_ = ext == ".hpp" || ext == ".h" || ext == ".ipp";
    unordered_scope_ = starts_with(rel_, "src/sim/") ||
                       starts_with(rel_, "src/overlay/") ||
                       starts_with(rel_, "src/node/");
  }

  /// Parses allow annotations out of comment text. An annotation on a line
  /// with code applies to that line; a standalone comment annotation applies
  /// to its own line (for file- and region-level findings reported there)
  /// and to the next line that has code. Unknown rule ids are reported only
  /// after every annotation is registered, so an allow for
  /// lint.bad_annotation itself works no matter where it sits on the line.
  void collect_allows() {
    std::vector<std::pair<std::size_t, std::string>> unknown;
    for (std::size_t i = 0; i < lines_; ++i) {
      const std::string& comment = sc_.comment[i];
      std::size_t pos = 0;
      while ((pos = comment.find(kAllowMarker, pos)) != std::string::npos) {
        const std::size_t open = pos + std::string(kAllowMarker).size();
        const std::size_t close = comment.find(')', open);
        if (close == std::string::npos) break;
        const std::string rule_csv = comment.substr(open, close - open);
        std::string justification;
        std::size_t after = close + 1;
        if (after < comment.size() && comment[after] == ':') {
          justification = trim(comment.substr(after + 1));
        }
        std::vector<std::size_t> targets = {i + 1};  // 1-based own line
        if (blank(sc_.code[i])) {
          std::size_t j = i + 1;
          while (j < lines_ && blank(sc_.code[j])) ++j;
          if (j < lines_) targets.push_back(j + 1);
        }
        std::stringstream ss(rule_csv);
        std::string rule;
        while (std::getline(ss, rule, ',')) {
          rule = trim(rule);
          if (rule.empty()) continue;
          if (!known_rule(rule)) {
            unknown.emplace_back(i + 1, rule);
            continue;
          }
          for (const std::size_t t : targets) {
            allows_[t].rules[rule] = justification;
          }
        }
        pos = close;
      }
    }
    for (const auto& [line, rule] : unknown) {
      report("lint.bad_annotation", line,
             "allow names unknown rule '" + rule + "'");
    }
  }

  /// Best-effort collection of identifiers declared with an unordered
  /// container type anywhere in the file (members, locals, parameters).
  void collect_unordered_ids() {
    if (!unordered_scope_) return;
    std::string joined;
    for (const auto& l : sc_.code) {
      joined += l;
      joined += '\n';
    }
    std::size_t pos = 0;
    while ((pos = joined.find("unordered_", pos)) != std::string::npos) {
      std::size_t p = pos + 10;
      std::string kind;
      while (p < joined.size() && is_ident_char(joined[p])) kind += joined[p++];
      ++pos;
      if (kind != "map" && kind != "set" && kind != "multimap" &&
          kind != "multiset") {
        continue;
      }
      while (p < joined.size() && std::isspace(static_cast<unsigned char>(joined[p]))) ++p;
      if (p >= joined.size() || joined[p] != '<') continue;
      int depth = 1;
      ++p;
      while (p < joined.size() && depth > 0) {
        if (joined[p] == '<') ++depth;
        if (joined[p] == '>') --depth;
        ++p;
      }
      while (p < joined.size() &&
             (std::isspace(static_cast<unsigned char>(joined[p])) ||
              joined[p] == '&' || joined[p] == '*')) {
        ++p;
      }
      std::string ident;
      while (p < joined.size() && is_ident_char(joined[p])) ident += joined[p++];
      while (p < joined.size() && std::isspace(static_cast<unsigned char>(joined[p]))) ++p;
      if (ident.empty() || p >= joined.size()) continue;
      // Only a terminator that ends a declarator counts — this skips return
      // types (followed by '(') and nested-name uses (followed by ':').
      const char t = joined[p];
      if (t == ';' || t == '=' || t == ',' || t == ')' || t == '{') {
        unordered_ids_.insert(ident);
      }
    }
  }

  void check_token(const TokenRule& rule, const std::string& code,
                   std::size_t ln) {
    std::smatch m;
    if (std::regex_search(code, m, re(rule.pattern))) {
      report(rule.id, ln,
             "'" + trim(m.str(0)) + "': " + std::string(rule.why));
    }
  }

  void check_unordered_iteration(const std::string& code, std::size_t ln) {
    static const char* kMsg =
        "iteration order of an unordered container can leak into the RNG "
        "draw sequence";
    if (code.find("for") != std::string::npos &&
        std::regex_search(code, re(R"(\bfor\s*\(.*:.*unordered_)"))) {
      report("determinism.unordered_iteration", ln, kMsg);
      return;
    }
    for (const std::string& id : unordered_ids_) {
      if (code.find(id) == std::string::npos) continue;
      const std::string range_for = R"(\bfor\s*\(.*:.*\b)" + id + R"(\b)";
      // .begin() exposes the first element in hash order; a bare .end() is
      // the idiomatic find()-lookup sentinel and stays quiet.
      const std::string begin_call =
          R"(\b)" + id + R"(\s*\.\s*c?r?begin\s*\()";
      if (std::regex_search(code, std::regex(range_for)) ||
          std::regex_search(code, std::regex(begin_call))) {
        report("determinism.unordered_iteration", ln,
               "'" + id + "': " + kMsg);
        return;
      }
    }
  }

  void check_include(const std::string& cs, std::size_t ln) {
    if (repo_root_.empty()) return;
    std::smatch m;
    if (!std::regex_search(cs, m, re(R"rx(^\s*#\s*include\s*"([^"]+)")rx"))) {
      return;
    }
    const std::string inc = m.str(1);
    const fs::path root(repo_root_);
    const fs::path self_dir = (root / rel_).parent_path();
    for (const fs::path& base :
         {self_dir, root / "src", root, root / "bench", root / "tools"}) {
      std::error_code ec;
      if (fs::exists(base / inc, ec)) return;
    }
    report("header.include_resolves", ln,
           "\"" + inc + "\" does not resolve against the project include "
           "roots (self dir, src/, repo root, bench/, tools/)");
  }

  /// Metric-name hygiene: registry lookups must pass a dotted snake_case
  /// string literal. Handles a call whose literal wraps to the next line.
  void check_obs_names(std::size_t i, std::size_t ln) {
    static const std::regex call(
        R"(\bmetrics\s*\(\s*\)\s*\.\s*(?:counter|gauge|histogram)\s*\()");
    static const std::regex name_ok(
        R"(^[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)+$)");
    const std::string& cur = sc_.code_strings[i];
    if (cur.find("metrics") == std::string::npos) return;
    std::string joined = cur;
    joined += '\n';
    if (i + 1 < lines_) joined += sc_.code_strings[i + 1];
    for (auto it = std::sregex_iterator(joined.begin(), joined.end(), call);
         it != std::sregex_iterator(); ++it) {
      if (static_cast<std::size_t>(it->position()) >= cur.size()) continue;
      std::size_t p = static_cast<std::size_t>(it->position() + it->length());
      while (p < joined.size() &&
             std::isspace(static_cast<unsigned char>(joined[p]))) {
        ++p;
      }
      if (p >= joined.size() || joined[p] != '"') {
        report("obs.metric_name", ln,
               "metric name is not a string literal (dynamic names defeat "
               "grep and the naming convention)");
        continue;
      }
      const std::size_t close = joined.find('"', p + 1);
      if (close == std::string::npos) continue;
      const std::string name = joined.substr(p + 1, close - p - 1);
      if (!std::regex_match(name, name_ok)) {
        report("obs.metric_name", ln,
               "'" + name + "' is not dotted snake_case "
               "(subsystem.metric_name)");
      }
    }
  }

  void report(const std::string& rule, std::size_t ln, std::string message) {
    Finding f;
    f.rule = rule;
    f.file = rel_;
    f.line = ln;
    f.message = std::move(message);
    const auto it = allows_.find(ln);
    if (it != allows_.end()) {
      const auto jt = it->second.rules.find(rule);
      if (jt != it->second.rules.end()) {
        f.suppressed = true;
        f.justification = jt->second;
      }
    }
    out_.push_back(std::move(f));
  }

  const std::string rel_;
  const std::string repo_root_;
  std::vector<Finding>& out_;
  const Scanned sc_;
  const std::size_t lines_;
  bool is_header_ = false;
  bool unordered_scope_ = false;
  std::map<std::size_t, AllowEntry> allows_;
  std::set<std::string> unordered_ids_;
};

// ---------------------------------------------------------------------------
// Tree walk + JSON serialization
// ---------------------------------------------------------------------------

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".ipp" || ext == ".cpp" ||
         ext == ".cc" || ext == ".cxx";
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  json_escape_into(out, s);
  out += '"';
  return out;
}

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids(std::begin(kRuleList),
                                            std::end(kRuleList));
  return ids;
}

void lint_source(const std::string& rel_path, const std::string& text,
                 const std::string& repo_root, std::vector<Finding>& out) {
  FileLinter(rel_path, text, repo_root, out).run();
}

Report lint_tree(const Options& opts) {
  Report report;
  report.roots = opts.roots;
  const fs::path root(opts.repo_root.empty() ? "." : opts.repo_root);

  std::vector<std::string> files;
  for (const std::string& r : opts.roots) {
    const fs::path p = root / r;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (it->is_regular_file(ec) && lintable(it->path())) {
          files.push_back(fs::relative(it->path(), root, ec).generic_string());
        }
      }
    } else if (fs::is_regular_file(p, ec) && lintable(p)) {
      files.push_back(fs::relative(p, root, ec).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  for (const std::string& rel : files) {
    std::ifstream in(root / rel, std::ios::binary);
    if (!in) continue;
    std::stringstream buf;
    buf << in.rdbuf();
    lint_source(rel, buf.str(), root.string(), report.findings);
    ++report.files_scanned;
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return report;
}

std::size_t violation_count(const Report& report) {
  std::size_t n = 0;
  for (const auto& f : report.findings) n += f.suppressed ? 0 : 1;
  return n;
}

std::size_t suppressed_count(const Report& report) {
  return report.findings.size() - violation_count(report);
}

std::string report_json(const Report& report) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"ncast.lint.v1\",\n";
  out += "  \"tool\": \"ncast_lint\",\n";
  out += "  \"roots\": [";
  for (std::size_t i = 0; i < report.roots.size(); ++i) {
    out += (i ? ", " : "") + quoted(report.roots[i]);
  }
  out += "],\n";
  out += "  \"counts\": {\"files\": " + std::to_string(report.files_scanned) +
         ", \"violations\": " + std::to_string(violation_count(report)) +
         ", \"suppressed\": " + std::to_string(suppressed_count(report)) +
         "},\n";
  out += "  \"rules\": [";
  const auto& ids = rule_ids();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    out += (i ? ", " : "") + quoted(ids[i]);
  }
  out += "],\n";

  const auto emit = [&out](const Finding& f, bool last, bool suppressed) {
    out += "    {\"rule\": " + quoted(f.rule) + ", \"file\": " +
           quoted(f.file) + ", \"line\": " + std::to_string(f.line);
    if (suppressed) {
      out += ", \"justification\": " + quoted(f.justification);
    } else {
      out += ", \"message\": " + quoted(f.message);
    }
    out += last ? "}\n" : "},\n";
  };

  for (const bool suppressed : {false, true}) {
    std::vector<const Finding*> sel;
    for (const auto& f : report.findings) {
      if (f.suppressed == suppressed) sel.push_back(&f);
    }
    out += suppressed ? "  \"suppressed\": [" : "  \"violations\": [";
    if (sel.empty()) {
      out += suppressed ? "]\n" : "],\n";
      continue;
    }
    out += '\n';
    for (std::size_t i = 0; i < sel.size(); ++i) {
      emit(*sel[i], i + 1 == sel.size(), suppressed);
    }
    out += suppressed ? "  ]\n" : "  ],\n";
  }
  out += "}\n";
  return out;
}

}  // namespace ncast::lint
