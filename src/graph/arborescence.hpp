#pragma once
// Edge-disjoint spanning arborescence packing — Edmonds' theorem [8] made
// executable via Lovász's constructive proof. This is the paper's theoretical
// comparator: "optimal multicast using multiple multicast trees", which
// matches network-coding throughput on a static graph but must be recomputed
// globally whenever a node fails.

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace ncast::graph {

/// One spanning arborescence, as the edge id of each non-root vertex's
/// parent edge (root entry unused).
struct Arborescence {
  std::vector<EdgeId> parent_edge;  // indexed by vertex; root slot = kNoEdge
  static constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);
};

/// Packs `count` edge-disjoint spanning arborescences rooted at `root` into
/// the alive-edge subgraph of `g`. Returns nullopt if the connectivity from
/// the root is below `count` (Edmonds' condition fails).
///
/// Complexity is polynomial but heavy (each greedy edge choice is guarded by
/// max-flow feasibility checks); intended for the baseline bench at
/// simulation scale, exactly mirroring the paper's point that this approach
/// is impractical for large dynamic networks.
std::optional<std::vector<Arborescence>> pack_arborescences(const Digraph& g,
                                                            Vertex root,
                                                            std::size_t count);

/// Verifies a packing: arborescences are edge-disjoint, each spans all
/// vertices, each is a tree rooted at `root` with edges oriented away.
bool validate_packing(const Digraph& g, Vertex root,
                      const std::vector<Arborescence>& packing);

}  // namespace ncast::graph
