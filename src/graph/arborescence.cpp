#include "graph/arborescence.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "graph/maxflow.hpp"

namespace ncast::graph {
namespace {

/// Max-flow from root to target over the edges not marked removed.
std::int64_t residual_flow(const Digraph& g, const std::vector<bool>& removed,
                           Vertex root, Vertex target) {
  MaxFlow mf(g.vertex_count());
  for (EdgeId id = 0; id < g.edge_count(); ++id) {
    const Edge& e = g.edge(id);
    if (e.alive && !removed[id]) mf.add_edge(e.from, e.to, 1);
  }
  return mf.compute(root, target);
}

/// Lazily maintained lower bounds on λ(root, w) in the shrinking residual
/// graph. Removing one edge lowers any connectivity by at most one, so a
/// cached exact value minus the number of removals since it was computed is
/// a valid lower bound; max-flow is recomputed only when that bound dips
/// below the requirement.
class ConnectivityCache {
 public:
  ConnectivityCache(const Digraph& g, const std::vector<bool>& removed, Vertex root)
      : g_(g), removed_(removed), root_(root),
        value_(g.vertex_count(), -1), epoch_(g.vertex_count(), 0) {}

  void note_removal() { ++removals_; }
  void note_unremoval() {
    // A tentative removal was rolled back; cached bounds only got more
    // conservative in the meantime, so staying put is sound.
  }

  /// True if λ(root, w) >= need in the current residual graph.
  bool at_least(Vertex w, std::int64_t need) {
    if (need <= 0) return true;
    if (value_[w] >= 0 &&
        value_[w] - static_cast<std::int64_t>(removals_ - epoch_[w]) >= need) {
      return true;
    }
    value_[w] = residual_flow(g_, removed_, root_, w);
    epoch_[w] = removals_;
    return value_[w] >= need;
  }

 private:
  const Digraph& g_;
  const std::vector<bool>& removed_;
  Vertex root_;
  std::vector<std::int64_t> value_;
  std::vector<std::uint64_t> epoch_;
  std::uint64_t removals_ = 0;
};

}  // namespace

std::optional<std::vector<Arborescence>> pack_arborescences(const Digraph& g,
                                                            Vertex root,
                                                            std::size_t count) {
  if (root >= g.vertex_count()) throw std::out_of_range("pack_arborescences: root");
  const std::size_t n = g.vertex_count();
  std::vector<bool> removed(g.edge_count(), false);

  // Edmonds' condition: every vertex needs connectivity >= count.
  for (Vertex v = 0; v < n; ++v) {
    if (v == root) continue;
    if (residual_flow(g, removed, root, v) < static_cast<std::int64_t>(count)) {
      return std::nullopt;
    }
  }

  std::vector<Arborescence> packing;
  packing.reserve(count);

  for (std::size_t i = 0; i < count; ++i) {
    // After extracting arborescence i, every vertex must retain connectivity
    // `need` for the arborescences still to come (Lovász's invariant).
    const auto need = static_cast<std::int64_t>(count - i - 1);
    Arborescence arb;
    arb.parent_edge.assign(n, Arborescence::kNoEdge);
    std::vector<bool> in_tree(n, false);
    in_tree[root] = true;
    std::size_t tree_size = 1;
    ConnectivityCache cache(g, removed, root);

    while (tree_size < n) {
      bool extended = false;
      // Scan frontier edges; accept the first whose removal keeps every
      // vertex's residual connectivity at `need`.
      for (Vertex u = 0; u < n && !extended; ++u) {
        if (!in_tree[u]) continue;
        for (EdgeId id : g.out_edges(u)) {
          const Edge& e = g.edge(id);
          if (!e.alive || removed[id] || in_tree[e.to]) continue;

          removed[id] = true;
          cache.note_removal();
          bool feasible = true;
          if (need > 0) {
            // Check the entering vertex first (most likely to be tight),
            // then everything else.
            if (!cache.at_least(e.to, need)) feasible = false;
            for (Vertex w = 0; feasible && w < n; ++w) {
              if (w == root || w == e.to) continue;
              if (!cache.at_least(w, need)) feasible = false;
            }
          }
          if (!feasible) {
            removed[id] = false;
            cache.note_unremoval();
            continue;
          }
          arb.parent_edge[e.to] = id;
          in_tree[e.to] = true;
          ++tree_size;
          extended = true;
          break;
        }
      }
      if (!extended) {
        // Cannot happen if Edmonds' condition held (theorem guarantee); kept
        // as defensive failure for corrupted inputs.
        return std::nullopt;
      }
    }
    packing.push_back(std::move(arb));
  }
  return packing;
}

bool validate_packing(const Digraph& g, Vertex root,
                      const std::vector<Arborescence>& packing) {
  const std::size_t n = g.vertex_count();
  std::vector<int> uses(g.edge_count(), 0);
  for (const Arborescence& arb : packing) {
    if (arb.parent_edge.size() != n) return false;
    if (arb.parent_edge[root] != Arborescence::kNoEdge) return false;
    for (Vertex v = 0; v < n; ++v) {
      if (v == root) continue;
      const EdgeId id = arb.parent_edge[v];
      if (id == Arborescence::kNoEdge || id >= g.edge_count()) return false;
      const Edge& e = g.edge(id);
      if (!e.alive || e.to != v) return false;
      if (++uses[id] > 1) return false;  // edge-disjointness
    }
    // Root-connectivity of every vertex within the arborescence.
    for (Vertex v = 0; v < n; ++v) {
      if (v == root) continue;
      Vertex cur = v;
      std::size_t hops = 0;
      while (cur != root) {
        const EdgeId id = arb.parent_edge[cur];
        if (id == Arborescence::kNoEdge) return false;
        cur = g.edge(id).from;
        if (++hops > n) return false;  // cycle guard
      }
    }
  }
  return true;
}

}  // namespace ncast::graph
