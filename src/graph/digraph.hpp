#pragma once
// Directed multigraph with stable edge ids. The overlay layer extracts its
// "thread segment" flow graphs into this representation; max-flow,
// reachability, and arborescence packing all operate on it.

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace ncast::graph {

using Vertex = std::uint32_t;
using EdgeId = std::uint32_t;

/// An edge of the multigraph. Edges are never removed; deletion is modeled by
/// the `alive` flag so edge ids stay stable across mutations.
struct Edge {
  Vertex from = 0;
  Vertex to = 0;
  bool alive = true;
};

/// Directed multigraph (parallel edges allowed, as thread segments between
/// the same pair of nodes genuinely are parallel unit-capacity links).
class Digraph {
 public:
  explicit Digraph(std::size_t vertices = 0) : out_(vertices), in_(vertices) {}

  Vertex add_vertex() {
    out_.emplace_back();
    in_.emplace_back();
    return static_cast<Vertex>(out_.size() - 1);
  }

  EdgeId add_edge(Vertex from, Vertex to) {
    if (from >= vertex_count() || to >= vertex_count()) {
      throw std::out_of_range("Digraph::add_edge: vertex out of range");
    }
    const auto id = static_cast<EdgeId>(edges_.size());
    edges_.push_back(Edge{from, to, true});
    out_[from].push_back(id);
    in_[to].push_back(id);
    return id;
  }

  /// Marks an edge dead; dead edges are skipped by all algorithms here.
  void remove_edge(EdgeId id) { edges_.at(id).alive = false; }

  std::size_t vertex_count() const { return out_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  const Edge& edge(EdgeId id) const { return edges_.at(id); }
  const std::vector<EdgeId>& out_edges(Vertex v) const { return out_.at(v); }
  const std::vector<EdgeId>& in_edges(Vertex v) const { return in_.at(v); }

  std::size_t out_degree(Vertex v) const {
    std::size_t d = 0;
    for (EdgeId e : out_.at(v)) {
      if (edges_[e].alive) ++d;
    }
    return d;
  }
  std::size_t in_degree(Vertex v) const {
    std::size_t d = 0;
    for (EdgeId e : in_.at(v)) {
      if (edges_[e].alive) ++d;
    }
    return d;
  }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

/// Hop distance (BFS over alive edges) from `source` to every vertex;
/// unreachable vertices get -1.
std::vector<std::int64_t> bfs_depths(const Digraph& g, Vertex source);

/// True iff the alive-edge subgraph is acyclic.
bool is_acyclic(const Digraph& g);

/// Topological order of the alive-edge subgraph; throws std::logic_error if
/// the graph has a cycle.
std::vector<Vertex> topological_order(const Digraph& g);

}  // namespace ncast::graph
