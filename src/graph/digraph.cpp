#include "graph/digraph.hpp"

#include <deque>

namespace ncast::graph {

std::vector<std::int64_t> bfs_depths(const Digraph& g, Vertex source) {
  std::vector<std::int64_t> depth(g.vertex_count(), -1);
  if (source >= g.vertex_count()) throw std::out_of_range("bfs_depths: source");
  std::deque<Vertex> queue{source};
  depth[source] = 0;
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop_front();
    for (EdgeId id : g.out_edges(u)) {
      const Edge& e = g.edge(id);
      if (!e.alive) continue;
      if (depth[e.to] == -1) {
        depth[e.to] = depth[u] + 1;
        queue.push_back(e.to);
      }
    }
  }
  return depth;
}

bool is_acyclic(const Digraph& g) {
  try {
    (void)topological_order(g);
    return true;
  } catch (const std::logic_error&) {
    return false;
  }
}

std::vector<Vertex> topological_order(const Digraph& g) {
  std::vector<std::size_t> indeg(g.vertex_count(), 0);
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    indeg[v] = g.in_degree(v);
  }
  std::deque<Vertex> ready;
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    if (indeg[v] == 0) ready.push_back(v);
  }
  std::vector<Vertex> order;
  order.reserve(g.vertex_count());
  while (!ready.empty()) {
    const Vertex u = ready.front();
    ready.pop_front();
    order.push_back(u);
    for (EdgeId id : g.out_edges(u)) {
      const Edge& e = g.edge(id);
      if (!e.alive) continue;
      if (--indeg[e.to] == 0) ready.push_back(e.to);
    }
  }
  if (order.size() != g.vertex_count()) {
    throw std::logic_error("topological_order: graph has a cycle");
  }
  return order;
}

}  // namespace ncast::graph
