#pragma once
// Dinic max-flow. Unit-capacity thread-segment graphs are the dominant use,
// where Dinic runs in O(E * sqrt(E)); general integer capacities are also
// supported for the heterogeneous-bandwidth experiments.

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"

namespace ncast::graph {

/// Max-flow solver. Build once, then call `compute` (the instance is
/// consumed; build a fresh solver per query).
class MaxFlow {
 public:
  explicit MaxFlow(std::size_t vertices);

  /// Adds a directed edge with the given capacity; returns an id usable with
  /// `flow_on` after compute().
  std::size_t add_edge(Vertex from, Vertex to, std::int64_t capacity);

  /// Computes the max flow from s to t. Callable once per instance.
  std::int64_t compute(Vertex s, Vertex t);

  /// Flow routed on the edge returned by `add_edge`.
  std::int64_t flow_on(std::size_t edge_handle) const;

  /// Vertices on the source side of a minimum cut (valid after compute()).
  std::vector<bool> min_cut_source_side() const;

 private:
  struct InternalEdge {
    Vertex to;
    std::int64_t cap;
    std::size_t rev;  // index of the reverse edge in adj_[to]
  };

  bool bfs(Vertex s, Vertex t);
  std::int64_t dfs(Vertex u, Vertex t, std::int64_t pushed);

  std::vector<std::vector<InternalEdge>> adj_;
  std::vector<std::int64_t> level_;
  std::vector<std::size_t> iter_;
  std::vector<std::pair<Vertex, std::size_t>> handles_;  // (from, index in adj_[from])
  std::vector<std::int64_t> original_cap_;
  Vertex last_source_ = 0;
  bool computed_ = false;
};

/// Max-flow from `source` to `target` over the alive edges of `g`, all edges
/// having unit capacity.
std::int64_t unit_max_flow(const Digraph& g, Vertex source, Vertex target);

/// Max-flow from `source` to a virtual sink fed by unit-capacity edges from
/// each vertex in `taps` (duplicates allowed: each occurrence contributes one
/// unit of sink capacity). This evaluates the connectivity of a d-tuple of
/// hanging threads.
std::int64_t unit_max_flow_to_set(const Digraph& g, Vertex source,
                                  const std::vector<Vertex>& taps);

/// min over all vertices v (reachable or not, excluding the source) of
/// maxflow(source, v). Vertices with no alive in-edges count as 0.
std::int64_t min_connectivity(const Digraph& g, Vertex source);

}  // namespace ncast::graph
