#include "graph/maxflow.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace ncast::graph {

MaxFlow::MaxFlow(std::size_t vertices)
    : adj_(vertices), level_(vertices), iter_(vertices) {}

std::size_t MaxFlow::add_edge(Vertex from, Vertex to, std::int64_t capacity) {
  if (from >= adj_.size() || to >= adj_.size()) {
    throw std::out_of_range("MaxFlow::add_edge: vertex out of range");
  }
  if (capacity < 0) throw std::invalid_argument("MaxFlow::add_edge: negative capacity");
  if (computed_) throw std::logic_error("MaxFlow::add_edge: already computed");
  adj_[from].push_back(InternalEdge{to, capacity, adj_[to].size()});
  adj_[to].push_back(InternalEdge{from, 0, adj_[from].size() - 1});
  handles_.emplace_back(from, adj_[from].size() - 1);
  original_cap_.push_back(capacity);
  return handles_.size() - 1;
}

bool MaxFlow::bfs(Vertex s, Vertex t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::deque<Vertex> queue{s};
  level_[s] = 0;
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop_front();
    for (const InternalEdge& e : adj_[u]) {
      if (e.cap > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[u] + 1;
        queue.push_back(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

std::int64_t MaxFlow::dfs(Vertex u, Vertex t, std::int64_t pushed) {
  if (u == t) return pushed;
  for (std::size_t& i = iter_[u]; i < adj_[u].size(); ++i) {
    InternalEdge& e = adj_[u][i];
    if (e.cap <= 0 || level_[e.to] != level_[u] + 1) continue;
    const std::int64_t got = dfs(e.to, t, std::min(pushed, e.cap));
    if (got > 0) {
      e.cap -= got;
      adj_[e.to][e.rev].cap += got;
      return got;
    }
  }
  return 0;
}

std::int64_t MaxFlow::compute(Vertex s, Vertex t) {
  if (s >= adj_.size() || t >= adj_.size()) {
    throw std::out_of_range("MaxFlow::compute: vertex out of range");
  }
  if (s == t) throw std::invalid_argument("MaxFlow::compute: s == t");
  if (computed_) throw std::logic_error("MaxFlow::compute: already computed");
  computed_ = true;
  last_source_ = s;
  std::int64_t flow = 0;
  while (bfs(s, t)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    while (true) {
      const std::int64_t got = dfs(s, t, std::numeric_limits<std::int64_t>::max());
      if (got == 0) break;
      flow += got;
    }
  }
  return flow;
}

std::int64_t MaxFlow::flow_on(std::size_t edge_handle) const {
  if (!computed_) throw std::logic_error("MaxFlow::flow_on: compute() first");
  const auto [from, idx] = handles_.at(edge_handle);
  return original_cap_.at(edge_handle) - adj_[from][idx].cap;
}

std::vector<bool> MaxFlow::min_cut_source_side() const {
  if (!computed_) throw std::logic_error("MaxFlow::min_cut_source_side: compute() first");
  std::vector<bool> side(adj_.size(), false);
  std::deque<Vertex> queue{last_source_};
  side[last_source_] = true;
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop_front();
    for (const InternalEdge& e : adj_[u]) {
      if (e.cap > 0 && !side[e.to]) {
        side[e.to] = true;
        queue.push_back(e.to);
      }
    }
  }
  return side;
}

namespace {

MaxFlow build_unit_solver(const Digraph& g, std::size_t extra_vertices = 0) {
  MaxFlow mf(g.vertex_count() + extra_vertices);
  for (EdgeId id = 0; id < g.edge_count(); ++id) {
    const Edge& e = g.edge(id);
    if (e.alive) mf.add_edge(e.from, e.to, 1);
  }
  return mf;
}

}  // namespace

std::int64_t unit_max_flow(const Digraph& g, Vertex source, Vertex target) {
  MaxFlow mf = build_unit_solver(g);
  return mf.compute(source, target);
}

std::int64_t unit_max_flow_to_set(const Digraph& g, Vertex source,
                                  const std::vector<Vertex>& taps) {
  MaxFlow mf = build_unit_solver(g, 1);
  const auto sink = static_cast<Vertex>(g.vertex_count());
  for (Vertex t : taps) mf.add_edge(t, sink, 1);
  return mf.compute(source, sink);
}

std::int64_t min_connectivity(const Digraph& g, Vertex source) {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    if (v == source) continue;
    best = std::min(best, unit_max_flow(g, source, v));
    if (best == 0) break;
  }
  return best == std::numeric_limits<std::int64_t>::max() ? 0 : best;
}

}  // namespace ncast::graph
