#include "coding/wire.hpp"

#include <cstring>

namespace ncast::coding {
namespace {

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint16_t get16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

template <typename V>
void put_symbols(std::vector<std::uint8_t>& out, const std::vector<V>& symbols) {
  for (V v : symbols) {
    for (std::size_t i = 0; i < sizeof(V); ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
}

template <typename V>
std::vector<V> get_symbols(const std::uint8_t* p, std::size_t count) {
  std::vector<V> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    V v{0};
    for (std::size_t b = 0; b < sizeof(V); ++b) {
      v = static_cast<V>(v | (static_cast<V>(p[i * sizeof(V) + b]) << (8 * b)));
    }
    out[i] = v;
  }
  return out;
}

}  // namespace

template <typename Field>
std::vector<std::uint8_t> serialize(const CodedPacket<Field>& p) {
  std::vector<std::uint8_t> out;
  out.reserve(wire_size<Field>(p.coeffs.size(), p.payload.size()));
  put16(out, kWireMagic);
  out.push_back(kWireVersion);
  out.push_back(WireFieldId<Field>::value);
  put32(out, p.generation);
  put16(out, static_cast<std::uint16_t>(p.coeffs.size()));
  put16(out, static_cast<std::uint16_t>(p.payload.size()));
  put_symbols(out, p.coeffs);
  put_symbols(out, p.payload);
  return out;
}

template <typename Field>
std::vector<std::uint8_t> serialize_structured(
    const CodedPacket<Field>& p, const GenerationStructure& structure) {
  std::vector<std::uint8_t> out;
  out.reserve(wire_size_structured<Field>(p.coeffs.size(), p.payload.size()));
  put16(out, kWireMagic);
  out.push_back(kWireVersionStructured);
  out.push_back(WireFieldId<Field>::value);
  put32(out, p.generation);
  put16(out, static_cast<std::uint16_t>(structure.g));
  put16(out, static_cast<std::uint16_t>(p.payload.size()));
  out.push_back(static_cast<std::uint8_t>(structure.kind));
  const bool wraps = p.band_offset + p.coeffs.size() > structure.g;
  out.push_back(wraps ? kWireFlagWrap : std::uint8_t{0});
  put16(out, p.band_offset);
  put16(out, p.class_id);
  put16(out, static_cast<std::uint16_t>(p.coeffs.size()));
  put_symbols(out, p.coeffs);
  put_symbols(out, p.payload);
  return out;
}

namespace {

// Version-1 body: dense packet, coefficient count == g. `bytes` has already
// passed the magic/field-id checks.
template <typename Field>
std::optional<CodedPacket<Field>> deserialize_v1(
    const std::vector<std::uint8_t>& bytes) {
  const std::uint32_t generation = get32(bytes.data() + 4);
  const std::size_t g = get16(bytes.data() + 8);
  const std::size_t symbols = get16(bytes.data() + 10);
  if (g == 0 || symbols == 0) return std::nullopt;
  using V = typename Field::value_type;
  if (bytes.size() != 12 + (g + symbols) * sizeof(V)) return std::nullopt;

  CodedPacket<Field> p;
  p.generation = generation;
  p.coeffs = get_symbols<V>(bytes.data() + 12, g);
  p.payload = get_symbols<V>(bytes.data() + 12 + g * sizeof(V), symbols);
  return p;
}

// Version-2 body: structured packet with a compact coefficient strip.
// Enforces everything checkable without knowing the receiver's structure.
template <typename Field>
std::optional<CodedPacket<Field>> deserialize_v2(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 20) return std::nullopt;
  const std::uint32_t generation = get32(bytes.data() + 4);
  const std::size_t g = get16(bytes.data() + 8);
  const std::size_t symbols = get16(bytes.data() + 10);
  const std::uint8_t kind_byte = bytes[12];
  const std::uint8_t flags = bytes[13];
  const std::size_t offset = get16(bytes.data() + 14);
  const std::size_t class_id = get16(bytes.data() + 16);
  const std::size_t n = get16(bytes.data() + 18);
  if (g == 0 || symbols == 0 || n == 0) return std::nullopt;
  if (kind_byte > static_cast<std::uint8_t>(StructureKind::kOverlapped)) {
    return std::nullopt;
  }
  if ((flags & ~kWireFlagWrap) != 0) return std::nullopt;
  if (n > g || offset >= g) return std::nullopt;
  const bool wraps = offset + n > g;
  if (wraps != ((flags & kWireFlagWrap) != 0)) return std::nullopt;
  const auto kind = static_cast<StructureKind>(kind_byte);
  switch (kind) {
    case StructureKind::kDense:
      if (offset != 0 || n != g || class_id != 0) return std::nullopt;
      break;
    case StructureKind::kBanded:
      if (class_id != 0) return std::nullopt;
      break;
    case StructureKind::kOverlapped:
      if (wraps) return std::nullopt;  // classes never wrap
      break;
  }
  using V = typename Field::value_type;
  if (bytes.size() != 20 + (n + symbols) * sizeof(V)) return std::nullopt;

  CodedPacket<Field> p;
  p.generation = generation;
  p.band_offset = static_cast<std::uint16_t>(offset);
  p.class_id = static_cast<std::uint16_t>(class_id);
  p.coeffs = get_symbols<V>(bytes.data() + 20, n);
  p.payload = get_symbols<V>(bytes.data() + 20 + n * sizeof(V), symbols);
  return p;
}

}  // namespace

template <typename Field>
std::optional<CodedPacket<Field>> deserialize(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 12) return std::nullopt;
  if (get16(bytes.data()) != kWireMagic) return std::nullopt;
  if (bytes[3] != WireFieldId<Field>::value) return std::nullopt;
  switch (bytes[2]) {
    case kWireVersion:
      return deserialize_v1<Field>(bytes);
    case kWireVersionStructured:
      return deserialize_v2<Field>(bytes);
    default:
      return std::nullopt;
  }
}

template <typename Field>
std::optional<CodedPacket<Field>> deserialize(
    const std::vector<std::uint8_t>& bytes,
    const GenerationStructure& structure) {
  auto p = deserialize<Field>(bytes);
  if (!p) return std::nullopt;
  // The on-wire generation size and kind must agree with the receiver's
  // structure, and the placement must actually exist under it (this is where
  // out-of-range class ids and wrong band widths die).
  const std::size_t g = get16(bytes.data() + 8);
  if (g != structure.g) return std::nullopt;
  if (bytes[2] == kWireVersionStructured &&
      static_cast<StructureKind>(bytes[12]) != structure.kind) {
    return std::nullopt;
  }
  if (!structure.matches_packet(p->band_offset, p->coeffs.size(),
                                p->class_id)) {
    return std::nullopt;
  }
  return p;
}

template <typename Field>
std::vector<std::uint8_t> serialize_stream(
    const CodedPacket<Field>& p, const GenerationStructure& structure) {
  const bool dense_shaped = p.band_offset == 0 && p.class_id == 0 &&
                            p.coeffs.size() == structure.g;
  if (dense_shaped) return serialize(p);
  return serialize_structured(p, structure);
}

template <typename Field>
std::optional<CodedPacket<Field>> deserialize_stream(
    const std::vector<std::uint8_t>& bytes,
    const GenerationStructure& structure) {
  auto p = deserialize<Field>(bytes);
  if (!p) return std::nullopt;
  const std::size_t g = get16(bytes.data() + 8);
  if (g != structure.g) return std::nullopt;
  if (bytes[2] == kWireVersionStructured) {
    // Structured frames carry their kind; a strip claiming a different
    // structure than the stream's is a stray, even if the placement happens
    // to be geometrically admissible.
    if (static_cast<StructureKind>(bytes[12]) != structure.kind) {
      return std::nullopt;
    }
    if (!structure.matches_packet(p->band_offset, p->coeffs.size(),
                                  p->class_id)) {
      return std::nullopt;
    }
  } else if (!structure.admits_packet(p->band_offset, p->coeffs.size(),
                                      p->class_id)) {
    return std::nullopt;
  }
  return p;
}

// Explicit instantiations for the supported fields.
template std::vector<std::uint8_t> serialize<gf::Gf256>(
    const CodedPacket<gf::Gf256>&);
template std::vector<std::uint8_t> serialize<gf::Gf2_16>(
    const CodedPacket<gf::Gf2_16>&);
template std::vector<std::uint8_t> serialize_structured<gf::Gf256>(
    const CodedPacket<gf::Gf256>&, const GenerationStructure&);
template std::vector<std::uint8_t> serialize_structured<gf::Gf2_16>(
    const CodedPacket<gf::Gf2_16>&, const GenerationStructure&);
template std::optional<CodedPacket<gf::Gf256>> deserialize<gf::Gf256>(
    const std::vector<std::uint8_t>&);
template std::optional<CodedPacket<gf::Gf2_16>> deserialize<gf::Gf2_16>(
    const std::vector<std::uint8_t>&);
template std::optional<CodedPacket<gf::Gf256>> deserialize<gf::Gf256>(
    const std::vector<std::uint8_t>&, const GenerationStructure&);
template std::optional<CodedPacket<gf::Gf2_16>> deserialize<gf::Gf2_16>(
    const std::vector<std::uint8_t>&, const GenerationStructure&);
template std::vector<std::uint8_t> serialize_stream<gf::Gf256>(
    const CodedPacket<gf::Gf256>&, const GenerationStructure&);
template std::vector<std::uint8_t> serialize_stream<gf::Gf2_16>(
    const CodedPacket<gf::Gf2_16>&, const GenerationStructure&);
template std::optional<CodedPacket<gf::Gf256>> deserialize_stream<gf::Gf256>(
    const std::vector<std::uint8_t>&, const GenerationStructure&);
template std::optional<CodedPacket<gf::Gf2_16>> deserialize_stream<gf::Gf2_16>(
    const std::vector<std::uint8_t>&, const GenerationStructure&);

}  // namespace ncast::coding
