#pragma once
// Generation decoder: incremental Gaussian elimination over the augmented
// matrix [coefficients | payload]. Maintains the basis in reduced form so
// that (a) innovation of an incoming packet is detected in O(rank * width)
// and (b) once the rank reaches g the original packets are read off directly.
//
// Hot-path memory discipline: the basis rows live in one contiguous arena
// (allocated at construction, one row per possible pivot plus a scratch row)
// and absorb() builds the candidate directly in the arena's next free slot,
// so absorbing a packet performs zero heap allocations and zero row copies —
// see linalg/reduced_basis.hpp for the elimination core and
// tests/test_codec_alloc.cpp for the enforcement.

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "coding/packet.hpp"
#include "linalg/reduced_basis.hpp"
#include "obs/metrics.hpp"

namespace ncast::coding {

/// Decoder (and basis store) for one generation.
template <typename Field>
class Decoder {
 public:
  using value_type = typename Field::value_type;
  using Packet = CodedPacket<Field>;

  Decoder(std::uint32_t generation, std::size_t generation_size, std::size_t symbols)
      : generation_(generation),
        g_(generation_size),
        symbols_(symbols),
        basis_(generation_size + symbols, generation_size),
        probe_(generation_size) {
    if (g_ == 0 || symbols_ == 0) {
      throw std::invalid_argument("Decoder: zero generation size or symbols");
    }
  }

  std::uint32_t generation() const { return generation_; }
  std::size_t generation_size() const { return g_; }
  std::size_t symbols() const { return symbols_; }
  std::size_t rank() const { return basis_.rank(); }
  bool complete() const { return rank() == g_; }

  /// Packets ever offered to absorb() on this decoder instance.
  std::uint64_t packets_received() const { return received_; }
  /// Packets that increased the rank. Always innovative + redundant ==
  /// received; the redundant count includes malformed/stray rejects.
  std::uint64_t packets_innovative() const { return innovative_; }
  std::uint64_t packets_redundant() const { return received_ - innovative_; }

  // ncast:hot-begin — per-packet absorb/innovation probes: no allocation, no
  // throw (stray packets are data, not errors).

  /// Consumes a packet; returns true iff it was innovative.
  /// Packets from other generations or with wrong shape are rejected
  /// (returns false) rather than throwing, since in a network simulation
  /// stray packets are data, not programming errors.
  bool absorb(const Packet& p) {
    obs::ScopeTimer timer(reg().absorb_ns);
    ++received_;
    reg().received.inc();
    if (p.generation != generation_ || p.coeffs.size() != g_ ||
        p.payload.size() != symbols_) {
      reg().redundant.inc();
      return false;
    }
    // Working row: [coeffs | payload] concatenated into the basis's scratch
    // row — the arena slot the row will occupy if it proves innovative.
    value_type* r = basis_.scratch_row();
    std::copy(p.coeffs.begin(), p.coeffs.end(), r);
    std::copy(p.payload.begin(), p.payload.end(), r + g_);
    if (!basis_.absorb()) {
      reg().redundant.inc();
      return false;  // not innovative
    }
    ++innovative_;
    reg().innovative.inc();
    return true;
  }

  /// Absorbs a pre-validated raw row: `coeffs` (g entries) and `payload`
  /// (symbols entries) already laid out by the caller. Same counting and
  /// timing as absorb(); used by the structured decoders (band offset /
  /// class routing happens there, shape checks included).
  bool absorb_row(const value_type* coeffs, const value_type* payload) {
    obs::ScopeTimer timer(reg().absorb_ns);
    ++received_;
    reg().received.inc();
    value_type* r = basis_.scratch_row();
    std::copy(coeffs, coeffs + g_, r);
    std::copy(payload, payload + symbols_, r + g_);
    if (!basis_.absorb()) {
      reg().redundant.inc();
      return false;
    }
    ++innovative_;
    reg().innovative.inc();
    return true;
  }

  /// Absorbs the unit row e_col with the given payload — a decoded source
  /// packet injected as side information (the overlap decoder hands decoded
  /// boundary packets to neighboring classes this way). Not counted as a
  /// received packet: it is internal propagation, not network traffic.
  bool absorb_unit(std::size_t col, const value_type* payload) {
    value_type* r = basis_.scratch_row();
    std::fill(r, r + g_, value_type{0});
    r[col] = value_type{1};
    std::copy(payload, payload + symbols_, r + g_);
    return basis_.absorb();
  }

  /// Would this packet be innovative? (No state change.)
  bool is_innovative(const Packet& p) const {
    if (p.generation != generation_ || p.coeffs.size() != g_ ||
        p.payload.size() != symbols_) {
      return false;
    }
    // Only the coefficient part matters for innovation; reduce a g-wide probe.
    std::copy(p.coeffs.begin(), p.coeffs.end(), probe_.begin());
    for (std::size_t i = 0; i < basis_.rank(); ++i) {
      const std::size_t piv = basis_.pivot(i);
      const value_type f = probe_[piv];
      if (f != value_type{0}) {
        Field::region_madd(probe_.data() + piv, basis_.row(i) + piv, f,
                           g_ - piv);
      }
    }
    for (std::size_t j = 0; j < g_; ++j) {
      if (probe_[j] != value_type{0}) return true;
    }
    return false;
  }

  // ncast:hot-end

  /// True iff source packet `index` is already individually recoverable,
  /// i.e. the unit vector e_index lies in the received row space. Because
  /// the basis is kept fully reduced, that is the case exactly when the row
  /// pivoting on `index` has no other nonzero coefficient. This enables
  /// progressive delivery (e.g. starting playback) before full rank.
  bool recoverable(std::size_t index) const {
    if (index >= g_) throw std::out_of_range("Decoder::recoverable");
    const std::size_t i = basis_.row_of_pivot(index);
    return i != Basis::npos && row_is_unit(i);
  }

  /// Number of source packets already individually recoverable. One pass over
  /// the basis: a row contributes exactly when its coefficient part is a unit
  /// vector.
  std::size_t recoverable_count() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < basis_.rank(); ++i) n += row_is_unit(i) ? 1 : 0;
    return n;
  }

  /// Payload of the row pivoting on `index`, without copying; requires
  /// recoverable(index). The overlap decoder reads decoded boundary packets
  /// through this in its propagation loop (no per-symbol copies).
  const value_type* recovered_payload(std::size_t index) const {
    if (index >= g_) throw std::out_of_range("Decoder::recovered_payload");
    const std::size_t i = basis_.row_of_pivot(index);
    if (i == Basis::npos || !row_is_unit(i)) {
      throw std::logic_error("Decoder::recovered_payload: not yet recoverable");
    }
    return basis_.row(i) + g_;
  }

  /// Recovered source packet `index`; requires only recoverable(index), so
  /// it also works mid-decode on systematic or lucky packets.
  std::vector<value_type> recover_packet(std::size_t index) const {
    if (index >= g_) throw std::out_of_range("Decoder::recover_packet");
    const std::size_t i = basis_.row_of_pivot(index);
    if (i == Basis::npos || !row_is_unit(i)) {
      throw std::logic_error("Decoder::recover_packet: not yet recoverable");
    }
    const value_type* r = basis_.row(i);
    return {r + g_, r + g_ + symbols_};
  }

  /// Recovered source packet `index`; requires complete().
  std::vector<value_type> source_packet(std::size_t index) const {
    if (!complete()) throw std::logic_error("Decoder::source_packet: rank deficient");
    if (index >= g_) throw std::out_of_range("Decoder::source_packet");
    // Basis is in RREF with g pivots, so the row whose pivot is `index` holds
    // exactly e_index in the coefficient part and the source payload beyond.
    const std::size_t i = basis_.row_of_pivot(index);
    if (i == Basis::npos) throw std::logic_error("Decoder::source_packet: pivot missing");
    const value_type* r = basis_.row(i);
    return {r + g_, r + g_ + symbols_};
  }

  /// All recovered source packets in order; requires complete().
  std::vector<std::vector<value_type>> source_packets() const {
    std::vector<std::vector<value_type>> out;
    out.reserve(g_);
    for (std::size_t i = 0; i < g_; ++i) out.push_back(source_packet(i));
    return out;
  }

  /// Basis row `i` as [coeffs | payload], without copying. Rows are in
  /// arrival order; the recoder mixes straight from these pointers.
  const value_type* basis_row(std::size_t i) const {
    if (i >= basis_.rank()) throw std::out_of_range("Decoder::basis_row");
    return basis_.row(i);
  }

  /// Basis row i as a coded packet (allocating; kept for inspection and
  /// tests — the hot path uses basis_row()).
  Packet basis_packet(std::size_t i) const {
    const value_type* r = basis_row(i);
    Packet p;
    p.generation = generation_;
    p.coeffs.assign(r, r + g_);
    p.payload.assign(r + g_, r + g_ + symbols_);
    return p;
  }

 private:
  using Basis = linalg::ReducedBasis<Field>;

  /// True iff basis row `i`'s coefficient part is exactly e_pivot(i).
  bool row_is_unit(std::size_t i) const {
    const value_type* r = basis_.row(i);
    const std::size_t piv = basis_.pivot(i);
    for (std::size_t j = 0; j < g_; ++j) {
      if (j != piv && r[j] != value_type{0}) return false;
    }
    return true;
  }

  // Process-wide decode counters and the elimination-time probe, shared by
  // every Decoder instance (the registry guarantees stable references).
  struct Instrumentation {
    obs::Counter& received = obs::metrics().counter("decoder.packets_received");
    obs::Counter& innovative = obs::metrics().counter("decoder.packets_innovative");
    obs::Counter& redundant = obs::metrics().counter("decoder.packets_redundant");
    obs::Histogram& absorb_ns = obs::metrics().histogram("decoder.absorb_ns");
  };
  static Instrumentation& reg() {
    static Instrumentation instr;
    return instr;
  }

  std::uint32_t generation_;
  std::size_t g_;
  std::size_t symbols_;
  std::uint64_t received_ = 0;    // per-instance; backs packets_received()
  std::uint64_t innovative_ = 0;  // per-instance; backs packets_innovative()
  Basis basis_;                         // RREF of [coeffs | payload], arena-backed
  mutable std::vector<value_type> probe_;  // reusable is_innovative() row
};

}  // namespace ncast::coding
