#pragma once
// Generation decoder: incremental Gaussian elimination over the augmented
// matrix [coefficients | payload]. Maintains the basis in reduced form so
// that (a) innovation of an incoming packet is detected in O(rank * width)
// and (b) once the rank reaches g the original packets are read off directly.

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "coding/packet.hpp"
#include "obs/metrics.hpp"

namespace ncast::coding {

/// Decoder (and basis store) for one generation.
template <typename Field>
class Decoder {
 public:
  using value_type = typename Field::value_type;
  using Packet = CodedPacket<Field>;

  Decoder(std::uint32_t generation, std::size_t generation_size, std::size_t symbols)
      : generation_(generation), g_(generation_size), symbols_(symbols) {
    if (g_ == 0 || symbols_ == 0) {
      throw std::invalid_argument("Decoder: zero generation size or symbols");
    }
  }

  std::uint32_t generation() const { return generation_; }
  std::size_t generation_size() const { return g_; }
  std::size_t symbols() const { return symbols_; }
  std::size_t rank() const { return rows_.size(); }
  bool complete() const { return rank() == g_; }

  /// Packets ever offered to absorb() on this decoder instance.
  std::uint64_t packets_received() const { return received_; }
  /// Packets that increased the rank. Always innovative + redundant ==
  /// received; the redundant count includes malformed/stray rejects.
  std::uint64_t packets_innovative() const { return innovative_; }
  std::uint64_t packets_redundant() const { return received_ - innovative_; }

  /// Consumes a packet; returns true iff it was innovative.
  /// Packets from other generations or with wrong shape are rejected
  /// (returns false) rather than throwing, since in a network simulation
  /// stray packets are data, not programming errors.
  bool absorb(const Packet& p) {
    obs::ScopeTimer timer(reg().absorb_ns);
    ++received_;
    reg().received.inc();
    if (p.generation != generation_ || p.coeffs.size() != g_ ||
        p.payload.size() != symbols_) {
      reg().redundant.inc();
      return false;
    }
    // Working row: [coeffs | payload] concatenated.
    std::vector<value_type> row(g_ + symbols_);
    std::copy(p.coeffs.begin(), p.coeffs.end(), row.begin());
    std::copy(p.payload.begin(), p.payload.end(), row.begin() + static_cast<std::ptrdiff_t>(g_));

    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const value_type f = row[pivot_[i]];
      if (f != value_type{0}) {
        Field::region_madd(row.data(), rows_[i].data(), f, row.size());
      }
    }
    std::size_t p_col = 0;
    while (p_col < g_ && row[p_col] == value_type{0}) ++p_col;
    if (p_col == g_) {
      reg().redundant.inc();
      return false;  // not innovative
    }

    Field::region_mul(row.data(), Field::inv(row[p_col]), row.size());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const value_type f = rows_[i][p_col];
      if (f != value_type{0}) {
        Field::region_madd(rows_[i].data(), row.data(), f, row.size());
      }
    }
    rows_.push_back(std::move(row));
    pivot_.push_back(p_col);
    ++innovative_;
    reg().innovative.inc();
    return true;
  }

  /// Would this packet be innovative? (No state change.)
  bool is_innovative(const Packet& p) const {
    if (p.generation != generation_ || p.coeffs.size() != g_ ||
        p.payload.size() != symbols_) {
      return false;
    }
    std::vector<value_type> c = p.coeffs;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const value_type f = c[pivot_[i]];
      if (f != value_type{0}) {
        // Only the coefficient part matters for innovation.
        Field::region_madd(c.data(), rows_[i].data(), f, g_);
      }
    }
    for (std::size_t j = 0; j < g_; ++j) {
      if (c[j] != value_type{0}) return true;
    }
    return false;
  }

  /// True iff source packet `index` is already individually recoverable,
  /// i.e. the unit vector e_index lies in the received row space. Because
  /// the basis is kept fully reduced, that is the case exactly when the row
  /// pivoting on `index` has no other nonzero coefficient. This enables
  /// progressive delivery (e.g. starting playback) before full rank.
  bool recoverable(std::size_t index) const {
    if (index >= g_) throw std::out_of_range("Decoder::recoverable");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (pivot_[i] != index) continue;
      for (std::size_t j = 0; j < g_; ++j) {
        if (j != index && rows_[i][j] != value_type{0}) return false;
      }
      return true;
    }
    return false;
  }

  /// Number of source packets already individually recoverable.
  std::size_t recoverable_count() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < g_; ++i) n += recoverable(i) ? 1 : 0;
    return n;
  }

  /// Recovered source packet `index`; requires only recoverable(index), so
  /// it also works mid-decode on systematic or lucky packets.
  std::vector<value_type> recover_packet(std::size_t index) const {
    if (index >= g_) throw std::out_of_range("Decoder::recover_packet");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (pivot_[i] != index) continue;
      if (!recoverable(index)) break;
      return {rows_[i].begin() + static_cast<std::ptrdiff_t>(g_), rows_[i].end()};
    }
    throw std::logic_error("Decoder::recover_packet: not yet recoverable");
  }

  /// Recovered source packet `index`; requires complete().
  std::vector<value_type> source_packet(std::size_t index) const {
    if (!complete()) throw std::logic_error("Decoder::source_packet: rank deficient");
    if (index >= g_) throw std::out_of_range("Decoder::source_packet");
    // Basis is in RREF with g pivots, so the row whose pivot is `index` holds
    // exactly e_index in the coefficient part and the source payload beyond.
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (pivot_[i] == index) {
        return {rows_[i].begin() + static_cast<std::ptrdiff_t>(g_), rows_[i].end()};
      }
    }
    throw std::logic_error("Decoder::source_packet: pivot missing");
  }

  /// All recovered source packets in order; requires complete().
  std::vector<std::vector<value_type>> source_packets() const {
    std::vector<std::vector<value_type>> out;
    out.reserve(g_);
    for (std::size_t i = 0; i < g_; ++i) out.push_back(source_packet(i));
    return out;
  }

  /// Basis row i as a coded packet (used by the recoder).
  Packet basis_packet(std::size_t i) const {
    if (i >= rows_.size()) throw std::out_of_range("Decoder::basis_packet");
    Packet p;
    p.generation = generation_;
    p.coeffs.assign(rows_[i].begin(), rows_[i].begin() + static_cast<std::ptrdiff_t>(g_));
    p.payload.assign(rows_[i].begin() + static_cast<std::ptrdiff_t>(g_), rows_[i].end());
    return p;
  }

 private:
  // Process-wide decode counters and the elimination-time probe, shared by
  // every Decoder instance (the registry guarantees stable references).
  struct Instrumentation {
    obs::Counter& received = obs::metrics().counter("decoder.packets_received");
    obs::Counter& innovative = obs::metrics().counter("decoder.packets_innovative");
    obs::Counter& redundant = obs::metrics().counter("decoder.packets_redundant");
    obs::Histogram& absorb_ns = obs::metrics().histogram("decoder.absorb_ns");
  };
  static Instrumentation& reg() {
    static Instrumentation instr;
    return instr;
  }

  std::uint32_t generation_;
  std::size_t g_;
  std::size_t symbols_;
  std::uint64_t received_ = 0;    // per-instance; backs packets_received()
  std::uint64_t innovative_ = 0;  // per-instance; backs packets_innovative()
  std::vector<std::vector<value_type>> rows_;  // RREF of [coeffs | payload]
  std::vector<std::size_t> pivot_;
};

}  // namespace ncast::coding
