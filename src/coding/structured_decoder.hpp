#pragma once
// Decoder policies: which elimination strategy to run a generation structure
// on, plus the StructuredDecoder facade that picks one and routes packets.
//
//   kDense   ScatterDecoder — expands compact coefficient strips to dense
//            g-wide rows and runs the original arena-backed Decoder. Sound
//            for every structure (it is plain Gaussian elimination); the
//            only policy that handles wrap-around bands, whose support is
//            not a contiguous window.
//   kBand    BandDecoder — pivot-compact banded elimination, O(w) per
//            elimination step instead of O(g). Sound for dense and non-wrap
//            banded structures.
//   kOverlap OverlapDecoder — per-class dense sub-decoders with decoded
//            boundary packets propagated between classes. Requires an
//            overlapping structure.
//   kAuto    select_policy(): the cheapest sound policy for the structure.
//
// Every policy produces exact innovation verdicts and exact decoded output,
// so policy choice trades CPU only — never correctness or overhead. The
// parity tests (tests/test_structured_codec.cpp) pin the policies against
// each other bit-for-bit.

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <variant>
#include <vector>

#include "coding/band_decoder.hpp"
#include "coding/decoder.hpp"
#include "coding/overlap_decoder.hpp"
#include "coding/packet.hpp"
#include "coding/structure.hpp"
#include "obs/metrics.hpp"

namespace ncast::coding {

enum class DecoderPolicy : std::uint8_t {
  kAuto = 0,
  kDense = 1,
  kBand = 2,
  kOverlap = 3,
};

inline const char* to_string(DecoderPolicy policy) {
  switch (policy) {
    case DecoderPolicy::kAuto: return "auto";
    case DecoderPolicy::kDense: return "dense";
    case DecoderPolicy::kBand: return "band";
    case DecoderPolicy::kOverlap: return "overlap";
  }
  return "?";
}

/// The cheapest sound policy for `s`.
inline DecoderPolicy select_policy(const GenerationStructure& s) {
  switch (s.kind) {
    case StructureKind::kDense:
      return DecoderPolicy::kDense;
    case StructureKind::kBanded:
      // Wrap-around bands are not contiguous windows; only the dense policy
      // is sound for them.
      return s.wrap ? DecoderPolicy::kDense : DecoderPolicy::kBand;
    case StructureKind::kOverlapped:
      return DecoderPolicy::kOverlap;
  }
  return DecoderPolicy::kDense;
}

/// The cheapest policy that is sound for a *stream* of `s`-structured
/// traffic crossing recoding relays. Differs from select_policy() in one
/// case: banded streams map to the dense policy, because recoding densifies
/// banded codes (structured_recoder.hpp) — an overlay receive buffer sees
/// mixed band strips and full-width relay rows, and the BandDecoder cannot
/// absorb the latter. Encoder-direct consumers (no relays in the path)
/// should keep select_policy(), which is where the banded speedup lives.
inline DecoderPolicy select_stream_policy(const GenerationStructure& s) {
  return s.kind == StructureKind::kBanded ? DecoderPolicy::kDense
                                          : select_policy(s);
}

/// Dense-policy decoder for any structure: compact coefficient strips are
/// scattered into a preallocated g-wide row (cyclically, so wrap-around
/// bands work) and absorbed by the original dense Decoder.
template <typename Field>
class ScatterDecoder {
 public:
  using value_type = typename Field::value_type;
  using Packet = CodedPacket<Field>;

  ScatterDecoder(std::uint32_t generation, const GenerationStructure& structure,
                 std::size_t symbols)
      : structure_(structure),
        inner_(generation, structure.g, symbols),
        expand_(structure.g, value_type{0}) {
    structure_.validate();
  }

  std::uint32_t generation() const { return inner_.generation(); }
  const GenerationStructure& structure() const { return structure_; }
  std::size_t generation_size() const { return structure_.g; }
  std::size_t symbols() const { return inner_.symbols(); }
  std::size_t rank() const { return inner_.rank(); }
  bool complete() const { return inner_.complete(); }
  std::uint64_t packets_received() const { return inner_.packets_received() + rejected_; }
  std::uint64_t packets_innovative() const { return inner_.packets_innovative(); }
  std::uint64_t packets_redundant() const { return packets_received() - packets_innovative(); }

  // ncast:hot-begin — scatter + dense absorb: no allocation, no throw.

  /// Consumes a packet; returns true iff it was innovative. Malformed
  /// placements and stray generations are rejected as data. Admission uses
  /// the stream rule (admits_packet), not the strict encoder shape: on a
  /// banded stream this decoder is exactly where relay-densified full-width
  /// rows end up, and plain Gaussian elimination absorbs them soundly.
  bool absorb(const Packet& p) {
    if (p.generation != inner_.generation() ||
        p.payload.size() != inner_.symbols() ||
        !structure_.admits_packet(p.band_offset, p.coeffs.size(),
                                  p.class_id)) {
      ++rejected_;
      reg().received.inc();
      reg().redundant.inc();
      return false;
    }
    const std::size_t g = structure_.g;
    const std::size_t width = p.coeffs.size();
    if (p.band_offset == 0 && width == g) {
      // Dense packet: no expansion needed — identical to Decoder::absorb.
      return inner_.absorb_row(p.coeffs.data(), p.payload.data());
    }
    std::fill(expand_.begin(), expand_.end(), value_type{0});
    for (std::size_t j = 0; j < width; ++j) {
      const std::size_t i =
          p.band_offset + j < g ? p.band_offset + j : p.band_offset + j - g;
      expand_[i] = p.coeffs[j];
    }
    return inner_.absorb_row(expand_.data(), p.payload.data());
  }

  // ncast:hot-end

  std::vector<value_type> source_packet(std::size_t index) const {
    return inner_.source_packet(index);
  }
  std::vector<std::vector<value_type>> source_packets() const {
    return inner_.source_packets();
  }
  const Decoder<Field>& inner() const { return inner_; }

 private:
  struct Instrumentation {
    obs::Counter& received = obs::metrics().counter("decoder.packets_received");
    obs::Counter& redundant = obs::metrics().counter("decoder.packets_redundant");
  };
  static Instrumentation& reg() {
    static Instrumentation instr;
    return instr;
  }

  GenerationStructure structure_;
  Decoder<Field> inner_;
  std::vector<value_type> expand_;  // preallocated dense coefficient row
  std::uint64_t rejected_ = 0;      // early rejects not seen by inner_
};

/// Facade: one decoder for any structure, behind a policy choice.
template <typename Field>
class StructuredDecoder {
 public:
  using value_type = typename Field::value_type;
  using Packet = CodedPacket<Field>;

  StructuredDecoder(std::uint32_t generation,
                    const GenerationStructure& structure, std::size_t symbols,
                    DecoderPolicy policy = DecoderPolicy::kAuto)
      : policy_(policy == DecoderPolicy::kAuto ? select_policy(structure)
                                               : policy),
        impl_(make(generation, structure, symbols, policy_)) {}

  DecoderPolicy policy() const { return policy_; }

  bool absorb(const Packet& p) {
    return std::visit([&](auto& d) { return d.absorb(p); }, impl_);
  }
  bool complete() const {
    return std::visit([](const auto& d) { return d.complete(); }, impl_);
  }
  /// Rank toward the g unknowns. Exact for the dense and band policies;
  /// see OverlapDecoder::rank() for the overlap caveat.
  std::size_t rank() const {
    return std::visit([](const auto& d) { return d.rank(); }, impl_);
  }
  std::size_t symbols() const {
    return std::visit([](const auto& d) { return d.symbols(); }, impl_);
  }
  std::size_t generation_size() const {
    return std::visit([](const auto& d) { return d.generation_size(); }, impl_);
  }
  const GenerationStructure& structure() const {
    return std::visit(
        [](const auto& d) -> const GenerationStructure& { return d.structure(); },
        impl_);
  }
  std::uint64_t packets_received() const {
    return std::visit([](const auto& d) { return d.packets_received(); }, impl_);
  }
  std::uint64_t packets_innovative() const {
    return std::visit([](const auto& d) { return d.packets_innovative(); }, impl_);
  }
  std::uint64_t packets_redundant() const {
    return std::visit([](const auto& d) { return d.packets_redundant(); }, impl_);
  }
  std::vector<value_type> source_packet(std::size_t index) const {
    return std::visit([&](const auto& d) { return d.source_packet(index); },
                      impl_);
  }
  std::vector<std::vector<value_type>> source_packets() const {
    return std::visit([](const auto& d) { return d.source_packets(); }, impl_);
  }

 private:
  using Impl = std::variant<ScatterDecoder<Field>, BandDecoder<Field>,
                            OverlapDecoder<Field>>;

  static Impl make(std::uint32_t generation,
                   const GenerationStructure& structure, std::size_t symbols,
                   DecoderPolicy policy) {
    switch (policy) {
      case DecoderPolicy::kDense:
        return Impl{std::in_place_type<ScatterDecoder<Field>>, generation,
                    structure, symbols};
      case DecoderPolicy::kBand:
        return Impl{std::in_place_type<BandDecoder<Field>>, generation,
                    structure, symbols};
      case DecoderPolicy::kOverlap:
        return Impl{std::in_place_type<OverlapDecoder<Field>>, generation,
                    structure, symbols};
      case DecoderPolicy::kAuto:
        break;
    }
    throw std::invalid_argument("StructuredDecoder: unresolved policy");
  }

  DecoderPolicy policy_;
  Impl impl_;
};

}  // namespace ncast::coding
