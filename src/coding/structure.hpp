#pragma once
// Generation structures: which source packets a coded packet may mix.
//
// Dense full-generation RLNC pays O(g * width) elimination per absorbed
// packet against a dense basis. Sparse structures trade a little overhead
// (redundant-packet fraction) for much cheaper decoding, per "Effects of the
// Generation Size and Overlap on Throughput and Complexity in Randomized
// Linear Network Coding" and "Sparse Network Coding with Overlapping
// Classes":
//
//   kDense      every packet mixes all g source packets (the original codec);
//   kBanded     every packet mixes a contiguous band of `band_width` source
//               packets starting at a random offset, optionally wrapping
//               around the end of the generation (windowed / WINDWRAP codes);
//   kOverlapped the generation is covered by classes of `band_width`
//               consecutive source packets whose neighbors share `overlap`
//               boundary packets; every coded packet mixes one class.
//
// A GenerationStructure is pure geometry: it is threaded through
// SourceEncoder (placement draws), the wire format (band offset + compact
// coefficients), and the decoder policies (which elimination strategy is
// sound and fastest). See docs/performance.md ("generation structures &
// decoder selection") for the frontier measurements.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>

namespace ncast::coding {

enum class StructureKind : std::uint8_t {
  kDense = 0,
  kBanded = 1,
  kOverlapped = 2,
};

inline const char* to_string(StructureKind kind) {
  switch (kind) {
    case StructureKind::kDense: return "dense";
    case StructureKind::kBanded: return "banded";
    case StructureKind::kOverlapped: return "overlapped";
  }
  return "?";
}

/// Geometry of one generation's coding structure. Plain value type; validated
/// construction goes through the dense()/banded()/overlapping() factories.
struct GenerationStructure {
  StructureKind kind = StructureKind::kDense;
  std::size_t g = 0;           ///< generation size (source packets)
  std::size_t band_width = 0;  ///< band width w, or class size c; g when dense
  bool wrap = false;           ///< banded: bands may wrap around the end
  std::size_t overlap = 0;     ///< overlapped: shared packets between neighbors

  /// Full-generation mixing — the original codec.
  static GenerationStructure dense(std::size_t g) {
    GenerationStructure s;
    s.kind = StructureKind::kDense;
    s.g = g;
    s.band_width = g;
    s.validate();
    return s;
  }

  /// Width-`width` bands at arbitrary offsets; `wrap` allows bands that run
  /// past packet g-1 and continue at packet 0. A band as wide as the
  /// generation is dense in all but name, so wrap is normalized away then.
  static GenerationStructure banded(std::size_t g, std::size_t width,
                                    bool wrap = false) {
    GenerationStructure s;
    s.kind = StructureKind::kBanded;
    s.g = g;
    s.band_width = width;
    s.wrap = wrap && width < g;
    s.validate();
    return s;
  }

  /// Classes of `class_size` consecutive packets, adjacent classes sharing
  /// `overlap` packets. Requires overlap < class_size so every class owns at
  /// least one packet exclusively.
  static GenerationStructure overlapping(std::size_t g, std::size_t class_size,
                                         std::size_t overlap) {
    GenerationStructure s;
    s.kind = StructureKind::kOverlapped;
    s.g = g;
    s.band_width = class_size;
    s.overlap = overlap;
    s.validate();
    return s;
  }

  /// Throws std::invalid_argument on geometric nonsense (configuration
  /// errors; malformed *packets* against a valid structure are data and are
  /// rejected without throwing — see matches_packet()).
  void validate() const {
    if (g == 0) throw std::invalid_argument("GenerationStructure: g == 0");
    if (band_width == 0 || band_width > g) {
      throw std::invalid_argument("GenerationStructure: band width not in [1, g]");
    }
    if (kind == StructureKind::kDense && band_width != g) {
      throw std::invalid_argument("GenerationStructure: dense requires width == g");
    }
    if (kind == StructureKind::kOverlapped && overlap >= band_width) {
      throw std::invalid_argument("GenerationStructure: overlap >= class size");
    }
    if (kind != StructureKind::kOverlapped && overlap != 0) {
      throw std::invalid_argument("GenerationStructure: overlap without classes");
    }
    if (kind != StructureKind::kBanded && wrap) {
      throw std::invalid_argument("GenerationStructure: wrap without bands");
    }
  }

  // --- overlapped-class geometry -----------------------------------------

  /// Distance between consecutive class starts.
  std::size_t stride() const { return band_width - overlap; }

  /// Number of classes covering [0, g). 1 for dense/banded structures.
  std::size_t num_classes() const {
    if (kind != StructureKind::kOverlapped || band_width >= g) return 1;
    return 1 + (g - band_width + stride() - 1) / stride();
  }

  /// First source packet of class `c`.
  std::size_t class_begin(std::size_t c) const { return c * stride(); }

  /// Width of class `c`; the last class is clipped at g but always keeps
  /// more than `overlap` packets (so no class is a subset of its neighbor).
  std::size_t class_width(std::size_t c) const {
    const std::size_t begin = class_begin(c);
    return band_width < g - begin ? band_width : g - begin;
  }

  /// Classes whose range contains source packet `j`: [first, last] inclusive.
  /// Only meaningful for overlapped structures.
  std::size_t first_class_of(std::size_t j) const {
    if (j < band_width) return 0;
    return (j - band_width) / stride() + 1;
  }
  std::size_t last_class_of(std::size_t j) const {
    const std::size_t c = j / stride();
    const std::size_t last = num_classes() - 1;
    return c < last ? c : last;
  }

  // --- banded geometry ----------------------------------------------------

  /// Number of legal band start offsets for encoding.
  std::size_t offsets() const {
    if (kind != StructureKind::kBanded || band_width == g) return 1;
    return wrap ? g : g - band_width + 1;
  }

  // --- packet admission ---------------------------------------------------

  /// True iff a packet with this placement is well-formed under the
  /// structure. Pure data validation: never throws.
  bool matches_packet(std::size_t offset, std::size_t width,
                      std::size_t class_id) const {
    switch (kind) {
      case StructureKind::kDense:
        return offset == 0 && width == g && class_id == 0;
      case StructureKind::kBanded:
        if (class_id != 0 || width != band_width || offset >= g) return false;
        return wrap || offset + width <= g;
      case StructureKind::kOverlapped:
        return class_id < num_classes() && offset == class_begin(class_id) &&
               width == class_width(class_id);
    }
    return false;
  }

  /// Stream admission: what a *receive path on the overlay* must accept.
  /// Everything matches_packet() admits, plus full-width dense rows on
  /// banded streams — recoding densifies banded codes (mixing two bands
  /// with different offsets widens the support), so a banded stream carries
  /// mixed traffic: compact band strips on encoder-direct hops and dense
  /// rows from every relay. Overlapped recoding is structure-preserving
  /// (class-local), so no such exception exists there.
  bool admits_packet(std::size_t offset, std::size_t width,
                     std::size_t class_id) const {
    if (matches_packet(offset, width, class_id)) return true;
    return kind == StructureKind::kBanded && offset == 0 && width == g &&
           class_id == 0;
  }

  bool operator==(const GenerationStructure& o) const {
    return kind == o.kind && g == o.g && band_width == o.band_width &&
           wrap == o.wrap && overlap == o.overlap;
  }
  bool operator!=(const GenerationStructure& o) const { return !(*this == o); }
};

/// Builds a structure from untrusted wire-level fields without throwing:
/// nullopt wherever validate() would throw. This is the message-path twin of
/// the factories — join accepts and slot grants arrive from the network, and
/// a malformed structure descriptor is data, not a configuration error.
inline std::optional<GenerationStructure> make_structure(
    std::uint8_t kind_byte, std::size_t g, std::size_t band_width, bool wrap,
    std::size_t overlap) {
  if (kind_byte > static_cast<std::uint8_t>(StructureKind::kOverlapped)) {
    return std::nullopt;
  }
  GenerationStructure s;
  s.kind = static_cast<StructureKind>(kind_byte);
  s.g = g;
  s.band_width = band_width == 0 ? g : band_width;
  s.wrap = wrap && s.band_width < g;
  s.overlap = overlap;
  if (s.g == 0 || s.band_width == 0 || s.band_width > s.g) return std::nullopt;
  if (s.kind == StructureKind::kDense && s.band_width != s.g) {
    return std::nullopt;
  }
  if (s.kind == StructureKind::kOverlapped && s.overlap >= s.band_width) {
    return std::nullopt;
  }
  if (s.kind != StructureKind::kOverlapped && s.overlap != 0) {
    return std::nullopt;
  }
  if (s.kind != StructureKind::kBanded && s.wrap) return std::nullopt;
  return s;
}

/// Configuration-level structure descriptor: the shape of a stream's coding
/// structure *before* the generation size is known. Configs and scenario
/// specs carry a StructureSpec; resolve(g) turns it into the concrete
/// GenerationStructure once the plan fixes g. band_width == 0 means "the
/// full generation" (dense in all but name), so the default-constructed
/// spec is plain dense RLNC and every pre-structure call site keeps its
/// behavior without naming a structure at all.
struct StructureSpec {
  StructureKind kind = StructureKind::kDense;
  std::size_t band_width = 0;  ///< band/class width; 0 = full generation
  bool wrap = false;           ///< banded: bands may wrap past g
  std::size_t overlap = 0;     ///< overlapped: shared boundary packets

  static StructureSpec dense() { return {}; }
  static StructureSpec banded(std::size_t width, bool wrap = false) {
    StructureSpec s;
    s.kind = StructureKind::kBanded;
    s.band_width = width;
    s.wrap = wrap;
    return s;
  }
  static StructureSpec overlapping(std::size_t class_size,
                                   std::size_t overlap) {
    StructureSpec s;
    s.kind = StructureKind::kOverlapped;
    s.band_width = class_size;
    s.overlap = overlap;
    return s;
  }

  /// Concrete geometry for a generation of `g` packets. Throws on geometric
  /// nonsense — this is the configuration path; message paths go through
  /// make_structure() instead.
  GenerationStructure resolve(std::size_t g) const {
    const std::size_t width = band_width == 0 ? g : band_width;
    switch (kind) {
      case StructureKind::kDense:
        return GenerationStructure::dense(g);
      case StructureKind::kBanded:
        return GenerationStructure::banded(g, width, wrap);
      case StructureKind::kOverlapped:
        return GenerationStructure::overlapping(g, width, overlap);
    }
    throw std::invalid_argument("StructureSpec: unknown kind");
  }

  bool operator==(const StructureSpec& o) const {
    return kind == o.kind && band_width == o.band_width && wrap == o.wrap &&
           overlap == o.overlap;
  }
  bool operator!=(const StructureSpec& o) const { return !(*this == o); }
};

}  // namespace ncast::coding
