#pragma once
// Band decoder: pivot-compact elimination for dense and banded (non-wrap)
// generation structures over linalg::BandBasis.
//
// Where the dense Decoder pays O(rank * (g + symbols)) per absorb against a
// fully reduced basis, this decoder pays O(band * (band + symbols)): rows
// store only their active band, elimination is forward-only within the band
// window, and full back-substitution is deferred to one payload-only pass at
// completion (see linalg/band_basis.hpp for the invariant that makes this
// sound). Innovation verdicts are exact, so on the same packet sequence this
// decoder's innovative/redundant decisions — and its decoded output — are
// bit-identical to Decoder's.

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "coding/packet.hpp"
#include "coding/structure.hpp"
#include "linalg/band_basis.hpp"
#include "obs/metrics.hpp"

namespace ncast::coding {

/// Decoder for one generation under a dense or banded (non-wrap) structure.
/// Wrap-around bands break the contiguous-window invariant; route those to
/// the dense policy instead (see structured_decoder.hpp).
template <typename Field>
class BandDecoder {
 public:
  using value_type = typename Field::value_type;
  using Packet = CodedPacket<Field>;

  BandDecoder(std::uint32_t generation, const GenerationStructure& structure,
              std::size_t symbols)
      : generation_(generation),
        structure_(structure),
        symbols_(symbols),
        basis_(structure.g, symbols, structure.band_width) {
    structure_.validate();
    if (symbols_ == 0) throw std::invalid_argument("BandDecoder: zero symbols");
    if (structure_.kind == StructureKind::kOverlapped ||
        (structure_.kind == StructureKind::kBanded && structure_.wrap)) {
      throw std::invalid_argument(
          "BandDecoder: requires a dense or non-wrap banded structure");
    }
  }

  std::uint32_t generation() const { return generation_; }
  const GenerationStructure& structure() const { return structure_; }
  std::size_t generation_size() const { return structure_.g; }
  std::size_t symbols() const { return symbols_; }
  std::size_t rank() const { return basis_.rank(); }
  bool complete() const { return basis_.complete(); }

  std::uint64_t packets_received() const { return received_; }
  std::uint64_t packets_innovative() const { return innovative_; }
  std::uint64_t packets_redundant() const { return received_ - innovative_; }

  // ncast:hot-begin — per-packet banded absorb: no allocation, no throw
  // (stray packets are data, not errors).

  /// Consumes a packet; returns true iff it was innovative. Packets from
  /// other generations or whose placement doesn't fit the structure are
  /// rejected (returns false) rather than throwing — stray packets are data.
  bool absorb(const Packet& p) {
    obs::ScopeTimer timer(reg().absorb_ns);
    ++received_;
    reg().received.inc();
    if (p.generation != generation_ || p.payload.size() != symbols_ ||
        !structure_.matches_packet(p.band_offset, p.coeffs.size(),
                                   p.class_id)) {
      reg().redundant.inc();
      return false;
    }
    if (!basis_.absorb(p.band_offset, p.coeffs.data(), p.coeffs.size(),
                       p.payload.data())) {
      reg().redundant.inc();
      return false;
    }
    ++innovative_;
    reg().innovative.inc();
    return true;
  }

  // ncast:hot-end

  /// Recovered source packet `index`; requires complete(). The first call
  /// after completion runs the deferred back-substitution pass.
  std::vector<value_type> source_packet(std::size_t index) const {
    if (!complete()) {
      throw std::logic_error("BandDecoder::source_packet: rank deficient");
    }
    if (index >= structure_.g) {
      throw std::out_of_range("BandDecoder::source_packet");
    }
    basis_.back_substitute();
    const value_type* r = basis_.payload_row(index);
    return {r, r + symbols_};
  }

  /// All recovered source packets in order; requires complete().
  std::vector<std::vector<value_type>> source_packets() const {
    std::vector<std::vector<value_type>> out;
    out.reserve(structure_.g);
    for (std::size_t i = 0; i < structure_.g; ++i) {
      out.push_back(source_packet(i));
    }
    return out;
  }

 private:
  // Same process-wide decode counters as Decoder: a banded absorb is still a
  // decoder absorb as far as telemetry and perf gates are concerned.
  struct Instrumentation {
    obs::Counter& received = obs::metrics().counter("decoder.packets_received");
    obs::Counter& innovative = obs::metrics().counter("decoder.packets_innovative");
    obs::Counter& redundant = obs::metrics().counter("decoder.packets_redundant");
    obs::Histogram& absorb_ns = obs::metrics().histogram("decoder.absorb_ns");
  };
  static Instrumentation& reg() {
    static Instrumentation instr;
    return instr;
  }

  std::uint32_t generation_;
  GenerationStructure structure_;
  std::size_t symbols_;
  std::uint64_t received_ = 0;
  std::uint64_t innovative_ = 0;
  mutable linalg::BandBasis<Field> basis_;  // mutable: deferred back-subst.
};

}  // namespace ncast::coding
