#pragma once
// Source-side encoder: holds the g original packets of one generation and
// emits random linear combinations (or systematic originals).

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "coding/packet.hpp"
#include "util/rng.hpp"

namespace ncast::coding {

/// Encoder for a single generation of `g` source packets, each of
/// `symbols` field symbols.
template <typename Field>
class SourceEncoder {
 public:
  using value_type = typename Field::value_type;
  using Packet = CodedPacket<Field>;

  /// `source` must contain exactly g rows of equal length (>= 1).
  SourceEncoder(std::uint32_t generation, std::vector<std::vector<value_type>> source)
      : generation_(generation), source_(std::move(source)) {
    if (source_.empty()) throw std::invalid_argument("SourceEncoder: empty generation");
    symbols_ = source_.front().size();
    if (symbols_ == 0) throw std::invalid_argument("SourceEncoder: empty packets");
    for (const auto& row : source_) {
      if (row.size() != symbols_) {
        throw std::invalid_argument("SourceEncoder: ragged source packets");
      }
    }
  }

  std::uint32_t generation() const { return generation_; }
  std::size_t generation_size() const { return source_.size(); }
  std::size_t symbols() const { return symbols_; }

  // ncast:hot-begin — per-emission encode: reuses the caller's packet
  // capacity, zero heap allocations in steady state.

  /// Writes a uniformly random linear combination of the source packets into
  /// `p`, reusing its buffers (no allocation once `p` has the right
  /// capacity). The combination is re-drawn if it comes out all-zero
  /// (possible over tiny fields), so the result always carries information.
  void emit_into(Packet& p, Rng& rng) const {
    p.generation = generation_;
    p.coeffs.resize(source_.size());  // ncast:allow(hot_path.alloc): reuses caller capacity; allocates only on first use
    do {
      for (auto& c : p.coeffs) {
        c = static_cast<value_type>(rng.below(Field::order));
      }
    } while (p.is_degenerate());
    p.payload.assign(symbols_, value_type{0});
    for (std::size_t i = 0; i < source_.size(); ++i) {
      Field::region_madd(p.payload.data(), source_[i].data(), p.coeffs[i], symbols_);
    }
  }

  // ncast:hot-end

  /// Emits a uniformly random linear combination as a fresh packet.
  Packet emit(Rng& rng) const {
    Packet p;
    emit_into(p, rng);
    return p;
  }

  /// Emits source packet `index` verbatim with a unit coefficient vector.
  Packet emit_systematic(std::size_t index) const {
    if (index >= source_.size()) {
      throw std::out_of_range("SourceEncoder::emit_systematic");
    }
    Packet p;
    p.generation = generation_;
    p.coeffs.assign(source_.size(), value_type{0});
    p.coeffs[index] = value_type{1};
    p.payload = source_[index];
    return p;
  }

  const std::vector<std::vector<value_type>>& source_packets() const {
    return source_;
  }

 private:
  std::uint32_t generation_;
  std::vector<std::vector<value_type>> source_;
  std::size_t symbols_ = 0;
};

}  // namespace ncast::coding
