#pragma once
// Source-side encoder: holds the g original packets of one generation and
// emits random linear combinations (or systematic originals).
//
// The encoder is structure-aware (coding/structure.hpp): under the dense
// structure every emission mixes all g source packets with g coefficients
// (the original codec, draw-for-draw identical to the pre-structure code);
// under a banded structure each emission picks a random band start and mixes
// only band_width packets; under an overlapping structure each emission
// picks a random class and mixes that class's packets. Sparse emissions
// carry compact coefficient strips (packet.band_offset + band_width coeffs)
// instead of g dense entries.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "coding/packet.hpp"
#include "coding/structure.hpp"
#include "util/rng.hpp"

namespace ncast::coding {

/// Encoder for a single generation of `g` source packets, each of
/// `symbols` field symbols. Source rows are stored in one flat buffer
/// (g * symbols), not per-row vectors.
template <typename Field>
class SourceEncoder {
 public:
  using value_type = typename Field::value_type;
  using Packet = CodedPacket<Field>;

  /// Dense encoder over per-row source packets; `source` must contain g rows
  /// of equal length (>= 1). Rows are copied into flat storage.
  SourceEncoder(std::uint32_t generation,
                std::vector<std::vector<value_type>> source)
      : generation_(generation) {
    if (source.empty()) throw std::invalid_argument("SourceEncoder: empty generation");
    symbols_ = source.front().size();
    if (symbols_ == 0) throw std::invalid_argument("SourceEncoder: empty packets");
    flat_.reserve(source.size() * symbols_);
    for (const auto& row : source) {
      if (row.size() != symbols_) {
        throw std::invalid_argument("SourceEncoder: ragged source packets");
      }
      flat_.insert(flat_.end(), row.begin(), row.end());
    }
    structure_ = GenerationStructure::dense(source.size());
  }

  /// Structure-aware encoder over a flat source buffer of
  /// structure.g * symbols field symbols (row i at [i * symbols, ...)).
  SourceEncoder(std::uint32_t generation, const GenerationStructure& structure,
                std::vector<value_type> flat, std::size_t symbols)
      : generation_(generation),
        structure_(structure),
        flat_(std::move(flat)),
        symbols_(symbols) {
    structure_.validate();
    if (symbols_ == 0) throw std::invalid_argument("SourceEncoder: empty packets");
    if (flat_.size() != structure_.g * symbols_) {
      throw std::invalid_argument("SourceEncoder: flat buffer size mismatch");
    }
  }

  std::uint32_t generation() const { return generation_; }
  std::size_t generation_size() const { return structure_.g; }
  std::size_t symbols() const { return symbols_; }
  const GenerationStructure& structure() const { return structure_; }

  // ncast:hot-begin — per-emission encode: reuses the caller's packet
  // capacity, zero heap allocations in steady state.

  /// Writes a random linear combination into `p`, reusing its buffers (no
  /// allocation once `p` has the right capacity). Placement (band offset /
  /// class) is drawn first, then the coefficients; a draw is spent on
  /// placement only when there is more than one choice, so the dense
  /// structure consumes exactly the same RNG stream as the pre-structure
  /// encoder. The combination is re-drawn if it comes out all-zero (possible
  /// over tiny fields), so the result always carries information.
  void emit_into(Packet& p, Rng& rng) const {
    const std::size_t g = structure_.g;
    std::size_t offset = 0;
    std::size_t width = g;
    std::size_t class_id = 0;
    switch (structure_.kind) {
      case StructureKind::kDense:
        break;
      case StructureKind::kBanded:
        width = structure_.band_width;
        if (width < g) {
          if (structure_.wrap) {
            offset = rng.below(g);
          } else {
            // Clamped-window draw: a uniform offset in [0, g-w] would cover
            // column 0 only via offset 0 (and likewise at the right edge),
            // starving edge columns and inflating overhead. Drawing the
            // window start uniformly from [-(w-1), g-1] and clamping into
            // the legal range gives every column the same w/(g+w-1)
            // coverage mass, so achieved overhead stays near dense.
            const std::size_t u = rng.below(g + width - 1);
            offset = u < width ? 0 : u - (width - 1);
            if (offset > g - width) offset = g - width;
          }
        }
        break;
      case StructureKind::kOverlapped: {
        const std::size_t classes = structure_.num_classes();
        if (classes > 1) class_id = rng.below(classes);
        offset = structure_.class_begin(class_id);
        width = structure_.class_width(class_id);
        break;
      }
    }
    p.generation = generation_;
    p.band_offset = static_cast<std::uint16_t>(offset);
    p.class_id = static_cast<std::uint16_t>(class_id);
    p.coeffs.resize(width);  // ncast:allow(hot_path.alloc): reuses caller capacity; allocates only on first use
    do {
      for (auto& c : p.coeffs) {
        c = static_cast<value_type>(rng.below(Field::order));
      }
    } while (p.is_degenerate());
    p.payload.assign(symbols_, value_type{0});
    for (std::size_t j = 0; j < width; ++j) {
      const std::size_t i = offset + j < g ? offset + j : offset + j - g;
      Field::region_madd(p.payload.data(), flat_.data() + i * symbols_,
                         p.coeffs[j], symbols_);
    }
  }

  // ncast:hot-end

  /// Emits a random linear combination as a fresh packet.
  Packet emit(Rng& rng) const {
    Packet p;
    emit_into(p, rng);
    return p;
  }

  /// Emits source packet `index` verbatim. The coefficient strip is a unit
  /// vector placed so the packet is well-formed under the structure (any
  /// band/class containing `index` works; the first is used).
  Packet emit_systematic(std::size_t index) const {
    const std::size_t g = structure_.g;
    if (index >= g) {
      throw std::out_of_range("SourceEncoder::emit_systematic");
    }
    std::size_t offset = 0;
    std::size_t width = g;
    std::size_t class_id = 0;
    switch (structure_.kind) {
      case StructureKind::kDense:
        break;
      case StructureKind::kBanded:
        width = structure_.band_width;
        offset = index + width <= g ? index : g - width;
        break;
      case StructureKind::kOverlapped:
        class_id = structure_.first_class_of(index);
        offset = structure_.class_begin(class_id);
        width = structure_.class_width(class_id);
        break;
    }
    Packet p;
    p.generation = generation_;
    p.band_offset = static_cast<std::uint16_t>(offset);
    p.class_id = static_cast<std::uint16_t>(class_id);
    p.coeffs.assign(width, value_type{0});
    p.coeffs[index - offset] = value_type{1};
    p.payload.assign(flat_.begin() + index * symbols_,
                     flat_.begin() + (index + 1) * symbols_);
    return p;
  }

  /// Source row `index` (symbols() entries), without copying.
  const value_type* source_row(std::size_t index) const {
    if (index >= structure_.g) throw std::out_of_range("SourceEncoder::source_row");
    return flat_.data() + index * symbols_;
  }

  /// The source packets materialized as per-row vectors (copies; the flat
  /// buffer is the storage of record).
  std::vector<std::vector<value_type>> source_packets() const {
    std::vector<std::vector<value_type>> out;
    out.reserve(structure_.g);
    for (std::size_t i = 0; i < structure_.g; ++i) {
      out.emplace_back(flat_.begin() + i * symbols_,
                       flat_.begin() + (i + 1) * symbols_);
    }
    return out;
  }

 private:
  std::uint32_t generation_;
  GenerationStructure structure_;
  std::vector<value_type> flat_;  // g rows, row i at [i * symbols_, ...)
  std::size_t symbols_ = 0;
};

}  // namespace ncast::coding
