#pragma once
// Overlap-aware decoder: one dense sub-decoder per overlapping class, with
// decoded boundary packets passed between neighboring classes.
//
// Under an overlapping structure every coded packet mixes one class of
// `class_size` consecutive source packets, so each class decodes like a small
// dense generation — absorb cost is O(class_rank * (class_size + symbols))
// instead of O(rank * (g + symbols)). The overlap is what makes the classes
// cooperate: when a class pins down a source packet that its neighbors also
// cover, the decoded packet is injected into those neighbors as a unit row
// (side information), cheapening their elimination and reducing the packets
// they need from the network. That propagation cascades: an injected unit
// row can complete a neighbor, whose newly decoded boundary packets then
// propagate further.
//
// With a single class (class_size == g, overlap == 0) there is nothing to
// propagate and this decoder is the dense Decoder bit-for-bit — the parity
// tests pin that down.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "coding/decoder.hpp"
#include "coding/packet.hpp"
#include "coding/structure.hpp"
#include "obs/metrics.hpp"

namespace ncast::coding {

/// Decoder for one generation under an overlapping-class structure.
template <typename Field>
class OverlapDecoder {
 public:
  using value_type = typename Field::value_type;
  using Packet = CodedPacket<Field>;

  OverlapDecoder(std::uint32_t generation, const GenerationStructure& structure,
                 std::size_t symbols)
      : generation_(generation), structure_(structure), symbols_(symbols) {
    structure_.validate();
    if (structure_.kind != StructureKind::kOverlapped) {
      throw std::invalid_argument(
          "OverlapDecoder: requires an overlapping structure");
    }
    if (symbols_ == 0) throw std::invalid_argument("OverlapDecoder: zero symbols");
    const std::size_t classes = structure_.num_classes();
    std::size_t total_width = 0;
    classes_.reserve(classes);
    for (std::size_t c = 0; c < classes; ++c) {
      classes_.emplace_back(generation, structure_.class_width(c), symbols);
      total_width += structure_.class_width(c);
    }
    done_.assign(structure_.g, 0);
    // Each stack push corresponds to one innovative row gained somewhere, so
    // total pushes per absorb() are bounded by the total class rank capacity.
    stack_.reserve(total_width + 1);
  }

  std::uint32_t generation() const { return generation_; }
  const GenerationStructure& structure() const { return structure_; }
  std::size_t generation_size() const { return structure_.g; }
  std::size_t symbols() const { return symbols_; }
  std::size_t num_classes() const { return classes_.size(); }
  const Decoder<Field>& class_decoder(std::size_t c) const { return classes_[c]; }

  bool complete() const {
    for (const auto& d : classes_) {
      if (!d.complete()) return false;
    }
    return true;
  }

  /// Source packets already individually pinned down somewhere. Exact.
  std::size_t decoded_count() const {
    std::size_t n = 0;
    for (std::size_t j = 0; j < structure_.g; ++j) n += decoded(j) ? 1 : 0;
    return n;
  }

  /// Lower bound on the information gathered toward the g unknowns: summed
  /// class ranks minus the unit rows injected by propagation (those restate
  /// information a class already had globally). An approximation — overlap
  /// columns learned independently by two classes from the *network* are
  /// still double-counted until propagation collapses them.
  std::size_t rank() const {
    std::size_t sum = 0;
    for (const auto& d : classes_) sum += d.rank();
    const std::size_t r = sum > injected_ ? sum - injected_ : 0;
    return r < structure_.g ? r : structure_.g;
  }

  std::uint64_t packets_received() const { return received_; }
  std::uint64_t packets_innovative() const { return innovative_; }
  std::uint64_t packets_redundant() const { return received_ - innovative_; }

  // ncast:hot-begin — per-packet routed absorb + propagation drain: no
  // allocation (buffers preallocated at construction), no throw.

  /// Consumes a packet; returns true iff it was innovative for its class.
  /// Malformed placements (class id out of range, wrong offset/width) and
  /// stray generations are rejected as data. Metric counting for routed
  /// packets happens inside the class decoder (Decoder::absorb_row), so the
  /// process-wide decoder.* counters see exactly one event per packet.
  bool absorb(const Packet& p) {
    ++received_;
    if (p.generation != generation_ || p.payload.size() != symbols_ ||
        !structure_.matches_packet(p.band_offset, p.coeffs.size(),
                                   p.class_id)) {
      reg().received.inc();
      reg().redundant.inc();
      return false;
    }
    const std::size_t k = p.class_id;
    if (!classes_[k].absorb_row(p.coeffs.data(), p.payload.data())) {
      return false;
    }
    ++innovative_;
    propagate(k);
    return true;
  }

 private:
  /// Drains the propagation worklist starting from class `k`: any source
  /// packet newly pinned down in a multiply-covered column is injected into
  /// its other owner classes; classes that gain rank are re-examined.
  void propagate(std::size_t k) {
    stack_.push_back(k);  // ncast:allow(hot_path.alloc): capacity reserved at construction (total class width)
    while (!stack_.empty()) {
      const std::size_t c = stack_.back();
      stack_.pop_back();
      const std::size_t begin = structure_.class_begin(c);
      const std::size_t width = structure_.class_width(c);
      for (std::size_t j = begin; j < begin + width; ++j) {
        if (done_[j]) continue;
        const std::size_t first = structure_.first_class_of(j);
        const std::size_t last = structure_.last_class_of(j);
        if (first == last) continue;  // single-owner column: nothing to share
        if (!classes_[c].recoverable(j - begin)) continue;
        done_[j] = 1;
        const value_type* payload = classes_[c].recovered_payload(j - begin);
        for (std::size_t o = first; o <= last; ++o) {
          if (o == c) continue;
          if (classes_[o].absorb_unit(j - structure_.class_begin(o), payload)) {
            ++injected_;
            stack_.push_back(o);  // ncast:allow(hot_path.alloc): capacity reserved at construction (total class width)
          }
        }
      }
    }
  }

  // ncast:hot-end

 public:
  /// Recovered source packet `index`; requires complete().
  std::vector<value_type> source_packet(std::size_t index) const {
    if (!complete()) {
      throw std::logic_error("OverlapDecoder::source_packet: rank deficient");
    }
    if (index >= structure_.g) {
      throw std::out_of_range("OverlapDecoder::source_packet");
    }
    const std::size_t c = structure_.first_class_of(index);
    return classes_[c].recover_packet(index - structure_.class_begin(c));
  }

  /// All recovered source packets in order; requires complete().
  std::vector<std::vector<value_type>> source_packets() const {
    std::vector<std::vector<value_type>> out;
    out.reserve(structure_.g);
    for (std::size_t i = 0; i < structure_.g; ++i) {
      out.push_back(source_packet(i));
    }
    return out;
  }

 private:
  /// True iff source packet `j` is individually recoverable in some owner.
  bool decoded(std::size_t j) const {
    if (done_[j]) return true;
    const std::size_t first = structure_.first_class_of(j);
    const std::size_t last = structure_.last_class_of(j);
    for (std::size_t c = first; c <= last; ++c) {
      if (classes_[c].recoverable(j - structure_.class_begin(c))) return true;
    }
    return false;
  }

  // Early-reject counting shares the process-wide decoder.* counters with
  // Decoder (routed packets are counted by the class decoder itself).
  struct Instrumentation {
    obs::Counter& received = obs::metrics().counter("decoder.packets_received");
    obs::Counter& redundant = obs::metrics().counter("decoder.packets_redundant");
  };
  static Instrumentation& reg() {
    static Instrumentation instr;
    return instr;
  }

  std::uint32_t generation_;
  GenerationStructure structure_;
  std::size_t symbols_;
  std::uint64_t received_ = 0;
  std::uint64_t innovative_ = 0;
  std::size_t injected_ = 0;            // successful absorb_unit injections
  std::vector<Decoder<Field>> classes_;  // one dense sub-decoder per class
  std::vector<std::uint8_t> done_;       // column already propagated?
  std::vector<std::size_t> stack_;       // propagation worklist (preallocated)
};

}  // namespace ncast::coding
