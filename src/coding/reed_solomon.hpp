#pragma once
// Systematic Reed–Solomon-style MDS erasure code over GF(2^8), built from a
// Cauchy generator matrix. This is the *baseline* coding scheme the paper's
// introduction mentions (source-side erasure codes with plain forwarding in
// the network) — the thing network coding is compared against.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "gf/gf256.hpp"
#include "linalg/matrix.hpp"

namespace ncast::coding {

/// MDS erasure code: k data fragments -> n coded fragments; any k of the n
/// fragments reconstruct the data. Requires 1 <= k <= n <= 256.
class ReedSolomon {
 public:
  ReedSolomon(std::size_t n, std::size_t k);

  std::size_t n() const { return n_; }
  std::size_t k() const { return k_; }

  /// Encodes k equal-length data fragments into n fragments (first k are the
  /// data verbatim — the code is systematic).
  std::vector<std::vector<std::uint8_t>> encode(
      const std::vector<std::vector<std::uint8_t>>& data) const;

  /// Encodes only fragment `index` (0 <= index < n).
  std::vector<std::uint8_t> encode_fragment(
      const std::vector<std::vector<std::uint8_t>>& data, std::size_t index) const;

  /// Reconstructs the k data fragments from any k received fragments, given
  /// as (index, bytes) pairs. Throws std::invalid_argument on bad input
  /// (wrong count, duplicate or out-of-range indices, ragged sizes).
  std::vector<std::vector<std::uint8_t>> decode(
      const std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>>& fragments)
      const;

 private:
  std::size_t n_;
  std::size_t k_;
  /// Row j (0 <= j < n-k) holds the Cauchy coefficients of parity fragment k+j.
  linalg::Matrix<gf::Gf256> parity_;
};

}  // namespace ncast::coding
