#pragma once
// Whole-file RLNC codec over GF(2^8): glues generation segmentation, the
// source encoder, and per-generation decoders into the object a server or a
// downloading client actually holds. Used by the examples, the
// file-distribution simulator, and the protocol endpoints.
//
// Both halves are structure-aware (coding/structure.hpp): the encoder builds
// one SourceEncoder per generation under a StructureSpec (dense by default,
// so every pre-structure call site keeps its exact behavior — including the
// RNG draw sequence), and emit/emit_round_robin preserve the band/class
// geometry because SourceEncoder's placement draws do. The decoder side runs
// a StructuredDecoder per generation behind a DecoderPolicy.

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "coding/encoder.hpp"
#include "coding/generation.hpp"
#include "coding/structure.hpp"
#include "coding/structured_decoder.hpp"
#include "gf/gf256.hpp"
#include "util/rng.hpp"

namespace ncast::coding {

/// Server-side file encoder: owns one SourceEncoder per generation and emits
/// coded packets round-robin or for a chosen generation.
class FileEncoder {
 public:
  using Packet = CodedPacket<gf::Gf256>;

  FileEncoder(std::vector<std::uint8_t> data, std::size_t generation_size,
              std::size_t symbols, StructureSpec structure = {})
      : data_(std::move(data)),
        plan_(plan_generations(data_.size(), generation_size, symbols)),
        structure_(structure.resolve(plan_.generation_size)) {
    encoders_.reserve(plan_.generations);
    std::vector<std::uint8_t> flat;
    for (std::size_t g = 0; g < plan_.generations; ++g) {
      // One flat buffer per generation, handed straight to the encoder — no
      // g-vectors-per-generation allocation storm.
      generation_packets_into(data_, plan_, g, flat);
      encoders_.emplace_back(static_cast<std::uint32_t>(g), structure_,
                             std::move(flat), plan_.symbols);
      flat.clear();
    }
  }

  const GenerationPlan& plan() const { return plan_; }
  const GenerationStructure& structure() const { return structure_; }
  std::size_t generations() const { return plan_.generations; }

  /// Random coded packet from generation `gen`: a band at a random offset,
  /// a random class, or a full dense row, per the structure.
  Packet emit(std::size_t gen, Rng& rng) const {
    return encoders_.at(gen).emit(rng);
  }

  /// Random coded packet, cycling generations across calls.
  Packet emit_round_robin(Rng& rng) {
    const Packet p = emit(next_, rng);
    next_ = (next_ + 1) % plan_.generations;
    return p;
  }

 private:
  std::vector<std::uint8_t> data_;
  GenerationPlan plan_;
  GenerationStructure structure_;
  std::vector<SourceEncoder<gf::Gf256>> encoders_;
  std::size_t next_ = 0;
};

/// Client-side file decoder: per-generation structured decoders plus
/// reassembly. The default (dense spec, auto policy) is the original dense
/// decoder in all but type; encoder-direct consumers of banded streams can
/// pass the matching spec and get the band-elimination speedup.
class FileDecoder {
 public:
  using Packet = CodedPacket<gf::Gf256>;

  explicit FileDecoder(const GenerationPlan& plan, StructureSpec structure = {},
                       DecoderPolicy policy = DecoderPolicy::kAuto)
      : plan_(plan), structure_(structure.resolve(plan.generation_size)) {
    decoders_.reserve(plan_.generations);
    for (std::size_t g = 0; g < plan_.generations; ++g) {
      decoders_.emplace_back(static_cast<std::uint32_t>(g), structure_,
                             plan_.symbols, policy);
    }
  }

  const GenerationStructure& structure() const { return structure_; }

  /// Consumes a packet; returns true iff innovative.
  bool absorb(const Packet& p) {
    if (p.generation >= decoders_.size()) return false;
    return decoders_[p.generation].absorb(p);
  }

  bool complete() const {
    for (const auto& d : decoders_) {
      if (!d.complete()) return false;
    }
    return true;
  }

  /// Ranks summed over generations (progress indicator).
  std::size_t total_rank() const {
    std::size_t r = 0;
    for (const auto& d : decoders_) r += d.rank();
    return r;
  }

  std::size_t needed_rank() const {
    return plan_.generations * plan_.generation_size;
  }

  const StructuredDecoder<gf::Gf256>& decoder(std::size_t gen) const {
    return decoders_.at(gen);
  }

  /// Reconstructs the original bytes; requires complete().
  std::vector<std::uint8_t> data() const {
    if (!complete()) throw std::logic_error("FileDecoder::data: incomplete");
    std::vector<std::vector<std::vector<std::uint8_t>>> decoded;
    decoded.reserve(plan_.generations);
    for (const auto& d : decoders_) decoded.push_back(d.source_packets());
    return reassemble(decoded, plan_);
  }

 private:
  GenerationPlan plan_;
  GenerationStructure structure_;
  std::vector<StructuredDecoder<gf::Gf256>> decoders_;
};

}  // namespace ncast::coding
