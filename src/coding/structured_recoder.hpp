#pragma once
// Structure-aware in-network recoder.
//
// Recoding interacts differently with each generation structure:
//
//   dense       delegates to the original Recoder, draw-for-draw (the RNG
//               stream and emitted bytes are identical to pre-structure
//               code).
//   banded      received band strips are scattered into a dense basis and
//               re-emitted as *dense* packets. Mixing two bands with
//               different offsets widens the support, so recoding densifies
//               banded codes — a known property of sparse network codes, not
//               an implementation shortcut. Downstream nodes of a recoder
//               must therefore decode with the dense structure; banded
//               decoding pays off on encoder-direct traffic. The recoder
//               itself accepts both band strips and densified packets (it
//               may sit behind another recoder).
//   overlapped  recoding happens *within* a class (one Recoder per class),
//               which preserves the structure exactly: a recoded packet is a
//               valid class packet and downstream OverlapDecoders absorb it
//               unchanged. This is the structure whose sparsity survives
//               multi-hop mixing.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "coding/packet.hpp"
#include "coding/recoder.hpp"
#include "coding/structure.hpp"
#include "util/rng.hpp"

namespace ncast::coding {

/// Recoder for one generation under any structure. Buffers are preallocated
/// at construction; absorbing and emitting allocate nothing in steady state.
template <typename Field>
class StructuredRecoder {
 public:
  using value_type = typename Field::value_type;
  using Packet = CodedPacket<Field>;

  StructuredRecoder(std::uint32_t generation,
                    const GenerationStructure& structure, std::size_t symbols)
      : structure_(structure), symbols_(symbols) {
    structure_.validate();
    if (structure_.kind == StructureKind::kOverlapped) {
      const std::size_t classes = structure_.num_classes();
      class_recoders_.reserve(classes);
      for (std::size_t c = 0; c < classes; ++c) {
        class_recoders_.emplace_back(generation, structure_.class_width(c),
                                     symbols);
      }
      nonempty_.reserve(classes);
    } else {
      dense_.emplace(generation, structure_.g, symbols);
    }
  }

  const GenerationStructure& structure() const { return structure_; }
  std::size_t symbols() const { return symbols_; }
  std::uint32_t generation() const {
    return dense_ ? dense_->generation() : class_recoders_.front().generation();
  }

  std::size_t rank() const {
    if (dense_) return dense_->rank();
    std::size_t sum = 0;
    for (const auto& r : class_recoders_) sum += r.rank();
    return sum < structure_.g ? sum : structure_.g;
  }
  bool complete() const {
    if (dense_) return dense_->complete();
    for (const auto& r : class_recoders_) {
      if (!r.complete()) return false;
    }
    return true;
  }

  // ncast:hot-begin — per-packet recode absorb/emit: preallocated buffers,
  // no allocation in steady state, stray packets rejected as data.

  /// Consumes a received packet; returns true iff innovative.
  bool absorb(const Packet& p) {
    switch (structure_.kind) {
      case StructureKind::kDense:
        return dense_->absorb(p);
      case StructureKind::kBanded: {
        const std::size_t g = structure_.g;
        const bool densified = p.band_offset == 0 && p.coeffs.size() == g &&
                               p.class_id == 0;
        if (!densified && !structure_.matches_packet(
                              p.band_offset, p.coeffs.size(), p.class_id)) {
          return false;
        }
        if (densified) return dense_->absorb(p);
        // Scatter the band strip into a reusable dense packet.
        scratch_.generation = p.generation;
        scratch_.band_offset = 0;
        scratch_.class_id = 0;
        scratch_.coeffs.assign(g, value_type{0});
        for (std::size_t j = 0; j < p.coeffs.size(); ++j) {
          const std::size_t i = p.band_offset + j < g
                                    ? p.band_offset + j
                                    : p.band_offset + j - g;
          scratch_.coeffs[i] = p.coeffs[j];
        }
        scratch_.payload.assign(p.payload.begin(), p.payload.end());
        return dense_->absorb(scratch_);
      }
      case StructureKind::kOverlapped: {
        if (!structure_.matches_packet(p.band_offset, p.coeffs.size(),
                                       p.class_id)) {
          return false;
        }
        // The compact strip IS the class-local dense coefficient vector.
        scratch_.generation = p.generation;
        scratch_.band_offset = 0;
        scratch_.class_id = 0;
        scratch_.coeffs.assign(p.coeffs.begin(), p.coeffs.end());
        scratch_.payload.assign(p.payload.begin(), p.payload.end());
        return class_recoders_[p.class_id].absorb(scratch_);
      }
    }
    return false;
  }

  /// Writes a random recombination into `out`, reusing its buffers. Returns
  /// false if nothing has been received. Dense/banded structures emit dense
  /// packets; overlapped structures emit a packet of one uniformly chosen
  /// nonempty class (no draw is spent when only one class has data, so the
  /// single-class case stays stream-identical to the dense recoder).
  bool emit_into(Packet& out, Rng& rng) const {
    if (dense_) return dense_->emit_into(out, rng);
    nonempty_.clear();
    for (std::size_t c = 0; c < class_recoders_.size(); ++c) {
      if (class_recoders_[c].rank() > 0) {
        nonempty_.push_back(c);  // ncast:allow(hot_path.alloc): capacity reserved at construction (num_classes entries)
      }
    }
    if (nonempty_.empty()) return false;
    const std::size_t pick =
        nonempty_.size() > 1 ? nonempty_[rng.below(nonempty_.size())]
                             : nonempty_.front();
    if (!class_recoders_[pick].emit_into(out, rng)) return false;
    out.band_offset = static_cast<std::uint16_t>(structure_.class_begin(pick));
    out.class_id = static_cast<std::uint16_t>(pick);
    return true;
  }

  // ncast:hot-end

  /// Emits a recombination as a fresh packet, or nullopt if empty.
  std::optional<Packet> emit(Rng& rng) const {
    Packet out;
    if (!emit_into(out, rng)) return std::nullopt;
    return out;
  }

 private:
  GenerationStructure structure_;
  std::size_t symbols_;
  std::optional<Recoder<Field>> dense_;      // dense and banded structures
  std::vector<Recoder<Field>> class_recoders_;  // overlapped structures
  mutable Packet scratch_;                   // reusable routing/scatter packet
  mutable std::vector<std::size_t> nonempty_;  // reusable emit class list
};

}  // namespace ncast::coding
