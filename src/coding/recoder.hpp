#pragma once
// In-network recoder: buffers received packets (as a reduced basis, which is
// information-equivalent to the raw buffer and memory-bounded by the
// generation size) and emits fresh random linear combinations. This is the
// "mixing at each clip" of the curtain model.
//
// Emitting is zero-copy: coefficients are drawn into a preallocated scratch
// vector and the mix reads straight from the decoder's arena rows into the
// caller's packet buffers. emit_into() reuses whatever capacity the caller's
// packet already has, so a simulator that recycles packets allocates nothing
// per emission in steady state.

#include <cstdint>
#include <optional>

#include "coding/decoder.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace ncast::coding {

/// Recoder for one generation. Absorbing and emitting are both O(g * width).
template <typename Field>
class Recoder {
 public:
  using value_type = typename Field::value_type;
  using Packet = CodedPacket<Field>;

  Recoder(std::uint32_t generation, std::size_t generation_size, std::size_t symbols)
      : basis_(generation, generation_size, symbols) {
    mix_.reserve(generation_size);
  }

  /// Consumes a received packet; returns true iff innovative.
  bool absorb(const Packet& p) { return basis_.absorb(p); }

  std::size_t rank() const { return basis_.rank(); }
  bool complete() const { return basis_.complete(); }
  std::uint32_t generation() const { return basis_.generation(); }
  const Decoder<Field>& decoder() const { return basis_; }

  // ncast:hot-begin — per-emission mixing: reuses the caller's packet
  // capacity, zero heap allocations in steady state.

  /// Writes a random combination of everything received so far into `out`,
  /// reusing its buffers. Returns false (and leaves `out` unspecified) if
  /// nothing has been received — a node with an empty buffer stays silent.
  bool emit_into(Packet& out, Rng& rng) const {
    const std::size_t r = basis_.rank();
    if (r == 0) return false;
    static obs::Histogram& emit_ns = obs::metrics().histogram("recoder.emit_ns");
    obs::ScopeTimer timer(emit_ns);
    const std::size_t g = basis_.generation_size();
    const std::size_t symbols = basis_.symbols();

    // Draw the mixing coefficients first. A degenerate all-zero draw is not
    // retried against the basis: one uniformly random position is forced to a
    // uniformly random nonzero value instead, so the fix-up costs O(1) and
    // the emitted packet still carries information.
    mix_.resize(r);  // ncast:allow(hot_path.alloc): capacity reserved at construction (generation_size entries)
    bool nonzero = false;
    for (std::size_t i = 0; i < r; ++i) {
      mix_[i] = static_cast<value_type>(rng.below(Field::order));
      nonzero = nonzero || mix_[i] != value_type{0};
    }
    if (!nonzero) {
      mix_[rng.below(r)] = static_cast<value_type>(1 + rng.below(Field::order - 1));
    }

    out.generation = basis_.generation();
    out.band_offset = 0;  // dense emission; clears a recycled packet's strip
    out.class_id = 0;
    out.coeffs.assign(g, value_type{0});
    out.payload.assign(symbols, value_type{0});
    for (std::size_t i = 0; i < r; ++i) {
      const value_type c = mix_[i];
      if (c == value_type{0}) continue;
      const value_type* row = basis_.basis_row(i);  // [coeffs | payload]
      Field::region_madd(out.coeffs.data(), row, c, g);
      Field::region_madd(out.payload.data(), row + g, c, symbols);
    }
    return true;
  }

  // ncast:hot-end

  /// Emits a random combination of everything received so far, or nullopt if
  /// nothing has been received. Allocates a fresh packet; loops that care
  /// about allocation churn use emit_into().
  std::optional<Packet> emit(Rng& rng) const {
    Packet out;
    if (!emit_into(out, rng)) return std::nullopt;
    return out;
  }

 private:
  Decoder<Field> basis_;
  mutable std::vector<value_type> mix_;  // reusable coefficient draw
};

}  // namespace ncast::coding
