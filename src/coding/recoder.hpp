#pragma once
// In-network recoder: buffers received packets (as a reduced basis, which is
// information-equivalent to the raw buffer and memory-bounded by the
// generation size) and emits fresh random linear combinations. This is the
// "mixing at each clip" of the curtain model.

#include <cstdint>
#include <optional>

#include "coding/decoder.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace ncast::coding {

/// Recoder for one generation. Absorbing and emitting are both O(g * width).
template <typename Field>
class Recoder {
 public:
  using value_type = typename Field::value_type;
  using Packet = CodedPacket<Field>;

  Recoder(std::uint32_t generation, std::size_t generation_size, std::size_t symbols)
      : basis_(generation, generation_size, symbols) {}

  /// Consumes a received packet; returns true iff innovative.
  bool absorb(const Packet& p) { return basis_.absorb(p); }

  std::size_t rank() const { return basis_.rank(); }
  bool complete() const { return basis_.complete(); }
  std::uint32_t generation() const { return basis_.generation(); }
  const Decoder<Field>& decoder() const { return basis_; }

  /// Emits a random combination of everything received so far, or nullopt if
  /// nothing has been received (a node with an empty buffer stays silent).
  std::optional<Packet> emit(Rng& rng) const {
    if (basis_.rank() == 0) return std::nullopt;
    static obs::Histogram& emit_ns = obs::metrics().histogram("recoder.emit_ns");
    obs::ScopeTimer timer(emit_ns);
    Packet out;
    out.generation = basis_.generation();
    out.coeffs.assign(basis_.generation_size(), value_type{0});
    out.payload.assign(basis_.symbols(), value_type{0});
    bool nonzero = false;
    while (!nonzero) {
      for (std::size_t i = 0; i < basis_.rank(); ++i) {
        const auto c = static_cast<value_type>(rng.below(Field::order));
        if (c == value_type{0}) continue;
        nonzero = true;
        const Packet b = basis_.basis_packet(i);
        Field::region_madd(out.coeffs.data(), b.coeffs.data(), c, out.coeffs.size());
        Field::region_madd(out.payload.data(), b.payload.data(), c, out.payload.size());
      }
    }
    return out;
  }

 private:
  Decoder<Field> basis_;
};

}  // namespace ncast::coding
