#pragma once
// Segmentation of a byte stream into generations of fixed-size packets, per
// the practical network coding framework [5]. Generations bound the decoding
// matrix size and the coefficient overhead per packet.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace ncast::coding {

/// Parameters of a segmented stream.
struct GenerationPlan {
  std::size_t data_size = 0;        ///< original byte count
  std::size_t generation_size = 0;  ///< packets per generation (g)
  std::size_t symbols = 0;          ///< bytes per packet payload
  std::size_t generations = 0;      ///< number of generations

  std::size_t bytes_per_generation() const { return generation_size * symbols; }
};

/// Computes the segmentation of `data_size` bytes into generations of
/// `generation_size` packets of `symbols` bytes each (last generation is
/// zero-padded).
inline GenerationPlan plan_generations(std::size_t data_size,
                                       std::size_t generation_size,
                                       std::size_t symbols) {
  if (generation_size == 0 || symbols == 0) {
    throw std::invalid_argument("plan_generations: zero generation size or symbols");
  }
  GenerationPlan plan;
  plan.data_size = data_size;
  plan.generation_size = generation_size;
  plan.symbols = symbols;
  const std::size_t per_gen = plan.bytes_per_generation();
  plan.generations = (data_size + per_gen - 1) / per_gen;
  if (plan.generations == 0) plan.generations = 1;  // empty data still makes one generation
  return plan;
}

/// Extracts generation `gen` of `data` into `flat` as one contiguous buffer
/// of g * symbols bytes (packet p at [p * symbols, ...)), zero-padded past
/// the end of the data. Reuses `flat`'s capacity — one assign + one bulk
/// copy, no per-packet vectors. This is the buffer layout SourceEncoder's
/// flat constructor takes directly.
inline void generation_packets_into(const std::vector<std::uint8_t>& data,
                                    const GenerationPlan& plan,
                                    std::size_t gen,
                                    std::vector<std::uint8_t>& flat) {
  if (gen >= plan.generations) throw std::out_of_range("generation_packets_into");
  const std::size_t per_gen = plan.bytes_per_generation();
  const std::size_t base = gen * per_gen;
  flat.assign(per_gen, 0);
  if (base < data.size()) {
    const std::size_t n = std::min(per_gen, data.size() - base);
    std::copy(data.begin() + base, data.begin() + base + n, flat.begin());
  }
}

/// Extracts generation `gen` of `data` as g packets of `symbols` bytes,
/// zero-padded past the end of the data. Allocates g per-packet vectors;
/// hot callers (file_codec, the benches) use generation_packets_into().
inline std::vector<std::vector<std::uint8_t>> generation_packets(
    const std::vector<std::uint8_t>& data, const GenerationPlan& plan,
    std::size_t gen) {
  std::vector<std::uint8_t> flat;
  generation_packets_into(data, plan, gen, flat);
  std::vector<std::vector<std::uint8_t>> packets;
  packets.reserve(plan.generation_size);
  for (std::size_t p = 0; p < plan.generation_size; ++p) {
    packets.emplace_back(flat.begin() + p * plan.symbols,
                         flat.begin() + (p + 1) * plan.symbols);
  }
  return packets;
}

/// Reassembles the original byte stream from per-generation decoded packets.
/// `decoded[gen]` must hold the g packets of that generation.
inline std::vector<std::uint8_t> reassemble(
    const std::vector<std::vector<std::vector<std::uint8_t>>>& decoded,
    const GenerationPlan& plan) {
  if (decoded.size() != plan.generations) {
    throw std::invalid_argument("reassemble: generation count mismatch");
  }
  std::vector<std::uint8_t> out(plan.data_size);
  for (std::size_t gen = 0; gen < plan.generations; ++gen) {
    if (decoded[gen].size() != plan.generation_size) {
      throw std::invalid_argument("reassemble: packet count mismatch");
    }
    const std::size_t base = gen * plan.bytes_per_generation();
    for (std::size_t p = 0; p < plan.generation_size; ++p) {
      if (decoded[gen][p].size() != plan.symbols) {
        throw std::invalid_argument("reassemble: symbol count mismatch");
      }
      for (std::size_t s = 0; s < plan.symbols; ++s) {
        const std::size_t off = base + p * plan.symbols + s;
        if (off < out.size()) out[off] = decoded[gen][p][s];
      }
    }
  }
  return out;
}

}  // namespace ncast::coding
