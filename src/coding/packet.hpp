#pragma once
// Coded packets as defined by practical network coding (Chou, Wu, Jain [5]):
// each packet carries, in-band, the coefficient vector that expresses its
// payload as a linear combination of the generation's original packets. This
// makes packets self-describing — decodable and recodable even as topology
// changes and nodes fail, which is exactly the property the overlay relies on.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ncast::coding {

/// One coded packet of a generation. Under the dense structure
/// `coeffs.size()` equals the generation size g and `band_offset`/`class_id`
/// stay 0; under banded/overlapped structures (coding/structure.hpp) the
/// coefficients are a compact strip of band_offset's band or class_id's
/// class, and `coeffs[j]` multiplies source packet
/// `(band_offset + j) mod g`. `payload.size()` is the number of field
/// symbols per packet in every case.
template <typename Field>
struct CodedPacket {
  using value_type = typename Field::value_type;

  std::uint32_t generation = 0;
  std::uint16_t band_offset = 0;  ///< first source index the coeffs cover
  std::uint16_t class_id = 0;     ///< overlapped structures: emitting class
  std::vector<value_type> coeffs;
  std::vector<value_type> payload;

  /// True if the coefficient vector is all-zero (carries no information).
  bool is_degenerate() const {
    for (const auto c : coeffs) {
      if (c != value_type{0}) return false;
    }
    return true;
  }

  /// Wire size in bytes: header + coefficients + payload.
  std::size_t wire_size() const {
    return sizeof(generation) +
           (coeffs.size() + payload.size()) * sizeof(value_type);
  }
};

}  // namespace ncast::coding
