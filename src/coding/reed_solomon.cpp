#include "coding/reed_solomon.hpp"

#include <stdexcept>

#include "linalg/gaussian.hpp"

namespace ncast::coding {

using Gf = gf::Gf256;

ReedSolomon::ReedSolomon(std::size_t n, std::size_t k)
    : n_(n), k_(k), parity_(n >= k ? n - k : 0, k) {
  if (k == 0 || n < k || n > 256) {
    throw std::invalid_argument("ReedSolomon: need 1 <= k <= n <= 256");
  }
  // Cauchy matrix C[j][i] = 1 / (x_j + y_i) with all x_j, y_i distinct.
  // x_j = k + j and y_i = i are distinct field elements for n <= 256, and
  // x_j + y_i != 0 because the sets do not intersect. Every square submatrix
  // of a Cauchy matrix is nonsingular, so [I ; C] is an MDS generator.
  for (std::size_t j = 0; j < n_ - k_; ++j) {
    for (std::size_t i = 0; i < k_; ++i) {
      const auto xj = static_cast<Gf::value_type>(k_ + j);
      const auto yi = static_cast<Gf::value_type>(i);
      parity_(j, i) = Gf::inv(Gf::add(xj, yi));
    }
  }
}

std::vector<std::vector<std::uint8_t>> ReedSolomon::encode(
    const std::vector<std::vector<std::uint8_t>>& data) const {
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) out.push_back(encode_fragment(data, i));
  return out;
}

std::vector<std::uint8_t> ReedSolomon::encode_fragment(
    const std::vector<std::vector<std::uint8_t>>& data, std::size_t index) const {
  if (data.size() != k_) throw std::invalid_argument("ReedSolomon::encode: need k fragments");
  const std::size_t len = data.front().size();
  for (const auto& d : data) {
    if (d.size() != len) throw std::invalid_argument("ReedSolomon::encode: ragged data");
  }
  if (index >= n_) throw std::out_of_range("ReedSolomon::encode_fragment");
  if (index < k_) return data[index];

  std::vector<std::uint8_t> frag(len, 0);
  const std::size_t j = index - k_;
  for (std::size_t i = 0; i < k_; ++i) {
    Gf::region_madd(frag.data(), data[i].data(), parity_(j, i), len);
  }
  return frag;
}

std::vector<std::vector<std::uint8_t>> ReedSolomon::decode(
    const std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>>& fragments)
    const {
  if (fragments.size() != k_) {
    throw std::invalid_argument("ReedSolomon::decode: need exactly k fragments");
  }
  const std::size_t len = fragments.front().second.size();
  std::vector<bool> seen(n_, false);
  for (const auto& [idx, bytes] : fragments) {
    if (idx >= n_) throw std::invalid_argument("ReedSolomon::decode: index out of range");
    if (seen[idx]) throw std::invalid_argument("ReedSolomon::decode: duplicate index");
    seen[idx] = true;
    if (bytes.size() != len) throw std::invalid_argument("ReedSolomon::decode: ragged fragments");
  }

  // Row r of A expresses received fragment r as a combination of the data
  // fragments; invert to recover the data.
  linalg::Matrix<Gf> a(k_, k_);
  for (std::size_t r = 0; r < k_; ++r) {
    const std::size_t idx = fragments[r].first;
    if (idx < k_) {
      a(r, idx) = 1;
    } else {
      for (std::size_t i = 0; i < k_; ++i) a(r, i) = parity_(idx - k_, i);
    }
  }
  const auto inv = linalg::invert(a);
  if (!inv) throw std::logic_error("ReedSolomon::decode: MDS violation (bug)");

  std::vector<std::vector<std::uint8_t>> data(k_, std::vector<std::uint8_t>(len, 0));
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t r = 0; r < k_; ++r) {
      Gf::region_madd(data[i].data(), fragments[r].second.data(), (*inv)(i, r), len);
    }
  }
  return data;
}

}  // namespace ncast::coding
