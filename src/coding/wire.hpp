#pragma once
// Wire format for coded packets. Practical network coding [5] requires the
// coefficient vector to travel inside the packet; this header defines the
// byte layout a real deployment would put on the wire:
//
//   offset  size  field
//   0       2     magic 0x4E43 ("NC"), little-endian
//   2       1     version (1)
//   3       1     field id (1 = GF(2^8), 2 = GF(2^16))
//   4       4     generation id, little-endian
//   8       2     generation size g, little-endian
//   10      2     payload symbol count, little-endian
//   12      g*w   coefficients (w = symbol width in bytes)
//   12+g*w  s*w   payload
//
// Deserialization is defensive: any malformed buffer yields nullopt, never
// undefined behavior — packets arrive from the network, not from friends.

#include <cstdint>
#include <optional>
#include <vector>

#include "coding/packet.hpp"
#include "gf/gf256.hpp"
#include "gf/gf2_16.hpp"

namespace ncast::coding {

inline constexpr std::uint16_t kWireMagic = 0x4E43;
inline constexpr std::uint8_t kWireVersion = 1;

/// Field id carried on the wire.
template <typename Field>
struct WireFieldId;
template <>
struct WireFieldId<gf::Gf256> {
  static constexpr std::uint8_t value = 1;
};
template <>
struct WireFieldId<gf::Gf2_16> {
  static constexpr std::uint8_t value = 2;
};

/// Serialized size of a packet with the given shape.
template <typename Field>
constexpr std::size_t wire_size(std::size_t g, std::size_t symbols) {
  return 12 + (g + symbols) * sizeof(typename Field::value_type);
}

/// Encodes a packet into its wire representation.
template <typename Field>
std::vector<std::uint8_t> serialize(const CodedPacket<Field>& p);

/// Decodes a wire buffer; nullopt on any structural problem (bad magic,
/// version, field id, size mismatch, or length overflowing the buffer).
template <typename Field>
std::optional<CodedPacket<Field>> deserialize(
    const std::vector<std::uint8_t>& bytes);

}  // namespace ncast::coding
