#pragma once
// Wire format for coded packets. Practical network coding [5] requires the
// coefficient vector to travel inside the packet; this header defines the
// byte layout a real deployment would put on the wire:
//
// Version 1 (dense packets, coefficient count == g):
//
//   offset  size  field
//   0       2     magic 0x4E43 ("NC"), little-endian
//   2       1     version (1)
//   3       1     field id (1 = GF(2^8), 2 = GF(2^16))
//   4       4     generation id, little-endian
//   8       2     generation size g, little-endian
//   10      2     payload symbol count, little-endian
//   12      g*w   coefficients (w = symbol width in bytes)
//   12+g*w  s*w   payload
//
// Version 2 (structured packets, coding/structure.hpp): same first 12 bytes
// with version = 2, then a structure block, then a *compact* coefficient
// strip of `n` entries covering source packets (band_offset + j) mod g:
//
//   12      1     structure kind (0 dense, 1 banded, 2 overlapped)
//   13      1     flags (bit 0: band wraps past g; others must be zero)
//   14      2     band offset, little-endian
//   16      2     class id, little-endian
//   18      2     coefficient count n, little-endian
//   20      n*w   coefficients
//   20+n*w  s*w   payload
//
// Deserialization is defensive: any malformed buffer yields nullopt, never
// undefined behavior — packets arrive from the network, not from friends.
// Version-2 validation is two-stage: deserialize(bytes) enforces everything
// checkable from the header alone (kind range, offset/width bounds, flag
// consistency, exact length), and deserialize(bytes, structure) additionally
// rejects placements that don't exist under the receiver's structure (wrong
// band width, class id out of range, offset not a class boundary).

#include <cstdint>
#include <optional>
#include <vector>

#include "coding/packet.hpp"
#include "coding/structure.hpp"
#include "gf/gf256.hpp"
#include "gf/gf2_16.hpp"

namespace ncast::coding {

inline constexpr std::uint16_t kWireMagic = 0x4E43;
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::uint8_t kWireVersionStructured = 2;
inline constexpr std::uint8_t kWireFlagWrap = 0x01;

/// Field id carried on the wire.
template <typename Field>
struct WireFieldId;
template <>
struct WireFieldId<gf::Gf256> {
  static constexpr std::uint8_t value = 1;
};
template <>
struct WireFieldId<gf::Gf2_16> {
  static constexpr std::uint8_t value = 2;
};

/// Serialized size of a version-1 (dense) packet with the given shape.
template <typename Field>
constexpr std::size_t wire_size(std::size_t g, std::size_t symbols) {
  return 12 + (g + symbols) * sizeof(typename Field::value_type);
}

/// Serialized size of a version-2 (structured) packet carrying `coeffs`
/// compact coefficients.
template <typename Field>
constexpr std::size_t wire_size_structured(std::size_t coeffs,
                                           std::size_t symbols) {
  return 20 + (coeffs + symbols) * sizeof(typename Field::value_type);
}

/// Encodes a dense packet into its version-1 wire representation
/// (coeffs.size() is the generation size).
template <typename Field>
std::vector<std::uint8_t> serialize(const CodedPacket<Field>& p);

/// Encodes a structured packet into its version-2 wire representation.
/// `structure` supplies the generation size and kind; the packet's strip is
/// written as-is (serialize what you were given — validation is the
/// receiver's job).
template <typename Field>
std::vector<std::uint8_t> serialize_structured(
    const CodedPacket<Field>& p, const GenerationStructure& structure);

/// Decodes a wire buffer of either version; nullopt on any structural
/// problem (bad magic, version, field id, out-of-range placement, flag
/// inconsistency, or size mismatch).
template <typename Field>
std::optional<CodedPacket<Field>> deserialize(
    const std::vector<std::uint8_t>& bytes);

/// Decodes and additionally validates the placement against the receiver's
/// structure: version-2 packets must be well-formed under `structure`
/// (matching g, band width, class id in range, offset on a class boundary);
/// version-1 packets must be dense packets of the right generation size.
template <typename Field>
std::optional<CodedPacket<Field>> deserialize(
    const std::vector<std::uint8_t>& bytes,
    const GenerationStructure& structure);

/// Serializes a packet for a stream governed by `structure`, choosing the
/// wire version by the packet's *shape*: dense-shaped packets (full-width
/// row at offset 0 — every dense-structure emission, and every densified
/// relay emission on a banded stream) take the version-1 layout
/// byte-for-byte, so dense streams stay wire-identical to pre-structure
/// code; everything else (band strips, class packets) rides version 2.
template <typename Field>
std::vector<std::uint8_t> serialize_stream(const CodedPacket<Field>& p,
                                           const GenerationStructure& structure);

/// The receive half of serialize_stream: decodes either version and
/// validates against the *stream admission* rule rather than the strict
/// encoder shape. Version-2 packets must match `structure` exactly (wrong
/// kind, band width, or class placement dies here); version-1 dense rows are
/// admitted on dense streams and — because recoding densifies banded codes —
/// on banded streams, but never on overlapped streams, whose recoding is
/// class-preserving. See GenerationStructure::admits_packet().
template <typename Field>
std::optional<CodedPacket<Field>> deserialize_stream(
    const std::vector<std::uint8_t>& bytes,
    const GenerationStructure& structure);

}  // namespace ncast::coding
