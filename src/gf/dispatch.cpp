// Runtime kernel-tier selection for the GF region operations. This is the
// only place in the library that inspects the CPU or the environment; the
// field front ends (gf256.cpp, gf2_16.cpp) call through the function-pointer
// tables published here.

#include "gf/dispatch.hpp"

#include <cstdlib>

#include "gf/gf256_simd.hpp"
#include "gf/gf256_ssse3.hpp"
#include "gf/gf2_16_simd.hpp"
#include "gf/gf_gfni.hpp"

namespace ncast::gf {

namespace detail {

// ncast:hot-begin — scalar fallback kernels: allocation- and throw-free.

void gf256_madd_scalar(std::uint8_t* dst, const std::uint8_t* src,
                       const std::uint8_t* mul_row, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= mul_row[src[i]];
}

void gf256_mul_scalar(std::uint8_t* dst, const std::uint8_t* mul_row,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = mul_row[dst[i]];
}

void gf256_add_scalar(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n) {
  std::size_t i = 0;
  // Word-at-a-time XOR; GF(2^8) addition is carry-free.
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    __builtin_memcpy(&a, dst + i, 8);
    __builtin_memcpy(&b, src + i, 8);
    a ^= b;
    __builtin_memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void gf2_16_madd_scalar(std::uint16_t* dst, const std::uint16_t* src,
                        const std::uint16_t (*nib)[16], std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint16_t v = src[i];
    dst[i] ^= static_cast<std::uint16_t>(nib[0][v & 15] ^ nib[1][(v >> 4) & 15] ^
                                         nib[2][(v >> 8) & 15] ^ nib[3][v >> 12]);
  }
}

void gf2_16_mul_scalar(std::uint16_t* dst, const std::uint16_t (*nib)[16],
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint16_t v = dst[i];
    dst[i] = static_cast<std::uint16_t>(nib[0][v & 15] ^ nib[1][(v >> 4) & 15] ^
                                        nib[2][(v >> 8) & 15] ^ nib[3][v >> 12]);
  }
}

void gf2_16_add_scalar(std::uint16_t* dst, const std::uint16_t* src,
                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    std::uint64_t a, b;
    __builtin_memcpy(&a, dst + i, 8);
    __builtin_memcpy(&b, src + i, 8);
    a ^= b;
    __builtin_memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

// ncast:hot-end

}  // namespace detail

namespace {

detail::Gf256Kernels g_gf256{detail::gf256_madd_scalar, detail::gf256_mul_scalar,
                             detail::gf256_add_scalar};
detail::Gf2_16Kernels g_gf2_16{detail::gf2_16_madd_scalar,
                               detail::gf2_16_mul_scalar,
                               detail::gf2_16_add_scalar};
Tier g_tier = Tier::kScalar;

void install(Tier t) {
  g_tier = t;
  switch (t) {
    case Tier::kGfni:
      g_gf256 = {detail::region_madd_gfni, detail::region_mul_gfni,
                 detail::region_add_gfni};
      g_gf2_16 = {detail::region_madd_gfni_u16, detail::region_mul_gfni_u16,
                  detail::region_add_gfni_u16};
      break;
    case Tier::kAvx2:
      g_gf256 = {detail::region_madd_avx2, detail::region_mul_avx2,
                 detail::region_add_avx2};
      g_gf2_16 = {detail::region_madd_avx2_u16, detail::region_mul_avx2_u16,
                  detail::region_add_avx2_u16};
      break;
    case Tier::kSsse3:
      g_gf256 = {detail::region_madd_ssse3, detail::region_mul_ssse3,
                 detail::region_add_ssse3};
      // GF(2^16) has no SSSE3 kernel; its nibble-table scalar loop reads only
      // 128 bytes of table per coefficient and stays the best non-AVX2 path.
      g_gf2_16 = {detail::gf2_16_madd_scalar, detail::gf2_16_mul_scalar,
                  detail::gf2_16_add_scalar};
      break;
    case Tier::kScalar:
      g_gf256 = {detail::gf256_madd_scalar, detail::gf256_mul_scalar,
                 detail::gf256_add_scalar};
      g_gf2_16 = {detail::gf2_16_madd_scalar, detail::gf2_16_mul_scalar,
                  detail::gf2_16_add_scalar};
      break;
  }
}

bool force_scalar_env() {
  const char* s = std::getenv("NCAST_FORCE_SCALAR");
  return s != nullptr && *s != '\0' && *s != '0';
}

/// One-shot initialization, latched by a function-local static.
bool init() {
  install(force_scalar_env() ? Tier::kScalar : best_supported_tier());
  return true;
}

void ensure_init() {
  static const bool done = init();
  (void)done;
}

}  // namespace

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kGfni:
      return "gfni";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kSsse3:
      return "ssse3";
    case Tier::kScalar:
      return "scalar";
  }
  return "unknown";
}

Tier best_supported_tier() {
  if (detail::gfni_available()) return Tier::kGfni;
  if (detail::avx2_available()) return Tier::kAvx2;
  if (detail::ssse3_available()) return Tier::kSsse3;
  return Tier::kScalar;
}

Tier active_tier() {
  ensure_init();
  return g_tier;
}

void set_tier_for_testing(Tier t) {
  ensure_init();
  const Tier best = best_supported_tier();
  install(static_cast<int>(t) <= static_cast<int>(best) ? t : best);
}

namespace detail {

const Gf256Kernels& gf256_kernels() {
  ensure_init();
  return g_gf256;
}

const Gf2_16Kernels& gf2_16_kernels() {
  ensure_init();
  return g_gf2_16;
}

}  // namespace detail

}  // namespace ncast::gf
