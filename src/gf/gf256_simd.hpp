#pragma once
// AVX2 backend for GF(2^8) region operations, using the classic nibble-table
// shuffle technique: for a fixed coefficient c, the products c*x for all 256
// x are determined by two 16-entry tables (low and high nibble), which fit
// in one vector register each and are applied with a byte shuffle — 32
// multiply-accumulates per instruction pair.
//
// This file only declares the kernels; they are compiled in a separate
// translation unit with AVX2 codegen enabled and selected at runtime, so the
// library remains runnable on machines without AVX2.

#include <cstddef>
#include <cstdint>

namespace ncast::gf::detail {

/// True if the running CPU supports the AVX2 kernels.
bool avx2_available();

/// dst[i] ^= mul_row[src[i]] for n bytes, where mul_row is the 256-entry
/// product table of the coefficient. Requires avx2_available().
void region_madd_avx2(std::uint8_t* dst, const std::uint8_t* src,
                      const std::uint8_t* mul_row, std::size_t n);

/// dst[i] = mul_row[dst[i]] for n bytes. Requires avx2_available().
void region_mul_avx2(std::uint8_t* dst, const std::uint8_t* mul_row,
                     std::size_t n);

/// dst[i] ^= src[i] for n bytes. Requires avx2_available().
void region_add_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);

}  // namespace ncast::gf::detail
