// SSSE3 kernels for GF(2^8) region operations. Compiled with -mssse3 (see
// CMakeLists); callers must gate on ssse3_available().

#include "gf/gf256_ssse3.hpp"

#include <immintrin.h>

namespace ncast::gf::detail {
// ncast:hot-begin — region kernels: allocation- and throw-free by contract.


bool ssse3_available() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("ssse3");
#else
  return false;
#endif
}

namespace {

/// 16-entry nibble product tables for the coefficient whose full product
/// table is `mul_row`: lo[x] = c*x, hi[x] = c*(x<<4).
inline void build_nibble_tables(const std::uint8_t* mul_row, __m128i& lo,
                                __m128i& hi) {
  alignas(16) std::uint8_t lo_bytes[16];
  alignas(16) std::uint8_t hi_bytes[16];
  for (int x = 0; x < 16; ++x) {
    lo_bytes[x] = mul_row[x];
    hi_bytes[x] = mul_row[x << 4];
  }
  lo = _mm_load_si128(reinterpret_cast<const __m128i*>(lo_bytes));
  hi = _mm_load_si128(reinterpret_cast<const __m128i*>(hi_bytes));
}

}  // namespace

void region_madd_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                       const std::uint8_t* mul_row, std::size_t n) {
  __m128i lo, hi;
  build_nibble_tables(mul_row, lo, hi);
  const __m128i mask = _mm_set1_epi8(0x0F);

  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i lo_n = _mm_and_si128(s, mask);
    const __m128i hi_n = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
    const __m128i prod = _mm_xor_si128(_mm_shuffle_epi8(lo, lo_n),
                                       _mm_shuffle_epi8(hi, hi_n));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, prod));
  }
  for (; i < n; ++i) dst[i] ^= mul_row[src[i]];
}

void region_mul_ssse3(std::uint8_t* dst, const std::uint8_t* mul_row,
                      std::size_t n) {
  __m128i lo, hi;
  build_nibble_tables(mul_row, lo, hi);
  const __m128i mask = _mm_set1_epi8(0x0F);

  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i lo_n = _mm_and_si128(d, mask);
    const __m128i hi_n = _mm_and_si128(_mm_srli_epi64(d, 4), mask);
    const __m128i prod = _mm_xor_si128(_mm_shuffle_epi8(lo, lo_n),
                                       _mm_shuffle_epi8(hi, hi_n));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), prod);
  }
  for (; i < n; ++i) dst[i] = mul_row[dst[i]];
}

void region_add_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, s));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

// ncast:hot-end

}  // namespace ncast::gf::detail
