#pragma once
// GFNI (Galois Field New Instructions) kernels for both fields, using 64-byte
// AVX-512 vectors. `vgf2p8affineqb` applies an arbitrary 8x8 GF(2) bit matrix
// to every byte of a vector; multiplication by a constant in ANY binary field
// is GF(2)-linear, so one affine per 64 bytes implements GF(2^8) region mul
// for our 0x11D polynomial (the instruction's own 0x11B multiply is useless
// here, the affine form is not). GF(2^16) symbols factor into a 2x2 block
// matrix of four 8x8 transforms applied to the interleaved lo/hi byte stream.
//
// Selected by the dispatch layer (gf/dispatch.cpp) as tier kGfni when the CPU
// has GFNI + AVX512BW + AVX512VL. Do not call these without checking
// gfni_available().

#include <cstddef>
#include <cstdint>

namespace ncast::gf::detail {

/// True when the running CPU supports the kGfni tier
/// (GFNI + AVX512F + AVX512BW + AVX512VL).
bool gfni_available();

// GF(2^8): same contract as the other tiers — mul_row is the 256-entry
// product row for the coefficient (mul_row[x] == c*x, so mul_row[1] == c).
void region_madd_gfni(std::uint8_t* dst, const std::uint8_t* src,
                      const std::uint8_t* mul_row, std::size_t n);
void region_mul_gfni(std::uint8_t* dst, const std::uint8_t* mul_row,
                     std::size_t n);
void region_add_gfni(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);

// GF(2^16): same contract as the other tiers — nib[k][x] == c * (x << 4k),
// from which the kernel derives the coefficient's 16x16 bit matrix
// (column 4k+b is nib[k][1<<b]).
void region_madd_gfni_u16(std::uint16_t* dst, const std::uint16_t* src,
                          const std::uint16_t (*nib)[16], std::size_t n);
void region_mul_gfni_u16(std::uint16_t* dst, const std::uint16_t (*nib)[16],
                         std::size_t n);
void region_add_gfni_u16(std::uint16_t* dst, const std::uint16_t* src,
                         std::size_t n);

}  // namespace ncast::gf::detail
