#pragma once
// SSSE3 backend for GF(2^8) region operations — the same nibble-table shuffle
// technique as the AVX2 backend at half the vector width, so pre-AVX2 x86
// hosts (anything since ~2006) still get 16 multiply-accumulates per shuffle
// pair instead of falling all the way to the scalar loop.
//
// Declarations only; the kernels are compiled in their own translation unit
// with SSSE3 codegen enabled and selected at runtime (see gf/dispatch.cpp).

#include <cstddef>
#include <cstdint>

namespace ncast::gf::detail {

/// True if the running CPU supports the SSSE3 kernels.
bool ssse3_available();

/// dst[i] ^= mul_row[src[i]] for n bytes. Requires ssse3_available().
void region_madd_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                       const std::uint8_t* mul_row, std::size_t n);

/// dst[i] = mul_row[dst[i]] for n bytes. Requires ssse3_available().
void region_mul_ssse3(std::uint8_t* dst, const std::uint8_t* mul_row,
                      std::size_t n);

/// dst[i] ^= src[i] for n bytes. Requires ssse3_available().
void region_add_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n);

}  // namespace ncast::gf::detail
