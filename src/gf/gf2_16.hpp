#pragma once
// GF(2^16) arithmetic, used for the field-size ablation and for settings where
// generation sizes approach the GF(2^8) order. Same interface as Gf256.

#include <cstddef>
#include <cstdint>

namespace ncast::gf {

/// Field traits for GF(2^16); primitive polynomial x^16+x^12+x^3+x+1 (0x1100B).
struct Gf2_16 {
  using value_type = std::uint16_t;
  static constexpr std::uint32_t order = 65536;
  static constexpr const char* name = "GF(2^16)";

  static value_type add(value_type a, value_type b) { return a ^ b; }
  static value_type sub(value_type a, value_type b) { return a ^ b; }
  static value_type mul(value_type a, value_type b);
  /// Requires b != 0.
  static value_type div(value_type a, value_type b);
  /// Requires a != 0.
  static value_type inv(value_type a);
  static value_type pow(value_type a, std::uint32_t e);

  static void region_add(value_type* dst, const value_type* src, std::size_t n);
  static void region_madd(value_type* dst, const value_type* src, value_type c,
                          std::size_t n);
  static void region_mul(value_type* dst, value_type c, std::size_t n);
};

}  // namespace ncast::gf
