// AVX2 kernels for GF(2^8) region operations. Compiled with -mavx2 (see
// CMakeLists); callers must gate on avx2_available().

#include "gf/gf256_simd.hpp"

#include <immintrin.h>

namespace ncast::gf::detail {
// ncast:hot-begin — region kernels: allocation- and throw-free by contract.


bool avx2_available() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

namespace {

/// Builds the two 16-entry nibble tables for the coefficient whose full
/// product table is `mul_row`: lo[x] = c*x, hi[x] = c*(x<<4). Multiplication
/// distributes over the nibble split because GF addition is XOR.
inline void build_nibble_tables(const std::uint8_t* mul_row, __m256i& lo,
                                __m256i& hi) {
  alignas(32) std::uint8_t lo_bytes[32];
  alignas(32) std::uint8_t hi_bytes[32];
  for (int x = 0; x < 16; ++x) {
    lo_bytes[x] = mul_row[x];
    lo_bytes[x + 16] = mul_row[x];
    hi_bytes[x] = mul_row[x << 4];
    hi_bytes[x + 16] = mul_row[x << 4];
  }
  lo = _mm256_load_si256(reinterpret_cast<const __m256i*>(lo_bytes));
  hi = _mm256_load_si256(reinterpret_cast<const __m256i*>(hi_bytes));
}

}  // namespace

void region_madd_avx2(std::uint8_t* dst, const std::uint8_t* src,
                      const std::uint8_t* mul_row, std::size_t n) {
  __m256i lo, hi;
  build_nibble_tables(mul_row, lo, hi);
  const __m256i mask = _mm256_set1_epi8(0x0F);

  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i lo_n = _mm256_and_si256(s, mask);
    const __m256i hi_n = _mm256_and_si256(_mm256_srli_epi64(s, 4), mask);
    const __m256i prod = _mm256_xor_si256(_mm256_shuffle_epi8(lo, lo_n),
                                          _mm256_shuffle_epi8(hi, hi_n));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, prod));
  }
  for (; i < n; ++i) dst[i] ^= mul_row[src[i]];
}

void region_mul_avx2(std::uint8_t* dst, const std::uint8_t* mul_row,
                     std::size_t n) {
  __m256i lo, hi;
  build_nibble_tables(mul_row, lo, hi);
  const __m256i mask = _mm256_set1_epi8(0x0F);

  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i lo_n = _mm256_and_si256(d, mask);
    const __m256i hi_n = _mm256_and_si256(_mm256_srli_epi64(d, 4), mask);
    const __m256i prod = _mm256_xor_si256(_mm256_shuffle_epi8(lo, lo_n),
                                          _mm256_shuffle_epi8(hi, hi_n));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), prod);
  }
  for (; i < n; ++i) dst[i] = mul_row[dst[i]];
}

void region_add_avx2(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, s));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

// ncast:hot-end

}  // namespace ncast::gf::detail
