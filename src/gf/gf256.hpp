#pragma once
// GF(2^8) arithmetic — the workhorse field for random linear network coding.
//
// Elements are bytes; addition is XOR; multiplication is polynomial
// multiplication modulo the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11D,
// the AES-unrelated Rijndael-alternative used by most RLNC implementations).
// Scalar ops go through log/exp tables; the hot region ops (row operations in
// Gaussian elimination and packet mixing) use a full 256x256 product table so
// the inner loop is a single lookup + XOR per byte.

#include <cstddef>
#include <cstdint>

namespace ncast::gf {

/// Field traits for GF(2^8); usable as the `Field` parameter of the templated
/// linear-algebra and coding layers.
struct Gf256 {
  using value_type = std::uint8_t;
  static constexpr std::uint32_t order = 256;
  static constexpr const char* name = "GF(2^8)";

  static value_type add(value_type a, value_type b) { return a ^ b; }
  static value_type sub(value_type a, value_type b) { return a ^ b; }
  static value_type mul(value_type a, value_type b);
  /// Requires b != 0.
  static value_type div(value_type a, value_type b);
  /// Requires a != 0.
  static value_type inv(value_type a);
  static value_type pow(value_type a, std::uint32_t e);

  /// dst[i] ^= src[i]
  static void region_add(value_type* dst, const value_type* src, std::size_t n);
  /// dst[i] ^= c * src[i]
  static void region_madd(value_type* dst, const value_type* src, value_type c,
                          std::size_t n);
  /// dst[i] = c * dst[i]
  static void region_mul(value_type* dst, value_type c, std::size_t n);
};

}  // namespace ncast::gf
