#pragma once
// AVX2 backend for GF(2^16) region operations.
//
// A 16-bit symbol splits into four nibbles; multiplication by a fixed
// coefficient c distributes over that split (GF addition is XOR), so
// c*v = P0[v&15] ^ P1[(v>>4)&15] ^ P2[(v>>8)&15] ^ P3[v>>12] with four
// 16-entry tables of 16-bit products. Each table splits again into a low-byte
// and a high-byte shuffle table — two nibble-table shuffle pairs over the
// lo/hi result bytes, the 16-bit analogue of the GF(2^8) kernel (the layout
// sparsenc and kodo use for their wide-field SIMD paths).
//
// Declarations only; compiled in a separate translation unit with AVX2
// codegen enabled and selected at runtime (see gf/dispatch.cpp).

#include <cstddef>
#include <cstdint>

namespace ncast::gf::detail {

/// dst[i] ^= c*src[i] for n 16-bit symbols, where nib[k][x] == c*(x<<4k).
/// Requires avx2_available() (declared in gf256_simd.hpp).
void region_madd_avx2_u16(std::uint16_t* dst, const std::uint16_t* src,
                          const std::uint16_t (*nib)[16], std::size_t n);

/// dst[i] = c*dst[i] for n 16-bit symbols. Requires avx2_available().
void region_mul_avx2_u16(std::uint16_t* dst, const std::uint16_t (*nib)[16],
                         std::size_t n);

/// dst[i] ^= src[i] for n 16-bit symbols. Requires avx2_available().
void region_add_avx2_u16(std::uint16_t* dst, const std::uint16_t* src,
                         std::size_t n);

}  // namespace ncast::gf::detail
