// GFNI/AVX-512 region kernels. Compiled with -mgfni -mavx512f -mavx512bw
// -mavx512vl; callers must gate on gfni_available().
//
// The bit-matrix convention of vgf2p8affineqb (Intel SDM): for each byte,
//   out.bit[i] = parity(matrix.byte[7-i] AND in) ^ imm.bit[i]
// i.e. matrix byte 7-i is the row producing output bit i, and bit k of that
// row selects input bit k. To multiply by a constant c we need
//   out.bit[i] = XOR_k bit_i(c * 2^k) * in.bit[k]
// so matrix byte j must carry, at bit k, bit (7-j) of the basis image c*2^k.

#include "gf/gf_gfni.hpp"

#include <immintrin.h>

#include <array>

namespace ncast::gf::detail {
// ncast:hot-begin — region kernels: allocation- and throw-free by contract.


bool gfni_available() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("gfni") && __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") && __builtin_cpu_supports("avx512vl");
}

namespace {

// Self-contained GF(2^8)/0x11D multiply for the one-time matrix-table build.
// (Deliberately not Gf256::mul: these kernels sit below the field front end
// and must not depend on its static-table initialization order.)
std::uint8_t mul8(unsigned a, unsigned b) {
  unsigned r = 0;
  while (b != 0) {
    if (b & 1u) r ^= a;
    a <<= 1;
    if (a & 0x100u) a ^= 0x11Du;
    b >>= 1;
  }
  return static_cast<std::uint8_t>(r);
}

/// Packs 8 basis images (im[k] = c * 2^k, one bit plane each) into an affine
/// matrix qword; `shift` selects which 8 output bits (0 for bits 0..7, 8 for
/// bits 8..15 of wider images).
template <typename T>
std::uint64_t pack_matrix(const T* im, unsigned shift) {
  std::uint64_t m = 0;
  for (unsigned j = 0; j < 8; ++j) {
    std::uint64_t row = 0;
    for (unsigned k = 0; k < 8; ++k) {
      row |= ((static_cast<std::uint64_t>(im[k]) >> (shift + 7 - j)) & 1u) << k;
    }
    m |= row << (8 * j);
  }
  return m;
}

/// The affine matrix for multiplication by each GF(2^8) constant, built once.
/// 2KB, hot rows stay cached across a decode.
const std::uint64_t* gf256_matrices() {
  static const std::array<std::uint64_t, 256> table = [] {
    std::array<std::uint64_t, 256> t{};
    for (unsigned c = 0; c < 256; ++c) {
      std::uint8_t im[8];
      for (unsigned k = 0; k < 8; ++k) im[k] = mul8(c, 1u << k);
      t[c] = pack_matrix(im, 0);
    }
    return t;
  }();
  return table.data();
}

inline __mmask64 tail_mask(std::size_t bytes) {
  return ~__mmask64{0} >> (64 - bytes);
}

/// Masked byte load with a zeroed (not undefined) pass-through operand; the
/// maskz intrinsic's undefined source trips GCC's -Wmaybe-uninitialized.
inline __m512i masked_load(__mmask64 k, const void* p) {
  return _mm512_mask_loadu_epi8(_mm512_setzero_si512(), k, p);
}

}  // namespace

void region_madd_gfni(std::uint8_t* dst, const std::uint8_t* src,
                      const std::uint8_t* mul_row, std::size_t n) {
  const __m512i m = _mm512_set1_epi64(
      static_cast<long long>(gf256_matrices()[mul_row[1]]));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i x = _mm512_loadu_si512(src + i);
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i y = _mm512_gf2p8affine_epi64_epi8(x, m, 0);
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(d, y));
  }
  if (i < n) {
    const __mmask64 k = tail_mask(n - i);
    const __m512i x = masked_load(k, src + i);
    const __m512i d = masked_load(k, dst + i);
    const __m512i y = _mm512_gf2p8affine_epi64_epi8(x, m, 0);
    _mm512_mask_storeu_epi8(dst + i, k, _mm512_xor_si512(d, y));
  }
}

void region_mul_gfni(std::uint8_t* dst, const std::uint8_t* mul_row,
                     std::size_t n) {
  const __m512i m = _mm512_set1_epi64(
      static_cast<long long>(gf256_matrices()[mul_row[1]]));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i x = _mm512_loadu_si512(dst + i);
    _mm512_storeu_si512(dst + i, _mm512_gf2p8affine_epi64_epi8(x, m, 0));
  }
  if (i < n) {
    const __mmask64 k = tail_mask(n - i);
    const __m512i x = masked_load(k, dst + i);
    _mm512_mask_storeu_epi8(dst + i, k, _mm512_gf2p8affine_epi64_epi8(x, m, 0));
  }
}

void region_add_gfni(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i x = _mm512_loadu_si512(src + i);
    const __m512i d = _mm512_loadu_si512(dst + i);
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(d, x));
  }
  if (i < n) {
    const __mmask64 k = tail_mask(n - i);
    const __m512i x = masked_load(k, src + i);
    const __m512i d = masked_load(k, dst + i);
    _mm512_mask_storeu_epi8(dst + i, k, _mm512_xor_si512(d, x));
  }
}

namespace {

// GF(2^16) symbols live interleaved in memory (little-endian u16: lo byte,
// hi byte). Multiplication by c is a 16x16 bit matrix, split into four 8x8
// blocks applied to the byte stream:
//   out_lo = A*in_lo ^ B*in_hi        out_hi = C*in_lo ^ D*in_hi
// Each affine pass transforms EVERY byte with one matrix, so the kernel runs
// four passes and recombines with 16-bit byte shifts: srli moves the hi-byte
// lane's result down to the lo lane, slli the other way.
struct BlockMatrices {
  __m512i a, b, c, d;
};

BlockMatrices build_blocks(const std::uint16_t (*nib)[16]) {
  // Basis images c * 2^(4j+b) are exactly nib[j][1<<b].
  std::uint16_t im[16];
  for (unsigned j = 0; j < 4; ++j) {
    for (unsigned b = 0; b < 4; ++b) im[4 * j + b] = nib[j][1u << b];
  }
  BlockMatrices m;
  m.a = _mm512_set1_epi64(static_cast<long long>(pack_matrix(im, 0)));
  m.b = _mm512_set1_epi64(static_cast<long long>(pack_matrix(im + 8, 0)));
  m.c = _mm512_set1_epi64(static_cast<long long>(pack_matrix(im, 8)));
  m.d = _mm512_set1_epi64(static_cast<long long>(pack_matrix(im + 8, 8)));
  return m;
}

inline __m512i product32(const BlockMatrices& m, __m512i x, __m512i lomask) {
  // (Plain AND with the complementary mask, not andnot: GCC's andnot
  // intrinsic carries an undefined pass-through operand that trips
  // -Wmaybe-uninitialized.)
  const __m512i himask = _mm512_set1_epi16(static_cast<short>(0xFF00));
  const __m512i lo =
      _mm512_xor_si512(_mm512_and_si512(_mm512_gf2p8affine_epi64_epi8(x, m.a, 0),
                                        lomask),
                       _mm512_srli_epi16(_mm512_gf2p8affine_epi64_epi8(x, m.b, 0), 8));
  const __m512i hi =
      _mm512_xor_si512(_mm512_and_si512(_mm512_gf2p8affine_epi64_epi8(x, m.d, 0),
                                        himask),
                       _mm512_slli_epi16(_mm512_gf2p8affine_epi64_epi8(x, m.c, 0), 8));
  return _mm512_xor_si512(lo, hi);
}

}  // namespace

void region_madd_gfni_u16(std::uint16_t* dst, const std::uint16_t* src,
                          const std::uint16_t (*nib)[16], std::size_t n) {
  const BlockMatrices m = build_blocks(nib);
  const __m512i lomask = _mm512_set1_epi16(0x00FF);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512i x = _mm512_loadu_si512(src + i);
    const __m512i d = _mm512_loadu_si512(dst + i);
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(d, product32(m, x, lomask)));
  }
  if (i < n) {
    const __mmask64 k = tail_mask(2 * (n - i));
    const __m512i x = masked_load(k, src + i);
    const __m512i d = masked_load(k, dst + i);
    _mm512_mask_storeu_epi8(dst + i, k,
                            _mm512_xor_si512(d, product32(m, x, lomask)));
  }
}

void region_mul_gfni_u16(std::uint16_t* dst, const std::uint16_t (*nib)[16],
                         std::size_t n) {
  const BlockMatrices m = build_blocks(nib);
  const __m512i lomask = _mm512_set1_epi16(0x00FF);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512i x = _mm512_loadu_si512(dst + i);
    _mm512_storeu_si512(dst + i, product32(m, x, lomask));
  }
  if (i < n) {
    const __mmask64 k = tail_mask(2 * (n - i));
    const __m512i x = masked_load(k, dst + i);
    _mm512_mask_storeu_epi8(dst + i, k, product32(m, x, lomask));
  }
}

void region_add_gfni_u16(std::uint16_t* dst, const std::uint16_t* src,
                         std::size_t n) {
  region_add_gfni(reinterpret_cast<std::uint8_t*>(dst),
                  reinterpret_cast<const std::uint8_t*>(src), 2 * n);
}

// ncast:hot-end

}  // namespace ncast::gf::detail
