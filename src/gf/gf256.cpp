#include "gf/gf256.hpp"

#include <array>
#include <cassert>

#include "gf/dispatch.hpp"

namespace ncast::gf {
namespace {

constexpr std::uint32_t kPoly = 0x11D;  // x^8 + x^4 + x^3 + x^2 + 1

struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};  // doubled so exp[log a + log b] needs no mod
  std::array<std::array<std::uint8_t, 256>, 256> mul{};

  Tables() {
    std::uint32_t x = 1;
    for (std::uint32_t i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      exp[i + 255] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= kPoly;
    }
    exp[510] = exp[0];
    exp[511] = exp[1];
    log[0] = 0;  // sentinel; callers must not use log[0]
    for (std::uint32_t a = 1; a < 256; ++a) {
      for (std::uint32_t b = 1; b < 256; ++b) {
        mul[a][b] = exp[log[a] + log[b]];
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

/// Buffers below this size skip the dispatched kernels entirely (the
/// nibble-table setup costs ~a cache line of work); see gf/dispatch.cpp for
/// the tier decision itself.
constexpr std::size_t kSimdThreshold = 64;

}  // namespace

Gf256::value_type Gf256::mul(value_type a, value_type b) {
  return tables().mul[a][b];
}

Gf256::value_type Gf256::div(value_type a, value_type b) {
  assert(b != 0 && "Gf256::div by zero");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

Gf256::value_type Gf256::inv(value_type a) {
  assert(a != 0 && "Gf256::inv of zero");
  const auto& t = tables();
  return t.exp[255 - t.log[a]];
}

Gf256::value_type Gf256::pow(value_type a, std::uint32_t e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  const std::uint32_t l = (static_cast<std::uint32_t>(t.log[a]) * e) % 255;
  return t.exp[l];
}

// ncast:hot-begin — region kernels: the innermost loops of every decode,
// recode, and elimination; allocation- and throw-free by contract.

void Gf256::region_add(value_type* dst, const value_type* src, std::size_t n) {
  if (n >= kSimdThreshold) {
    detail::gf256_kernels().add(dst, src, n);
    return;
  }
  detail::gf256_add_scalar(dst, src, n);
}

void Gf256::region_madd(value_type* dst, const value_type* src, value_type c,
                        std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    region_add(dst, src, n);
    return;
  }
  const auto& row = tables().mul[c];
  if (n >= kSimdThreshold) {
    detail::gf256_kernels().madd(dst, src, row.data(), n);
    return;
  }
  detail::gf256_madd_scalar(dst, src, row.data(), n);
}

void Gf256::region_mul(value_type* dst, value_type c, std::size_t n) {
  if (c == 1) return;
  if (c == 0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  const auto& row = tables().mul[c];
  if (n >= kSimdThreshold) {
    detail::gf256_kernels().mul(dst, row.data(), n);
    return;
  }
  detail::gf256_mul_scalar(dst, row.data(), n);
}

// ncast:hot-end

}  // namespace ncast::gf
