#include "gf/gf2_16.hpp"

#include <cassert>
#include <vector>

#include "gf/dispatch.hpp"

namespace ncast::gf {
namespace {

constexpr std::uint32_t kPoly = 0x1100B;  // x^16 + x^12 + x^3 + x + 1

struct Tables {
  std::vector<std::uint16_t> log;
  std::vector<std::uint16_t> exp;  // doubled length

  Tables() : log(65536), exp(131072) {
    std::uint32_t x = 1;
    for (std::uint32_t i = 0; i < 65535; ++i) {
      exp[i] = static_cast<std::uint16_t>(x);
      exp[i + 65535] = static_cast<std::uint16_t>(x);
      log[x] = static_cast<std::uint16_t>(i);
      x <<= 1;
      if (x & 0x10000) x ^= kPoly;
    }
    exp[131070] = exp[0];
    exp[131071] = exp[1];
    log[0] = 0;  // sentinel
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

/// Regions below this many symbols stay on the direct log/exp loop: the
/// dispatched kernels amortize a 64-product nibble-table build (128 bytes of
/// tables, see gf/dispatch.hpp) that only pays off on longer rows.
constexpr std::size_t kKernelThreshold = 64;

/// nib[k][x] = c * (x << 4k), the coefficient-specific tables the region
/// kernels consume.
void build_nibble_tables(std::uint16_t c, std::uint16_t (*nib)[16]) {
  const auto& t = tables();
  const std::uint32_t lc = t.log[c];  // c != 0 checked by callers
  nib[0][0] = nib[1][0] = nib[2][0] = nib[3][0] = 0;
  for (std::uint32_t x = 1; x < 16; ++x) {
    nib[0][x] = t.exp[lc + t.log[x]];
    nib[1][x] = t.exp[lc + t.log[x << 4]];
    nib[2][x] = t.exp[lc + t.log[x << 8]];
    nib[3][x] = t.exp[lc + t.log[x << 12]];
  }
}

}  // namespace

Gf2_16::value_type Gf2_16::mul(value_type a, value_type b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::uint32_t>(t.log[a]) + t.log[b]];
}

Gf2_16::value_type Gf2_16::div(value_type a, value_type b) {
  assert(b != 0 && "Gf2_16::div by zero");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::uint32_t>(t.log[a]) + 65535 - t.log[b]];
}

Gf2_16::value_type Gf2_16::inv(value_type a) {
  assert(a != 0 && "Gf2_16::inv of zero");
  const auto& t = tables();
  return t.exp[65535 - t.log[a]];
}

Gf2_16::value_type Gf2_16::pow(value_type a, std::uint32_t e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  const std::uint64_t l =
      (static_cast<std::uint64_t>(t.log[a]) * e) % 65535;
  return t.exp[l];
}

// ncast:hot-begin — region kernels: allocation- and throw-free by contract.

void Gf2_16::region_add(value_type* dst, const value_type* src, std::size_t n) {
  if (n >= kKernelThreshold) {
    detail::gf2_16_kernels().add(dst, src, n);
    return;
  }
  detail::gf2_16_add_scalar(dst, src, n);
}

void Gf2_16::region_madd(value_type* dst, const value_type* src, value_type c,
                         std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    region_add(dst, src, n);
    return;
  }
  if (n >= kKernelThreshold) {
    std::uint16_t nib[4][16];
    build_nibble_tables(c, nib);
    detail::gf2_16_kernels().madd(dst, src, nib, n);
    return;
  }
  const auto& t = tables();
  const std::uint32_t lc = t.log[c];
  for (std::size_t i = 0; i < n; ++i) {
    if (src[i] != 0) dst[i] ^= t.exp[lc + t.log[src[i]]];
  }
}

void Gf2_16::region_mul(value_type* dst, value_type c, std::size_t n) {
  if (c == 1) return;
  if (c == 0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  if (n >= kKernelThreshold) {
    std::uint16_t nib[4][16];
    build_nibble_tables(c, nib);
    detail::gf2_16_kernels().mul(dst, nib, n);
    return;
  }
  const auto& t = tables();
  const std::uint32_t lc = t.log[c];
  for (std::size_t i = 0; i < n; ++i) {
    if (dst[i] != 0) dst[i] = t.exp[lc + t.log[dst[i]]];
  }
}

// ncast:hot-end

}  // namespace ncast::gf
