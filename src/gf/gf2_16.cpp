#include "gf/gf2_16.hpp"

#include <cassert>
#include <vector>

namespace ncast::gf {
namespace {

constexpr std::uint32_t kPoly = 0x1100B;  // x^16 + x^12 + x^3 + x + 1

struct Tables {
  std::vector<std::uint16_t> log;
  std::vector<std::uint16_t> exp;  // doubled length

  Tables() : log(65536), exp(131072) {
    std::uint32_t x = 1;
    for (std::uint32_t i = 0; i < 65535; ++i) {
      exp[i] = static_cast<std::uint16_t>(x);
      exp[i + 65535] = static_cast<std::uint16_t>(x);
      log[x] = static_cast<std::uint16_t>(i);
      x <<= 1;
      if (x & 0x10000) x ^= kPoly;
    }
    exp[131070] = exp[0];
    exp[131071] = exp[1];
    log[0] = 0;  // sentinel
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

Gf2_16::value_type Gf2_16::mul(value_type a, value_type b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::uint32_t>(t.log[a]) + t.log[b]];
}

Gf2_16::value_type Gf2_16::div(value_type a, value_type b) {
  assert(b != 0 && "Gf2_16::div by zero");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::uint32_t>(t.log[a]) + 65535 - t.log[b]];
}

Gf2_16::value_type Gf2_16::inv(value_type a) {
  assert(a != 0 && "Gf2_16::inv of zero");
  const auto& t = tables();
  return t.exp[65535 - t.log[a]];
}

Gf2_16::value_type Gf2_16::pow(value_type a, std::uint32_t e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  const std::uint64_t l =
      (static_cast<std::uint64_t>(t.log[a]) * e) % 65535;
  return t.exp[l];
}

void Gf2_16::region_add(value_type* dst, const value_type* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    std::uint64_t a, b;
    __builtin_memcpy(&a, dst + i, 8);
    __builtin_memcpy(&b, src + i, 8);
    a ^= b;
    __builtin_memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void Gf2_16::region_madd(value_type* dst, const value_type* src, value_type c,
                         std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    region_add(dst, src, n);
    return;
  }
  const auto& t = tables();
  const std::uint32_t lc = t.log[c];
  for (std::size_t i = 0; i < n; ++i) {
    if (src[i] != 0) dst[i] ^= t.exp[lc + t.log[src[i]]];
  }
}

void Gf2_16::region_mul(value_type* dst, value_type c, std::size_t n) {
  if (c == 1) return;
  if (c == 0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  const auto& t = tables();
  const std::uint32_t lc = t.log[c];
  for (std::size_t i = 0; i < n; ++i) {
    if (dst[i] != 0) dst[i] = t.exp[lc + t.log[dst[i]]];
  }
}

}  // namespace ncast::gf
