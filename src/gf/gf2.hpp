#pragma once
// GF(2): the binary field. Deliberately minimal — it exists so the field-size
// ablation bench can measure how often random *binary* combinations fail to be
// innovative, compared with GF(2^8)/GF(2^16). Values are stored one per byte
// (0 or 1); the coding layer is templated on the field so the same decoder
// runs unchanged.

#include <cstddef>
#include <cstdint>

namespace ncast::gf {

/// Field traits for GF(2). Every nonzero element is 1, so inv/div are trivial.
struct Gf2 {
  using value_type = std::uint8_t;
  static constexpr std::uint32_t order = 2;
  static constexpr const char* name = "GF(2)";

  static value_type add(value_type a, value_type b) { return a ^ b; }
  static value_type sub(value_type a, value_type b) { return a ^ b; }
  static value_type mul(value_type a, value_type b) { return a & b; }
  static value_type div(value_type a, value_type /*b*/) { return a; }
  static value_type inv(value_type /*a*/) { return 1; }
  static value_type pow(value_type a, std::uint32_t e) { return e == 0 ? 1 : a; }

  // ncast:hot-begin
  static void region_add(value_type* dst, const value_type* src, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
  }
  static void region_madd(value_type* dst, const value_type* src, value_type c,
                          std::size_t n) {
    if (c == 0) return;
    region_add(dst, src, n);
  }
  static void region_mul(value_type* dst, value_type c, std::size_t n) {
    if (c != 0) return;
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
  }
  // ncast:hot-end
};

}  // namespace ncast::gf
