#pragma once
// Runtime SIMD dispatch for the GF region kernels — the single decision point
// for which instruction-set tier the field arithmetic runs on.
//
// Tiers (best available wins):
//   kGfni   — 64-byte vgf2p8affineqb bit-matrix kernels (GF(2^8) and
//             GF(2^16)); requires GFNI + AVX512BW/VL
//   kAvx2   — 32-byte nibble-table shuffles (GF(2^8) and GF(2^16))
//   kSsse3  — 16-byte nibble-table shuffles (GF(2^8); GF(2^16) falls back to
//             the scalar nibble-table loop, which is already table-resident)
//   kScalar — portable loops, no vector instructions
//
// The tier is decided once, at first use, from cpuid — unless the environment
// variable NCAST_FORCE_SCALAR is set (nonempty, not "0"), which pins the
// process to kScalar so tests can prove scalar/SIMD parity. Tests may also
// flip tiers in-process via set_tier_for_testing().

#include <cstddef>
#include <cstdint>

namespace ncast::gf {

enum class Tier : int { kScalar = 0, kSsse3 = 1, kAvx2 = 2, kGfni = 3 };

/// Human-readable tier name ("scalar", "ssse3", "avx2", "gfni").
const char* tier_name(Tier t);

/// The tier the region kernels currently run on.
Tier active_tier();

/// Best tier the running CPU supports (ignores NCAST_FORCE_SCALAR).
Tier best_supported_tier();

/// Forces a tier for the rest of the process (clamped to what the CPU
/// supports). Single-threaded use only; exists for parity tests.
void set_tier_for_testing(Tier t);

namespace detail {

// GF(2^8) kernels operate on a caller-provided 256-entry product table
// (`mul_row[x] == c*x`) so the coefficient-dependent setup is one row of the
// field's multiplication table, already resident in cache.
struct Gf256Kernels {
  void (*madd)(std::uint8_t* dst, const std::uint8_t* src,
               const std::uint8_t* mul_row, std::size_t n);
  void (*mul)(std::uint8_t* dst, const std::uint8_t* mul_row, std::size_t n);
  void (*add)(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);
};

// GF(2^16) kernels operate on four 16-entry nibble product tables:
// nib[k][x] == c * (x << 4k), so c*v = nib[0][v&15] ^ nib[1][(v>>4)&15] ^
// nib[2][(v>>8)&15] ^ nib[3][v>>12]. 128 bytes of setup per coefficient.
struct Gf2_16Kernels {
  void (*madd)(std::uint16_t* dst, const std::uint16_t* src,
               const std::uint16_t (*nib)[16], std::size_t n);
  void (*mul)(std::uint16_t* dst, const std::uint16_t (*nib)[16], std::size_t n);
  void (*add)(std::uint16_t* dst, const std::uint16_t* src, std::size_t n);
};

/// Kernel tables for the active tier. References stay valid forever; the
/// function pointers inside change only via set_tier_for_testing().
const Gf256Kernels& gf256_kernels();
const Gf2_16Kernels& gf2_16_kernels();

// Scalar reference kernels (always available; also the tail path of the
// vector kernels).
void gf256_madd_scalar(std::uint8_t* dst, const std::uint8_t* src,
                       const std::uint8_t* mul_row, std::size_t n);
void gf256_mul_scalar(std::uint8_t* dst, const std::uint8_t* mul_row,
                      std::size_t n);
void gf256_add_scalar(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n);
void gf2_16_madd_scalar(std::uint16_t* dst, const std::uint16_t* src,
                        const std::uint16_t (*nib)[16], std::size_t n);
void gf2_16_mul_scalar(std::uint16_t* dst, const std::uint16_t (*nib)[16],
                       std::size_t n);
void gf2_16_add_scalar(std::uint16_t* dst, const std::uint16_t* src,
                       std::size_t n);

}  // namespace detail

}  // namespace ncast::gf
