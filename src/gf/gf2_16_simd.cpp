// AVX2 kernels for GF(2^16) region operations. Compiled with -mavx2 (see
// CMakeLists); callers must gate on avx2_available().
//
// Data layout: symbols stay little-endian interleaved in memory (lo byte,
// hi byte, ...). Each iteration processes two 256-bit vectors (32 symbols):
// the lo and hi bytes are deinterleaved with pack instructions, pushed
// through eight 16-entry nibble shuffles (4 nibble positions x 2 result
// bytes), and reinterleaved with unpack instructions. pack and unpack both
// operate per 128-bit lane with the same lane split, so the round trip
// restores the original symbol order.

#include "gf/gf2_16_simd.hpp"

#include <immintrin.h>

namespace ncast::gf::detail {
// ncast:hot-begin — region kernels: allocation- and throw-free by contract.


namespace {

struct NibbleTables {
  // [nibble position][result byte]: broadcast 16-byte shuffle tables.
  __m256i lo[4];  // low result byte of nib[k][x]
  __m256i hi[4];  // high result byte of nib[k][x]
};

inline NibbleTables build_tables(const std::uint16_t (*nib)[16]) {
  NibbleTables t;
  for (int k = 0; k < 4; ++k) {
    alignas(16) std::uint8_t lo_bytes[16];
    alignas(16) std::uint8_t hi_bytes[16];
    for (int x = 0; x < 16; ++x) {
      lo_bytes[x] = static_cast<std::uint8_t>(nib[k][x] & 0xFF);
      hi_bytes[x] = static_cast<std::uint8_t>(nib[k][x] >> 8);
    }
    t.lo[k] = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i*>(lo_bytes)));
    t.hi[k] = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i*>(hi_bytes)));
  }
  return t;
}

/// Product of 32 interleaved symbols held in (a, b), written back in place.
inline void product32(const NibbleTables& t, __m256i& a, __m256i& b) {
  const __m256i mask00ff = _mm256_set1_epi16(0x00FF);
  const __m256i nibmask = _mm256_set1_epi8(0x0F);

  // Deinterleave: lo = the 32 low bytes, hi = the 32 high bytes (both in
  // pack order: per lane, a's bytes then b's bytes).
  const __m256i lo = _mm256_packus_epi16(_mm256_and_si256(a, mask00ff),
                                         _mm256_and_si256(b, mask00ff));
  const __m256i hi = _mm256_packus_epi16(_mm256_srli_epi16(a, 8),
                                         _mm256_srli_epi16(b, 8));
  const __m256i n0 = _mm256_and_si256(lo, nibmask);
  const __m256i n1 = _mm256_and_si256(_mm256_srli_epi16(lo, 4), nibmask);
  const __m256i n2 = _mm256_and_si256(hi, nibmask);
  const __m256i n3 = _mm256_and_si256(_mm256_srli_epi16(hi, 4), nibmask);

  const __m256i pl = _mm256_xor_si256(
      _mm256_xor_si256(_mm256_shuffle_epi8(t.lo[0], n0),
                       _mm256_shuffle_epi8(t.lo[1], n1)),
      _mm256_xor_si256(_mm256_shuffle_epi8(t.lo[2], n2),
                       _mm256_shuffle_epi8(t.lo[3], n3)));
  const __m256i ph = _mm256_xor_si256(
      _mm256_xor_si256(_mm256_shuffle_epi8(t.hi[0], n0),
                       _mm256_shuffle_epi8(t.hi[1], n1)),
      _mm256_xor_si256(_mm256_shuffle_epi8(t.hi[2], n2),
                       _mm256_shuffle_epi8(t.hi[3], n3)));

  // Reinterleave product bytes back into 16-bit symbols.
  a = _mm256_unpacklo_epi8(pl, ph);
  b = _mm256_unpackhi_epi8(pl, ph);
}

inline std::uint16_t scalar_product(const std::uint16_t (*nib)[16],
                                    std::uint16_t v) {
  return static_cast<std::uint16_t>(nib[0][v & 15] ^ nib[1][(v >> 4) & 15] ^
                                    nib[2][(v >> 8) & 15] ^ nib[3][v >> 12]);
}

}  // namespace

void region_madd_avx2_u16(std::uint16_t* dst, const std::uint16_t* src,
                          const std::uint16_t (*nib)[16], std::size_t n) {
  const NibbleTables t = build_tables(nib);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 16));
    product32(t, a, b);
    const __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 16));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d0, a));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 16),
                        _mm256_xor_si256(d1, b));
  }
  for (; i < n; ++i) dst[i] ^= scalar_product(nib, src[i]);
}

void region_mul_avx2_u16(std::uint16_t* dst, const std::uint16_t (*nib)[16],
                         std::size_t n) {
  const NibbleTables t = build_tables(nib);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 16));
    product32(t, a, b);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), a);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 16), b);
  }
  for (; i < n; ++i) dst[i] = scalar_product(nib, dst[i]);
}

void region_add_avx2_u16(std::uint16_t* dst, const std::uint16_t* src,
                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, s));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

// ncast:hot-end

}  // namespace ncast::gf::detail
