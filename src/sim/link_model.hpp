#pragma once
// Layer 2a of the simulation kernel: the link model. A LinkModelSpec is a
// declarative description of what the physical links under an overlay do to
// packets — latency distribution, a loss process (Bernoulli or bursty
// Gilbert-Elliott), per-link bandwidth caps, and timed partitions. A
// LinkModel instantiates the spec for one run: per-link latencies and send
// phases are sampled once at construction (in link order, so runs are
// seed-stable), loss-channel state advances per delivery.
//
// The model composes with any topology: the scenario runner asks it three
// questions — when does this link send, how long does a packet ride it, and
// does this delivery survive — and nothing else.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace ncast::sim {

/// Per-link propagation delay distribution; sampled once per link per run
/// (a link's latency is a property of the path, not of the packet).
struct LatencySpec {
  enum class Kind : std::uint8_t { kFixed, kUniform, kShiftedExponential };
  Kind kind = Kind::kFixed;
  double fixed = 0.5;    ///< kFixed: every link takes exactly this long
  double min = 0.2;      ///< kUniform: drawn from [min, max]
  double max = 1.8;
  double base = 0.1;     ///< kShiftedExponential: base + Exp(mean - base)
  double mean = 0.5;

  static LatencySpec fixed_delay(double t) {
    LatencySpec s;
    s.kind = Kind::kFixed;
    s.fixed = t;
    return s;
  }
  static LatencySpec uniform(double lo, double hi) {
    LatencySpec s;
    s.kind = Kind::kUniform;
    s.min = lo;
    s.max = hi;
    return s;
  }
  static LatencySpec shifted_exponential(double base, double mean) {
    LatencySpec s;
    s.kind = Kind::kShiftedExponential;
    s.base = base;
    s.mean = mean;
    return s;
  }

  double sample(Rng& rng) const {
    switch (kind) {
      case Kind::kFixed:
        return fixed;
      case Kind::kUniform:
        return min + rng.uniform() * (max - min);
      case Kind::kShiftedExponential: {
        const double excess = mean > base ? mean - base : 0.0;
        return excess > 0.0 ? base + rng.exponential(1.0 / excess) : base;
      }
    }
    return fixed;
  }

  /// Epoch-sizing bound for the sharded kernel: a latency no link goes
  /// below. A sharded run whose epoch is <= this never clamps a cross-lane
  /// delivery (sim/sharded_engine.hpp, determinism rule 3).
  double lower_bound() const {
    switch (kind) {
      case Kind::kFixed:
        return fixed;
      case Kind::kUniform:
        return min;
      case Kind::kShiftedExponential:
        return base;
    }
    return fixed;
  }

  /// Horizon-sizing bound: a latency essentially no link exceeds. Exact for
  /// the bounded kinds; a generous tail quantile for the exponential.
  double upper_bound() const {
    switch (kind) {
      case Kind::kFixed:
        return fixed;
      case Kind::kUniform:
        return max;
      case Kind::kShiftedExponential:
        return base + 4.0 * (mean > base ? mean - base : 0.0);
    }
    return fixed;
  }
};

/// Per-delivery loss process. Bernoulli drops i.i.d.; Gilbert-Elliott is the
/// classic two-state burst-loss chain (Section 2's "momentary congestion"
/// with memory): each delivery first advances the link's good/bad state,
/// then drops with that state's loss rate.
struct LossSpec {
  enum class Kind : std::uint8_t { kNone, kBernoulli, kGilbertElliott };
  Kind kind = Kind::kNone;
  double p = 0.0;            ///< kBernoulli drop probability
  double p_enter_bad = 0.0;  ///< GE: P(good -> bad) per delivery
  double p_exit_bad = 0.0;   ///< GE: P(bad -> good) per delivery
  double loss_good = 0.0;    ///< GE: drop probability in the good state
  double loss_bad = 1.0;     ///< GE: drop probability in the bad state

  static LossSpec none() { return LossSpec{}; }
  static LossSpec bernoulli(double drop_p) {
    LossSpec s;
    s.kind = Kind::kBernoulli;
    s.p = drop_p;
    return s;
  }
  static LossSpec gilbert_elliott(double enter_bad, double exit_bad,
                                  double good_loss = 0.0, double bad_loss = 1.0) {
    LossSpec s;
    s.kind = Kind::kGilbertElliott;
    s.p_enter_bad = enter_bad;
    s.p_exit_bad = exit_bad;
    s.loss_good = good_loss;
    s.loss_bad = bad_loss;
    return s;
  }

  /// Stationary mean loss rate (for picking comparable Bernoulli/GE pairs).
  double mean_loss() const {
    switch (kind) {
      case Kind::kNone:
        return 0.0;
      case Kind::kBernoulli:
        return p;
      case Kind::kGilbertElliott: {
        const double denom = p_enter_bad + p_exit_bad;
        if (denom <= 0.0) return loss_good;
        const double pi_bad = p_enter_bad / denom;
        return (1.0 - pi_bad) * loss_good + pi_bad * loss_bad;
      }
    }
    return 0.0;
  }
};

/// A two-sided network split active during [start, end): deliveries crossing
/// sides are dropped. Vertices are assigned to side B independently with
/// `side_b_fraction` (the source always stays on side A).
struct PartitionSpec {
  double start = 0.0;
  double end = 0.0;  ///< inactive unless end > start
  double side_b_fraction = 0.0;

  bool active() const { return end > start && side_b_fraction > 0.0; }
  static PartitionSpec window(double from, double until, double b_fraction) {
    PartitionSpec s;
    s.start = from;
    s.end = until;
    s.side_b_fraction = b_fraction;
    return s;
  }
};

/// The composable description of link behavior for one scenario.
struct LinkModelSpec {
  LatencySpec latency;
  LossSpec loss;
  /// Max packets a link may carry per unit time; 0 = uncapped. Enforced as a
  /// minimum spacing of 1/cap between consecutive sends on the same link.
  double bandwidth_cap = 0.0;
  PartitionSpec partition;
};

/// One run's instantiation of a LinkModelSpec over a concrete link list.
/// Construction draws, in link order: latency, then send phase (only when the
/// scenario uses random phases) — the exact draw order the pre-kernel
/// simulators used, so their seeds still reproduce bit-identical runs.
class LinkModel {
 public:
  struct LinkEnd {
    graph::Vertex from;
    graph::Vertex to;
  };

  /// `period` is the scenario's send period; `random_phases` draws each
  /// link's first-send offset from [0, period), otherwise phases are 0.
  LinkModel(const LinkModelSpec& spec, const std::vector<LinkEnd>& links,
            std::size_t vertices, graph::Vertex source, double period,
            bool random_phases, Rng& rng)
      : spec_(spec), links_(links) {
    latency_.reserve(links.size());
    phase_.reserve(links.size());
    for (std::size_t i = 0; i < links.size(); ++i) {
      latency_.push_back(spec.latency.sample(rng));
      phase_.push_back(random_phases ? rng.uniform() * period : 0.0);
    }
    if (spec.loss.kind == LossSpec::Kind::kGilbertElliott) {
      in_bad_.assign(links.size(), false);  // every channel starts good
    }
    if (spec.bandwidth_cap > 0.0) {
      next_send_ok_.assign(links.size(), 0.0);
    }
    if (spec_.partition.active()) {
      side_b_.assign(vertices, false);
      for (std::size_t v = 0; v < vertices; ++v) {
        if (v == source) continue;
        side_b_[v] = rng.chance(spec_.partition.side_b_fraction);
      }
    }
  }

  std::size_t link_count() const { return links_.size(); }
  const LinkEnd& link(std::size_t i) const { return links_[i]; }
  double latency(std::size_t i) const { return latency_[i]; }
  double phase(std::size_t i) const { return phase_[i]; }

  /// Bandwidth gate: true iff link `i` may send at `now` (and if so, books
  /// the 1/cap spacing). Uncapped models always answer yes.
  bool allow_send(std::size_t i, double now) {
    if (spec_.bandwidth_cap <= 0.0) return true;
    if (now + 1e-12 < next_send_ok_[i]) return false;
    next_send_ok_[i] = now + 1.0 / spec_.bandwidth_cap;
    return true;
  }

  /// Loss + partition decision for a delivery on link `i` arriving at `now`.
  /// Advances the Gilbert-Elliott chain when configured. Draws from `rng`
  /// only for loss kinds that need randomness.
  bool survives(std::size_t i, double now, Rng& rng) {
    if (partitioned(i, now)) return false;
    switch (spec_.loss.kind) {
      case LossSpec::Kind::kNone:
        return true;
      case LossSpec::Kind::kBernoulli:
        return !(spec_.loss.p > 0.0 && rng.chance(spec_.loss.p));
      case LossSpec::Kind::kGilbertElliott: {
        const bool bad = in_bad_[i];
        in_bad_[i] = bad ? !rng.chance(spec_.loss.p_exit_bad)
                         : rng.chance(spec_.loss.p_enter_bad);
        const double drop = in_bad_[i] ? spec_.loss.loss_bad : spec_.loss.loss_good;
        return !rng.chance(drop);
      }
    }
    return true;
  }

  bool partitioned(std::size_t i, double now) const {
    if (!spec_.partition.active()) return false;
    if (now < spec_.partition.start || now >= spec_.partition.end) return false;
    const LinkEnd& e = links_[i];
    return side_b_[e.from] != side_b_[e.to];
  }

  const LinkModelSpec& spec() const { return spec_; }

 private:
  LinkModelSpec spec_;
  std::vector<LinkEnd> links_;
  std::vector<double> latency_;
  std::vector<double> phase_;
  std::vector<bool> in_bad_;        // Gilbert-Elliott channel state, per link
  std::vector<double> next_send_ok_;  // bandwidth-cap bookkeeping, per link
  std::vector<bool> side_b_;        // partition side, per vertex
};

}  // namespace ncast::sim
