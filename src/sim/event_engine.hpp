#pragma once
// Layer 1 of the simulation kernel (docs/architecture.md): a minimal
// discrete-event engine — a time-ordered queue of callbacks with cancellable
// timer handles — plus the deterministic per-run RNG stream splitter every
// higher layer draws from. The scenario runner schedules sends, deliveries,
// and fault events on it; the churn executor schedules joins, lifetimes,
// failures, and repair timers.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace ncast::sim {

using SimTime = double;

/// Classifies a scheduled callback for the engine's sampled per-handler
/// profiling: each class gets its own wall-time histogram
/// (engine.handler_<class>_ns), so a slow scenario can be attributed to
/// message delivery vs serve loops vs repair machinery without a profiler.
/// Purely observational — scheduling order never depends on the class.
enum class TimerClass : std::uint8_t {
  kGeneric = 0,  ///< unclassified callbacks (default)
  kDelivery,     ///< transport message delivery
  kServe,        ///< endpoint periodic serve/recode loops
  kEmit,         ///< server direct-emission ticks
  kJoinRetry,    ///< hello retransmission timers
  kSilence,      ///< feed-silence complaint timers
  kRepair,       ///< scheduled repair executions
  kFault,        ///< fault-plan replay events (join/leave/crash)
};
inline constexpr std::size_t kTimerClassCount = 8;

inline const char* to_string(TimerClass klass) {
  switch (klass) {
    case TimerClass::kGeneric: return "generic";
    case TimerClass::kDelivery: return "delivery";
    case TimerClass::kServe: return "serve";
    case TimerClass::kEmit: return "emit";
    case TimerClass::kJoinRetry: return "join_retry";
    case TimerClass::kSilence: return "silence";
    case TimerClass::kRepair: return "repair";
    case TimerClass::kFault: return "fault";
  }
  return "unknown";
}

/// Handle for a scheduled event; pass to EventEngine::cancel() to revoke it.
/// Value-copyable and cheap; a default-constructed handle refers to nothing.
struct TimerHandle {
  static constexpr std::uint64_t kInvalid = static_cast<std::uint64_t>(-1);
  std::uint64_t seq = kInvalid;
  bool valid() const { return seq != kInvalid; }
};

/// Deterministic per-run RNG stream splitter. Each tagged stream is an
/// independent-looking generator derived from (run seed, tag) alone, so the
/// number of draws one subsystem makes cannot shift another subsystem's
/// sequence — the property that keeps composed scenarios (loss x latency x
/// churn x attacks) seed-stable as features toggle on and off.
class RngStreams {
 public:
  explicit RngStreams(std::uint64_t run_seed) : run_seed_(run_seed) {}

  /// Stream for a numeric tag. Streams for distinct tags are uncorrelated.
  Rng stream(std::uint64_t tag) const {
    // splitmix64-style finalizer over the (seed, tag) pair; Rng::reseed runs
    // the state through splitmix again, so even adjacent tags decorrelate.
    std::uint64_t z = run_seed_ ^ (tag * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return Rng(z ^ (z >> 31));
  }

  /// Stream for a string tag (FNV-1a over the bytes, then split).
  Rng stream(const char* tag) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char* p = tag; *p != '\0'; ++p) {
      h = (h ^ static_cast<unsigned char>(*p)) * 0x100000001b3ULL;
    }
    return stream(h);
  }

  std::uint64_t run_seed() const { return run_seed_; }

 private:
  std::uint64_t run_seed_;
};

/// Discrete-event scheduler. Events at equal times fire in scheduling order.
class EventEngine {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  /// Scheduled-but-not-yet-run events, excluding cancelled ones.
  std::size_t pending() const { return live_.size(); }

  /// Schedules `fn` to run at absolute time `at` (must be >= now()). The
  /// optional class tags the callback for sampled handler profiling; it has
  /// no effect on execution order.
  TimerHandle schedule_at(SimTime at, Callback fn,
                          TimerClass klass = TimerClass::kGeneric) {
    if (at < now_) throw std::invalid_argument("EventEngine: scheduling in the past");
    const TimerHandle handle{seq_};
    queue_.push(Item{at, seq_++, std::move(fn), klass});
    live_.insert(handle.seq);
    depth_hwm_->set_max(static_cast<double>(queue_.size()));
    return handle;
  }

  /// Schedules `fn` after a delay (must be >= 0).
  TimerHandle schedule_in(SimTime delay, Callback fn,
                          TimerClass klass = TimerClass::kGeneric) {
    return schedule_at(now_ + delay, std::move(fn), klass);
  }

  /// Revokes a scheduled event. Returns true iff the event was still pending;
  /// a cancelled event never runs and is not counted as executed. Returns
  /// false for invalid handles, already-fired events, and double cancels.
  bool cancel(TimerHandle handle) {
    if (!handle.valid()) return false;
    return live_.erase(handle.seq) > 0;
  }

  /// Runs events until the queue is empty or the horizon is passed.
  /// Returns the number of events executed (cancelled events excluded).
  ///
  /// Profiling: every kProfileSampleEvery-th executed event is wall-timed
  /// into its class's engine.handler_<class>_ns histogram and the queue
  /// depth gauge is refreshed — sampling keeps the hot loop at two extra
  /// clock reads per 64 events and zero allocations. The trace clock is
  /// synced to each event's time before its callback runs, so emitters
  /// inside handlers stamp correctly (drivers that own their own notion of
  /// time may still override inside the callback).
  std::size_t run_until(SimTime horizon) {
    std::size_t executed = 0;
    const obs::Stopwatch run_watch;
    while (!queue_.empty() && queue_.top().at <= horizon) {
      Item item = pop_top();
      if (live_.erase(item.seq) == 0) continue;  // cancelled
      now_ = item.at;
      obs::trace().set_now(now_);
      if ((lifetime_executed_ & (kProfileSampleEvery - 1)) == 0) {
        depth_gauge_->set(static_cast<double>(queue_.size()));
        const obs::Stopwatch handler_watch;
        item.fn();
        handler_ns_[static_cast<std::size_t>(item.klass)]->observe(
            handler_watch.elapsed_ns());
      } else {
        item.fn();
      }
      ++lifetime_executed_;
      ++executed;
    }
    now_ = std::max(now_, horizon);
    executed_ctr_->inc(executed);
    wall_ns_ += run_watch.elapsed_ns();
    if (wall_ns_ > 0.0) {
      rate_gauge_->set(static_cast<double>(lifetime_executed_) /
                       (wall_ns_ * 1e-9));
    }
    return executed;
  }

  /// Runs a single event if any is pending; returns whether one ran. The
  /// lock-step compat drivers pump the engine through here one tick at a
  /// time; it stays deliberately unprofiled (their wall time is dominated by
  /// the drivers, not the handlers).
  bool step() {
    while (!queue_.empty()) {
      Item item = pop_top();
      if (live_.erase(item.seq) == 0) continue;  // cancelled
      now_ = item.at;
      obs::trace().set_now(now_);
      item.fn();
      ++lifetime_executed_;
      executed_ctr_->inc();
      return true;
    }
    return false;
  }

  /// Events executed over this engine's lifetime (across run_until/step).
  std::uint64_t lifetime_executed() const { return lifetime_executed_; }

  /// One in this many executed events is wall-timed (power of two).
  static constexpr std::uint64_t kProfileSampleEvery = 64;

 private:
  struct Item {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
    TimerClass klass = TimerClass::kGeneric;
    bool operator>(const Item& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  /// Moves the top item out before popping so the callback — and its
  /// captures — never get copied on the hot loop. The const_cast is safe:
  /// the element is removed immediately, and moving `fn` out leaves the
  /// comparator's fields (at, seq) untouched, so heap invariants hold
  /// during pop(). The callback may schedule new events freely afterwards.
  Item pop_top() {
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    return item;
  }

  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  // Seqs scheduled but neither fired nor cancelled. One hash insert + one
  // erase per event; the node allocations are dwarfed by the std::function
  // allocation each scheduled callback already makes.
  //
  // Determinism audit (determinism.unordered_iteration): this set is only
  // ever probed point-wise — insert() in schedule_at, erase() in cancel and
  // the dispatch loops, size() in pending(). It is never iterated, so its
  // hash order cannot leak into event ordering or the RNG draw sequence;
  // execution order is fixed entirely by the (at, seq) priority queue.
  std::unordered_set<std::uint64_t> live_;
  std::uint64_t lifetime_executed_ = 0;
  double wall_ns_ = 0.0;  ///< wall time spent inside run_until dispatch
  // Process-wide instrumentation; registry entries are never deallocated, so
  // caching the pointers once per engine keeps the hot paths lookup-free.
  obs::Counter* executed_ctr_ = &obs::metrics().counter("engine.events_executed");
  obs::Gauge* depth_hwm_ = &obs::metrics().gauge("engine.queue_depth_hwm");
  obs::Gauge* depth_gauge_ = &obs::metrics().gauge("engine.queue_depth");
  obs::Gauge* rate_gauge_ = &obs::metrics().gauge("engine.events_per_sec");
  // Sampled per-class handler wall time, indexed by TimerClass.
  obs::Histogram* handler_ns_[kTimerClassCount] = {
      &obs::metrics().histogram("engine.handler_generic_ns"),
      &obs::metrics().histogram("engine.handler_delivery_ns"),
      &obs::metrics().histogram("engine.handler_serve_ns"),
      &obs::metrics().histogram("engine.handler_emit_ns"),
      &obs::metrics().histogram("engine.handler_join_retry_ns"),
      &obs::metrics().histogram("engine.handler_silence_ns"),
      &obs::metrics().histogram("engine.handler_repair_ns"),
      &obs::metrics().histogram("engine.handler_fault_ns"),
  };
};

}  // namespace ncast::sim
