#pragma once
// Minimal discrete-event engine: a time-ordered queue of callbacks. The churn
// simulator schedules joins, lifetimes, failures, and repair timers on it.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

namespace ncast::sim {

using SimTime = double;

/// Discrete-event scheduler. Events at equal times fire in scheduling order.
class EventEngine {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }
  std::size_t pending() const { return queue_.size(); }

  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  void schedule_at(SimTime at, Callback fn) {
    if (at < now_) throw std::invalid_argument("EventEngine: scheduling in the past");
    queue_.push(Item{at, seq_++, std::move(fn)});
  }

  /// Schedules `fn` after a delay (must be >= 0).
  void schedule_in(SimTime delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue is empty or the horizon is passed.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime horizon) {
    std::size_t executed = 0;
    while (!queue_.empty() && queue_.top().at <= horizon) {
      // Copy out before pop so the callback may schedule freely.
      Item item = queue_.top();
      queue_.pop();
      now_ = item.at;
      item.fn();
      ++executed;
    }
    now_ = std::max(now_, horizon);
    return executed;
  }

  /// Runs a single event if any is pending; returns whether one ran.
  bool step() {
    if (queue_.empty()) return false;
    Item item = queue_.top();
    queue_.pop();
    now_ = item.at;
    item.fn();
    return true;
  }

 private:
  struct Item {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
    bool operator>(const Item& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace ncast::sim
