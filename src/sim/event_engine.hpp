#pragma once
// Layer 1 of the simulation kernel (docs/architecture.md): a minimal
// discrete-event engine — a time-ordered queue of callbacks with cancellable
// timer handles — plus the deterministic per-run RNG stream splitter every
// higher layer draws from. The scenario runner schedules sends, deliveries,
// and fault events on it; the churn executor schedules joins, lifetimes,
// failures, and repair timers.
//
// Endpoints program against the abstract Scheduler surface, so the same
// ClientNode/ServerNode code runs on the single-threaded EventEngine here or
// on a lane of the sharded kernel (sim/sharded_engine.hpp) unchanged.

#include <algorithm>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/inline_function.hpp"
#include "util/rng.hpp"

namespace ncast::sim {

using SimTime = double;

/// Classifies a scheduled callback for the engine's sampled per-handler
/// profiling: each class gets its own wall-time histogram
/// (engine.handler_<class>_ns), so a slow scenario can be attributed to
/// message delivery vs serve loops vs repair machinery without a profiler.
/// Purely observational — scheduling order never depends on the class.
enum class TimerClass : std::uint8_t {
  kGeneric = 0,  ///< unclassified callbacks (default)
  kDelivery,     ///< transport message delivery
  kServe,        ///< endpoint periodic serve/recode loops
  kEmit,         ///< server direct-emission ticks
  kJoinRetry,    ///< hello retransmission timers
  kSilence,      ///< feed-silence complaint timers
  kRepair,       ///< scheduled repair executions
  kFault,        ///< fault-plan replay events (join/leave/crash)
};
inline constexpr std::size_t kTimerClassCount = 8;

inline const char* to_string(TimerClass klass) {
  switch (klass) {
    case TimerClass::kGeneric: return "generic";
    case TimerClass::kDelivery: return "delivery";
    case TimerClass::kServe: return "serve";
    case TimerClass::kEmit: return "emit";
    case TimerClass::kJoinRetry: return "join_retry";
    case TimerClass::kSilence: return "silence";
    case TimerClass::kRepair: return "repair";
    case TimerClass::kFault: return "fault";
  }
  return "unknown";
}

/// Handle for a scheduled event; pass to Scheduler::cancel() to revoke it.
/// Value-copyable and cheap; a default-constructed handle refers to nothing.
/// (slot, gen) name the engine's slab entry — gen disambiguates a reused
/// slot so stale handles cancel nothing; lane routes sharded-kernel cancels.
struct TimerHandle {
  static constexpr std::uint64_t kInvalid = static_cast<std::uint64_t>(-1);
  std::uint64_t seq = kInvalid;
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;
  std::uint32_t lane = 0;
  bool valid() const { return seq != kInvalid; }
};

/// Deterministic per-run RNG stream splitter. Each tagged stream is an
/// independent-looking generator derived from (run seed, tag) alone, so the
/// number of draws one subsystem makes cannot shift another subsystem's
/// sequence — the property that keeps composed scenarios (loss x latency x
/// churn x attacks) seed-stable as features toggle on and off.
class RngStreams {
 public:
  explicit RngStreams(std::uint64_t run_seed) : run_seed_(run_seed) {}

  /// Stream for a numeric tag. Streams for distinct tags are uncorrelated.
  Rng stream(std::uint64_t tag) const {
    // splitmix64-style finalizer over the (seed, tag) pair; Rng::reseed runs
    // the state through splitmix again, so even adjacent tags decorrelate.
    std::uint64_t z = run_seed_ ^ (tag * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return Rng(z ^ (z >> 31));
  }

  /// Stream for a string tag (FNV-1a over the bytes, then split).
  Rng stream(const char* tag) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char* p = tag; *p != '\0'; ++p) {
      h = (h ^ static_cast<unsigned char>(*p)) * 0x100000001b3ULL;
    }
    return stream(h);
  }

  std::uint64_t run_seed() const { return run_seed_; }

 private:
  std::uint64_t run_seed_;
};

/// Inline capacity for scheduled callbacks: sized so the transport's
/// delivery closure (this + a Message by value, ~150 bytes) stays on the
/// slab instead of the heap. Fatter captures still work via a single heap
/// fallback allocation inside InlineFunction.
inline constexpr std::size_t kCallbackInlineBytes = 184;

/// Abstract scheduling surface endpoints program against. Implemented by
/// EventEngine (single-threaded kernel) and by the per-lane adapters of the
/// sharded kernel; protocol code holds a Scheduler* and never needs to know
/// which one it is running on.
class Scheduler {
 public:
  using Callback = InlineFunction<kCallbackInlineBytes>;

  virtual ~Scheduler() = default;

  virtual SimTime now() const = 0;

  /// Schedules `fn` to run at absolute time `at` (must be >= now()). The
  /// optional class tags the callback for sampled handler profiling; it has
  /// no effect on execution order.
  virtual TimerHandle schedule_at(SimTime at, Callback fn,
                                  TimerClass klass = TimerClass::kGeneric) = 0;

  /// Revokes a scheduled event. Returns true iff the event was still pending;
  /// a cancelled event never runs and is not counted as executed. Returns
  /// false for invalid handles, already-fired events, and double cancels.
  virtual bool cancel(TimerHandle handle) = 0;

  /// Schedules `fn` after a delay (must be >= 0).
  TimerHandle schedule_in(SimTime delay, Callback fn,
                          TimerClass klass = TimerClass::kGeneric) {
    return schedule_at(now() + delay, std::move(fn), klass);
  }
};

/// Discrete-event scheduler. Events at equal times fire in scheduling order.
///
/// Storage: callbacks live in a slab of reusable slots (free-list recycled),
/// and the priority queue holds only POD (at, seq, slot) triples — so the
/// steady-state schedule/fire/cancel cycle allocates nothing once the slab
/// and queue vectors have grown to the workload's high-water mark.
class EventEngine final : public Scheduler {
 public:
  using Callback = Scheduler::Callback;

  SimTime now() const override { return now_; }

  /// Scheduled-but-not-yet-run events, excluding cancelled ones.
  std::size_t pending() const { return pending_; }

  TimerHandle schedule_at(SimTime at, Callback fn,
                          TimerClass klass = TimerClass::kGeneric) override {
    if (at < now_) throw std::invalid_argument("EventEngine: scheduling in the past");
    const std::uint32_t slot = acquire_slot(std::move(fn));
    const TimerHandle handle{seq_, slot, slots_[slot].gen, 0};
    queue_.push(Item{at, seq_++, slot, klass});
    ++pending_;
    depth_hwm_->set_max(static_cast<double>(queue_.size()));
    return handle;
  }

  bool cancel(TimerHandle handle) override {
    if (!handle.valid()) return false;
    if (handle.slot >= slots_.size()) return false;
    Slot& s = slots_[handle.slot];
    if (s.gen != handle.gen || s.cancelled || !s.fn) return false;
    s.cancelled = true;
    s.fn.reset();  // release captures now; the queue entry is skipped later
    --pending_;
    return true;
  }

  /// Runs events until the queue is empty or the horizon is passed.
  /// Returns the number of events executed (cancelled events excluded).
  ///
  /// Profiling: every kProfileSampleEvery-th executed event is wall-timed
  /// into its class's engine.handler_<class>_ns histogram and the queue
  /// depth gauge is refreshed — sampling keeps the hot loop at two extra
  /// clock reads per 64 events and zero allocations. The trace clock is
  /// synced to each event's time before its callback runs, so emitters
  /// inside handlers stamp correctly (drivers that own their own notion of
  /// time may still override inside the callback).
  std::size_t run_until(SimTime horizon) {
    std::size_t executed = 0;
    const obs::Stopwatch run_watch;
    // ncast:hot-begin — event dispatch; the Callback move below reuses slab
    // storage and the queue pops PODs, so no per-event allocation happens.
    while (!queue_.empty() && queue_.top().at <= horizon) {
      const Item item = queue_.top();
      queue_.pop();
      Slot& s = slots_[item.slot];
      if (s.cancelled) {
        release_slot(item.slot);
        continue;
      }
      // Move the callback out before invoking: the handler may schedule new
      // events, which can recycle this very slot or grow the slab.
      Callback fn = std::move(s.fn);
      release_slot(item.slot);
      --pending_;
      now_ = item.at;
      obs::trace().set_now(now_);
      if ((lifetime_executed_ & (kProfileSampleEvery - 1)) == 0) {
        depth_gauge_->set(static_cast<double>(queue_.size()));
        const obs::Stopwatch handler_watch;
        fn();
        handler_ns_[static_cast<std::size_t>(item.klass)]->observe(
            handler_watch.elapsed_ns());
      } else {
        fn();
      }
      ++lifetime_executed_;
      ++executed;
    }
    // ncast:hot-end
    now_ = std::max(now_, horizon);
    executed_ctr_->inc(executed);
    wall_ns_ += run_watch.elapsed_ns();
    if (wall_ns_ > 0.0) {
      rate_gauge_->set(static_cast<double>(lifetime_executed_) /
                       (wall_ns_ * 1e-9));
    }
    return executed;
  }

  /// Runs a single event if any is pending; returns whether one ran. The
  /// lock-step compat drivers pump the engine through here one tick at a
  /// time; it stays deliberately unprofiled (their wall time is dominated by
  /// the drivers, not the handlers).
  bool step() {
    while (!queue_.empty()) {
      const Item item = queue_.top();
      queue_.pop();
      Slot& s = slots_[item.slot];
      if (s.cancelled) {
        release_slot(item.slot);
        continue;
      }
      Callback fn = std::move(s.fn);
      release_slot(item.slot);
      --pending_;
      now_ = item.at;
      obs::trace().set_now(now_);
      fn();
      ++lifetime_executed_;
      executed_ctr_->inc();
      return true;
    }
    return false;
  }

  /// Events executed over this engine's lifetime (across run_until/step).
  std::uint64_t lifetime_executed() const { return lifetime_executed_; }

  /// One in this many executed events is wall-timed (power of two).
  static constexpr std::uint64_t kProfileSampleEvery = 64;

 private:
  /// Slab entry owning a scheduled callback. `gen` increments on every
  /// release, so a TimerHandle that outlives its event can never cancel the
  /// slot's next tenant.
  struct Slot {
    Callback fn;
    std::uint32_t gen = 0;
    bool cancelled = false;
  };

  /// POD queue entry; the callback stays in the slab until dispatch.
  struct Item {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
    TimerClass klass;
    bool operator>(const Item& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  std::uint32_t acquire_slot(Callback fn) {
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.fn = std::move(fn);
    s.cancelled = false;
    return slot;
  }

  void release_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.fn.reset();
    s.cancelled = false;
    ++s.gen;
    free_slots_.push_back(slot);
  }

  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t lifetime_executed_ = 0;
  double wall_ns_ = 0.0;  ///< wall time spent inside run_until dispatch
  // Process-wide instrumentation; registry entries are never deallocated, so
  // caching the pointers once per engine keeps the hot paths lookup-free.
  obs::Counter* executed_ctr_ = &obs::metrics().counter("engine.events_executed");
  obs::Gauge* depth_hwm_ = &obs::metrics().gauge("engine.queue_depth_hwm");
  obs::Gauge* depth_gauge_ = &obs::metrics().gauge("engine.queue_depth");
  obs::Gauge* rate_gauge_ = &obs::metrics().gauge("engine.events_per_sec");
  // Sampled per-class handler wall time, indexed by TimerClass.
  obs::Histogram* handler_ns_[kTimerClassCount] = {
      &obs::metrics().histogram("engine.handler_generic_ns"),
      &obs::metrics().histogram("engine.handler_delivery_ns"),
      &obs::metrics().histogram("engine.handler_serve_ns"),
      &obs::metrics().histogram("engine.handler_emit_ns"),
      &obs::metrics().histogram("engine.handler_join_retry_ns"),
      &obs::metrics().histogram("engine.handler_silence_ns"),
      &obs::metrics().histogram("engine.handler_repair_ns"),
      &obs::metrics().histogram("engine.handler_fault_ns"),
  };
};

}  // namespace ncast::sim
