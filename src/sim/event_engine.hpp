#pragma once
// Minimal discrete-event engine: a time-ordered queue of callbacks. The churn
// simulator schedules joins, lifetimes, failures, and repair timers on it.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace ncast::sim {

using SimTime = double;

/// Discrete-event scheduler. Events at equal times fire in scheduling order.
class EventEngine {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }
  std::size_t pending() const { return queue_.size(); }

  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  void schedule_at(SimTime at, Callback fn) {
    if (at < now_) throw std::invalid_argument("EventEngine: scheduling in the past");
    queue_.push(Item{at, seq_++, std::move(fn)});
    depth_hwm_->set_max(static_cast<double>(queue_.size()));
  }

  /// Schedules `fn` after a delay (must be >= 0).
  void schedule_in(SimTime delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue is empty or the horizon is passed.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime horizon) {
    std::size_t executed = 0;
    while (!queue_.empty() && queue_.top().at <= horizon) {
      Item item = pop_top();
      now_ = item.at;
      item.fn();
      ++executed;
    }
    now_ = std::max(now_, horizon);
    executed_ctr_->inc(executed);
    return executed;
  }

  /// Runs a single event if any is pending; returns whether one ran.
  bool step() {
    if (queue_.empty()) return false;
    Item item = pop_top();
    now_ = item.at;
    item.fn();
    executed_ctr_->inc();
    return true;
  }

 private:
  struct Item {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
    bool operator>(const Item& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  /// Moves the top item out before popping so the callback — and its
  /// captures — never get copied on the hot loop. The const_cast is safe:
  /// the element is removed immediately, and moving `fn` out leaves the
  /// comparator's fields (at, seq) untouched, so heap invariants hold
  /// during pop(). The callback may schedule new events freely afterwards.
  Item pop_top() {
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    return item;
  }

  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  // Process-wide instrumentation; registry entries are never deallocated, so
  // caching the pointers once per engine keeps the hot paths lookup-free.
  obs::Counter* executed_ctr_ = &obs::metrics().counter("engine.events_executed");
  obs::Gauge* depth_hwm_ = &obs::metrics().gauge("engine.queue_depth_hwm");
};

}  // namespace ncast::sim
