#include "sim/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace ncast::sim {

FaultPlan& FaultPlan::push(double t, FaultKind kind, overlay::NodeId node,
                           std::uint32_t join_ref, NodeBehavior behavior) {
  if (t < 0.0) throw std::invalid_argument("FaultPlan: negative event time");
  FaultEvent e;
  e.at = t;
  e.kind = kind;
  e.node = node;
  e.join_ref = join_ref;
  e.behavior = behavior;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::crash_at(double t, overlay::NodeId node) {
  return push(t, FaultKind::kCrash, node, FaultEvent::kNoJoinRef,
              NodeBehavior::kHonest);
}

FaultPlan& FaultPlan::leave_at(double t, overlay::NodeId node) {
  return push(t, FaultKind::kLeave, node, FaultEvent::kNoJoinRef,
              NodeBehavior::kHonest);
}

FaultPlan& FaultPlan::repair_at(double t, overlay::NodeId node) {
  return push(t, FaultKind::kRepair, node, FaultEvent::kNoJoinRef,
              NodeBehavior::kHonest);
}

FaultPlan& FaultPlan::behavior_at(double t, overlay::NodeId node,
                                  NodeBehavior behavior) {
  return push(t, FaultKind::kBehavior, node, FaultEvent::kNoJoinRef, behavior);
}

FaultPlan& FaultPlan::behavior_from_start(overlay::NodeId node,
                                          NodeBehavior behavior) {
  return behavior_at(0.0, node, behavior);
}

std::uint32_t FaultPlan::join_at(double t) {
  const std::uint32_t ref = join_count_++;
  push(t, FaultKind::kJoin, overlay::kServerNode, ref, NodeBehavior::kHonest);
  return ref;
}

std::uint32_t FaultPlan::join_burst(double t0, std::uint32_t count,
                                    double spacing) {
  if (count == 0) throw std::invalid_argument("FaultPlan: empty join burst");
  const std::uint32_t first = join_at(t0);
  for (std::uint32_t i = 1; i < count; ++i) {
    join_at(t0 + spacing * static_cast<double>(i));
  }
  return first;
}

FaultPlan& FaultPlan::leave_join_at(double t, std::uint32_t join_ref) {
  if (join_ref >= join_count_) throw std::invalid_argument("FaultPlan: bad join_ref");
  return push(t, FaultKind::kLeave, overlay::kServerNode, join_ref,
              NodeBehavior::kHonest);
}

FaultPlan& FaultPlan::crash_join_at(double t, std::uint32_t join_ref) {
  if (join_ref >= join_count_) throw std::invalid_argument("FaultPlan: bad join_ref");
  return push(t, FaultKind::kCrash, overlay::kServerNode, join_ref,
              NodeBehavior::kHonest);
}

FaultPlan& FaultPlan::repair_join_at(double t, std::uint32_t join_ref) {
  if (join_ref >= join_count_) throw std::invalid_argument("FaultPlan: bad join_ref");
  return push(t, FaultKind::kRepair, overlay::kServerNode, join_ref,
              NodeBehavior::kHonest);
}

FaultPlan& FaultPlan::merge(const FaultPlan& other) {
  const std::uint32_t base = join_count_;
  for (FaultEvent e : other.events_) {
    if (e.targets_join()) e.join_ref += base;
    events_.push_back(e);
  }
  join_count_ += other.join_count_;
  return *this;
}

FaultPlan FaultPlan::poisson_churn(const ChurnProcessSpec& spec, Rng rng) {
  if (spec.arrival_rate <= 0.0 || spec.mean_lifetime <= 0.0) {
    throw std::invalid_argument("FaultPlan::poisson_churn: bad rates");
  }
  FaultPlan plan;
  double t = rng.exponential(spec.arrival_rate);
  while (t < spec.horizon) {
    const std::uint32_t ref = plan.join_at(t);
    const double life = rng.exponential(1.0 / spec.mean_lifetime);
    if (rng.chance(spec.failure_fraction)) {
      plan.crash_join_at(t + life, ref);
      plan.repair_join_at(t + life + spec.repair_delay, ref);
    } else {
      plan.leave_join_at(t + life, ref);
    }
    t += rng.exponential(spec.arrival_rate);
  }
  return plan;
}

std::vector<FaultEvent> FaultPlan::sorted() const {
  std::vector<FaultEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return out;
}

}  // namespace ncast::sim
