#include "sim/async_broadcast.hpp"

#include <algorithm>
#include <cstddef>

#include "sim/scenario.hpp"

namespace ncast::sim {

double AsyncOutcome::rate() const {
  return steady_state_rate(rank_achieved, third_time, two_thirds_time);
}

double AsyncReport::decoded_fraction() const {
  if (outcomes.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& o : outcomes) n += o.decoded ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(outcomes.size());
}

double AsyncReport::mean_rate_vs_cut() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& o : outcomes) {
    if (!o.decoded || o.max_flow <= 0) continue;
    sum += std::min(1.0, o.rate() / static_cast<double>(o.max_flow));
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

AsyncReport simulate_async_broadcast(const graph::Digraph& g,
                                     graph::Vertex source,
                                     const AsyncConfig& config) {
  // The async model as a scenario: lossless links with uniform latencies and
  // desynchronized send phases. The runner replays the old async
  // simulator's RNG draw order exactly, so seeds reproduce old runs.
  ScenarioSpec spec;
  spec.generation_size = config.generation_size;
  spec.symbols = config.symbols;
  spec.send_period = config.send_period;
  spec.round_sync = false;
  spec.horizon = config.horizon;
  spec.seed = config.seed;
  spec.link.latency = LatencySpec::uniform(config.min_latency, config.max_latency);

  const ScenarioReport run = run_scenario(g, source, spec);

  AsyncReport report;
  report.horizon = run.horizon;
  report.packets_sent = run.packets_sent;
  report.packets_innovative = run.packets_innovative;
  report.outcomes.reserve(run.outcomes.size());
  for (const ScenarioOutcome& s : run.outcomes) {
    AsyncOutcome o;
    o.vertex = s.vertex;
    o.max_flow = s.max_flow;
    o.rank_achieved = s.rank_achieved;
    o.decoded = s.decoded;
    o.first_arrival = s.first_arrival;
    o.decode_time = s.decode_time;
    o.third_time = s.third_time;
    o.two_thirds_time = s.two_thirds_time;
    report.outcomes.push_back(o);
  }
  return report;
}

}  // namespace ncast::sim
