#include "sim/async_broadcast.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <stdexcept>

#include "coding/encoder.hpp"
#include "coding/recoder.hpp"
#include "gf/gf256.hpp"
#include "graph/maxflow.hpp"
#include "sim/event_engine.hpp"
#include "util/rng.hpp"

namespace ncast::sim {

using Gf = gf::Gf256;

double AsyncOutcome::rate() const {
  if (third_time < 0.0 || two_thirds_time <= third_time) return 0.0;
  const auto g = static_cast<double>(rank_achieved);
  // Ranks at the crossings: ceil(g/3) and ceil(2g/3) of the rank the node
  // eventually reached.
  const double r1 = std::ceil(g / 3.0);
  const double r2 = std::ceil(2.0 * g / 3.0);
  return (r2 - r1) / (two_thirds_time - third_time);
}

double AsyncReport::decoded_fraction() const {
  if (outcomes.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& o : outcomes) n += o.decoded ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(outcomes.size());
}

double AsyncReport::mean_rate_vs_cut() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& o : outcomes) {
    if (!o.decoded || o.max_flow <= 0) continue;
    sum += std::min(1.0, o.rate() / static_cast<double>(o.max_flow));
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

AsyncReport simulate_async_broadcast(const graph::Digraph& g,
                                     graph::Vertex source,
                                     const AsyncConfig& config) {
  if (source >= g.vertex_count()) {
    throw std::out_of_range("simulate_async_broadcast: source");
  }
  if (config.generation_size == 0 || config.symbols == 0) {
    throw std::invalid_argument("simulate_async_broadcast: bad config");
  }
  Rng rng(config.seed);
  const std::size_t gs = config.generation_size;

  // Source data + encoder.
  std::vector<std::vector<std::uint8_t>> source_data(
      gs, std::vector<std::uint8_t>(config.symbols));
  for (auto& row : source_data) {
    for (auto& b : row) b = static_cast<std::uint8_t>(rng.below(256));
  }
  const coding::SourceEncoder<Gf> encoder(0, source_data);

  // Receiver state.
  std::vector<coding::Recoder<Gf>> state;
  state.reserve(g.vertex_count());
  for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
    state.emplace_back(0, gs, config.symbols);
  }
  std::vector<double> first_arrival(g.vertex_count(), -1.0);
  std::vector<double> decode_time(g.vertex_count(), -1.0);
  std::vector<double> third_time(g.vertex_count(), -1.0);
  std::vector<double> two_thirds_time(g.vertex_count(), -1.0);
  const std::size_t third_rank = (gs + 2) / 3;            // ceil(g/3)
  const std::size_t two_thirds_rank = (2 * gs + 2) / 3;   // ceil(2g/3)

  // Alive edges with their fixed latencies and send phases.
  struct Link {
    graph::Vertex from;
    graph::Vertex to;
    double latency;
    double phase;
  };
  std::vector<Link> links;
  for (graph::EdgeId id = 0; id < g.edge_count(); ++id) {
    const auto& e = g.edge(id);
    if (!e.alive) continue;
    links.push_back(Link{e.from, e.to,
                         config.min_latency + rng.uniform() * (config.max_latency -
                                                               config.min_latency),
                         rng.uniform() * config.send_period});
  }

  // Horizon: enough for the information wavefront plus the generation.
  const auto depths = graph::bfs_depths(g, source);
  std::int64_t max_depth = 1;
  for (auto d : depths) max_depth = std::max(max_depth, d);
  const double horizon =
      config.horizon > 0.0
          ? config.horizon
          : (static_cast<double>(max_depth) * config.max_latency +
             4.0 * static_cast<double>(gs) * config.send_period + 4.0);

  EventEngine engine;
  AsyncReport report;

  // Packet pool: buffers cycle sender -> in-flight closure -> absorb ->
  // pool, so the steady-state event loop performs no per-packet allocation.
  // Declared before the sender closures, which capture it by reference and
  // must not outlive it.
  std::vector<coding::CodedPacket<Gf>> pool;
  auto acquire = [&pool]() {
    if (pool.empty()) return coding::CodedPacket<Gf>{};
    coding::CodedPacket<Gf> p = std::move(pool.back());
    pool.pop_back();
    return p;
  };

  // One recurring send event per link; payload content is drawn at send
  // time from the sender's then-current buffer (or the encoder). The sender
  // closures live in a vector that outlives the event loop so their
  // self-rescheduling references stay valid.
  std::vector<std::function<void()>> senders(links.size());
  for (std::size_t li = 0; li < links.size(); ++li) {
    senders[li] = [&, li]() {
      const Link& l = links[li];
      coding::CodedPacket<Gf> packet = acquire();
      bool have = false;
      if (l.from == source) {
        encoder.emit_into(packet, rng);
        have = true;
      } else if (state[l.from].rank() > 0) {
        have = state[l.from].emit_into(packet, rng);
      }
      if (have) {
        ++report.packets_sent;
        engine.schedule_in(l.latency, [&, li, p = std::move(packet)]() mutable {
          const Link& arrived = links[li];
          const double now = engine.now();
          if (first_arrival[arrived.to] < 0.0) first_arrival[arrived.to] = now;
          const bool fresh = state[arrived.to].absorb(p);
          pool.push_back(std::move(p));
          if (fresh) {
            ++report.packets_innovative;
            const std::size_t r = state[arrived.to].rank();
            if (r == third_rank && third_time[arrived.to] < 0.0) {
              third_time[arrived.to] = now;
            }
            if (r == two_thirds_rank && two_thirds_time[arrived.to] < 0.0) {
              two_thirds_time[arrived.to] = now;
            }
            if (state[arrived.to].complete() && decode_time[arrived.to] < 0.0) {
              decode_time[arrived.to] = now;
            }
          }
        });
      } else {
        pool.push_back(std::move(packet));
      }
      engine.schedule_in(config.send_period, senders[li]);
    };
    engine.schedule_at(links[li].phase, senders[li]);
  }

  engine.run_until(horizon);
  report.horizon = horizon;

  for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
    if (v == source) continue;
    AsyncOutcome o;
    o.vertex = v;
    o.max_flow = graph::unit_max_flow(g, source, v);
    o.rank_achieved = state[v].rank();
    o.decoded = state[v].complete();
    o.first_arrival = first_arrival[v];
    o.decode_time = decode_time[v];
    o.third_time = third_time[v];
    o.two_thirds_time = two_thirds_time[v];
    report.outcomes.push_back(o);
  }
  return report;
}

}  // namespace ncast::sim
