#pragma once
// Layer 3 of the simulation kernel: the scenario layer. A ScenarioSpec
// combines a coding configuration, a LinkModel (layer 2a), and a FaultPlan
// (layer 2b); run_scenario() executes it over any topology — the curtain's
// thread matrix or an arbitrary digraph (the cyclic random-graph variant of
// Section 6) — on the shared EventEngine (layer 1).
//
// Both public simulators are thin wrappers over this runner:
//   - simulate_broadcast: round-synchronous mode. Rounds are a degenerate
//     link model (every link latency 0.5, send period 1, phases 0), so all
//     of round r's packets land at the round boundary before round r+1's
//     sends — reproducing the pre-kernel round simulator bit for bit.
//   - simulate_async_broadcast: free-running mode with per-link latencies
//     and desynchronized send phases.
// The payoff is composition: loss x latency x churn x attacks can now all be
// active in one run, on either topology, which no siloed simulator allowed.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "overlay/thread_matrix.hpp"
#include "sim/fault_plan.hpp"
#include "sim/link_model.hpp"

namespace ncast::sim {

struct ScenarioSpec {
  std::size_t generation_size = 16;  ///< g: packets per generation
  std::size_t symbols = 8;           ///< payload symbols per packet
  double send_period = 1.0;          ///< one packet per link per period

  /// Round-synchronous degenerate mode: phases are 0, the first send fires
  /// at t = send_period, and the wrapper pins the latency to half a period so
  /// deliveries land at round boundaries. Async mode draws each link's phase
  /// uniformly from [0, send_period).
  bool round_sync = false;
  std::size_t rounds = 0;  ///< round_sync round budget; 0 = auto (depth + 4g)
  double horizon = 0.0;    ///< async horizon; 0 = auto (wavefront + 4g periods)

  std::uint64_t seed = 1;
  /// Jamming defense: null keys distributed out of band; honest nodes drop
  /// packets failing verification. Zero disables verification.
  std::size_t null_keys = 0;

  LinkModelSpec link;  ///< latency / loss / bandwidth / partition
  FaultPlan faults;    ///< scheduled crash / repair / leave / behavior events
};

/// Steady-state achieved rate (innovative packets per period), measured as
/// the rank-growth slope between the g/3 and 2g/3 crossings — a window where
/// the pipeline is full, so fill latency does not pollute the rate. Sentinel
/// -1 timestamps (a crossing that never happened) yield 0: no slope is
/// measurable for a node that stalled or ran out of horizon.
inline double steady_state_rate(std::size_t rank_achieved, double third_time,
                                double two_thirds_time) {
  if (third_time < 0.0 || two_thirds_time < 0.0) return 0.0;
  if (two_thirds_time <= third_time) return 0.0;
  const auto g = static_cast<double>(rank_achieved);
  const double r1 = std::ceil(g / 3.0);
  const double r2 = std::ceil(2.0 * g / 3.0);
  return (r2 - r1) / (two_thirds_time - third_time);
}

/// Per-vertex result of a scenario run (source and excluded vertices omitted).
struct ScenarioOutcome {
  graph::Vertex vertex = 0;
  /// Overlay node id (thread-matrix scenarios; kServerNode for raw digraphs).
  overlay::NodeId node = overlay::kServerNode;
  /// Min-cut from the source in the end-state capacity graph: the input
  /// topology minus nodes offline when the run ended (initially-offline,
  /// crashed-and-unrepaired, departed). Attackers that still forward
  /// (entropy, jamming) count as capacity, as in the paper.
  std::int64_t max_flow = 0;
  std::size_t rank_achieved = 0;
  bool decoded = false;            ///< reached full rank
  bool corrupted = false;          ///< decoded data mismatched the truth
  double first_arrival = -1.0;     ///< time the first surviving packet landed
  double decode_time = -1.0;       ///< time full rank was reached
  double third_time = -1.0;        ///< time rank crossed ceil(g/3)
  double two_thirds_time = -1.0;   ///< time rank crossed ceil(2g/3)
  std::int64_t depth = -1;         ///< hop distance from the source (pre-fault)

  double rate() const {
    return steady_state_rate(rank_achieved, third_time, two_thirds_time);
  }
};

struct ScenarioReport {
  double horizon = 0.0;
  std::size_t rounds = 0;  ///< round_sync mode only
  std::size_t packets_sent = 0;
  std::size_t packets_lost = 0;  ///< loss process + partition + dead receivers
  std::size_t packets_innovative = 0;
  std::uint64_t events_executed = 0;
  std::vector<ScenarioOutcome> outcomes;

  double decoded_fraction() const;
  double corrupted_fraction() const;
  /// Mean over decoded vertices of rate()/max_flow (capped at 1).
  double mean_rate_vs_cut() const;
};

/// Runs a scenario over the alive edges of `g` from `source`. Every other
/// vertex is a receiver/recoder; `behavior[vertex]` (defaulting to honest
/// when the vector is short) sets each vertex's initial packet behavior.
/// FaultPlan kJoin events are membership-only and ignored here: the vertex
/// set of a packet-level scenario is fixed (see run_fault_plan in churn.hpp
/// for the membership executor).
ScenarioReport run_scenario(const graph::Digraph& g, graph::Vertex source,
                            const ScenarioSpec& spec,
                            const std::vector<NodeBehavior>& behavior = {});

/// Curtain overload: rows tagged failed in `m` — and nodes whose behavior is
/// kOffline — are excluded from the run and from the outcomes (they are
/// capacity holes, exactly the old simulate_broadcast contract). Fault-plan
/// targets are overlay NodeIds. Outcomes carry node ids, depths, and
/// min-cuts computed on the derived capacity graph, in curtain order.
ScenarioReport run_scenario(const overlay::ThreadMatrix& m,
                            const ScenarioSpec& spec,
                            const std::vector<NodeBehavior>& behavior = {});

}  // namespace ncast::sim
