#pragma once
// Sharded discrete-event kernel: the million-node scale-out of the Layer 1
// engine (sim/event_engine.hpp). Events belong to *lanes* — logical
// entities, e.g. one lane per protocol endpoint — and lanes are statically
// partitioned across shards (lane % shards). Each shard owns a private
// priority queue and callback slab, so shards execute an epoch's events
// with no shared mutable state; cross-lane messages are buffered in
// per-shard outboxes and merged serially at the epoch barrier.
//
// Determinism contract (docs/architecture.md, "Sharded kernel"): results
// are a pure function of the scheduled workload — independent of both the
// shard count and the worker-thread count. Three rules make that hold:
//
//   1. Total order. Every event carries a (time, lane, lane_seq) key; a
//      shard's queue pops in that order, and since lanes never share
//      mutable state, any interleaving of *different* lanes' equal-time
//      events is observationally equivalent — the per-lane order is what
//      matters, and it is fixed by lane_seq alone.
//   2. Same-lane immediacy, cross-lane barriers. A handler scheduling onto
//      its own lane gets the next lane_seq immediately (execution order is
//      deterministic per lane). A handler posting to *any other* lane —
//      even one on the same shard — goes through its shard's outbox tagged
//      (at, src_lane, src_emit_seq); at the barrier all outboxes merge in
//      sorted tag order and destination lane_seqs are assigned in that
//      order. The tag never mentions shards, so the merge is
//      shard-count-invariant.
//   3. Conservative windows. Epochs are [start, start+epoch) windows on a
//      fixed grid (the final window closes inclusively at the horizon). A
//      cross-lane post whose arrival time falls inside the window that
//      emitted it is clamped to the window end (counted in
//      engine.shard_clamped) — the lane-based rule applies even with one
//      shard, so shrinking the shard count cannot un-clamp an event. Pick
//      epoch <= the minimum cross-lane latency and nothing ever clamps.
//
// Workers: shard s runs on worker s % workers; workers == 0 executes
// inline on the calling thread (identical results — rule 1). Cancellation
// is lane-local: only the lane that scheduled an event may cancel it, and
// cross-lane posts return an invalid handle.

#include <cstdint>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/event_engine.hpp"

#include <condition_variable>
#include <mutex>
#include <thread>

namespace ncast::sim {

using LaneId = std::uint32_t;

class ShardedEngine;

/// Thin Scheduler adapter binding a lane id: endpoints hold a Scheduler*
/// and never know they are running on the sharded kernel. Obtain via
/// ShardedEngine::lane() (setup phase only); stable address for the
/// engine's lifetime.
class LaneScheduler final : public Scheduler {
 public:
  LaneScheduler(ShardedEngine* engine, LaneId lane)
      : engine_(engine), lane_(lane) {}

  SimTime now() const override;
  TimerHandle schedule_at(SimTime at, Callback fn,
                          TimerClass klass = TimerClass::kGeneric) override;
  bool cancel(TimerHandle handle) override;

  LaneId lane_id() const { return lane_; }

 private:
  ShardedEngine* engine_;
  LaneId lane_;
};

class ShardedEngine {
 public:
  using Callback = Scheduler::Callback;

  /// `shards`: number of event queues (>= 1). `workers`: worker threads; 0
  /// executes every shard inline on the caller. `epoch`: conservative
  /// lookahead window (> 0); cross-lane posts land no earlier than the end
  /// of the window that emitted them.
  explicit ShardedEngine(std::uint32_t shards, std::uint32_t workers = 0,
                         SimTime epoch = 0.5);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  std::uint32_t shards() const { return static_cast<std::uint32_t>(shards_v_.size()); }
  std::uint32_t workers() const { return workers_; }
  SimTime epoch() const { return epoch_; }
  std::uint32_t shard_of(LaneId lane) const { return lane % shards(); }

  /// Inside a handler: the executing shard's current event time. Outside a
  /// run: the global cursor (last window boundary reached).
  SimTime now() const;

  /// Pre-grows per-lane bookkeeping (and may be called once up front for
  /// large fleets to avoid growth during setup). Setup phase only.
  void reserve_lanes(std::size_t lanes);

  /// The lane's Scheduler adapter, created on first use. Setup phase only
  /// (not thread-safe against running workers); the reference stays valid
  /// for the engine's lifetime.
  Scheduler& lane(LaneId lane);

  /// Schedules onto a lane. From the lane's own handler this is immediate
  /// and cancellable; from another lane's handler it is a buffered
  /// cross-lane post (invalid handle, sequenced at the barrier); from
  /// outside a run it enqueues directly (setup phase).
  TimerHandle schedule_on(LaneId lane, SimTime at, Callback fn,
                          TimerClass klass = TimerClass::kGeneric);

  /// Lane-local cancel; see Scheduler::cancel. Must be called from the
  /// handle's own lane (or between runs).
  bool cancel(TimerHandle handle);

  /// Scheduled-but-not-run events across all shards. Idle use only.
  std::size_t pending() const;

  /// Runs windows until no event remains at or before the horizon.
  /// Returns the number of events executed by this call.
  std::size_t run_until(SimTime horizon);

  std::uint64_t lifetime_executed() const { return lifetime_executed_; }
  std::uint64_t cross_shard_handoffs() const { return handoffs_; }
  std::uint64_t clamped_posts() const { return clamped_; }
  std::uint64_t epochs_run() const { return epochs_; }

 private:
  /// POD queue entry; keys sort by (at, lane, seq) — see rule 1 above.
  struct Item {
    SimTime at;
    LaneId lane;
    std::uint64_t seq;
    std::uint32_t slot;
    TimerClass klass;
    bool operator>(const Item& o) const {
      if (at != o.at) return at > o.at;
      if (lane != o.lane) return lane > o.lane;
      return seq > o.seq;
    }
  };

  /// Slab entry owning a scheduled callback (same scheme as EventEngine).
  struct Slot {
    Callback fn;
    std::uint32_t gen = 0;
    bool cancelled = false;
  };

  /// Buffered cross-lane post, merged at the epoch barrier in
  /// (at, src_lane, src_emit_seq) order.
  struct Outpost {
    SimTime at;
    LaneId src;
    std::uint64_t emit_seq;
    LaneId dest;
    TimerClass klass;
    Callback fn;
  };

  struct Shard {
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
    std::vector<Slot> slots;
    std::vector<std::uint32_t> free_slots;
    std::vector<Outpost> outbox;
    SimTime now = 0.0;
    LaneId current_lane = 0;
    std::uint64_t executed = 0;      ///< lifetime, this shard
    std::size_t pending = 0;
    std::size_t depth_hwm = 0;
    std::size_t outbox_hwm = 0;
    obs::SpanId span = obs::kNoSpan;  ///< open run-span for attribution
  };

  static std::uint32_t acquire_slot(Shard& sh, Callback fn);
  static void release_slot(Shard& sh, std::uint32_t slot);
  TimerHandle enqueue(Shard& sh, LaneId lane, SimTime at, Callback fn,
                      TimerClass klass);
  void ensure_lane(LaneId lane);
  /// Executes one shard's events inside the window; `final_window` closes
  /// the window inclusively (EventEngine's `at <= horizon` semantics).
  void exec_shard(Shard& sh, SimTime limit, bool final_window);
  void merge_outboxes(SimTime limit);
  void dispatch_window(SimTime limit, bool final_window);
  void worker_main(std::uint32_t worker_idx);

  std::vector<Shard> shards_v_;
  std::uint32_t workers_ = 0;
  SimTime epoch_;
  SimTime cursor_ = 0.0;  ///< last window boundary reached
  std::vector<std::uint64_t> lane_seq_;   ///< next queue seq per lane
  std::vector<std::uint64_t> lane_emit_;  ///< next outbox emit seq per lane
  std::vector<std::unique_ptr<LaneScheduler>> lane_scheds_;
  std::vector<Outpost> merge_scratch_;
  std::uint64_t lifetime_executed_ = 0;
  std::uint64_t handoffs_ = 0;
  std::uint64_t clamped_ = 0;
  std::uint64_t epochs_ = 0;
  // Last values flushed into the process-wide counters (multiple engines
  // may share the registry, so only deltas are added per run).
  std::uint64_t handoffs_reported_ = 0;
  std::uint64_t clamped_reported_ = 0;
  std::uint64_t epochs_reported_ = 0;

  /// The shard the calling thread is currently executing, or nullptr
  /// outside a window. How schedule_on distinguishes same-lane, cross-lane,
  /// and setup callers without locking.
  static thread_local Shard* tl_current_shard_;

  // Worker pool (created only when workers_ > 0).
  std::vector<std::thread> threads_;
  std::mutex pool_mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t work_gen_ = 0;
  std::uint32_t work_remaining_ = 0;
  SimTime work_limit_ = 0.0;
  bool work_final_ = false;
  bool stop_ = false;

  // Process-wide instrumentation, cached once (registry entries are never
  // deallocated). shard_* names document the sharded kernel's health: how
  // much work crossed lanes, how often the conservative window bit, and
  // how deep the queues ran.
  obs::Counter* executed_ctr_ =
      &obs::metrics().counter("engine.shard_events_executed");
  obs::Counter* handoffs_ctr_ =
      &obs::metrics().counter("engine.shard_handoffs");
  obs::Counter* clamped_ctr_ = &obs::metrics().counter("engine.shard_clamped");
  obs::Counter* epochs_ctr_ = &obs::metrics().counter("engine.shard_epochs");
  obs::Gauge* depth_hwm_ = &obs::metrics().gauge("engine.shard_queue_depth_hwm");
  obs::Gauge* outbox_hwm_ = &obs::metrics().gauge("engine.shard_outbox_hwm");
  obs::Gauge* workers_gauge_ = &obs::metrics().gauge("engine.worker_threads");
};

}  // namespace ncast::sim
