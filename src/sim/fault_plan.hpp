#pragma once
// Layer 2b of the simulation kernel: the fault plan. A FaultPlan is a
// time-ordered schedule of adversity — joins, graceful leaves, crashes,
// repairs, and behavior switches (generalizing the static NodeBehavior
// vector the round simulator used to take). Plans compose with any topology
// and any link model: the packet-level scenario runner turns crash/repair/
// behavior entries into mid-broadcast state changes, and the membership
// (churn) executor turns join/leave/crash/repair entries into CurtainServer
// protocol calls. The Poisson churn process of Section 3 is just a generated
// plan — churn no longer owns its own event loop.

#include <cstdint>
#include <vector>

#include "overlay/thread_matrix.hpp"
#include "util/rng.hpp"

namespace ncast::sim {

/// What a node does with the packets it should be forwarding.
enum class NodeBehavior : std::uint8_t {
  kHonest = 0,         ///< recodes properly (random linear combinations)
  kOffline = 1,        ///< sends nothing (failure / failure attack)
  kEntropyAttack = 2,  ///< forwards the same trivial combination every round
  kJammer = 3,         ///< injects well-formed packets with garbage contents
};

enum class FaultKind : std::uint8_t {
  kJoin = 0,      ///< membership: a newcomer joins (target assigned at run time)
  kLeave = 1,     ///< graceful departure
  kCrash = 2,     ///< non-ergodic failure (silent until repaired)
  kRepair = 3,    ///< completes a crash's repair
  kBehavior = 4,  ///< switches a node's packet behavior (attack on/off)
};

/// One scheduled fault. Targets either a concrete node id, or — for events
/// generated together with a kJoin whose node id is only known at run time —
/// the node created by join event number `join_ref`.
struct FaultEvent {
  static constexpr std::uint32_t kNoJoinRef = static_cast<std::uint32_t>(-1);

  double at = 0.0;
  FaultKind kind = FaultKind::kCrash;
  overlay::NodeId node = overlay::kServerNode;  ///< target, unless join_ref set
  std::uint32_t join_ref = kNoJoinRef;
  NodeBehavior behavior = NodeBehavior::kHonest;  ///< kBehavior payload

  bool targets_join() const { return join_ref != kNoJoinRef; }
};

/// Parameters for the generated Poisson churn process (Section 3 life cycle).
/// Times are in abstract repair-interval units, mirroring ChurnConfig.
struct ChurnProcessSpec {
  double arrival_rate = 10.0;        ///< Poisson joins per unit time
  double mean_lifetime = 100.0;      ///< exponential session length
  double failure_fraction = 0.1;     ///< probability a departure is a crash
  double repair_delay = 1.0;         ///< time from crash to repair completion
  double horizon = 200.0;            ///< stop generating arrivals here
};

/// A composable, sorted-on-demand schedule of fault events.
class FaultPlan {
 public:
  /// --- Builders (each returns *this for chaining) ---
  FaultPlan& crash_at(double t, overlay::NodeId node);
  FaultPlan& leave_at(double t, overlay::NodeId node);
  FaultPlan& repair_at(double t, overlay::NodeId node);
  FaultPlan& behavior_at(double t, overlay::NodeId node, NodeBehavior behavior);
  /// Behavior in force from the start of the run (t = 0).
  FaultPlan& behavior_from_start(overlay::NodeId node, NodeBehavior behavior);

  /// Adds a join; returns its join_ref for targeting the created node later.
  std::uint32_t join_at(double t);
  /// Adds `count` joins starting at `t0`, spaced `spacing` apart; returns
  /// the join_ref of the first (the rest follow consecutively). Convenience
  /// for arrival waves — e.g. the message-plane scenario runner's join
  /// bursts in bench_control_loss.
  std::uint32_t join_burst(double t0, std::uint32_t count, double spacing);
  FaultPlan& leave_join_at(double t, std::uint32_t join_ref);
  FaultPlan& crash_join_at(double t, std::uint32_t join_ref);
  FaultPlan& repair_join_at(double t, std::uint32_t join_ref);

  /// Appends another plan's events (join_refs are re-based).
  FaultPlan& merge(const FaultPlan& other);

  /// Generates the full Section 3 membership life cycle: Poisson arrivals,
  /// exponential lifetimes, crash-vs-leave draws, and delayed repairs. All
  /// draws happen here, up front, from `rng` — the executor consumes the
  /// plan without touching the process RNG.
  static FaultPlan poisson_churn(const ChurnProcessSpec& spec, Rng rng);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  std::size_t join_count() const { return join_count_; }

  /// Events stably sorted by time (equal-time events keep insertion order).
  std::vector<FaultEvent> sorted() const;

  const std::vector<FaultEvent>& events() const { return events_; }

 private:
  FaultPlan& push(double t, FaultKind kind, overlay::NodeId node,
                  std::uint32_t join_ref, NodeBehavior behavior);

  std::vector<FaultEvent> events_;
  std::uint32_t join_count_ = 0;
};

}  // namespace ncast::sim
