#pragma once
// Shared coded-packet free list. Buffers cycle sender -> in-flight ->
// absorb -> pool, so a steady-state simulation (or endpoint) performs no
// per-packet allocation: emit_into()/deserialization fill whatever capacity
// a recycled packet already carries. Used by the scenario runner (and hence
// both public simulators) and by node::StreamState.

#include <utility>
#include <vector>

#include "coding/packet.hpp"

namespace ncast::sim {

template <typename Field>
class PacketPool {
 public:
  using Packet = coding::CodedPacket<Field>;

  /// Takes a recycled packet (arbitrary stale contents) or a fresh one.
  Packet acquire() {
    if (free_.empty()) return Packet{};
    Packet p = std::move(free_.back());
    free_.pop_back();
    return p;
  }

  /// Returns a packet's buffers to the pool.
  void release(Packet&& p) { free_.push_back(std::move(p)); }

  std::size_t size() const { return free_.size(); }

 private:
  std::vector<Packet> free_;
};

/// RAII lease: acquires on construction, releases on destruction. For code
/// paths with early returns (e.g. emit attempts that produce nothing).
template <typename Field>
class PacketLease {
 public:
  explicit PacketLease(PacketPool<Field>& pool)
      : pool_(pool), packet_(pool.acquire()) {}
  ~PacketLease() { pool_.release(std::move(packet_)); }
  PacketLease(const PacketLease&) = delete;
  PacketLease& operator=(const PacketLease&) = delete;

  coding::CodedPacket<Field>& operator*() { return packet_; }
  coding::CodedPacket<Field>* operator->() { return &packet_; }

 private:
  PacketPool<Field>& pool_;
  coding::CodedPacket<Field> packet_;
};

}  // namespace ncast::sim
