#include "sim/churn.hpp"

#include <algorithm>
#include <functional>

#include "obs/trace.hpp"

namespace ncast::sim {

ChurnReport run_fault_plan(overlay::CurtainServer& server, const FaultPlan& plan,
                           SimTime horizon, std::uint64_t max_population) {
  EventEngine engine;
  ChurnReport report;

  // Keeps the process-wide trace clock in sync with virtual time so events
  // emitted by the server (join/leave/crash/repair) carry SimTime stamps.
  auto sync_trace_clock = [&engine] { obs::trace().set_now(engine.now()); };

  // Node ids created by executed kJoin events, indexed by join_ref. A join
  // skipped for capacity leaves its slot empty, so the departure and repair
  // that were planned for it dissolve instead of hitting some other node.
  std::vector<std::optional<overlay::NodeId>> joined(plan.join_count());
  auto resolve = [&](const FaultEvent& e) -> std::optional<overlay::NodeId> {
    if (e.targets_join()) return joined[e.join_ref];
    if (e.node == overlay::kServerNode) return std::nullopt;
    return e.node;
  };

  for (const FaultEvent& e : plan.sorted()) {
    engine.schedule_at(e.at, [&, e] {
      sync_trace_clock();
      switch (e.kind) {
        case FaultKind::kJoin: {
          const bool has_room =
              max_population == 0 ||
              server.matrix().working_count() < max_population;
          if (!has_room) return;
          const auto ticket = server.join();
          if (e.targets_join()) joined[e.join_ref] = ticket.node;
          ++report.joins;
          break;
        }
        case FaultKind::kLeave: {
          const auto node = resolve(e);
          if (!node || !server.matrix().contains(*node)) return;
          server.leave(*node);
          ++report.graceful_leaves;
          break;
        }
        case FaultKind::kCrash: {
          const auto node = resolve(e);
          if (!node || !server.matrix().contains(*node)) return;
          if (server.matrix().row(*node).failed) return;
          server.report_failure(*node);
          ++report.failures;
          break;
        }
        case FaultKind::kRepair: {
          const auto node = resolve(e);
          if (!node || !server.matrix().contains(*node)) return;
          if (!server.matrix().row(*node).failed) return;
          server.repair(*node);
          ++report.repairs;
          break;
        }
        case FaultKind::kBehavior:
          break;  // packet-level only; meaningless to the membership protocol
      }
    });
  }

  // Unit-interval population sampling.
  std::function<void()> sample = [&] {
    const auto pop = static_cast<double>(server.matrix().working_count());
    report.population_samples.add(pop);
    report.peak_population = std::max(report.peak_population, pop);
    engine.schedule_in(1.0, sample);
  };
  engine.schedule_in(1.0, sample);

  report.events_executed = engine.run_until(horizon);
  report.final_population = server.matrix().row_count();
  report.final_failed_tagged = server.matrix().failed_count();
  report.server_stats = server.stats();
  return report;
}

ChurnReport run_churn(std::uint32_t k, std::uint32_t d,
                      overlay::InsertPolicy policy, const ChurnConfig& config,
                      std::uint64_t seed, overlay::CurtainServer* server_out) {
  overlay::CurtainServer server(k, d, Rng(seed), policy);

  ChurnProcessSpec process;
  process.arrival_rate = config.arrival_rate;
  process.mean_lifetime = config.mean_lifetime;
  process.failure_fraction = config.failure_fraction;
  process.repair_delay = config.repair_delay;
  process.horizon = config.horizon;
  const FaultPlan plan =
      FaultPlan::poisson_churn(process, RngStreams(seed).stream("churn"));

  ChurnReport report =
      run_fault_plan(server, plan, config.horizon, config.max_population);
  if (server_out != nullptr) *server_out = std::move(server);
  return report;
}

}  // namespace ncast::sim
