#include "sim/churn.hpp"

#include <functional>

#include "obs/trace.hpp"

namespace ncast::sim {

ChurnReport run_churn(std::uint32_t k, std::uint32_t d,
                      overlay::InsertPolicy policy, const ChurnConfig& config,
                      std::uint64_t seed, overlay::CurtainServer* server_out) {
  overlay::CurtainServer server(k, d, Rng(seed), policy);
  Rng rng(seed ^ 0x5bd1e995u);
  EventEngine engine;
  ChurnReport report;

  // Departure handler for one node: crash (then repair) or graceful leave.
  // Keeps the process-wide trace clock in sync with virtual time so events
  // emitted by the server (join/leave/crash/repair) carry SimTime stamps.
  auto sync_trace_clock = [&engine] { obs::trace().set_now(engine.now()); };

  auto schedule_departure = [&](overlay::NodeId node) {
    const double life = rng.exponential(1.0 / config.mean_lifetime);
    engine.schedule_in(life, [&, node] {
      sync_trace_clock();
      if (!server.matrix().contains(node)) return;
      if (rng.chance(config.failure_fraction)) {
        server.report_failure(node);
        ++report.failures;
        engine.schedule_in(config.repair_delay, [&, node] {
          sync_trace_clock();
          if (server.matrix().contains(node) && server.matrix().row(node).failed) {
            server.repair(node);
            ++report.repairs;
          }
        });
      } else {
        server.leave(node);
        ++report.graceful_leaves;
      }
    });
  };

  std::function<void()> arrival = [&] {
    sync_trace_clock();
    const bool has_room =
        config.max_population == 0 ||
        server.matrix().working_count() < config.max_population;
    if (has_room) {
      const auto ticket = server.join();
      ++report.joins;
      schedule_departure(ticket.node);
    }
    engine.schedule_in(rng.exponential(config.arrival_rate), arrival);
  };
  engine.schedule_in(rng.exponential(config.arrival_rate), arrival);

  // Unit-interval population sampling.
  std::function<void()> sample = [&] {
    const auto pop = static_cast<double>(server.matrix().working_count());
    report.population_samples.add(pop);
    report.peak_population = std::max(report.peak_population, pop);
    engine.schedule_in(1.0, sample);
  };
  engine.schedule_in(1.0, sample);

  report.events_executed = engine.run_until(config.horizon);
  report.final_population = server.matrix().row_count();
  report.final_failed_tagged = server.matrix().failed_count();
  report.server_stats = server.stats();
  if (server_out != nullptr) *server_out = std::move(server);
  return report;
}

}  // namespace ncast::sim
