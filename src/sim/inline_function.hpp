#pragma once
// Small-buffer move-only callable for the event kernel's hot loop. Unlike
// std::function, a capture that fits the inline buffer never touches the
// heap — the engine stores one of these per scheduled event in a slab slot,
// so the steady-state schedule/fire cycle performs zero allocations (see
// tests/test_engine_alloc.cpp). Oversized captures fall back to a single
// heap allocation, preserving correctness for rare fat closures.

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace ncast::sim {

template <std::size_t Cap>
class InlineFunction {
 public:
  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Destroys the held callable (no-op when empty).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  static constexpr std::size_t capacity() { return Cap; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs into dst's storage from src's storage, ending src's
    /// lifetime. For heap-held callables this just relocates the pointer.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename F>
  struct InlineOps {
    static void invoke(void* b) { (*std::launder(reinterpret_cast<F*>(b)))(); }
    static void relocate(void* d, void* s) {
      F* src = std::launder(reinterpret_cast<F*>(s));
      ::new (d) F(std::move(*src));
      src->~F();
    }
    static void destroy(void* b) { std::launder(reinterpret_cast<F*>(b))->~F(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename F>
  struct HeapOps {
    static F* ptr(void* b) {
      F* p;
      std::memcpy(&p, b, sizeof(p));
      return p;
    }
    static void invoke(void* b) { (*ptr(b))(); }
    static void relocate(void* d, void* s) { std::memcpy(d, s, sizeof(F*)); }
    static void destroy(void* b) { delete ptr(b); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename F>
  void emplace(F&& fn) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= Cap && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &InlineOps<D>::ops;
    } else {
      D* p = new D(std::forward<F>(fn));
      std::memcpy(buf_, &p, sizeof(p));
      ops_ = &HeapOps<D>::ops;
    }
  }

  void move_from(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Cap];
  const Ops* ops_ = nullptr;
};

}  // namespace ncast::sim
