#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ncast::sim {

thread_local ShardedEngine::Shard* ShardedEngine::tl_current_shard_ = nullptr;

SimTime LaneScheduler::now() const { return engine_->now(); }

TimerHandle LaneScheduler::schedule_at(SimTime at, Callback fn,
                                       TimerClass klass) {
  return engine_->schedule_on(lane_, at, std::move(fn), klass);
}

bool LaneScheduler::cancel(TimerHandle handle) { return engine_->cancel(handle); }

ShardedEngine::ShardedEngine(std::uint32_t shards, std::uint32_t workers,
                             SimTime epoch)
    : workers_(workers), epoch_(epoch) {
  if (shards == 0) throw std::invalid_argument("ShardedEngine: shards must be >= 1");
  if (!(epoch > 0.0)) throw std::invalid_argument("ShardedEngine: epoch must be > 0");
  shards_v_.resize(shards);
  workers_gauge_->set_max(static_cast<double>(workers_));
  threads_.reserve(workers_);
  for (std::uint32_t w = 0; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ShardedEngine::~ShardedEngine() {
  if (!threads_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(pool_mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }
}

SimTime ShardedEngine::now() const {
  const Shard* cur = tl_current_shard_;
  return cur != nullptr ? cur->now : cursor_;
}

void ShardedEngine::reserve_lanes(std::size_t lanes) {
  if (lane_seq_.size() < lanes) {
    lane_seq_.resize(lanes, 0);
    lane_emit_.resize(lanes, 0);
  }
}

Scheduler& ShardedEngine::lane(LaneId lane) {
  ensure_lane(lane);
  if (lane_scheds_.size() <= lane) lane_scheds_.resize(lane + 1);
  if (!lane_scheds_[lane]) {
    lane_scheds_[lane] = std::make_unique<LaneScheduler>(this, lane);
  }
  return *lane_scheds_[lane];
}

void ShardedEngine::ensure_lane(LaneId lane) {
  if (lane_seq_.size() <= lane) reserve_lanes(static_cast<std::size_t>(lane) + 1);
}

std::uint32_t ShardedEngine::acquire_slot(Shard& sh, Callback fn) {
  std::uint32_t slot;
  if (!sh.free_slots.empty()) {
    slot = sh.free_slots.back();
    sh.free_slots.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(sh.slots.size());
    sh.slots.emplace_back();
  }
  Slot& s = sh.slots[slot];
  s.fn = std::move(fn);
  s.cancelled = false;
  return slot;
}

void ShardedEngine::release_slot(Shard& sh, std::uint32_t slot) {
  Slot& s = sh.slots[slot];
  s.fn.reset();
  s.cancelled = false;
  ++s.gen;
  sh.free_slots.push_back(slot);
}

TimerHandle ShardedEngine::enqueue(Shard& sh, LaneId lane, SimTime at,
                                   Callback fn, TimerClass klass) {
  const std::uint32_t slot = acquire_slot(sh, std::move(fn));
  const std::uint64_t seq = lane_seq_[lane]++;
  sh.queue.push(Item{at, lane, seq, slot, klass});
  ++sh.pending;
  if (sh.queue.size() > sh.depth_hwm) sh.depth_hwm = sh.queue.size();
  return TimerHandle{seq, slot, sh.slots[slot].gen, lane};
}

TimerHandle ShardedEngine::schedule_on(LaneId lane, SimTime at, Callback fn,
                                       TimerClass klass) {
  Shard* cur = tl_current_shard_;
  if (cur == nullptr) {
    // Setup phase / between runs: direct enqueue from the driving thread.
    if (at < cursor_) {
      throw std::invalid_argument("ShardedEngine: scheduling in the past");
    }
    ensure_lane(lane);
    return enqueue(shards_v_[shard_of(lane)], lane, at, std::move(fn), klass);
  }
  if (&shards_v_[shard_of(lane)] == cur && lane == cur->current_lane) {
    // Same-lane: sequence immediately in lane execution order (rule 2).
    if (at < cur->now) {
      throw std::invalid_argument("ShardedEngine: scheduling in the past");
    }
    return enqueue(*cur, lane, at, std::move(fn), klass);
  }
  // Cross-lane (any other lane, even on this shard): buffer in the outbox,
  // sequenced deterministically at the epoch barrier. Not cancellable.
  cur->outbox.push_back(Outpost{at, cur->current_lane,
                                lane_emit_[cur->current_lane]++, lane, klass,
                                std::move(fn)});
  if (cur->outbox.size() > cur->outbox_hwm) cur->outbox_hwm = cur->outbox.size();
  return TimerHandle{};
}

bool ShardedEngine::cancel(TimerHandle handle) {
  if (!handle.valid()) return false;
  Shard& sh = shards_v_[shard_of(handle.lane)];
  if (handle.slot >= sh.slots.size()) return false;
  Slot& s = sh.slots[handle.slot];
  if (s.gen != handle.gen || s.cancelled || !s.fn) return false;
  s.cancelled = true;
  s.fn.reset();
  --sh.pending;
  return true;
}

std::size_t ShardedEngine::pending() const {
  std::size_t total = 0;
  for (const Shard& sh : shards_v_) total += sh.pending;
  return total;
}

void ShardedEngine::exec_shard(Shard& sh, SimTime limit, bool final_window) {
  tl_current_shard_ = &sh;
  // ncast:hot-begin — sharded event dispatch; PODs pop off the queue and
  // callbacks move out of slab slots, so no per-event allocation happens.
  while (!sh.queue.empty()) {
    const Item item = sh.queue.top();
    if (final_window ? item.at > limit : item.at >= limit) break;
    sh.queue.pop();
    Slot& s = sh.slots[item.slot];
    if (s.cancelled) {
      release_slot(sh, item.slot);
      continue;
    }
    // Move the callback out before invoking: the handler may schedule onto
    // its own lane, recycling this slot or growing the slab.
    Callback fn = std::move(s.fn);
    release_slot(sh, item.slot);
    --sh.pending;
    sh.now = item.at;
    sh.current_lane = item.lane;
    obs::trace().set_now(item.at);
    fn();
    ++sh.executed;
  }
  // ncast:hot-end
  if (limit > sh.now) sh.now = limit;
  tl_current_shard_ = nullptr;
}

void ShardedEngine::merge_outboxes(SimTime limit) {
  // ncast:merge-begin — cross-shard handoffs drain here in sorted order;
  // everything below must be invariant to the pre-sort arrival order.
  merge_scratch_.clear();
  for (Shard& sh : shards_v_) {
    for (Outpost& p : sh.outbox) merge_scratch_.push_back(std::move(p));
    sh.outbox.clear();
  }
  // The merge key never mentions shards, so destination sequencing is
  // shard-count-invariant (determinism rule 2).
  std::sort(merge_scratch_.begin(), merge_scratch_.end(),
            [](const Outpost& a, const Outpost& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.src != b.src) return a.src < b.src;
              return a.emit_seq < b.emit_seq;
            });
  for (Outpost& p : merge_scratch_) {
    SimTime at = p.at;
    if (at < limit) {
      at = limit;  // conservative-window clamp (determinism rule 3)
      ++clamped_;
    }
    ensure_lane(p.dest);
    enqueue(shards_v_[shard_of(p.dest)], p.dest, at, std::move(p.fn), p.klass);
    ++handoffs_;
  }
  merge_scratch_.clear();
  // ncast:merge-end
}

void ShardedEngine::dispatch_window(SimTime limit, bool final_window) {
  if (threads_.empty()) {
    for (Shard& sh : shards_v_) exec_shard(sh, limit, final_window);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(pool_mu_);
    work_limit_ = limit;
    work_final_ = final_window;
    work_remaining_ = workers_;
    ++work_gen_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(pool_mu_);
  done_cv_.wait(lock, [this] { return work_remaining_ == 0; });
}

void ShardedEngine::worker_main(std::uint32_t worker_idx) {
  std::uint64_t seen_gen = 0;
  while (true) {
    SimTime limit;
    bool final_window;
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      work_cv_.wait(lock, [&] { return stop_ || work_gen_ != seen_gen; });
      if (stop_) return;
      seen_gen = work_gen_;
      limit = work_limit_;
      final_window = work_final_;
    }
    for (std::size_t s = worker_idx; s < shards_v_.size(); s += workers_) {
      exec_shard(shards_v_[s], limit, final_window);
    }
    {
      const std::lock_guard<std::mutex> lock(pool_mu_);
      --work_remaining_;
    }
    done_cv_.notify_one();
  }
}

std::size_t ShardedEngine::run_until(SimTime horizon) {
  const std::uint64_t executed_before = lifetime_executed_;
  // Per-run, per-shard attribution spans: a trace post-mortem can group a
  // run's events by shard and see each shard's window activity.
  for (std::size_t s = 0; s < shards_v_.size(); ++s) {
    shards_v_[s].span = obs::trace().new_span();
    obs::trace().emit(obs::TraceKind::kSpanBegin, s, 0, 0, "shard",
                      shards_v_[s].span);
  }
  while (true) {
    SimTime earliest = std::numeric_limits<SimTime>::infinity();
    for (const Shard& sh : shards_v_) {
      if (!sh.queue.empty() && sh.queue.top().at < earliest) {
        earliest = sh.queue.top().at;
      }
    }
    if (!(earliest <= horizon)) break;
    // Fast-forward to the window grid slot holding the earliest event; the
    // grid (multiples of epoch_) is a function of the global event set, so
    // it advances identically for every shard count.
    const SimTime grid = std::floor(earliest / epoch_) * epoch_;
    const SimTime start = std::max(cursor_, grid);
    const SimTime end = start + epoch_;
    const bool final_window = end >= horizon;
    const SimTime limit = final_window ? horizon : end;
    dispatch_window(limit, final_window);
    merge_outboxes(limit);
    cursor_ = limit;
    ++epochs_;
  }
  if (horizon > cursor_) cursor_ = horizon;
  std::uint64_t executed_total = 0;
  std::size_t depth_hwm = 0;
  std::size_t outbox_hwm = 0;
  for (std::size_t s = 0; s < shards_v_.size(); ++s) {
    Shard& sh = shards_v_[s];
    if (horizon > sh.now) sh.now = horizon;
    executed_total += sh.executed;
    depth_hwm = std::max(depth_hwm, sh.depth_hwm);
    outbox_hwm = std::max(outbox_hwm, sh.outbox_hwm);
    obs::trace().emit(obs::TraceKind::kSpanEnd, s, sh.executed, 0, "shard",
                      sh.span);
    sh.span = obs::kNoSpan;
  }
  const std::size_t executed = executed_total - executed_before;
  lifetime_executed_ = executed_total;
  executed_ctr_->inc(executed);
  handoffs_ctr_->inc(handoffs_ - handoffs_reported_);
  clamped_ctr_->inc(clamped_ - clamped_reported_);
  epochs_ctr_->inc(epochs_ - epochs_reported_);
  handoffs_reported_ = handoffs_;
  clamped_reported_ = clamped_;
  epochs_reported_ = epochs_;
  depth_hwm_->set_max(static_cast<double>(depth_hwm));
  outbox_hwm_->set_max(static_cast<double>(outbox_hwm));
  return executed;
}

}  // namespace ncast::sim
