#pragma once
// Round-based packet-level broadcast simulation: real RLNC packets flowing
// over the thread segments of a curtain overlay. Each round every sender
// pushes one coded packet per out-segment; delivery happens at the round
// boundary. This is the machinery that demonstrates the network coding
// theorem empirically (achieved rank == max-flow) and hosts the Section 5/7
// attack experiments.
//
// simulate_broadcast is a thin wrapper over the unified scenario runner
// (sim/scenario.hpp): rounds are the degenerate fixed-latency link model.
// New code wanting loss processes, latency spreads, bandwidth caps, or
// scheduled faults should use run_scenario directly.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "overlay/thread_matrix.hpp"
#include "sim/fault_plan.hpp"  // NodeBehavior lives with the fault layer now

namespace ncast::sim {

struct BroadcastConfig {
  std::size_t generation_size = 16;  ///< g: packets per generation
  std::size_t symbols = 16;          ///< payload symbols per packet
  std::size_t rounds = 0;            ///< 0 = auto (max depth + 4g)
  std::uint64_t seed = 1;
  /// Jamming defense (Section 7's open problem): the source distributes
  /// null keys over the control channel and honest nodes drop packets that
  /// fail verification. Zero disables verification.
  std::size_t null_keys = 0;
  /// Ergodic failures (Section 2): each packet delivery is independently
  /// lost with this probability (packet loss / momentary congestion).
  double loss_p = 0.0;
};

/// Per-node result of a broadcast run.
struct NodeOutcome {
  overlay::NodeId node = 0;
  std::int64_t max_flow = 0;       ///< capacity bound (offline nodes removed)
  std::size_t rank_achieved = 0;   ///< decoder rank at the end
  std::size_t decode_round = 0;    ///< first round with full rank (0 if never)
  bool decoded = false;            ///< reached full rank
  bool corrupted = false;          ///< decoded data mismatched the truth
  std::int64_t depth = -1;         ///< hop distance from the server
};

struct BroadcastReport {
  std::size_t rounds = 0;
  std::vector<NodeOutcome> outcomes;  ///< all non-offline nodes, curtain order

  double decoded_fraction() const;
  double corrupted_fraction() const;
};

/// Runs the broadcast. `behavior[node]` defaults to honest when the vector is
/// shorter than the node id space. Offline nodes neither send nor appear in
/// the outcomes.
BroadcastReport simulate_broadcast(const overlay::ThreadMatrix& m,
                                   const BroadcastConfig& config,
                                   const std::vector<NodeBehavior>& behavior = {});

}  // namespace ncast::sim
