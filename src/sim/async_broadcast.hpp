#pragma once
// Event-driven asynchronous broadcast: packets ride links with heterogeneous
// latencies and desynchronized send clocks, over an arbitrary digraph (the
// acyclic curtain or the cyclic random-graph variant of Section 6).
//
// This is the machinery behind the delay-vs-cycles experiment: on an acyclic
// overlay, delay spread costs no throughput (packets can only ever flow
// "downward", so late packets are still innovative); on a cyclic overlay
// information can circulate and some transmissions are wasted, in exchange
// for logarithmic depth.
//
// simulate_async_broadcast is a thin wrapper over the unified scenario
// runner (sim/scenario.hpp). New code wanting loss processes, bandwidth
// caps, partitions, or scheduled faults should use run_scenario directly.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace ncast::sim {

struct AsyncConfig {
  std::size_t generation_size = 16;  ///< g
  std::size_t symbols = 8;           ///< payload symbols per packet
  double send_period = 1.0;          ///< one packet per edge per period
  double min_latency = 0.2;          ///< per-edge latency drawn uniformly
  double max_latency = 1.8;          ///< from [min_latency, max_latency]
  double horizon = 0.0;              ///< 0 = auto
  std::uint64_t seed = 1;
};

/// Per-vertex result (the source vertex is omitted).
struct AsyncOutcome {
  graph::Vertex vertex = 0;
  std::int64_t max_flow = 0;     ///< min-cut from the source
  std::size_t rank_achieved = 0;
  bool decoded = false;
  double first_arrival = -1.0;   ///< time the first packet landed
  double decode_time = -1.0;     ///< time full rank was reached
  double third_time = -1.0;      ///< time rank crossed ceil(g/3)
  double two_thirds_time = -1.0; ///< time rank crossed ceil(2g/3)

  /// Steady-state achieved rate (innovative packets per period), measured as
  /// the rank-growth slope between the g/3 and 2g/3 crossings — a window
  /// where the pipeline is full, so fill latency does not pollute the rate.
  /// Returns 0 whenever either crossing never happened (sentinel -1 in
  /// third_time / two_thirds_time): no slope is measurable for such a node.
  double rate() const;
};

struct AsyncReport {
  double horizon = 0.0;
  std::size_t packets_sent = 0;
  std::size_t packets_innovative = 0;
  std::vector<AsyncOutcome> outcomes;

  double decoded_fraction() const;
  /// Mean over decoded vertices of rate()/max_flow (capped at 1).
  double mean_rate_vs_cut() const;
};

/// Runs the asynchronous broadcast from `source` over the alive edges of `g`.
/// Every vertex other than the source is a receiver/recoder.
AsyncReport simulate_async_broadcast(const graph::Digraph& g,
                                     graph::Vertex source,
                                     const AsyncConfig& config);

}  // namespace ncast::sim
