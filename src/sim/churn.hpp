#pragma once
// Churn simulation: drives a CurtainServer with Poisson arrivals, graceful
// departures, non-ergodic failures, and delayed repairs — the full membership
// life cycle of Section 3. Backs the server-load scalability experiment and
// the integration tests.
//
// The process no longer owns an event loop: run_churn generates the life
// cycle as a FaultPlan (all randomness up front) and hands it to
// run_fault_plan, the membership executor that turns plan entries into
// CurtainServer protocol calls on the shared EventEngine. Hand-written or
// merged plans can be executed the same way.

#include <cstdint>
#include <optional>
#include <vector>

#include "overlay/curtain_server.hpp"
#include "sim/event_engine.hpp"
#include "sim/fault_plan.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ncast::sim {

/// Churn process parameters. Times are in abstract "repair interval" units:
/// the repair delay is 1.0 by construction, and `p` in the paper's sense is
/// the probability a node fails within one such unit.
struct ChurnConfig {
  double arrival_rate = 10.0;       ///< Poisson joins per unit time
  double mean_lifetime = 100.0;     ///< exponential session length
  double failure_fraction = 0.1;    ///< probability a departure is a crash
  double repair_delay = 1.0;        ///< time from failure to repair completion
  SimTime horizon = 200.0;          ///< simulated duration
  std::uint64_t max_population = 0; ///< 0 = unbounded
};

/// Aggregate results of a churn run.
struct ChurnReport {
  std::uint64_t joins = 0;
  std::uint64_t graceful_leaves = 0;
  std::uint64_t failures = 0;
  std::uint64_t repairs = 0;
  std::uint64_t events_executed = 0;
  std::size_t final_population = 0;
  std::size_t final_failed_tagged = 0;
  double peak_population = 0.0;
  overlay::ServerStats server_stats;
  ncast::RunningStats population_samples;  ///< sampled at unit intervals
};

/// Executes a membership fault plan against `server` on a fresh EventEngine:
/// kJoin becomes server.join() (skipped when `max_population` (0 = unbounded)
/// working nodes already exist — dependent events on that join then no-op),
/// kLeave/kCrash/kRepair become leave/report_failure/repair on the resolved
/// node, and kBehavior entries are ignored (they only mean something to the
/// packet-level scenario runner). Samples the working population at unit
/// intervals until `horizon`.
ChurnReport run_fault_plan(overlay::CurtainServer& server, const FaultPlan& plan,
                           SimTime horizon, std::uint64_t max_population = 0);

/// Runs a churn process against a fresh CurtainServer and reports totals.
/// The server is constructed with (k, d, policy) and seeded from `seed`;
/// the life cycle is FaultPlan::poisson_churn executed by run_fault_plan.
ChurnReport run_churn(std::uint32_t k, std::uint32_t d,
                      overlay::InsertPolicy policy, const ChurnConfig& config,
                      std::uint64_t seed,
                      overlay::CurtainServer* server_out = nullptr);

}  // namespace ncast::sim
