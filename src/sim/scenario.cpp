#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <stdexcept>

#include "coding/encoder.hpp"
#include "coding/null_keys.hpp"
#include "coding/recoder.hpp"
#include "gf/gf256.hpp"
#include "graph/maxflow.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "overlay/flow_graph.hpp"
#include "sim/event_engine.hpp"
#include "sim/packet_pool.hpp"
#include "util/rng.hpp"

namespace ncast::sim {

using Gf = gf::Gf256;
using Packet = coding::CodedPacket<Gf>;

double ScenarioReport::decoded_fraction() const {
  if (outcomes.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& o : outcomes) n += o.decoded ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(outcomes.size());
}

double ScenarioReport::corrupted_fraction() const {
  if (outcomes.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& o : outcomes) n += o.corrupted ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(outcomes.size());
}

double ScenarioReport::mean_rate_vs_cut() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& o : outcomes) {
    if (!o.decoded || o.max_flow <= 0) continue;
    sum += std::min(1.0, o.rate() / static_cast<double>(o.max_flow));
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

namespace {

/// A fault event with its target resolved to a vertex of the run's graph.
struct ResolvedFault {
  double at = 0.0;
  FaultKind kind = FaultKind::kCrash;
  graph::Vertex v = 0;
  NodeBehavior behavior = NodeBehavior::kHonest;
};

/// The unified event-driven runner both public simulators wrap.
///
/// RNG draw-order contract (what makes the wrappers bit-exact replicas of
/// the pre-kernel simulators): one stream, drawn in this order —
///   1. source data (g x symbols bytes), 2. null keys (if configured),
///   3. per link in edge order: latency, then phase (async mode only),
///   4. partition sides (if configured), then event-loop draws in event
///      order: emissions at sends, loss at deliveries.
/// Round mode fires every link's send at t = r*period (FIFO in link order,
/// preserved by self-rescheduling) and delivers at r*period + latency with
/// the wrapper's fixed latency of half a period — so all of round r's
/// emission draws precede all of round r's loss draws, exactly like the old
/// round loop.
ScenarioReport run_core(const graph::Digraph& g, graph::Vertex source,
                        const ScenarioSpec& spec,
                        std::vector<NodeBehavior> cur,
                        const std::vector<bool>& excluded,
                        const std::vector<ResolvedFault>& faults,
                        bool always_check_corruption,
                        const std::vector<overlay::NodeId>* trace_ids) {
  const std::size_t vertex_count = g.vertex_count();
  if (source >= vertex_count) {
    throw std::out_of_range("run_scenario: source");
  }
  if (spec.generation_size == 0 || spec.symbols == 0) {
    throw std::invalid_argument("run_scenario: bad spec");
  }
  if (spec.send_period <= 0.0) {
    throw std::invalid_argument("run_scenario: send_period must be positive");
  }
  const std::size_t gs = spec.generation_size;
  const double period = spec.send_period;
  const bool round_mode = spec.round_sync;

  Rng rng(spec.seed);

  // Random source data for one generation.
  std::vector<std::vector<std::uint8_t>> source_data(
      gs, std::vector<std::uint8_t>(spec.symbols));
  for (auto& row : source_data) {
    for (auto& b : row) b = static_cast<std::uint8_t>(rng.below(256));
  }
  const coding::SourceEncoder<Gf> encoder(0, source_data);

  // Null-key verification (jamming defense), if enabled.
  std::optional<coding::NullKeySet<Gf>> keys;
  if (spec.null_keys > 0) {
    keys = coding::NullKeySet<Gf>::generate(0, source_data, spec.null_keys, rng);
  }

  // Link list: alive edges between simulated vertices, in edge-id order.
  std::vector<LinkModel::LinkEnd> links;
  for (graph::EdgeId id = 0; id < g.edge_count(); ++id) {
    const auto& e = g.edge(id);
    if (!e.alive || excluded[e.from] || excluded[e.to]) continue;
    links.push_back(LinkModel::LinkEnd{e.from, e.to});
  }
  LinkModel model(spec.link, links, vertex_count, source, period,
                  /*random_phases=*/!round_mode, rng);

  std::vector<std::vector<std::size_t>> out_links(vertex_count);
  for (std::size_t li = 0; li < links.size(); ++li) {
    out_links[links[li].from].push_back(li);
  }

  // Horizon: enough for the information wavefront plus the generation.
  const auto depths = graph::bfs_depths(g, source);
  std::int64_t max_depth = round_mode ? 0 : 1;
  for (auto d : depths) max_depth = std::max(max_depth, d);
  std::size_t rounds = 0;
  double horizon = 0.0;
  if (round_mode) {
    rounds = spec.rounds != 0 ? spec.rounds
                              : static_cast<std::size_t>(max_depth) + 4 * gs + 4;
    // Last sends fire at rounds*period; their deliveries land in-horizon.
    horizon = (static_cast<double>(rounds) + 0.75) * period;
  } else {
    horizon = spec.horizon > 0.0
                  ? spec.horizon
                  : static_cast<double>(max_depth) * spec.link.latency.upper_bound() +
                        4.0 * static_cast<double>(gs) * period + 4.0;
  }

  // Receiver state and per-vertex milestone clocks.
  std::vector<coding::Recoder<Gf>> state;
  state.reserve(vertex_count);
  for (graph::Vertex v = 0; v < vertex_count; ++v) {
    state.emplace_back(0, gs, spec.symbols);
  }
  std::vector<double> first_arrival(vertex_count, -1.0);
  std::vector<double> decode_time(vertex_count, -1.0);
  std::vector<double> third_time(vertex_count, -1.0);
  std::vector<double> two_thirds_time(vertex_count, -1.0);
  const std::size_t third_rank = (gs + 2) / 3;           // ceil(g/3)
  const std::size_t two_thirds_rank = (2 * gs + 2) / 3;  // ceil(2g/3)

  // Entropy attackers freeze the first packet they receive and replay it
  // verbatim forever — formally valid traffic with zero marginal information.
  std::vector<Packet> frozen(vertex_count);
  std::vector<char> has_frozen(vertex_count, 0);

  // Behavior bookkeeping: `cur` is live state; `restore` is what a repair
  // brings back (the node's last non-crash behavior); `departed` marks
  // graceful leaves, which no repair revives.
  std::vector<NodeBehavior> restore = cur;
  std::vector<char> departed(vertex_count, 0);
  bool jam_seen = std::find(cur.begin(), cur.end(), NodeBehavior::kJammer) != cur.end();

  auto make_jam_packet = [&](Packet& p, Rng& r) {
    p.generation = 0;
    p.coeffs.resize(gs);
    p.payload.resize(spec.symbols);
    do {
      for (auto& c : p.coeffs) c = static_cast<std::uint8_t>(r.below(256));
    } while (p.is_degenerate());
    for (auto& b : p.payload) b = static_cast<std::uint8_t>(r.below(256));
  };

  EventEngine engine;
  ScenarioReport report;
  PacketPool<Gf> pool;
  obs::Counter& sent_ctr = obs::metrics().counter("sim.packets_sent");
  obs::Counter& lost_ctr = obs::metrics().counter("sim.packets_lost");

  // Trace time inside a round-synchronous broadcast is the round number (the
  // old round simulator had no finer clock); free-running scenarios stamp
  // real virtual time.
  auto sync_trace = [&] {
    const double t = engine.now();
    obs::trace().set_now(round_mode ? std::floor(t) : t);
  };
  auto trace_actor = [&](graph::Vertex v) -> std::uint64_t {
    return trace_ids != nullptr ? static_cast<std::uint64_t>((*trace_ids)[v])
                                : static_cast<std::uint64_t>(v);
  };

  auto deliver = [&](std::size_t li, Packet& packet) {
    sync_trace();
    const double now = engine.now();
    if (!model.survives(li, now, rng)) {
      ++report.packets_lost;
      lost_ctr.inc();
      return;
    }
    const graph::Vertex to = model.link(li).to;
    if (cur[to] == NodeBehavior::kOffline) {  // crashed or departed mid-flight
      ++report.packets_lost;
      lost_ctr.inc();
      return;
    }
    if (first_arrival[to] < 0.0) first_arrival[to] = now;
    // Honest verifying receivers discard unverifiable packets outright.
    if (keys && cur[to] == NodeBehavior::kHonest && !keys->verify(packet)) {
      return;
    }
    if (cur[to] == NodeBehavior::kEntropyAttack && !has_frozen[to]) {
      frozen[to] = packet;  // copy: the original returns to the pool
      has_frozen[to] = 1;
    }
    if (state[to].absorb(packet)) {
      ++report.packets_innovative;
      obs::trace().emit(obs::TraceKind::kRankAdvance, trace_actor(to),
                        state[to].rank());
      const std::size_t r = state[to].rank();
      if (r == third_rank && third_time[to] < 0.0) third_time[to] = now;
      if (r == two_thirds_rank && two_thirds_time[to] < 0.0) {
        two_thirds_time[to] = now;
      }
    }
    if (state[to].complete() && decode_time[to] < 0.0) decode_time[to] = now;
  };

  // One recurring send event per link; payload content is drawn at send time
  // from the sender's then-current buffer (or the encoder). The sender
  // closures live in a vector that outlives the event loop so their
  // self-rescheduling references stay valid.
  std::vector<std::function<void()>> senders(links.size());
  std::vector<TimerHandle> next_send(links.size());
  // Sends past this time could never deliver inside the horizon; not
  // scheduling them keeps the queue bounded without changing what executes.
  const double last_send_time =
      round_mode ? static_cast<double>(rounds) * period : horizon;
  auto schedule_next = [&](std::size_t li, double at) {
    next_send[li] = at <= last_send_time ? engine.schedule_at(at, senders[li])
                                         : TimerHandle{};
  };

  for (std::size_t li = 0; li < links.size(); ++li) {
    senders[li] = [&, li]() {
      sync_trace();
      const graph::Vertex from = model.link(li).from;
      const double now = engine.now();
      Packet packet = pool.acquire();
      bool have = false;
      if (model.allow_send(li, now)) {
        if (from == source) {
          encoder.emit_into(packet, rng);
          have = true;
        } else {
          switch (cur[from]) {
            case NodeBehavior::kHonest:
              if (state[from].rank() > 0) {
                have = state[from].emit_into(packet, rng);
              }
              break;
            case NodeBehavior::kEntropyAttack:
              if (has_frozen[from]) {
                packet = frozen[from];  // copy-assign into recycled capacity
                have = true;
              }
              break;
            case NodeBehavior::kJammer:
              make_jam_packet(packet, rng);
              have = true;
              break;
            case NodeBehavior::kOffline:
              break;
          }
        }
      }
      if (have) {
        ++report.packets_sent;
        sent_ctr.inc();
        engine.schedule_in(model.latency(li),
                           [&, li, p = std::move(packet)]() mutable {
                             deliver(li, p);
                             pool.release(std::move(p));
                           });
      } else {
        pool.release(std::move(packet));
      }
      schedule_next(li, now + period);
    };
  }

  // Faults are scheduled before the first sends, so an equal-time fault fires
  // first (FIFO by scheduling order) — a behavior switch at t matters for
  // packets sent at t.
  for (const ResolvedFault& f : faults) {
    engine.schedule_at(f.at, [&, f]() {
      sync_trace();
      const graph::Vertex v = f.v;
      switch (f.kind) {
        case FaultKind::kJoin:
          break;  // membership-only; a packet scenario's vertex set is fixed
        case FaultKind::kCrash:
        case FaultKind::kLeave:
          if (cur[v] != NodeBehavior::kOffline) {
            cur[v] = NodeBehavior::kOffline;
            // A dead node's send timers are useless wakeups; revoke them.
            for (const std::size_t li : out_links[v]) {
              engine.cancel(next_send[li]);
              next_send[li] = TimerHandle{};
            }
          }
          if (f.kind == FaultKind::kLeave) departed[v] = 1;
          break;
        case FaultKind::kRepair: {
          if (departed[v] || cur[v] != NodeBehavior::kOffline) break;
          cur[v] = restore[v];
          const double now = engine.now();
          for (const std::size_t li : out_links[v]) {
            // Resume on the link's own send grid: first phase + k*period
            // strictly after the repair.
            const double ph = round_mode ? 0.0 : model.phase(li);
            double steps = std::ceil((now - ph) / period);
            if (steps < 0.0) steps = 0.0;
            double at = ph + steps * period;
            if (at <= now) at += period;
            schedule_next(li, at);
          }
          break;
        }
        case FaultKind::kBehavior:
          restore[v] = f.behavior;
          if (f.behavior == NodeBehavior::kJammer) jam_seen = true;
          if (cur[v] != NodeBehavior::kOffline) cur[v] = f.behavior;
          break;
      }
    });
  }

  for (std::size_t li = 0; li < links.size(); ++li) {
    next_send[li] =
        engine.schedule_at(round_mode ? period : model.phase(li), senders[li]);
  }

  report.events_executed = engine.run_until(horizon);
  report.horizon = horizon;
  report.rounds = rounds;

  // End-state capacity graph: drop edges incident to vertices that ended the
  // run offline (crashed and unrepaired, or departed). With no faults this
  // is the input graph itself and the copy is skipped.
  const graph::Digraph* cap = &g;
  graph::Digraph cap_copy;
  bool any_end_offline = false;
  for (graph::Vertex v = 0; v < vertex_count; ++v) {
    if (!excluded[v] && cur[v] == NodeBehavior::kOffline) {
      any_end_offline = true;
      break;
    }
  }
  if (any_end_offline) {
    cap_copy = g;
    for (graph::EdgeId id = 0; id < cap_copy.edge_count(); ++id) {
      const auto& e = cap_copy.edge(id);
      if (e.alive && (cur[e.from] == NodeBehavior::kOffline ||
                      cur[e.to] == NodeBehavior::kOffline)) {
        cap_copy.remove_edge(id);
      }
    }
    cap = &cap_copy;
  }

  const bool check_corruption = always_check_corruption || jam_seen;
  for (graph::Vertex v = 0; v < vertex_count; ++v) {
    if (v == source || excluded[v]) continue;
    ScenarioOutcome o;
    o.vertex = v;
    o.max_flow = graph::unit_max_flow(*cap, source, v);
    o.rank_achieved = state[v].rank();
    o.decoded = state[v].complete();
    o.first_arrival = first_arrival[v];
    o.decode_time = decode_time[v];
    o.third_time = third_time[v];
    o.two_thirds_time = two_thirds_time[v];
    o.depth = depths[v];
    if (o.decoded && check_corruption) {
      o.corrupted = state[v].decoder().source_packets() != source_data;
    }
    report.outcomes.push_back(o);
  }
  return report;
}

}  // namespace

ScenarioReport run_scenario(const graph::Digraph& g, graph::Vertex source,
                            const ScenarioSpec& spec,
                            const std::vector<NodeBehavior>& behavior) {
  const std::size_t vertex_count = g.vertex_count();
  if (source >= vertex_count) {
    throw std::out_of_range("run_scenario: source");
  }
  std::vector<NodeBehavior> cur(vertex_count, NodeBehavior::kHonest);
  for (std::size_t v = 0; v < std::min(vertex_count, behavior.size()); ++v) {
    cur[v] = behavior[v];
  }
  cur[source] = NodeBehavior::kHonest;  // the source always encodes

  // In digraph scenarios the fault target id is the vertex id. Join events
  // (and events targeting plan-time joins) are membership-only: skipped.
  std::vector<ResolvedFault> faults;
  for (const FaultEvent& e : spec.faults.sorted()) {
    if (e.kind == FaultKind::kJoin || e.targets_join()) continue;
    const auto v = static_cast<graph::Vertex>(e.node);
    if (v >= vertex_count || v == source) continue;
    faults.push_back(ResolvedFault{e.at, e.kind, v, e.behavior});
  }

  const std::vector<bool> excluded(vertex_count, false);
  return run_core(g, source, spec, std::move(cur), excluded, faults,
                  /*always_check_corruption=*/false, /*trace_ids=*/nullptr);
}

ScenarioReport run_scenario(const overlay::ThreadMatrix& m,
                            const ScenarioSpec& spec,
                            const std::vector<NodeBehavior>& behavior) {
  // Rows already tagged failed in the matrix behave as offline regardless of
  // the caller-supplied behavior vector.
  auto effective = [&](overlay::NodeId n) {
    if (m.row(n).failed) return NodeBehavior::kOffline;
    return n < behavior.size() ? behavior[n] : NodeBehavior::kHonest;
  };

  // Capacity bound: treat offline nodes as failed in a copy of the matrix
  // (jammers and entropy attackers do forward, so they count as capacity).
  overlay::ThreadMatrix capacity_view = m;
  for (const overlay::NodeId n : m.order()) {
    if (effective(n) == NodeBehavior::kOffline) capacity_view.mark_failed(n);
  }
  const overlay::FlowGraph fg = build_flow_graph(capacity_view);

  const std::size_t vertex_count = fg.graph.vertex_count();
  std::vector<NodeBehavior> cur(vertex_count, NodeBehavior::kHonest);
  std::vector<bool> excluded(vertex_count, false);
  for (const overlay::NodeId n : m.order()) {
    const graph::Vertex v = fg.vertex_of(n);
    const NodeBehavior b = effective(n);
    if (b == NodeBehavior::kOffline) {
      excluded[v] = true;
    } else {
      cur[v] = b;
    }
  }

  std::vector<ResolvedFault> faults;
  for (const FaultEvent& e : spec.faults.sorted()) {
    if (e.kind == FaultKind::kJoin || e.targets_join()) continue;
    const overlay::NodeId n = e.node;
    if (n == overlay::kServerNode || n >= fg.node_vertex.size() ||
        fg.node_vertex[n] == overlay::FlowGraph::kNoVertex) {
      continue;  // unknown node or the server itself: not a valid target
    }
    const graph::Vertex v = fg.vertex_of(n);
    if (excluded[v]) continue;
    faults.push_back(ResolvedFault{e.at, e.kind, v, e.behavior});
  }

  ScenarioReport report = run_core(
      fg.graph, overlay::FlowGraph::kServerVertex, spec, std::move(cur),
      excluded, faults, /*always_check_corruption=*/true, &fg.vertex_to_node);
  for (auto& o : report.outcomes) o.node = fg.vertex_to_node[o.vertex];
  return report;
}

}  // namespace ncast::sim
