#include "sim/broadcast.hpp"

#include <cstddef>

#include "sim/scenario.hpp"

namespace ncast::sim {

double BroadcastReport::decoded_fraction() const {
  if (outcomes.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& o : outcomes) n += o.decoded ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(outcomes.size());
}

double BroadcastReport::corrupted_fraction() const {
  if (outcomes.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& o : outcomes) n += o.corrupted ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(outcomes.size());
}

BroadcastReport simulate_broadcast(const overlay::ThreadMatrix& m,
                                   const BroadcastConfig& config,
                                   const std::vector<NodeBehavior>& behavior) {
  // The round model as a scenario: unit send period, every link half a
  // period of latency (so round r's deliveries land before round r+1's
  // sends), synchronized phases. The runner replays the old round
  // simulator's RNG draw order exactly, so seeds reproduce old runs.
  ScenarioSpec spec;
  spec.generation_size = config.generation_size;
  spec.symbols = config.symbols;
  spec.send_period = 1.0;
  spec.round_sync = true;
  spec.rounds = config.rounds;
  spec.seed = config.seed;
  spec.null_keys = config.null_keys;
  spec.link.latency = LatencySpec::fixed_delay(0.5);
  if (config.loss_p > 0.0) spec.link.loss = LossSpec::bernoulli(config.loss_p);

  const ScenarioReport run = run_scenario(m, spec, behavior);

  BroadcastReport report;
  report.rounds = run.rounds;
  report.outcomes.reserve(run.outcomes.size());
  for (const ScenarioOutcome& s : run.outcomes) {
    NodeOutcome o;
    o.node = s.node;
    o.max_flow = s.max_flow;
    o.rank_achieved = s.rank_achieved;
    o.decoded = s.decoded;
    // Deliveries happen at round + 0.5; the decode round is that round.
    o.decode_round = s.decoded ? static_cast<std::size_t>(s.decode_time) : 0;
    o.corrupted = s.corrupted;
    o.depth = s.depth;
    report.outcomes.push_back(o);
  }
  return report;
}

}  // namespace ncast::sim
