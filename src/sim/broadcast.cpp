#include "sim/broadcast.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "coding/encoder.hpp"
#include "coding/null_keys.hpp"
#include "coding/recoder.hpp"
#include "gf/gf256.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "overlay/flow_graph.hpp"
#include "util/rng.hpp"

namespace ncast::sim {

using Gf = gf::Gf256;
using Packet = coding::CodedPacket<Gf>;

double BroadcastReport::decoded_fraction() const {
  if (outcomes.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& o : outcomes) n += o.decoded ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(outcomes.size());
}

double BroadcastReport::corrupted_fraction() const {
  if (outcomes.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& o : outcomes) n += o.corrupted ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(outcomes.size());
}

namespace {

NodeBehavior behavior_of(const std::vector<NodeBehavior>& behavior,
                         overlay::NodeId node) {
  return node < behavior.size() ? behavior[node] : NodeBehavior::kHonest;
}

}  // namespace

BroadcastReport simulate_broadcast(const overlay::ThreadMatrix& m,
                                   const BroadcastConfig& config,
                                   const std::vector<NodeBehavior>& behavior) {
  const std::size_t g = config.generation_size;
  const std::size_t symbols = config.symbols;
  Rng rng(config.seed);

  // Random source data for one generation.
  std::vector<std::vector<std::uint8_t>> source(g, std::vector<std::uint8_t>(symbols));
  for (auto& row : source) {
    for (auto& b : row) b = static_cast<std::uint8_t>(rng.below(256));
  }
  const coding::SourceEncoder<Gf> encoder(0, source);

  // Null-key verification (jamming defense), if enabled.
  std::optional<coding::NullKeySet<Gf>> keys;
  if (config.null_keys > 0) {
    keys = coding::NullKeySet<Gf>::generate(0, source, config.null_keys, rng);
  }

  // Rows already tagged failed in the matrix behave as offline regardless of
  // the caller-supplied behavior vector.
  auto effective = [&](overlay::NodeId n) {
    if (m.row(n).failed) return NodeBehavior::kOffline;
    return behavior_of(behavior, n);
  };

  // Capacity bound: treat offline nodes as failed in a copy of the matrix
  // (jammers and entropy attackers do forward, so they count as capacity).
  overlay::ThreadMatrix capacity_view = m;
  for (overlay::NodeId n : m.nodes_in_order()) {
    if (effective(n) == NodeBehavior::kOffline) {
      capacity_view.mark_failed(n);
    }
  }
  const overlay::FlowGraph fg = build_flow_graph(capacity_view);
  const auto depths = node_depths(fg);

  // Static per-round send plan: every alive thread segment (from -> to).
  // Segments whose sender is offline still exist but never carry packets.
  struct Segment {
    overlay::NodeId from;  // kServerNode for server-fed segments
    overlay::NodeId to;
  };
  std::vector<Segment> segments;
  for (const auto& e : m.edges()) {
    if (effective(e.to) == NodeBehavior::kOffline) continue;
    segments.push_back(Segment{e.from, e.to});
  }

  // Receiver state.
  const auto order = m.nodes_in_order();
  std::unordered_map<overlay::NodeId, coding::Recoder<Gf>> state;
  std::unordered_map<overlay::NodeId, std::size_t> decode_round;
  // Entropy attackers freeze the first packet they receive and replay it
  // verbatim forever — formally valid traffic with zero marginal information.
  std::unordered_map<overlay::NodeId, Packet> frozen;
  for (overlay::NodeId n : order) {
    if (effective(n) == NodeBehavior::kOffline) continue;
    state.emplace(n, coding::Recoder<Gf>(0, g, symbols));
  }

  std::size_t max_depth = 0;
  for (const auto d : depths) max_depth = std::max<std::size_t>(max_depth, d > 0 ? static_cast<std::size_t>(d) : 0);
  const std::size_t rounds =
      config.rounds != 0 ? config.rounds : max_depth + 4 * g + 4;

  auto make_jam_packet = [&](Packet& p, Rng& r) {
    p.generation = 0;
    p.coeffs.resize(g);
    p.payload.resize(symbols);
    do {
      for (auto& c : p.coeffs) c = static_cast<std::uint8_t>(r.below(256));
    } while (p.is_degenerate());
    for (auto& b : p.payload) b = static_cast<std::uint8_t>(r.below(256));
  };

  static obs::Counter& sent_ctr = obs::metrics().counter("sim.packets_sent");
  static obs::Counter& lost_ctr = obs::metrics().counter("sim.packets_lost");

  // Packet pool: delivered packets return here and their buffers are reused
  // by the next round's emissions, so the steady-state event loop does not
  // allocate per packet (emit_into fills whatever capacity is already there).
  std::vector<Packet> pool;
  auto acquire = [&pool]() {
    if (pool.empty()) return Packet{};
    Packet p = std::move(pool.back());
    pool.pop_back();
    return p;
  };

  for (std::size_t round = 1; round <= rounds; ++round) {
    // Trace time inside a broadcast is the round number (the sim is
    // round-synchronous; there is no finer clock).
    obs::trace().set_now(static_cast<double>(round));
    // Collect this round's transmissions, then deliver at the boundary.
    std::vector<std::pair<overlay::NodeId, Packet>> inflight;
    inflight.reserve(segments.size());

    for (const Segment& seg : segments) {
      if (seg.from == overlay::kServerNode) {
        Packet p = acquire();
        encoder.emit_into(p, rng);
        inflight.emplace_back(seg.to, std::move(p));
        continue;
      }
      switch (effective(seg.from)) {
        case NodeBehavior::kHonest: {
          const auto& recoder = state.at(seg.from);
          Packet p = acquire();
          if (recoder.emit_into(p, rng)) {
            inflight.emplace_back(seg.to, std::move(p));
          } else {
            pool.push_back(std::move(p));
          }
          break;
        }
        case NodeBehavior::kEntropyAttack: {
          const auto it = frozen.find(seg.from);
          if (it != frozen.end()) {
            Packet p = acquire();
            p = it->second;  // copy-assign into recycled capacity
            inflight.emplace_back(seg.to, std::move(p));
          }
          break;
        }
        case NodeBehavior::kJammer: {
          Packet p = acquire();
          make_jam_packet(p, rng);
          inflight.emplace_back(seg.to, std::move(p));
          break;
        }
        case NodeBehavior::kOffline:
          break;
      }
    }

    sent_ctr.inc(inflight.size());
    for (auto& [to, packet] : inflight) {
      const bool lost = config.loss_p > 0.0 && rng.chance(config.loss_p);
      if (lost) lost_ctr.inc();
      const auto it = lost ? state.end() : state.find(to);
      if (it != state.end()) {
        // Honest verifying receivers discard unverifiable packets outright.
        const bool verified = !(keys && effective(to) == NodeBehavior::kHonest &&
                                !keys->verify(packet));
        if (verified) {
          if (effective(to) == NodeBehavior::kEntropyAttack &&
              frozen.find(to) == frozen.end()) {
            frozen.emplace(to, packet);
          }
          if (it->second.absorb(packet)) {
            obs::trace().emit(obs::TraceKind::kRankAdvance, to,
                              it->second.rank());
          }
          if (it->second.complete() &&
              decode_round.find(to) == decode_round.end()) {
            decode_round[to] = round;
          }
        }
      }
      pool.push_back(std::move(packet));
    }
  }

  BroadcastReport report;
  report.rounds = rounds;
  for (overlay::NodeId n : order) {
    if (effective(n) == NodeBehavior::kOffline) continue;
    NodeOutcome o;
    o.node = n;
    o.max_flow = node_connectivity(fg, n);
    const auto& recoder = state.at(n);
    o.rank_achieved = recoder.rank();
    const auto it = decode_round.find(n);
    o.decoded = it != decode_round.end();
    o.decode_round = o.decoded ? it->second : 0;
    if (o.decoded) {
      o.corrupted = recoder.decoder().source_packets() != source;
    }
    const auto v = fg.vertex_of(n);
    o.depth = depths[v];
    report.outcomes.push_back(o);
  }
  return report;
}

}  // namespace ncast::sim
