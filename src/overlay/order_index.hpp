#pragma once
// Order-statistic index over dense uint32 ids: the "curtain index" behind the
// SoA ThreadMatrix (docs/architecture.md, "sharded kernel & SoA overlay
// state"). A treap keyed by implicit position, stored as flat parallel arrays
// indexed by the id itself — no per-node heap allocation, no pointers to
// chase across cache lines beyond the arrays. Priorities are derived
// deterministically from the id (splitmix64 finalizer), so the tree shape —
// and therefore every operation's cost — is a pure function of the id set
// and insertion positions: identical across runs, platforms, and shard
// counts.
//
// Complexities (n = current size, expected over the deterministic-but-mixed
// priorities): insert_at / erase / position / at are O(log n); prev / next /
// front / back are O(1) via an intrusive doubly linked list threaded through
// the same arrays, which also makes full in-order iteration O(n) with no
// materialized vector (see OrderIndex::begin/end).

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <stdexcept>
#include <vector>

namespace ncast::overlay {

class OrderIndex {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  bool contains(std::uint32_t v) const {
    return v < in_.size() && in_[v] != 0;
  }

  /// First id in order (kNil when empty).
  std::uint32_t front() const { return head_; }
  /// Last id in order (kNil when empty).
  std::uint32_t back() const { return tail_; }
  /// Predecessor in order (kNil at the front). `v` must be contained.
  std::uint32_t prev(std::uint32_t v) const { return prev_[v]; }
  /// Successor in order (kNil at the back). `v` must be contained.
  std::uint32_t next(std::uint32_t v) const { return next_[v]; }

  /// Inserts `v` so that it ends up at position `pos` (0 = front). `v` must
  /// not be contained; pos must be <= size().
  void insert_at(std::size_t pos, std::uint32_t v) {
    if (pos > count_) throw std::out_of_range("OrderIndex::insert_at: pos");
    if (contains(v)) throw std::invalid_argument("OrderIndex: duplicate id");
    ensure_capacity(v);
    in_[v] = 1;
    left_[v] = kNil;
    right_[v] = kNil;
    cnt_[v] = 1;
    prio_[v] = mix_priority(v);

    // Descend by implicit index to the attach point.
    std::uint32_t cur = root_;
    std::uint32_t parent = kNil;
    bool went_left = false;
    std::size_t p = pos;
    while (cur != kNil) {
      const std::size_t ls = subtree(left_[cur]);
      parent = cur;
      if (p <= ls) {
        went_left = true;
        cur = left_[cur];
      } else {
        went_left = false;
        p -= ls + 1;
        cur = right_[cur];
      }
    }
    parent_[v] = parent;
    if (parent == kNil) {
      root_ = v;
      prev_[v] = kNil;
      next_[v] = kNil;
      head_ = v;
      tail_ = v;
    } else {
      std::uint32_t before, after;
      if (went_left) {
        left_[parent] = v;
        after = parent;        // parent is the in-order successor
        before = prev_[parent];
      } else {
        right_[parent] = v;
        before = parent;       // parent is the in-order predecessor
        after = next_[parent];
      }
      splice(before, v, after);
      // Fix subtree counts on the descent path, then restore the heap
      // property by rotating v up while its priority beats its parent's.
      for (std::uint32_t a = parent; a != kNil; a = parent_[a]) ++cnt_[a];
      while (parent_[v] != kNil && prio_[v] < prio_[parent_[v]]) rotate_up(v);
    }
    ++count_;
  }

  /// Removes `v`. `v` must be contained.
  void erase(std::uint32_t v) {
    if (!contains(v)) throw std::out_of_range("OrderIndex::erase: unknown id");
    // Rotate v down (promoting the smaller-priority child) until it's a leaf.
    while (left_[v] != kNil || right_[v] != kNil) {
      std::uint32_t child;
      if (left_[v] == kNil) {
        child = right_[v];
      } else if (right_[v] == kNil) {
        child = left_[v];
      } else {
        child = prio_[left_[v]] < prio_[right_[v]] ? left_[v] : right_[v];
      }
      rotate_up(child);
    }
    const std::uint32_t parent = parent_[v];
    if (parent == kNil) {
      root_ = kNil;
    } else if (left_[parent] == v) {
      left_[parent] = kNil;
    } else {
      right_[parent] = kNil;
    }
    for (std::uint32_t a = parent; a != kNil; a = parent_[a]) --cnt_[a];
    unsplice(v);
    in_[v] = 0;
    --count_;
  }

  /// Position of `v` in order (0 = front).
  std::size_t position(std::uint32_t v) const {
    if (!contains(v)) throw std::out_of_range("OrderIndex::position");
    std::size_t pos = subtree(left_[v]);
    std::uint32_t cur = v;
    for (std::uint32_t p = parent_[cur]; p != kNil; p = parent_[cur]) {
      if (right_[p] == cur) pos += subtree(left_[p]) + 1;
      cur = p;
    }
    return pos;
  }

  /// Id at position `pos` (0 = front).
  std::uint32_t at(std::size_t pos) const {
    if (pos >= count_) throw std::out_of_range("OrderIndex::at");
    std::uint32_t cur = root_;
    while (true) {
      const std::size_t ls = subtree(left_[cur]);
      if (pos < ls) {
        cur = left_[cur];
      } else if (pos == ls) {
        return cur;
      } else {
        pos -= ls + 1;
        cur = right_[cur];
      }
    }
  }

  /// Forward iteration over ids in order, O(1) per step, nothing
  /// materialized: `for (auto id : index) ...`.
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const std::uint32_t*;
    using reference = std::uint32_t;

    iterator() = default;
    iterator(const OrderIndex* idx, std::uint32_t cur) : idx_(idx), cur_(cur) {}
    std::uint32_t operator*() const { return cur_; }
    iterator& operator++() {
      cur_ = idx_->next(cur_);
      return *this;
    }
    iterator operator++(int) {
      iterator t = *this;
      ++*this;
      return t;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.cur_ == b.cur_;
    }

   private:
    const OrderIndex* idx_ = nullptr;
    std::uint32_t cur_ = kNil;
  };

  iterator begin() const { return iterator(this, head_); }
  iterator end() const { return iterator(this, kNil); }

 private:
  static std::uint32_t mix_priority(std::uint32_t v) {
    // splitmix64 finalizer over the id: deterministic, well mixed, so even
    // sequential ids produce a balanced treap in expectation.
    std::uint64_t z = static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::uint32_t>((z ^ (z >> 31)) >> 16);
  }

  std::size_t subtree(std::uint32_t v) const { return v == kNil ? 0 : cnt_[v]; }

  void ensure_capacity(std::uint32_t v) {
    if (v < in_.size()) return;
    const std::size_t n = static_cast<std::size_t>(v) + 1;
    in_.resize(n, 0);
    left_.resize(n, kNil);
    right_.resize(n, kNil);
    parent_.resize(n, kNil);
    prev_.resize(n, kNil);
    next_.resize(n, kNil);
    cnt_.resize(n, 0);
    prio_.resize(n, 0);
  }

  void splice(std::uint32_t before, std::uint32_t v, std::uint32_t after) {
    prev_[v] = before;
    next_[v] = after;
    if (before == kNil) head_ = v; else next_[before] = v;
    if (after == kNil) tail_ = v; else prev_[after] = v;
  }

  void unsplice(std::uint32_t v) {
    const std::uint32_t b = prev_[v], a = next_[v];
    if (b == kNil) head_ = a; else next_[b] = a;
    if (a == kNil) tail_ = b; else prev_[a] = b;
  }

  /// Rotates `v` one level up (v must have a parent). In-order sequence is
  /// unchanged; subtree counts are patched locally.
  void rotate_up(std::uint32_t v) {
    const std::uint32_t p = parent_[v];
    const std::uint32_t g = parent_[p];
    if (left_[p] == v) {
      left_[p] = right_[v];
      if (right_[v] != kNil) parent_[right_[v]] = p;
      right_[v] = p;
    } else {
      right_[p] = left_[v];
      if (left_[v] != kNil) parent_[left_[v]] = p;
      left_[v] = p;
    }
    parent_[p] = v;
    parent_[v] = g;
    if (g == kNil) {
      root_ = v;
    } else if (left_[g] == p) {
      left_[g] = v;
    } else {
      right_[g] = v;
    }
    cnt_[v] = cnt_[p];
    cnt_[p] = static_cast<std::uint32_t>(1 + subtree(left_[p]) + subtree(right_[p]));
  }

  std::vector<std::uint8_t> in_;        // membership flag per id
  std::vector<std::uint32_t> left_, right_, parent_;  // treap topology
  std::vector<std::uint32_t> prev_, next_;            // in-order linked list
  std::vector<std::uint32_t> cnt_;      // subtree sizes (order statistics)
  std::vector<std::uint32_t> prio_;     // deterministic heap priorities
  std::uint32_t root_ = kNil;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::size_t count_ = 0;
};

}  // namespace ncast::overlay
