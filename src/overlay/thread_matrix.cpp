#include "overlay/thread_matrix.hpp"

#include <algorithm>

namespace ncast::overlay {

ThreadMatrix::ThreadMatrix(std::uint32_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("ThreadMatrix: k must be positive");
  tail_.assign(k_, kServerNode);
  free_.resize(33);  // capacity classes 2^0 .. 2^32
}

void ThreadMatrix::check_known(NodeId node) const {
  if (!contains(node)) throw std::out_of_range("ThreadMatrix: unknown node");
}

void ThreadMatrix::verify_threads(const ColumnId* threads,
                                  std::size_t count) const {
  if (count == 0) throw std::invalid_argument("ThreadMatrix: row needs >= 1 thread");
  for (std::size_t i = 0; i < count; ++i) {
    if (threads[i] >= k_) throw std::invalid_argument("ThreadMatrix: column out of range");
    if (i > 0 && threads[i] <= threads[i - 1]) {
      throw std::invalid_argument("ThreadMatrix: threads must be sorted and distinct");
    }
  }
}

std::uint8_t ThreadMatrix::cap_log2_for(std::size_t len) {
  std::uint8_t p = 0;
  while ((std::size_t{1} << p) < len) ++p;
  return p;
}

std::uint32_t ThreadMatrix::alloc_span(std::uint8_t cap_log2) {
  auto& fl = free_[cap_log2];
  if (!fl.empty()) {
    const std::uint32_t off = fl.back();
    fl.pop_back();
    return off;
  }
  const std::size_t cap = std::size_t{1} << cap_log2;
  const std::uint32_t off = static_cast<std::uint32_t>(cols_.size());
  cols_.resize(cols_.size() + cap);
  up_.resize(up_.size() + cap);
  down_.resize(down_.size() + cap);
  return off;
}

void ThreadMatrix::free_span(std::uint32_t off, std::uint8_t cap_log2) {
  free_[cap_log2].push_back(off);
}

std::uint32_t ThreadMatrix::slot_of(NodeId node, ColumnId column) const {
  const RowMeta& m = meta_[node];
  const ColumnId* first = cols_.data() + m.off;
  const ColumnId* it = std::lower_bound(first, first + m.len, column);
  return m.off + static_cast<std::uint32_t>(it - first);
}

void ThreadMatrix::append_row(NodeId node, std::vector<ColumnId> threads) {
  insert_row(order_.size(), node, std::move(threads));
}

void ThreadMatrix::insert_row(std::size_t pos, NodeId node,
                              std::vector<ColumnId> threads) {
  if (pos > order_.size()) throw std::out_of_range("ThreadMatrix::insert_row: pos");
  if (node == kServerNode) throw std::invalid_argument("ThreadMatrix: reserved node id");
  std::sort(threads.begin(), threads.end());
  insert_row(pos, node, threads.data(), threads.size());
}

void ThreadMatrix::insert_row(std::size_t pos, NodeId node,
                              const ColumnId* threads, std::size_t count) {
  if (pos > order_.size()) throw std::out_of_range("ThreadMatrix::insert_row: pos");
  if (node == kServerNode) throw std::invalid_argument("ThreadMatrix: reserved node id");
  verify_threads(threads, count);
  if (contains(node)) throw std::invalid_argument("ThreadMatrix: node already present");
  if (node >= meta_.size()) meta_.resize(node + 1);

  RowMeta& m = meta_[node];
  m.cap_log2 = cap_log2_for(count);
  m.off = alloc_span(m.cap_log2);
  m.len = static_cast<std::uint32_t>(count);
  m.present = true;
  m.failed = false;
  std::copy(threads, threads + count, cols_.begin() + m.off);

  order_.insert_at(pos, node);
  splice_links(node);
}

void ThreadMatrix::splice_links(NodeId node) {
  const RowMeta& m = meta_[node];
  const std::uint32_t off = m.off;
  const std::uint32_t len = m.len;

  // Resolve each column's child by walking the curtain downward from the new
  // row, intersecting each visited row's span with the still-unresolved
  // columns (both sorted — one two-pointer pass per visited row). For the
  // paper's balanced workloads the nearest clipper of some column is a few
  // rows away, so the walk resolves everything after O((k/d) ln d) visits in
  // expectation; columns that reach the bottom unresolved are hanging ends
  // and read the per-column tail array instead, so an append is O(d) flat.
  if (resolved_scratch_.size() < len) resolved_scratch_.resize(len);
  std::fill(resolved_scratch_.begin(), resolved_scratch_.begin() + len, 0);
  std::uint32_t remaining = len;

  NodeId below = order_.next(node);
  while (remaining > 0 && below != OrderIndex::kNil) {
    const RowMeta& bm = meta_[below];
    std::uint32_t i = 0, j = 0;
    while (i < len && j < bm.len) {
      const ColumnId mine = cols_[off + i];
      const ColumnId theirs = cols_[bm.off + j];
      if (mine < theirs) {
        ++i;
      } else if (theirs < mine) {
        ++j;
      } else {
        if (resolved_scratch_[i] == 0) {
          resolved_scratch_[i] = 1;
          --remaining;
          const std::uint32_t child_slot = bm.off + j;
          const NodeId parent = up_[child_slot];
          up_[off + i] = parent;
          down_[off + i] = below;
          up_[child_slot] = node;
          if (parent != kServerNode) {
            down_[slot_of(parent, mine)] = node;
          }
        }
        ++i;
        ++j;
      }
    }
    below = order_.next(below);
  }

  for (std::uint32_t i = 0; remaining > 0 && i < len; ++i) {
    if (resolved_scratch_[i] != 0) continue;
    --remaining;
    const ColumnId c = cols_[off + i];
    const NodeId parent = tail_[c];
    up_[off + i] = parent;
    down_[off + i] = kNoNode;
    if (parent != kServerNode) down_[slot_of(parent, c)] = node;
    tail_[c] = node;
  }
}

void ThreadMatrix::unlink_slot(std::uint32_t slot) {
  const ColumnId c = cols_[slot];
  const NodeId u = up_[slot];
  const NodeId d = down_[slot];
  if (u != kServerNode) down_[slot_of(u, c)] = d;
  if (d != kNoNode) {
    up_[slot_of(d, c)] = u;
  } else {
    tail_[c] = u;
  }
}

void ThreadMatrix::erase_row(NodeId node) {
  check_known(node);
  RowMeta& m = meta_[node];
  if (m.failed) --failed_count_;
  for (std::uint32_t i = 0; i < m.len; ++i) unlink_slot(m.off + i);
  free_span(m.off, m.cap_log2);
  m.present = false;
  m.failed = false;
  m.len = 0;
  order_.erase(node);
}

void ThreadMatrix::mark_failed(NodeId node) {
  check_known(node);
  RowMeta& m = meta_[node];
  if (!m.failed) {
    m.failed = true;
    ++failed_count_;
  }
}

void ThreadMatrix::mark_working(NodeId node) {
  check_known(node);
  RowMeta& m = meta_[node];
  if (m.failed) {
    m.failed = false;
    --failed_count_;
  }
}

Row ThreadMatrix::row(NodeId node) const {
  check_known(node);
  const RowMeta& m = meta_[node];
  return Row{node, ThreadSpan(cols_.data() + m.off, m.len), m.failed};
}

std::size_t ThreadMatrix::position(NodeId node) const {
  if (!contains(node)) throw std::out_of_range("ThreadMatrix::position");
  return order_.position(node);
}

std::vector<NodeId> ThreadMatrix::nodes_in_order() const {
  std::vector<NodeId> out;
  out.reserve(order_.size());
  for (NodeId n : order_) out.push_back(n);
  return out;
}

std::vector<ThreadEdge> ThreadMatrix::edges() const {
  std::vector<ThreadEdge> out;
  out.reserve(order_.size() * 2);
  for (NodeId node : order_) {
    const RowMeta& m = meta_[node];
    for (std::uint32_t i = 0; i < m.len; ++i) {
      out.push_back(ThreadEdge{up_[m.off + i], node, cols_[m.off + i]});
    }
  }
  return out;
}

std::vector<HangingEnd> ThreadMatrix::hanging_ends() const {
  std::vector<HangingEnd> ends(k_);
  for (ColumnId c = 0; c < k_; ++c) {
    ends[c].column = c;
    const NodeId owner = tail_[c];
    ends[c].owner = owner;
    ends[c].owner_failed = owner != kServerNode && meta_[owner].failed;
  }
  return ends;
}

std::vector<NodeId> ThreadMatrix::parents(NodeId node) const {
  check_known(node);
  const RowMeta& m = meta_[node];
  std::vector<NodeId> result;
  for (std::uint32_t i = 0; i < m.len; ++i) {
    const NodeId parent = up_[m.off + i];
    if (std::find(result.begin(), result.end(), parent) == result.end()) {
      result.push_back(parent);
    }
  }
  return result;
}

std::vector<NodeId> ThreadMatrix::children(NodeId node) const {
  check_known(node);
  const RowMeta& m = meta_[node];
  std::vector<NodeId> result;
  for (std::uint32_t i = 0; i < m.len; ++i) {
    const NodeId child = down_[m.off + i];
    if (child == kNoNode) continue;
    if (std::find(result.begin(), result.end(), child) == result.end()) {
      result.push_back(child);
    }
  }
  return result;
}

NodeId ThreadMatrix::parent_on_column(NodeId node, ColumnId column) const {
  check_known(node);
  if (column >= k_) throw std::invalid_argument("ThreadMatrix::parent_on_column: column");
  const std::uint32_t slot = slot_of(node, column);
  const RowMeta& m = meta_[node];
  if (slot < m.off + m.len && cols_[slot] == column) return up_[slot];
  // Not clipped by this row (e.g. a complaint racing an offload): fall back
  // to walking the curtain upward for the nearest clipper.
  for (NodeId above = order_.prev(node); above != OrderIndex::kNil;
       above = order_.prev(above)) {
    const RowMeta& am = meta_[above];
    const ColumnId* first = cols_.data() + am.off;
    const ColumnId* it = std::lower_bound(first, first + am.len, column);
    if (it != first + am.len && *it == column) return above;
  }
  return kServerNode;
}

NodeId ThreadMatrix::child_on_column(NodeId node, ColumnId column) const {
  check_known(node);
  if (column >= k_) throw std::invalid_argument("ThreadMatrix::child_on_column: column");
  const std::uint32_t slot = slot_of(node, column);
  const RowMeta& m = meta_[node];
  if (slot < m.off + m.len && cols_[slot] == column) return down_[slot];
  for (NodeId below = order_.next(node); below != OrderIndex::kNil;
       below = order_.next(below)) {
    const RowMeta& bm = meta_[below];
    const ColumnId* first = cols_.data() + bm.off;
    const ColumnId* it = std::lower_bound(first, first + bm.len, column);
    if (it != first + bm.len && *it == column) return below;
  }
  return kNoNode;
}

NodeId ThreadMatrix::tail_of_column(ColumnId column) const {
  if (column >= k_) throw std::invalid_argument("ThreadMatrix::tail_of_column: column");
  return tail_[column];
}

void ThreadMatrix::add_thread(NodeId node, ColumnId column) {
  if (column >= k_) throw std::invalid_argument("ThreadMatrix::add_thread: column");
  check_known(node);
  RowMeta& m = meta_[node];
  {
    const ColumnId* first = cols_.data() + m.off;
    const ColumnId* it = std::lower_bound(first, first + m.len, column);
    if (it != first + m.len && *it == column) {
      throw std::invalid_argument("ThreadMatrix::add_thread: already clipped");
    }
  }
  // Grow the span if at capacity (new slot from the next size class; links
  // reference rows by id, not arena offsets, so neighbors are unaffected).
  if (m.len == (std::uint32_t{1} << m.cap_log2)) {
    const std::uint8_t new_cap = static_cast<std::uint8_t>(m.cap_log2 + 1);
    const std::uint32_t new_off = alloc_span(new_cap);
    std::copy(cols_.begin() + m.off, cols_.begin() + m.off + m.len,
              cols_.begin() + new_off);
    std::copy(up_.begin() + m.off, up_.begin() + m.off + m.len,
              up_.begin() + new_off);
    std::copy(down_.begin() + m.off, down_.begin() + m.off + m.len,
              down_.begin() + new_off);
    free_span(m.off, m.cap_log2);
    m.off = new_off;
    m.cap_log2 = new_cap;
  }
  // Shift the tail of the span right to open the insertion point.
  const std::uint32_t ins = slot_of(node, column);
  for (std::uint32_t j = m.off + m.len; j > ins; --j) {
    cols_[j] = cols_[j - 1];
    up_[j] = up_[j - 1];
    down_[j] = down_[j - 1];
  }
  cols_[ins] = column;
  ++m.len;

  // Find this column's child by walking downward; the parent is the child's
  // previous upward link (or the column tail when the new slot hangs).
  NodeId child = kNoNode;
  for (NodeId below = order_.next(node); below != OrderIndex::kNil;
       below = order_.next(below)) {
    const RowMeta& bm = meta_[below];
    const ColumnId* first = cols_.data() + bm.off;
    const ColumnId* it = std::lower_bound(first, first + bm.len, column);
    if (it != first + bm.len && *it == column) {
      child = below;
      break;
    }
  }
  if (child != kNoNode) {
    const std::uint32_t child_slot = slot_of(child, column);
    const NodeId parent = up_[child_slot];
    up_[ins] = parent;
    down_[ins] = child;
    up_[child_slot] = node;
    if (parent != kServerNode) down_[slot_of(parent, column)] = node;
  } else {
    const NodeId parent = tail_[column];
    up_[ins] = parent;
    down_[ins] = kNoNode;
    if (parent != kServerNode) down_[slot_of(parent, column)] = node;
    tail_[column] = node;
  }
}

void ThreadMatrix::drop_thread(NodeId node, ColumnId column) {
  check_known(node);
  RowMeta& m = meta_[node];
  const std::uint32_t slot = slot_of(node, column);
  if (slot >= m.off + m.len || cols_[slot] != column) {
    throw std::invalid_argument("ThreadMatrix::drop_thread: column not clipped");
  }
  if (m.len <= 1) {
    throw std::logic_error("ThreadMatrix::drop_thread: row would become empty");
  }
  unlink_slot(slot);
  for (std::uint32_t j = slot; j + 1 < m.off + m.len; ++j) {
    cols_[j] = cols_[j + 1];
    up_[j] = up_[j + 1];
    down_[j] = down_[j + 1];
  }
  --m.len;
}

bool ThreadMatrix::check_invariants() const {
  // Span hygiene + failed census, walking the order index.
  std::size_t failed = 0;
  std::size_t seen = 0;
  std::size_t pos = 0;
  for (NodeId node : order_) {
    if (node >= meta_.size() || !meta_[node].present) return false;
    const RowMeta& m = meta_[node];
    if (m.len == 0) return false;
    if (m.len > (std::uint32_t{1} << m.cap_log2)) return false;
    for (std::uint32_t i = 0; i < m.len; ++i) {
      if (cols_[m.off + i] >= k_) return false;
      if (i > 0 && cols_[m.off + i] <= cols_[m.off + i - 1]) return false;
    }
    if (m.failed) ++failed;
    if (order_.position(node) != pos) return false;  // order index coherent
    ++pos;
    ++seen;
  }
  if (failed != failed_count_) return false;
  // Every present slot must be in the order index exactly once.
  std::size_t present = 0;
  for (const RowMeta& m : meta_) {
    if (m.present) ++present;
  }
  if (present != seen) return false;

  // Link planes and tails must match a from-scratch top-to-bottom rebuild.
  std::vector<NodeId> last(k_, kServerNode);
  for (NodeId node : order_) {
    const RowMeta& m = meta_[node];
    for (std::uint32_t i = 0; i < m.len; ++i) {
      const ColumnId c = cols_[m.off + i];
      if (up_[m.off + i] != last[c]) return false;
      if (last[c] != kServerNode) {
        const RowMeta& pm = meta_[last[c]];
        const ColumnId* first = cols_.data() + pm.off;
        const ColumnId* it = std::lower_bound(first, first + pm.len, c);
        if (down_[pm.off + (it - first)] != node) return false;
      }
      last[c] = node;
    }
  }
  for (ColumnId c = 0; c < k_; ++c) {
    if (tail_[c] != last[c]) return false;
    if (last[c] != kServerNode) {
      const RowMeta& tm = meta_[last[c]];
      const ColumnId* first = cols_.data() + tm.off;
      const ColumnId* it = std::lower_bound(first, first + tm.len, c);
      if (down_[tm.off + (it - first)] != kNoNode) return false;
    }
  }
  return true;
}

}  // namespace ncast::overlay
