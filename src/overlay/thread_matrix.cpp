#include "overlay/thread_matrix.hpp"

#include <algorithm>

namespace ncast::overlay {

ThreadMatrix::ThreadMatrix(std::uint32_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("ThreadMatrix: k must be positive");
}

bool ThreadMatrix::contains(NodeId node) const {
  return node < slots_.size() && slots_[node].present;
}

ThreadMatrix::Slot& ThreadMatrix::slot(NodeId node) {
  if (!contains(node)) throw std::out_of_range("ThreadMatrix: unknown node");
  return slots_[node];
}

const ThreadMatrix::Slot& ThreadMatrix::slot(NodeId node) const {
  if (!contains(node)) throw std::out_of_range("ThreadMatrix: unknown node");
  return slots_[node];
}

void ThreadMatrix::verify_threads(const std::vector<ColumnId>& threads) const {
  if (threads.empty()) throw std::invalid_argument("ThreadMatrix: row needs >= 1 thread");
  for (std::size_t i = 0; i < threads.size(); ++i) {
    if (threads[i] >= k_) throw std::invalid_argument("ThreadMatrix: column out of range");
    if (i > 0 && threads[i] <= threads[i - 1]) {
      throw std::invalid_argument("ThreadMatrix: threads must be sorted and distinct");
    }
  }
}

void ThreadMatrix::append_row(NodeId node, std::vector<ColumnId> threads) {
  insert_row(order_.size(), node, std::move(threads));
}

void ThreadMatrix::insert_row(std::size_t pos, NodeId node,
                              std::vector<ColumnId> threads) {
  if (pos > order_.size()) throw std::out_of_range("ThreadMatrix::insert_row: pos");
  if (node == kServerNode) throw std::invalid_argument("ThreadMatrix: reserved node id");
  std::sort(threads.begin(), threads.end());
  verify_threads(threads);
  if (contains(node)) throw std::invalid_argument("ThreadMatrix: node already present");
  if (node >= slots_.size()) slots_.resize(node + 1);
  slots_[node].row = Row{node, std::move(threads), false};
  slots_[node].present = true;
  order_.insert(order_.begin() + static_cast<std::ptrdiff_t>(pos), node);
}

void ThreadMatrix::erase_row(NodeId node) {
  Slot& s = slot(node);
  if (s.row.failed) --failed_count_;
  s.present = false;
  s.row.threads.clear();
  order_.erase(std::find(order_.begin(), order_.end(), node));
}

void ThreadMatrix::mark_failed(NodeId node) {
  Slot& s = slot(node);
  if (!s.row.failed) {
    s.row.failed = true;
    ++failed_count_;
  }
}

void ThreadMatrix::mark_working(NodeId node) {
  Slot& s = slot(node);
  if (s.row.failed) {
    s.row.failed = false;
    --failed_count_;
  }
}

const Row& ThreadMatrix::row(NodeId node) const { return slot(node).row; }

std::size_t ThreadMatrix::position(NodeId node) const {
  const auto it = std::find(order_.begin(), order_.end(), node);
  if (it == order_.end()) throw std::out_of_range("ThreadMatrix::position");
  return static_cast<std::size_t>(it - order_.begin());
}

std::vector<NodeId> ThreadMatrix::nodes_in_order() const { return order_; }

std::vector<ThreadEdge> ThreadMatrix::edges() const {
  std::vector<ThreadEdge> out;
  out.reserve(order_.size() * 2);
  std::vector<NodeId> last(k_, kServerNode);
  for (NodeId node : order_) {
    const Row& r = slots_[node].row;
    for (ColumnId c : r.threads) {
      out.push_back(ThreadEdge{last[c], node, c});
      last[c] = node;
    }
  }
  return out;
}

std::vector<HangingEnd> ThreadMatrix::hanging_ends() const {
  std::vector<HangingEnd> ends(k_);
  for (ColumnId c = 0; c < k_; ++c) ends[c].column = c;
  for (NodeId node : order_) {
    const Row& r = slots_[node].row;
    for (ColumnId c : r.threads) {
      ends[c].owner = node;
      ends[c].owner_failed = r.failed;
    }
  }
  return ends;
}

std::vector<NodeId> ThreadMatrix::parents(NodeId node) const {
  const Row& target = slot(node).row;
  const std::size_t pos = position(node);
  std::vector<NodeId> result;
  for (ColumnId c : target.threads) {
    // Walk upward to the nearest earlier row clipping column c.
    NodeId parent = kServerNode;
    for (std::size_t i = pos; i > 0; --i) {
      const Row& r = slots_[order_[i - 1]].row;
      if (std::binary_search(r.threads.begin(), r.threads.end(), c)) {
        parent = r.node;
        break;
      }
    }
    if (std::find(result.begin(), result.end(), parent) == result.end()) {
      result.push_back(parent);
    }
  }
  return result;
}

std::vector<NodeId> ThreadMatrix::children(NodeId node) const {
  const Row& source = slot(node).row;
  const std::size_t pos = position(node);
  std::vector<NodeId> result;
  for (ColumnId c : source.threads) {
    for (std::size_t i = pos + 1; i < order_.size(); ++i) {
      const Row& r = slots_[order_[i]].row;
      if (std::binary_search(r.threads.begin(), r.threads.end(), c)) {
        if (std::find(result.begin(), result.end(), r.node) == result.end()) {
          result.push_back(r.node);
        }
        break;
      }
    }
  }
  return result;
}

void ThreadMatrix::add_thread(NodeId node, ColumnId column) {
  if (column >= k_) throw std::invalid_argument("ThreadMatrix::add_thread: column");
  Row& r = slot(node).row;
  const auto it = std::lower_bound(r.threads.begin(), r.threads.end(), column);
  if (it != r.threads.end() && *it == column) {
    throw std::invalid_argument("ThreadMatrix::add_thread: already clipped");
  }
  r.threads.insert(it, column);
}

void ThreadMatrix::drop_thread(NodeId node, ColumnId column) {
  Row& r = slot(node).row;
  const auto it = std::lower_bound(r.threads.begin(), r.threads.end(), column);
  if (it == r.threads.end() || *it != column) {
    throw std::invalid_argument("ThreadMatrix::drop_thread: column not clipped");
  }
  if (r.threads.size() <= 1) {
    throw std::logic_error("ThreadMatrix::drop_thread: row would become empty");
  }
  r.threads.erase(it);
}

bool ThreadMatrix::check_invariants() const {
  std::size_t failed = 0;
  for (NodeId node : order_) {
    if (node >= slots_.size() || !slots_[node].present) return false;
    const Row& r = slots_[node].row;
    if (r.node != node) return false;
    if (r.threads.empty()) return false;
    for (std::size_t i = 0; i < r.threads.size(); ++i) {
      if (r.threads[i] >= k_) return false;
      if (i > 0 && r.threads[i] <= r.threads[i - 1]) return false;
    }
    if (r.failed) ++failed;
  }
  if (failed != failed_count_) return false;
  // Every present slot must be in the order vector exactly once.
  std::size_t present = 0;
  for (const Slot& s : slots_) {
    if (s.present) ++present;
  }
  return present == order_.size();
}

}  // namespace ncast::overlay
