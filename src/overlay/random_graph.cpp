#include "overlay/random_graph.hpp"

#include <stdexcept>

#include "graph/maxflow.hpp"

namespace ncast::overlay {

RandomGraphOverlay::RandomGraphOverlay(std::uint32_t degree,
                                       std::uint32_t seed_children, Rng rng)
    : degree_(degree), graph_(1), rng_(rng), dead_vertex_(1, false) {
  if (degree == 0) throw std::invalid_argument("RandomGraphOverlay: degree");
  if (seed_children == 0) throw std::invalid_argument("RandomGraphOverlay: seed_children");
  for (std::uint32_t i = 0; i < seed_children; ++i) {
    const graph::Vertex child = graph_.add_vertex();
    dead_vertex_.push_back(false);
    for (std::uint32_t e = 0; e < degree_; ++e) graph_.add_edge(kServer, child);
  }
}

std::vector<graph::EdgeId> RandomGraphOverlay::alive_edges() const {
  std::vector<graph::EdgeId> ids;
  ids.reserve(graph_.edge_count());
  for (graph::EdgeId id = 0; id < graph_.edge_count(); ++id) {
    const auto& e = graph_.edge(id);
    if (e.alive && !dead_vertex_[e.from] && !dead_vertex_[e.to]) ids.push_back(id);
  }
  return ids;
}

graph::Vertex RandomGraphOverlay::join() {
  const std::vector<graph::EdgeId> candidates = alive_edges();
  if (candidates.size() < degree_) {
    throw std::logic_error("RandomGraphOverlay::join: not enough edges to split");
  }
  const auto picks = rng_.sample_without_replacement(
      static_cast<std::uint32_t>(candidates.size()), degree_);

  const graph::Vertex v = graph_.add_vertex();
  dead_vertex_.push_back(false);
  for (const std::uint32_t p : picks) {
    const graph::EdgeId id = candidates[p];
    // Copy endpoints: add_edge may reallocate edge storage.
    const graph::Vertex from = graph_.edge(id).from;
    const graph::Vertex to = graph_.edge(id).to;
    graph_.remove_edge(id);
    graph_.add_edge(from, v);
    graph_.add_edge(v, to);
  }
  return v;
}

void RandomGraphOverlay::fail(graph::Vertex v) {
  if (v == kServer || v >= graph_.vertex_count()) {
    throw std::out_of_range("RandomGraphOverlay::fail");
  }
  dead_vertex_[v] = true;
}

void RandomGraphOverlay::leave(graph::Vertex v) {
  if (v == kServer || v >= graph_.vertex_count() || dead_vertex_[v]) {
    throw std::out_of_range("RandomGraphOverlay::leave");
  }
  // Pair up alive in- and out-edges and splice them.
  std::vector<graph::EdgeId> ins, outs;
  for (graph::EdgeId id : graph_.in_edges(v)) {
    const auto& e = graph_.edge(id);
    if (e.alive && !dead_vertex_[e.from]) ins.push_back(id);
  }
  for (graph::EdgeId id : graph_.out_edges(v)) {
    const auto& e = graph_.edge(id);
    if (e.alive && !dead_vertex_[e.to]) outs.push_back(id);
  }
  const std::size_t pairs = std::min(ins.size(), outs.size());
  for (std::size_t i = 0; i < pairs; ++i) {
    const graph::Vertex from = graph_.edge(ins[i]).from;
    const graph::Vertex to = graph_.edge(outs[i]).to;
    graph_.remove_edge(ins[i]);
    graph_.remove_edge(outs[i]);
    graph_.add_edge(from, to);
  }
  for (std::size_t i = pairs; i < ins.size(); ++i) graph_.remove_edge(ins[i]);
  for (std::size_t i = pairs; i < outs.size(); ++i) graph_.remove_edge(outs[i]);
  dead_vertex_[v] = true;
}

std::vector<std::int64_t> RandomGraphOverlay::depths() const {
  // Build a view excluding dead vertices' edges.
  graph::Digraph view(graph_.vertex_count());
  for (graph::EdgeId id = 0; id < graph_.edge_count(); ++id) {
    const auto& e = graph_.edge(id);
    if (e.alive && !dead_vertex_[e.from] && !dead_vertex_[e.to]) {
      view.add_edge(e.from, e.to);
    }
  }
  return graph::bfs_depths(view, kServer);
}

std::int64_t RandomGraphOverlay::connectivity(graph::Vertex v) const {
  if (v == kServer || v >= graph_.vertex_count()) {
    throw std::out_of_range("RandomGraphOverlay::connectivity");
  }
  if (dead_vertex_[v]) return 0;
  graph::Digraph view(graph_.vertex_count());
  for (graph::EdgeId id = 0; id < graph_.edge_count(); ++id) {
    const auto& e = graph_.edge(id);
    if (e.alive && !dead_vertex_[e.from] && !dead_vertex_[e.to]) {
      view.add_edge(e.from, e.to);
    }
  }
  return graph::unit_max_flow(view, kServer, v);
}

}  // namespace ncast::overlay
