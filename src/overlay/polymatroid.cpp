#include "overlay/polymatroid.hpp"

#include <bit>
#include <stdexcept>

namespace ncast::overlay {

PolymatroidCurtain::PolymatroidCurtain(std::uint32_t k) : k_(k), full_(0) {
  if (k == 0 || k > 22) {
    throw std::invalid_argument("PolymatroidCurtain: need 1 <= k <= 22");
  }
  full_ = (1u << k) - 1u;
  rank_.resize(std::size_t{1} << k);
  scratch_.resize(rank_.size());
  // Fresh curtain: k independent unit threads from the server, r(S) = |S|.
  for (Mask s = 0; s <= full_; ++s) {
    rank_[s] = static_cast<std::uint8_t>(std::popcount(s));
  }
}

std::uint32_t PolymatroidCurtain::join(Mask set, bool failed) {
  if (set == 0 || (set & ~full_) != 0) {
    throw std::invalid_argument("PolymatroidCurtain::join: bad thread set");
  }
  const std::uint32_t joined_rank = rank_[set];
  const std::uint32_t rd = joined_rank;

  if (failed) {
    for (Mask s = 0; s <= full_; ++s) {
      scratch_[s] = rank_[s & ~set];
    }
  } else {
    for (Mask s = 0; s <= full_; ++s) {
      const auto c = static_cast<std::uint32_t>(std::popcount(s & set));
      const std::uint32_t through = std::min(c, rd) + rank_[s & ~set];
      const std::uint32_t joint = rank_[s | set];
      scratch_[s] = static_cast<std::uint8_t>(std::min(through, joint));
    }
  }
  rank_.swap(scratch_);
  ++steps_;
  return joined_rank;
}

std::uint32_t PolymatroidCurtain::join_random(std::uint32_t d, double p, Rng& rng) {
  if (d == 0 || d > k_) throw std::invalid_argument("PolymatroidCurtain: bad d");
  Mask set = 0;
  for (const std::uint32_t c : rng.sample_without_replacement(k_, d)) {
    set |= (1u << c);
  }
  return join(set, rng.chance(p));
}

namespace {

/// Next mask with the same popcount (Gosper's hack); enumerates the C(k,d)
/// d-subsets without scanning all 2^k masks.
inline std::uint32_t next_same_popcount(std::uint32_t v) {
  const std::uint32_t c = v & static_cast<std::uint32_t>(-static_cast<std::int32_t>(v));
  const std::uint32_t r = v + c;
  return (((r ^ v) >> 2) / c) | r;
}

}  // namespace

std::uint64_t PolymatroidCurtain::total_defect(std::uint32_t d) const {
  if (d == 0 || d > k_) throw std::invalid_argument("PolymatroidCurtain: bad d");
  std::uint64_t b = 0;
  for (Mask s = (1u << d) - 1u; s <= full_; s = next_same_popcount(s)) {
    b += d - rank_[s];
    if (s == (full_ & ~((1u << (k_ - d)) - 1u))) break;  // highest d-subset
  }
  return b;
}

std::uint64_t PolymatroidCurtain::defective_tuples(std::uint32_t d) const {
  if (d == 0 || d > k_) throw std::invalid_argument("PolymatroidCurtain: bad d");
  std::uint64_t n = 0;
  for (Mask s = (1u << d) - 1u; s <= full_; s = next_same_popcount(s)) {
    if (rank_[s] < d) ++n;
    if (s == (full_ & ~((1u << (k_ - d)) - 1u))) break;
  }
  return n;
}

std::vector<std::uint64_t> PolymatroidCurtain::defect_histogram(
    std::uint32_t d) const {
  if (d == 0 || d > k_) throw std::invalid_argument("PolymatroidCurtain: bad d");
  std::vector<std::uint64_t> hist(d + 1, 0);
  for (Mask s = (1u << d) - 1u; s <= full_; s = next_same_popcount(s)) {
    ++hist[d - rank_[s]];
    if (s == (full_ & ~((1u << (k_ - d)) - 1u))) break;
  }
  return hist;
}

std::uint64_t PolymatroidCurtain::tuple_count(std::uint32_t k, std::uint32_t d) {
  std::uint64_t num = 1;
  for (std::uint32_t i = 0; i < d; ++i) {
    num = num * (k - i) / (i + 1);
  }
  return num;
}

double PolymatroidCurtain::mean_defect(std::uint32_t d) const {
  return static_cast<double>(total_defect(d)) /
         static_cast<double>(tuple_count(k_, d));
}

}  // namespace ncast::overlay
