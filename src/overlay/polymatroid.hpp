#pragma once
// Exact defect-process engine for the analysis of Section 4.
//
// Observation: for the arrival/failure process the paper analyzes, the whole
// network can be summarized by the rank function r : 2^[k] -> N of the k
// hanging threads, where r(S) is the max-flow from the server to a virtual
// sink tapping the hanging ends of S. The connectivity of a d-tuple is r of
// that tuple, so B^t (the total defect driving Theorems 4 and 5) is a sum of
// C(k,d) table lookups.
//
// The rank function updates in closed form per arrival. Let the newcomer
// clip the thread set D (|D| = d), and write c = |S ∩ D|:
//   - working newcomer:  r'(S) = min( min(c, r(D)) + r(S \ D), r(S ∪ D) )
//   - failed newcomer:   r'(S) = r(S \ D)      (its hanging ends are dead)
// The working case is the "source sharing" polymatroid fact: simultaneous
// flows (a to tap group D, b to tap group S\D) are feasible iff a <= r(D),
// b <= r(S\D), a+b <= r(S∪D); the newcomer forwards min(a, c) units to the
// taps of S∩D below it. Correctness is cross-validated against explicit
// max-flow computations in the test suite.
//
// Cost: O(2^k) per arrival, exact — which is what makes the Theorem 4/5
// experiments feasible at tens of thousands of steps.

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ncast::overlay {

/// Exact rank-function simulator of the curtain arrival process. k <= 22.
class PolymatroidCurtain {
 public:
  using Mask = std::uint32_t;

  explicit PolymatroidCurtain(std::uint32_t k);

  std::uint32_t k() const { return k_; }
  std::uint64_t steps() const { return steps_; }

  /// Rank (connectivity from the server) of a set of hanging threads.
  std::uint32_t rank(Mask set) const { return rank_[set]; }

  /// Applies one arrival clipping exactly the threads in `set` (popcount >= 1).
  /// Returns the newcomer's connectivity r(set) *before* the update — i.e.,
  /// the broadcast rate the newcomer will enjoy.
  std::uint32_t join(Mask set, bool failed);

  /// Applies one arrival with `d` uniformly random threads, failed with
  /// probability `p`. Returns the newcomer's connectivity.
  std::uint32_t join_random(std::uint32_t d, double p, Rng& rng);

  /// Total defect B = sum over all d-subsets S of (d - r(S)).
  std::uint64_t total_defect(std::uint32_t d) const;

  /// Number of d-subsets with r(S) < d (the count B_1 + ... + B_d).
  std::uint64_t defective_tuples(std::uint32_t d) const;

  /// The decomposition B_0, B_1, ..., B_d: element j counts the d-subsets
  /// with defect exactly j (connectivity d - j). Supports the Section 7
  /// conjecture experiment (losing kappa threads ~ losing kappa parents).
  std::vector<std::uint64_t> defect_histogram(std::uint32_t d) const;

  /// Number of d-subsets of k threads (the paper's A).
  static std::uint64_t tuple_count(std::uint32_t k, std::uint32_t d);

  /// B / A: the expected defect of a uniformly random d-tuple.
  double mean_defect(std::uint32_t d) const;

 private:
  std::uint32_t k_;
  Mask full_;
  std::vector<std::uint8_t> rank_;  // 2^k entries
  std::vector<std::uint8_t> scratch_;
  std::uint64_t steps_ = 0;
};

}  // namespace ncast::overlay
