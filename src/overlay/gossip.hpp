#pragma once
// Decentralized peer discovery (Section 3's remark and Section 7: "the role
// of the server can be decreased still further or even eliminated", citing
// the gossip protocol of [12]). A joining node is introduced to one random
// existing member and performs random walks over the overlay's neighbor
// relation to find hanging threads, instead of asking the server for them.
//
// The resulting thread selection is only approximately uniform (biased by the
// walk's stationary distribution); the gossip experiment measures how much
// that bias costs in defect relative to the centralized protocol.

#include <cstdint>
#include <vector>

#include "overlay/thread_matrix.hpp"
#include "util/rng.hpp"

namespace ncast::overlay {

/// Parameters for gossip discovery.
struct GossipConfig {
  std::size_t walk_length = 8;  ///< steps of each random walk
  std::size_t max_walks = 64;   ///< walks attempted before falling back
};

/// Discovers `d` distinct hanging columns by random walks over the overlay
/// (treating parent/child links as an undirected neighbor relation; the
/// server participates as a peer that owns the threads nobody clipped yet).
/// Falls back to uniform selection among still-missing columns if the walk
/// budget runs out, mirroring a tracker fallback.
/// Returns the selected columns and reports the number of discovery messages
/// (walk hops) through `messages_out` if non-null.
std::vector<ColumnId> gossip_discover(const ThreadMatrix& m, std::uint32_t d,
                                      const GossipConfig& config, Rng& rng,
                                      std::uint64_t* messages_out = nullptr);

}  // namespace ncast::overlay
