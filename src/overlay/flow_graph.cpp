#include "overlay/flow_graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/maxflow.hpp"

namespace ncast::overlay {

FlowGraph build_flow_graph(const ThreadMatrix& m) {
  FlowGraph fg;
  fg.graph = graph::Digraph(1);  // server
  fg.vertex_to_node.push_back(kServerNode);

  const OrderIndex& order = m.order();
  NodeId max_id = 0;
  for (NodeId n : order) max_id = std::max(max_id, n);
  fg.node_vertex.assign(order.empty() ? 0 : max_id + 1, FlowGraph::kNoVertex);

  for (NodeId n : order) {
    const graph::Vertex v = fg.graph.add_vertex();
    fg.node_vertex[n] = v;
    fg.vertex_to_node.push_back(n);
  }

  // Walk each row in curtain order, chaining columns. An edge is alive only
  // if both endpoints are working (the server is always working).
  std::vector<graph::Vertex> last(m.k(), FlowGraph::kServerVertex);
  std::vector<bool> last_failed(m.k(), false);
  fg.tap.assign(m.k(), FlowGraph::kServerVertex);
  fg.tap_alive.assign(m.k(), true);

  for (NodeId n : order) {
    const Row& r = m.row(n);
    const graph::Vertex v = fg.node_vertex[n];
    for (ColumnId c : r.threads) {
      if (!last_failed[c] && !r.failed) {
        fg.graph.add_edge(last[c], v);
      }
      last[c] = v;
      last_failed[c] = r.failed;
    }
  }
  for (ColumnId c = 0; c < m.k(); ++c) {
    fg.tap[c] = last[c];
    fg.tap_alive[c] = !last_failed[c];
  }
  return fg;
}

std::int64_t node_connectivity(const FlowGraph& fg, NodeId node) {
  const graph::Vertex v = fg.vertex_of(node);
  if (v == FlowGraph::kServerVertex) {
    throw std::invalid_argument("node_connectivity: node is the server");
  }
  return graph::unit_max_flow(fg.graph, FlowGraph::kServerVertex, v);
}

std::int64_t tuple_connectivity(const FlowGraph& fg,
                                const std::vector<ColumnId>& columns) {
  std::vector<graph::Vertex> taps;
  taps.reserve(columns.size());
  std::vector<bool> seen(fg.tap.size(), false);
  for (ColumnId c : columns) {
    if (c >= fg.tap.size()) throw std::out_of_range("tuple_connectivity: column");
    if (seen[c]) throw std::invalid_argument("tuple_connectivity: duplicate column");
    seen[c] = true;
    if (fg.tap_alive[c]) taps.push_back(fg.tap[c]);
  }
  if (taps.empty()) return 0;
  // Taps on the server itself are satisfied directly (one unit each): model
  // them through the same virtual-sink construction, which handles that
  // uniformly since the server vertex feeds the sink edge.
  return graph::unit_max_flow_to_set(fg.graph, FlowGraph::kServerVertex, taps);
}

std::vector<std::int64_t> node_depths(const FlowGraph& fg) {
  return graph::bfs_depths(fg.graph, FlowGraph::kServerVertex);
}

}  // namespace ncast::overlay
