#pragma once
// Defect measurement on an explicit overlay snapshot via max-flow. This is
// the "ground truth" path: exact enumeration for small C(k,d), Monte-Carlo
// sampling otherwise. The PolymatroidCurtain engine is cross-validated
// against these routines in the test suite.

#include <cstdint>

#include "overlay/flow_graph.hpp"
#include "util/rng.hpp"

namespace ncast::overlay {

/// Exact total defect B = sum over all d-tuples of hanging threads of
/// (d - connectivity). Enumerates all C(k,d) tuples; intended for small k.
std::uint64_t exact_total_defect(const FlowGraph& fg, std::uint32_t d);

/// Monte-Carlo estimate of B/A: mean defect of `samples` uniformly random
/// d-tuples.
double sampled_mean_defect(const FlowGraph& fg, std::uint32_t d,
                           std::size_t samples, Rng& rng);

}  // namespace ncast::overlay
