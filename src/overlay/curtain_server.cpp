#include "overlay/curtain_server.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ncast::overlay {

namespace {

// Process-wide control-plane counters, aggregated across server instances
// (benches and churn runs construct many servers per process). The matching
// per-instance totals remain in ServerStats.
struct ServerCounters {
  obs::Counter& joins = obs::metrics().counter("server.joins");
  obs::Counter& leaves = obs::metrics().counter("server.graceful_leaves");
  obs::Counter& failures = obs::metrics().counter("server.failures_reported");
  obs::Counter& repairs = obs::metrics().counter("server.repairs");
  obs::Counter& control = obs::metrics().counter("server.control_messages");
  obs::Histogram& repair_ns = obs::metrics().histogram("server.repair_ns");

  static ServerCounters& get() {
    static ServerCounters c;
    return c;
  }
};

}  // namespace

CurtainServer::CurtainServer(std::uint32_t k, std::uint32_t default_degree, Rng rng,
                             InsertPolicy policy)
    : matrix_(k), default_degree_(default_degree), rng_(rng), policy_(policy) {
  if (default_degree == 0 || default_degree > k) {
    throw std::invalid_argument("CurtainServer: need 1 <= d <= k");
  }
}

std::size_t CurtainServer::pick_position() {
  switch (policy_) {
    case InsertPolicy::kAppend:
      return matrix_.row_count();
    case InsertPolicy::kRandomPosition:
      return static_cast<std::size_t>(rng_.below(matrix_.row_count() + 1));
  }
  throw std::logic_error("CurtainServer: bad policy");
}

std::vector<ColumnId> CurtainServer::pick_threads(std::uint32_t degree) {
  const auto sample = rng_.sample_without_replacement(matrix_.k(), degree);
  return {sample.begin(), sample.end()};
}

JoinTicket CurtainServer::join(std::optional<std::uint32_t> degree) {
  const std::uint32_t d = degree.value_or(default_degree_);
  if (d == 0 || d > matrix_.k()) {
    throw std::invalid_argument("CurtainServer::join: need 1 <= d <= k");
  }
  JoinTicket ticket;
  ticket.node = next_id_++;
  ticket.threads = pick_threads(d);
  matrix_.insert_row(pick_position(), ticket.node, ticket.threads);
  ticket.parents = matrix_.parents(ticket.node);

  ++stats_.joins;
  // join request + response, plus one "start sending" notification per parent.
  stats_.control_messages += 2 + ticket.parents.size();
  ServerCounters::get().joins.inc();
  ServerCounters::get().control.inc(2 + ticket.parents.size());
  obs::trace().emit(obs::TraceKind::kJoin, ticket.node, d,
                    ticket.parents.size());
  return ticket;
}

void CurtainServer::leave(NodeId node) {
  if (!matrix_.contains(node)) throw std::out_of_range("CurtainServer::leave");
  const auto parents = matrix_.parents(node);
  const auto children = matrix_.children(node);
  matrix_.erase_row(node);

  ++stats_.graceful_leaves;
  // good-bye request, plus one redirect order per affected neighbor.
  stats_.control_messages += 1 + parents.size() + children.size();
  ServerCounters::get().leaves.inc();
  ServerCounters::get().control.inc(1 + parents.size() + children.size());
  obs::trace().emit(obs::TraceKind::kLeave, node, parents.size(),
                    children.size());
}

void CurtainServer::report_failure(NodeId node) {
  if (!matrix_.contains(node)) throw std::out_of_range("CurtainServer::report_failure");
  if (matrix_.row(node).failed) return;  // duplicate complaints are idempotent
  const auto children = matrix_.children(node);
  matrix_.mark_failed(node);

  ++stats_.failures_reported;
  // one complaint per (deduplicated) child.
  stats_.control_messages += std::max<std::size_t>(children.size(), 1);
  ServerCounters::get().failures.inc();
  ServerCounters::get().control.inc(std::max<std::size_t>(children.size(), 1));
  obs::trace().emit(obs::TraceKind::kCrash, node, children.size());
}

void CurtainServer::repair(NodeId node) {
  if (!matrix_.contains(node)) throw std::out_of_range("CurtainServer::repair");
  if (!matrix_.row(node).failed) {
    throw std::logic_error("CurtainServer::repair: node not marked failed");
  }
  obs::ScopeTimer timer(ServerCounters::get().repair_ns);
  const auto parents = matrix_.parents(node);
  const auto children = matrix_.children(node);
  matrix_.erase_row(node);

  ++stats_.repairs;
  stats_.control_messages += parents.size() + children.size();
  ServerCounters::get().repairs.inc();
  ServerCounters::get().control.inc(parents.size() + children.size());
  obs::trace().emit(obs::TraceKind::kRepair, node, parents.size(),
                    children.size());
}

std::optional<ColumnId> CurtainServer::congestion_offload(NodeId node) {
  const Row& r = matrix_.row(node);
  if (r.threads.size() <= 1) return std::nullopt;
  const ColumnId column = r.threads[rng_.below(r.threads.size())];
  matrix_.drop_thread(node, column);

  ++stats_.congestion_offloads;
  // node's notice + redirect orders to the column's parent and child.
  stats_.control_messages += 3;
  ServerCounters::get().control.inc(3);
  obs::trace().emit(obs::TraceKind::kCongestionOffload, node, column);
  return column;
}

std::optional<ColumnId> CurtainServer::congestion_restore(NodeId node) {
  const Row& r = matrix_.row(node);
  if (r.threads.size() >= matrix_.k()) return std::nullopt;
  std::vector<ColumnId> zeros;
  zeros.reserve(matrix_.k() - r.threads.size());
  for (ColumnId c = 0; c < matrix_.k(); ++c) {
    if (!std::binary_search(r.threads.begin(), r.threads.end(), c)) {
      zeros.push_back(c);
    }
  }
  const ColumnId column = zeros[rng_.below(zeros.size())];
  matrix_.add_thread(node, column);

  ++stats_.congestion_restores;
  stats_.control_messages += 3;
  ServerCounters::get().control.inc(3);
  obs::trace().emit(obs::TraceKind::kCongestionRestore, node, column);
  return column;
}

}  // namespace ncast::overlay
