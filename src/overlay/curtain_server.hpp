#pragma once
// The centralized authority of Section 3: it owns the thread matrix and runs
// the hello (join), good-bye (graceful leave), repair, and congestion
// protocols. Control-message accounting backs the scalability experiment —
// the paper's point is that the server does O(d) work per membership event
// and zero work on the data path.

#include <cstdint>
#include <optional>
#include <vector>

#include "overlay/thread_matrix.hpp"
#include "util/rng.hpp"

namespace ncast::overlay {

/// Where a new row is placed in the curtain.
enum class InsertPolicy {
  kAppend,          ///< Section 3: newcomers clip at the bottom.
  kRandomPosition,  ///< Section 5: random row insertion, defeats coordinated
                    ///< adversarial arrivals.
};

/// Running totals of protocol traffic at the server.
struct ServerStats {
  std::uint64_t joins = 0;
  std::uint64_t graceful_leaves = 0;
  std::uint64_t failures_reported = 0;
  std::uint64_t repairs = 0;
  std::uint64_t congestion_offloads = 0;
  std::uint64_t congestion_restores = 0;
  /// Control messages sent or received by the server (join request/response,
  /// parent notifications, redirect orders, failure complaints).
  std::uint64_t control_messages = 0;
};

/// Result of a join: the node's identity and its attachment.
struct JoinTicket {
  NodeId node = 0;
  std::vector<ColumnId> threads;
  std::vector<NodeId> parents;  // deduplicated; may include kServerNode
};

/// The server. All mutation goes through protocol methods so that the stats
/// faithfully count what a real deployment's control plane would carry.
class CurtainServer {
 public:
  /// `k` threads; `default_degree` is the d used when join() is called
  /// without an explicit degree.
  CurtainServer(std::uint32_t k, std::uint32_t default_degree, Rng rng,
                InsertPolicy policy = InsertPolicy::kAppend);

  std::uint32_t k() const { return matrix_.k(); }
  std::uint32_t default_degree() const { return default_degree_; }
  const ThreadMatrix& matrix() const { return matrix_; }
  const ServerStats& stats() const { return stats_; }
  InsertPolicy policy() const { return policy_; }

  /// Hello protocol: picks `degree` distinct random threads, places the row
  /// per the insert policy, and notifies the parents to start sending.
  JoinTicket join(std::optional<std::uint32_t> degree = std::nullopt);

  /// Good-bye protocol: the leaving node's parents are redirected to its
  /// children, then the row is deleted (Lemma 1: the network distribution is
  /// as if the node never joined).
  void leave(NodeId node);

  /// A node stopped responding: children complain, the server tags the row.
  /// The row stays (threads broken) until `repair` runs.
  void report_failure(NodeId node);

  /// Repair procedure: performs the steps of the good-bye protocol on behalf
  /// of the failed node, then deletes its row.
  void repair(NodeId node);

  /// Congestion offload (Section 5): the node drops one random thread,
  /// joining its parent and child on that column directly.
  /// Returns the dropped column, or nullopt if the node is at degree 1.
  std::optional<ColumnId> congestion_offload(NodeId node);

  /// Congestion recovery (Section 5): turns a random zero of the row into a
  /// one. Returns the added column, or nullopt if the row already has all k.
  std::optional<ColumnId> congestion_restore(NodeId node);

 private:
  std::size_t pick_position();
  std::vector<ColumnId> pick_threads(std::uint32_t degree);

  ThreadMatrix matrix_;
  std::uint32_t default_degree_;
  Rng rng_;
  InsertPolicy policy_;
  ServerStats stats_;
  NodeId next_id_ = 0;
};

}  // namespace ncast::overlay
