#include "overlay/defect.hpp"

#include <stdexcept>
#include <vector>

#include "obs/trace.hpp"

namespace ncast::overlay {

namespace {

void enumerate_tuples(std::uint32_t k, std::uint32_t d,
                      std::vector<ColumnId>& current,
                      ColumnId next, const FlowGraph& fg, std::uint64_t& defect) {
  if (current.size() == d) {
    const std::int64_t conn = tuple_connectivity(fg, current);
    defect += d - static_cast<std::uint64_t>(conn);
    return;
  }
  for (ColumnId c = next; c < k; ++c) {
    current.push_back(c);
    enumerate_tuples(k, d, current, c + 1, fg, defect);
    current.pop_back();
  }
}

}  // namespace

std::uint64_t exact_total_defect(const FlowGraph& fg, std::uint32_t d) {
  const auto k = static_cast<std::uint32_t>(fg.tap.size());
  if (d == 0 || d > k) throw std::invalid_argument("exact_total_defect: bad d");
  std::uint64_t defect = 0;
  std::vector<ColumnId> current;
  enumerate_tuples(k, d, current, 0, fg, defect);
  obs::trace().emit(obs::TraceKind::kDefect, /*node=*/0, defect, d);
  return defect;
}

double sampled_mean_defect(const FlowGraph& fg, std::uint32_t d,
                           std::size_t samples, Rng& rng) {
  const auto k = static_cast<std::uint32_t>(fg.tap.size());
  if (d == 0 || d > k) throw std::invalid_argument("sampled_mean_defect: bad d");
  if (samples == 0) throw std::invalid_argument("sampled_mean_defect: zero samples");
  std::uint64_t defect = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto picks = rng.sample_without_replacement(k, d);
    const std::vector<ColumnId> tuple(picks.begin(), picks.end());
    defect += d - static_cast<std::uint64_t>(tuple_connectivity(fg, tuple));
  }
  return static_cast<double>(defect) / static_cast<double>(samples);
}

}  // namespace ncast::overlay
