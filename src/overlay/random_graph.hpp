#pragma once
// Section 6 variant: instead of clipping hanging threads at the bottom of the
// curtain, each newcomer selects d random edges of the existing network and
// inserts itself into them (u->v becomes u->new->v). The resulting graph may
// contain cycles; in exchange, depth — and hence delay — drops from linear to
// logarithmic in N, and the server can support the population through a
// handful of direct children.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace ncast::overlay {

/// Random-graph overlay built by edge splitting.
class RandomGraphOverlay {
 public:
  /// Starts with the server feeding `seed_children` direct children, each by
  /// `degree` parallel edges (the "few child nodes" bootstrap of Section 6).
  RandomGraphOverlay(std::uint32_t degree, std::uint32_t seed_children, Rng rng);

  std::uint32_t degree() const { return degree_; }
  std::size_t node_count() const { return graph_.vertex_count() - 1; }
  const graph::Digraph& graph() const { return graph_; }
  static constexpr graph::Vertex kServer = 0;

  /// Inserts one node at `degree` random alive edges (distinct edges; a node
  /// ends with in-degree = out-degree = degree). Returns its vertex.
  graph::Vertex join();

  /// Removes a node as a failure: its incident edges die (no rewiring).
  void fail(graph::Vertex v);

  /// Removes a node gracefully: each (in, out) edge pair is spliced back
  /// together, preserving everyone else's degrees.
  void leave(graph::Vertex v);

  /// Hop depth of every vertex from the server (-1 if unreachable).
  std::vector<std::int64_t> depths() const;

  /// Max-flow from the server to `v` (the node's network-coding rate).
  std::int64_t connectivity(graph::Vertex v) const;

 private:
  std::vector<graph::EdgeId> alive_edges() const;

  std::uint32_t degree_;
  graph::Digraph graph_;
  Rng rng_;
  std::vector<bool> dead_vertex_;
};

}  // namespace ncast::overlay
