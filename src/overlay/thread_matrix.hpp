#pragma once
// The matrix M of Section 3: the server-side data structure that mirrors the
// curtain overlay. Rows are nodes in curtain (top-to-bottom) order; each row
// holds the set of thread columns the node clipped. Heterogeneous degrees are
// allowed (Section 5): a row may have any 1 <= d <= k threads.
//
// The matrix is the single source of truth for topology. Everything else —
// the flow graph, parent/child relations, hanging-thread ends — is derived.
//
// Representation (the million-node refactor, docs/architecture.md "sharded
// kernel & SoA overlay state"): flat structure-of-arrays instead of
// row-objects-with-vectors. Row column sets live as packed spans inside one
// CSR-style bump arena (`cols_`), with two parallel link planes (`up_`,
// `down_`) storing, for every (row, column) slot, the nearest rows above and
// below clipping the same column — so `parents()` / `children()` /
// `edges()` read compact spans instead of rescanning the curtain, and
// `hanging_ends()` reads the per-column tail array. Curtain order is an
// order-statistic treap over node ids (order_index.hpp), making
// `append_row` / `insert_row` / `erase_row` / `position` O(log n) plus O(d)
// link splicing. The public surface is unchanged from the AoS days except
// that `row()` returns a value whose `threads` is a borrowed span
// (invalidated by the next mutation), not an owned vector.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "overlay/order_index.hpp"

namespace ncast::overlay {

using NodeId = std::uint32_t;
using ColumnId = std::uint32_t;

inline constexpr NodeId kServerNode = static_cast<NodeId>(-1);
/// Sentinel for "no row" in downward links and column tails. Shares the
/// server's id: a column whose tail is kServerNode hangs from the server,
/// and a slot whose down-link is kNoNode has no child below.
inline constexpr NodeId kNoNode = kServerNode;

/// Borrowed view of one row's sorted, distinct column set. Points into the
/// matrix's column arena: valid until the next mutating call on the matrix.
/// Callers that hold columns across mutations must copy (`to_vector()`).
class ThreadSpan {
 public:
  using value_type = ColumnId;
  using const_iterator = const ColumnId*;

  ThreadSpan() = default;
  ThreadSpan(const ColumnId* data, std::size_t size) : data_(data), size_(size) {}
  /// Implicit view of an owned vector (the reverse of to_vector()).
  ThreadSpan(const std::vector<ColumnId>& v) : data_(v.data()), size_(v.size()) {}

  const ColumnId* begin() const { return data_; }
  const ColumnId* end() const { return data_ + size_; }
  const ColumnId* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  ColumnId operator[](std::size_t i) const { return data_[i]; }
  ColumnId front() const { return data_[0]; }
  ColumnId back() const { return data_[size_ - 1]; }

  std::vector<ColumnId> to_vector() const {
    return std::vector<ColumnId>(begin(), end());
  }

  friend bool operator==(const ThreadSpan& a, const ThreadSpan& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }
  friend bool operator==(const ThreadSpan& a, const std::vector<ColumnId>& b) {
    return a == ThreadSpan(b.data(), b.size());
  }
  friend bool operator==(const std::vector<ColumnId>& a, const ThreadSpan& b) {
    return ThreadSpan(a.data(), a.size()) == b;
  }

 private:
  const ColumnId* data_ = nullptr;
  std::size_t size_ = 0;
};

/// One row of M, as a view: a node and the columns it clipped. `threads`
/// borrows from the matrix and is invalidated by the next mutation.
struct Row {
  NodeId node = 0;
  ThreadSpan threads;   // sorted, distinct
  bool failed = false;  // failure tag (Section 4)
};

/// A directed overlay edge derived from M: `from` feeds `to` on `column`.
struct ThreadEdge {
  NodeId from = 0;  // kServerNode means the server
  NodeId to = 0;
  ColumnId column = 0;
};

/// The hanging (unserved) end of a column: the last row clipping it, or the
/// server if none.
struct HangingEnd {
  ColumnId column = 0;
  NodeId owner = kServerNode;  // kServerNode = thread hangs from the server
  bool owner_failed = false;   // a dead end: delivers nothing until repaired
};

/// Matrix M. Node ids are stable handles assigned by the caller (the server);
/// row order is the curtain order.
class ThreadMatrix {
 public:
  explicit ThreadMatrix(std::uint32_t k);

  std::uint32_t k() const { return k_; }
  std::size_t row_count() const { return order_.size(); }

  /// Number of rows that are not tagged failed.
  std::size_t working_count() const { return row_count() - failed_count_; }
  std::size_t failed_count() const { return failed_count_; }

  bool contains(NodeId node) const {
    return node < meta_.size() && meta_[node].present;
  }

  /// Appends a row at the bottom of the curtain. `threads` must be distinct
  /// columns in [0, k). Throws if the node is already present.
  void append_row(NodeId node, std::vector<ColumnId> threads);

  /// Inserts a row at curtain position `pos` (0 = top). Section 5's defense
  /// against coordinated adversaries inserts at a uniformly random position.
  void insert_row(std::size_t pos, NodeId node, std::vector<ColumnId> threads);

  /// Span-based insert for allocation-averse callers: `threads` must already
  /// be sorted and distinct; the contents are copied into the arena.
  void insert_row(std::size_t pos, NodeId node, const ColumnId* threads,
                  std::size_t count);

  /// Removes a row entirely (graceful leave, or completion of a repair).
  /// The node's parents implicitly reconnect to its children — in M this is
  /// exactly row deletion (Lemma 1).
  void erase_row(NodeId node);

  /// Tags a row failed (non-ergodic failure awaiting repair).
  void mark_failed(NodeId node);

  /// Clears the failure tag (used by ergodic-failure recovery experiments).
  void mark_working(NodeId node);

  /// Row view; `row(n).threads` borrows from the arena (valid until the next
  /// mutating call).
  Row row(NodeId node) const;

  /// Curtain position of a node's row (0 = just below the server). O(log n).
  std::size_t position(NodeId node) const;

  /// Iteration over rows in curtain order without materializing a vector:
  /// `for (NodeId n : m.order()) ...`. O(1) per step.
  const OrderIndex& order() const { return order_; }

  /// Rows in curtain order, materialized (compat; prefer order()).
  std::vector<NodeId> nodes_in_order() const;

  /// All overlay edges implied by M: for each column, consecutive rows
  /// clipping it (server feeding the first). Includes edges touching failed
  /// rows; callers decide how to treat them.
  std::vector<ThreadEdge> edges() const;

  /// The k hanging ends in column order. O(k).
  std::vector<HangingEnd> hanging_ends() const;

  /// Parents of a node (deduplicated; a parent feeding two threads appears
  /// once in the result but contributes two edges in edges()). O(d) link
  /// reads plus dedup.
  std::vector<NodeId> parents(NodeId node) const;

  /// Children of a node (deduplicated). O(d) link reads plus dedup.
  std::vector<NodeId> children(NodeId node) const;

  /// Nearest row above `node` clipping `column` (kServerNode if the thread
  /// comes straight from the server). O(log d) when `node` clips the column
  /// (one link read); falls back to an upward curtain walk when it does not.
  NodeId parent_on_column(NodeId node, ColumnId column) const;

  /// Nearest row below `node` clipping `column` (kNoNode if none). O(log d)
  /// when `node` clips the column; downward walk otherwise.
  NodeId child_on_column(NodeId node, ColumnId column) const;

  /// Last row clipping `column` (kServerNode if the column is unclipped).
  NodeId tail_of_column(ColumnId column) const;

  /// Adds a thread to an existing row (congestion recovery, Section 5:
  /// "makes one of the zeroes ... into a one at random"). The column must not
  /// already be present in the row.
  void add_thread(NodeId node, ColumnId column);

  /// Drops a thread from an existing row (congestion offload: the node joins
  /// its parent and child on that column directly). The row must keep at
  /// least one thread.
  void drop_thread(NodeId node, ColumnId column);

  /// Internal-consistency check (sorted distinct threads, valid columns,
  /// coherent order index, link planes matching a from-scratch rebuild);
  /// used by tests and debug assertions. O(n * d).
  bool check_invariants() const;

 private:
  struct RowMeta {
    std::uint32_t off = 0;       // span offset into the arena
    std::uint32_t len = 0;       // columns clipped
    std::uint8_t cap_log2 = 0;   // span capacity = 1 << cap_log2
    bool present = false;
    bool failed = false;
  };

  void check_known(NodeId node) const;
  void verify_threads(const ColumnId* threads, std::size_t count) const;
  std::uint32_t alloc_span(std::uint8_t cap_log2);
  void free_span(std::uint32_t off, std::uint8_t cap_log2);
  static std::uint8_t cap_log2_for(std::size_t len);
  /// Arena index of `column` within `node`'s span (binary search).
  std::uint32_t slot_of(NodeId node, ColumnId column) const;
  /// Splices `node` into the per-column link lists for every column of its
  /// freshly written span, given its order neighbors.
  void splice_links(NodeId node);
  /// Removes the occupant from the link list of the column at arena slot.
  void unlink_slot(std::uint32_t slot);

  std::uint32_t k_;
  OrderIndex order_;              // curtain order, top to bottom
  std::vector<RowMeta> meta_;     // indexed by NodeId
  // The CSR-style arena: three parallel planes sharing slot indexing. For a
  // row with meta (off, len): cols_[off..off+len) are its sorted columns,
  // up_[off+i] / down_[off+i] the nearest rows above/below clipping
  // cols_[off+i] (kServerNode = fed by the server, kNoNode = hanging end).
  std::vector<ColumnId> cols_;
  std::vector<NodeId> up_;
  std::vector<NodeId> down_;
  /// Freed spans by capacity class (index = cap_log2), reused before bumping.
  std::vector<std::vector<std::uint32_t>> free_;
  std::vector<NodeId> tail_;      // per-column last clipper (kServerNode = none)
  std::size_t failed_count_ = 0;
  /// Scratch for insert-time link resolution (reused; no steady-state
  /// allocation once high-water capacity is reached).
  std::vector<std::uint8_t> resolved_scratch_;
};

}  // namespace ncast::overlay
