#pragma once
// The matrix M of Section 3: the server-side data structure that mirrors the
// curtain overlay. Rows are nodes in curtain (top-to-bottom) order; each row
// holds the set of thread columns the node clipped. Heterogeneous degrees are
// allowed (Section 5): a row may have any 1 <= d <= k threads.
//
// The matrix is the single source of truth for topology. Everything else —
// the flow graph, parent/child relations, hanging-thread ends — is derived.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

namespace ncast::overlay {

using NodeId = std::uint32_t;
using ColumnId = std::uint32_t;

inline constexpr NodeId kServerNode = static_cast<NodeId>(-1);

/// One row of M: a node and the columns it clipped.
struct Row {
  NodeId node = 0;
  std::vector<ColumnId> threads;  // sorted, distinct
  bool failed = false;            // failure tag (Section 4)
};

/// A directed overlay edge derived from M: `from` feeds `to` on `column`.
struct ThreadEdge {
  NodeId from = 0;  // kServerNode means the server
  NodeId to = 0;
  ColumnId column = 0;
};

/// The hanging (unserved) end of a column: the last row clipping it, or the
/// server if none.
struct HangingEnd {
  ColumnId column = 0;
  NodeId owner = kServerNode;  // kServerNode = thread hangs from the server
  bool owner_failed = false;   // a dead end: delivers nothing until repaired
};

/// Matrix M. Node ids are stable handles assigned by the caller (the server);
/// row order is the curtain order.
class ThreadMatrix {
 public:
  explicit ThreadMatrix(std::uint32_t k);

  std::uint32_t k() const { return k_; }
  std::size_t row_count() const { return order_.size(); }

  /// Number of rows that are not tagged failed.
  std::size_t working_count() const { return row_count() - failed_count_; }
  std::size_t failed_count() const { return failed_count_; }

  bool contains(NodeId node) const;

  /// Appends a row at the bottom of the curtain. `threads` must be distinct
  /// columns in [0, k). Throws if the node is already present.
  void append_row(NodeId node, std::vector<ColumnId> threads);

  /// Inserts a row at curtain position `pos` (0 = top). Section 5's defense
  /// against coordinated adversaries inserts at a uniformly random position.
  void insert_row(std::size_t pos, NodeId node, std::vector<ColumnId> threads);

  /// Removes a row entirely (graceful leave, or completion of a repair).
  /// The node's parents implicitly reconnect to its children — in M this is
  /// exactly row deletion (Lemma 1).
  void erase_row(NodeId node);

  /// Tags a row failed (non-ergodic failure awaiting repair).
  void mark_failed(NodeId node);

  /// Clears the failure tag (used by ergodic-failure recovery experiments).
  void mark_working(NodeId node);

  const Row& row(NodeId node) const;

  /// Curtain position of a node's row (0 = just below the server).
  std::size_t position(NodeId node) const;

  /// Rows in curtain order.
  std::vector<NodeId> nodes_in_order() const;

  /// All overlay edges implied by M: for each column, consecutive rows
  /// clipping it (server feeding the first). Includes edges touching failed
  /// rows; callers decide how to treat them.
  std::vector<ThreadEdge> edges() const;

  /// The k hanging ends in column order.
  std::vector<HangingEnd> hanging_ends() const;

  /// Parents of a node (deduplicated; a parent feeding two threads appears
  /// once in the result but contributes two edges in edges()).
  std::vector<NodeId> parents(NodeId node) const;

  /// Children of a node (deduplicated).
  std::vector<NodeId> children(NodeId node) const;

  /// Adds a thread to an existing row (congestion recovery, Section 5:
  /// "makes one of the zeroes ... into a one at random"). The column must not
  /// already be present in the row.
  void add_thread(NodeId node, ColumnId column);

  /// Drops a thread from an existing row (congestion offload: the node joins
  /// its parent and child on that column directly). The row must keep at
  /// least one thread.
  void drop_thread(NodeId node, ColumnId column);

  /// Internal-consistency check (sorted distinct threads, valid columns,
  /// coherent index); used by tests and debug assertions.
  bool check_invariants() const;

 private:
  struct Slot {
    Row row;
    bool present = false;
  };

  Slot& slot(NodeId node);
  const Slot& slot(NodeId node) const;
  void verify_threads(const std::vector<ColumnId>& threads) const;

  std::uint32_t k_;
  std::vector<NodeId> order_;   // curtain order, top to bottom
  std::vector<Slot> slots_;     // indexed by NodeId
  std::size_t failed_count_ = 0;
};

}  // namespace ncast::overlay
