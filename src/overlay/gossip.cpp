#include "overlay/gossip.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace ncast::overlay {

std::vector<ColumnId> gossip_discover(const ThreadMatrix& m, std::uint32_t d,
                                      const GossipConfig& config, Rng& rng,
                                      std::uint64_t* messages_out) {
  if (d == 0 || d > m.k()) throw std::invalid_argument("gossip_discover: bad d");
  std::uint64_t messages = 0;

  // Hanging ends grouped by owner (kServerNode owns unclipped columns).
  const auto ends = m.hanging_ends();
  std::vector<bool> taken(m.k(), false);
  std::vector<ColumnId> chosen;
  chosen.reserve(d);

  const std::vector<NodeId> members = m.nodes_in_order();

  auto columns_owned_by = [&](NodeId owner) {
    std::vector<ColumnId> cols;
    for (const HangingEnd& e : ends) {
      if (e.owner == owner && !e.owner_failed && !taken[e.column]) {
        cols.push_back(e.column);
      }
    }
    return cols;
  };

  for (std::size_t walk = 0; walk < config.max_walks && chosen.size() < d; ++walk) {
    // Introduction: a uniformly random existing member (the server if the
    // overlay is empty — a brand-new swarm).
    NodeId cur = members.empty()
                     ? kServerNode
                     : members[rng.below(members.size())];
    ++messages;  // the introduction itself

    for (std::size_t hop = 0; hop < config.walk_length; ++hop) {
      // Neighbor relation: parents and children (the peers a member already
      // holds connections to). The server is reachable as a parent of the
      // top rows and knows only its own unclipped threads.
      if (cur == kServerNode) break;
      std::vector<NodeId> nbrs = m.parents(cur);
      const auto kids = m.children(cur);
      nbrs.insert(nbrs.end(), kids.begin(), kids.end());
      if (nbrs.empty()) break;
      cur = nbrs[rng.below(nbrs.size())];
      ++messages;
    }

    // Ask the endpoint for an unserved thread it owns.
    const auto cols = columns_owned_by(cur);
    ++messages;
    if (!cols.empty()) {
      const ColumnId c = cols[rng.below(cols.size())];
      taken[c] = true;
      chosen.push_back(c);
    }
  }

  // Tracker fallback: complete the selection uniformly from what's left.
  if (chosen.size() < d) {
    std::vector<ColumnId> remaining;
    for (ColumnId c = 0; c < m.k(); ++c) {
      if (!taken[c]) remaining.push_back(c);
    }
    while (chosen.size() < d) {
      const std::size_t i = rng.below(remaining.size());
      chosen.push_back(remaining[i]);
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(i));
      ++messages;
    }
  }

  std::sort(chosen.begin(), chosen.end());
  static obs::Counter& msg_ctr = obs::metrics().counter("gossip.discovery_messages");
  static obs::Histogram& msg_hist = obs::metrics().histogram("gossip.messages_per_join");
  msg_ctr.inc(messages);
  msg_hist.observe(static_cast<double>(messages));
  if (messages_out != nullptr) *messages_out = messages;
  return chosen;
}

}  // namespace ncast::overlay
