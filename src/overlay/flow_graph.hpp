#pragma once
// Derivation of the flow graph from the thread matrix. Each column of M is a
// chain of unit-capacity "thread segments"; a failed node breaks its threads
// (its in- and out-segments carry nothing until the repair deletes its row).
// By the network coding theorem [1], a node's achievable broadcast rate
// equals its max-flow from the server in this graph — that equivalence is
// what every analysis experiment measures.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "overlay/thread_matrix.hpp"

namespace ncast::overlay {

/// The unit-capacity flow graph of an overlay snapshot.
struct FlowGraph {
  graph::Digraph graph;                   // vertex 0 is the server
  std::vector<NodeId> vertex_to_node;     // [0] == kServerNode
  std::vector<graph::Vertex> node_vertex; // indexed by NodeId; kNoVertex if absent
  std::vector<graph::Vertex> tap;         // per column: vertex owning the hanging end
  std::vector<bool> tap_alive;            // false if that end dangles from a failed node

  static constexpr graph::Vertex kNoVertex = static_cast<graph::Vertex>(-1);
  static constexpr graph::Vertex kServerVertex = 0;

  graph::Vertex vertex_of(NodeId node) const {
    if (node == kServerNode) return kServerVertex;
    if (node >= node_vertex.size() || node_vertex[node] == kNoVertex) {
      throw std::out_of_range("FlowGraph::vertex_of: unknown node");
    }
    return node_vertex[node];
  }
};

/// Builds the flow graph for the current matrix state. Failed rows get
/// vertices but contribute no alive edges (their threads are broken).
FlowGraph build_flow_graph(const ThreadMatrix& m);

/// Max-flow from the server to `node` — the node's achievable receive rate.
std::int64_t node_connectivity(const FlowGraph& fg, NodeId node);

/// Connectivity of a tuple of hanging threads: max-flow from the server to a
/// virtual sink tapping the given columns' hanging ends. Dead ends (owner
/// failed) contribute nothing. Duplicated columns are rejected.
std::int64_t tuple_connectivity(const FlowGraph& fg,
                                const std::vector<ColumnId>& columns);

/// Hop depth of every node from the server over alive edges (-1 if cut off);
/// indexed like fg.vertex_to_node.
std::vector<std::int64_t> node_depths(const FlowGraph& fg);

}  // namespace ncast::overlay
