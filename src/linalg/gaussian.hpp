#pragma once
// Gaussian elimination over finite fields: rank, reduced row echelon form,
// inversion, and linear solve. These are the building blocks beneath the RLNC
// decoder and the Reed–Solomon codec.

#include <algorithm>
#include <cstddef>
#include <optional>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/reduced_basis.hpp"
#include "obs/metrics.hpp"

namespace ncast::linalg {

/// Transforms `m` in place to reduced row echelon form.
/// Returns the pivot column for each pivot row (so the return size is the rank).
template <typename Field>
std::vector<std::size_t> rref_in_place(Matrix<Field>& m) {
  using V = typename Field::value_type;
  static obs::Histogram& rref_ns = obs::metrics().histogram("linalg.rref_ns");
  obs::ScopeTimer timer(rref_ns);
  std::vector<std::size_t> pivots;
  pivots.reserve(std::min(m.rows(), m.cols()));
  std::size_t pivot_row = 0;
  // ncast:hot-begin — elimination sweep: region kernels only; the pivot
  // vector's capacity is reserved above so the loop allocates nothing.
  for (std::size_t col = 0; col < m.cols() && pivot_row < m.rows(); ++col) {
    // Find a row at or below pivot_row with a nonzero entry in this column.
    std::size_t sel = pivot_row;
    while (sel < m.rows() && m(sel, col) == V{0}) ++sel;
    if (sel == m.rows()) continue;
    m.swap_rows(sel, pivot_row);

    // The pivot row is zero left of `col` (earlier pivot columns were
    // eliminated; skipped columns were zero in every row at or below the
    // then-current pivot row), so normalization and elimination only touch
    // the trailing columns.
    const std::size_t tail = m.cols() - col;
    const V p = m(pivot_row, col);
    if (p != V{1}) {
      Field::region_mul(m.row(pivot_row) + col, Field::inv(p), tail);
    }
    // Eliminate the column everywhere else.
    for (std::size_t r = 0; r < m.rows(); ++r) {
      if (r == pivot_row) continue;
      const V f = m(r, col);
      if (f != V{0}) {
        Field::region_madd(m.row(r) + col, m.row(pivot_row) + col, f, tail);
      }
    }
    pivots.push_back(col);  // ncast:allow(hot_path.alloc): capacity reserved before the sweep
    ++pivot_row;
  }
  // ncast:hot-end
  return pivots;
}

/// Rank of `m` (by copy; does not modify the argument).
template <typename Field>
std::size_t rank(const Matrix<Field>& m) {
  Matrix<Field> tmp = m;
  return rref_in_place(tmp).size();
}

/// Inverse of a square matrix, or nullopt if singular.
template <typename Field>
std::optional<Matrix<Field>> invert(const Matrix<Field>& m) {
  if (m.rows() != m.cols()) return std::nullopt;
  const std::size_t n = m.rows();
  // Build the augmented matrix [m | I] and reduce.
  Matrix<Field> aug(n, 2 * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) aug(r, c) = m(r, c);
    aug(r, n + r) = typename Field::value_type{1};
  }
  const auto pivots = rref_in_place(aug);
  // All n pivots must land in the left block; a pivot in the identity block
  // means the left block is rank-deficient.
  if (pivots.size() != n || pivots.back() >= n) return std::nullopt;
  Matrix<Field> inv(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) inv(r, c) = aug(r, n + c);
  }
  return inv;
}

/// Solves m * x = b for x where m is square and nonsingular; nullopt otherwise.
/// b and the result are column vectors given as std::vector.
template <typename Field>
std::optional<std::vector<typename Field::value_type>> solve(
    const Matrix<Field>& m, const std::vector<typename Field::value_type>& b) {
  using V = typename Field::value_type;
  if (m.rows() != m.cols() || b.size() != m.rows()) return std::nullopt;
  const std::size_t n = m.rows();
  Matrix<Field> aug(n, n + 1);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) aug(r, c) = m(r, c);
    aug(r, n) = b[r];
  }
  const auto pivots = rref_in_place(aug);
  // A pivot in the b column means the system is inconsistent.
  if (pivots.size() != n || pivots.back() >= n) return std::nullopt;
  std::vector<V> x(n);
  for (std::size_t r = 0; r < n; ++r) x[r] = aug(r, n);
  return x;
}

/// Incrementally maintained row space: feed rows one at a time; `absorb`
/// reports whether the row was innovative (increased the rank). Used by the
/// simulators to track useful information received by a node without keeping
/// full payloads. A thin shell over ReducedBasis — the same arena-backed
/// elimination core the RLNC decoder uses.
template <typename Field>
class IncrementalRank {
 public:
  using value_type = typename Field::value_type;

  explicit IncrementalRank(std::size_t dimension)
      : basis_(dimension, dimension) {}

  std::size_t dimension() const { return basis_.pivot_cols(); }
  std::size_t rank() const { return basis_.rank(); }
  bool complete() const { return rank() == dimension(); }

  /// Reduces `row` against the stored basis; if a remainder survives, stores
  /// it (normalized) and returns true.
  bool absorb(const std::vector<value_type>& row) {
    if (row.size() != dimension()) {
      throw std::invalid_argument("IncrementalRank::absorb: arity");
    }
    std::copy(row.begin(), row.end(), basis_.scratch_row());
    return basis_.absorb();
  }

 private:
  ReducedBasis<Field> basis_;
};

}  // namespace ncast::linalg
