#pragma once
// Arena-backed reduced row basis — the shared elimination core beneath the
// RLNC decoder and IncrementalRank.
//
// Rows live in one contiguous allocation made at construction; absorbing a
// row after that allocates nothing. Rows are stored in arrival order and
// addressed by stride — pivot bookkeeping is an index vector, so there are no
// row swaps and no per-row vectors. The basis is kept fully reduced (each
// stored row is zero in every other row's pivot column), which makes
// innovation detection a forward elimination and keeps decode read-off
// trivial.
//
// Layout is tuned for the vector kernels: the arena base and the row stride
// are both rounded to 64-byte boundaries, and every region operation starts
// at the cache-line boundary at or below the pivot column rather than at the
// pivot itself. That start-down is free — a stored row is zero left of its
// pivot (its first nonzero IS its pivot, and back-substitution only ever adds
// rows whose pivots lie strictly to the right), so the extra leading symbols
// contribute nothing — and it keeps every 64-byte load/store in the hot loop
// split-free. Candidate rows are built directly in the arena's next free row
// (scratch_row()), so an innovative row is kept by bumping the rank: no
// row copy, no swap.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ncast::linalg {

/// Reduced basis of rows of `width` symbols whose pivots are confined to the
/// leading `pivot_cols` columns (the decoder reduces augmented rows
/// [coeffs | payload] but pivots only on coefficients). Holds at most
/// `pivot_cols` rows, since pivots are distinct columns.
template <typename Field>
class ReducedBasis {
 public:
  using value_type = typename Field::value_type;
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  ReducedBasis(std::size_t width, std::size_t pivot_cols)
      : width_(width),
        pivot_cols_(pivot_cols),
        stride_((width + kAlign - 1) / kAlign * kAlign),
        arena_((pivot_cols + 1) * stride_ + kAlign, value_type{0}) {
    pivots_.reserve(pivot_cols);
    const auto addr = reinterpret_cast<std::uintptr_t>(arena_.data());
    const std::uintptr_t misfit = addr % kAlignBytes;
    base_ = arena_.data() +
            (misfit ? (kAlignBytes - misfit) / sizeof(value_type) : 0);
  }

  ReducedBasis(const ReducedBasis& other)
      : ReducedBasis(other.width_, other.pivot_cols_) {
    pivots_ = other.pivots_;
    for (std::size_t i = 0; i < pivots_.size(); ++i) {
      value_type* dst = base_ + i * stride_;
      const value_type* src = other.row(i);
      for (std::size_t j = 0; j < width_; ++j) dst[j] = src[j];
    }
  }
  ReducedBasis& operator=(const ReducedBasis& other) {
    if (this != &other) {
      ReducedBasis tmp(other);
      swap(tmp);
    }
    return *this;
  }
  ReducedBasis(ReducedBasis&&) = default;
  ReducedBasis& operator=(ReducedBasis&&) = default;

  std::size_t width() const { return width_; }
  std::size_t pivot_cols() const { return pivot_cols_; }
  std::size_t rank() const { return pivots_.size(); }

  /// Row `i` of the basis (length width()), in arrival order. 64-byte
  /// aligned.
  const value_type* row(std::size_t i) const { return base_ + i * stride_; }
  /// Pivot column of row `i`; always < pivot_cols().
  std::size_t pivot(std::size_t i) const { return pivots_[i]; }

  /// Row whose pivot is `col`, or npos if that column has no pivot yet.
  std::size_t row_of_pivot(std::size_t col) const {
    for (std::size_t i = 0; i < pivots_.size(); ++i) {
      if (pivots_[i] == col) return i;
    }
    return npos;
  }

  /// The arena's next free row (length width(), 64-byte aligned): build the
  /// candidate row here, then call absorb(). Contents are unspecified until
  /// the caller fills them (they hold the residue of a previously rejected
  /// candidate).
  value_type* scratch_row() { return base_ + pivots_.size() * stride_; }

  // ncast:hot-begin — per-packet elimination core; allocation-free by
  // contract (PR 2), enforced statically by ncast_lint and at runtime by
  // tests/test_codec_alloc.cpp.

  /// Eliminates the stored rows from `r` (length width()) in place. After the
  /// call, r[pivot(i)] == 0 for every stored row i.
  void reduce(value_type* r) const {
    for (std::size_t i = 0; i < pivots_.size(); ++i) {
      const std::size_t p = pivots_[i];
      const value_type f = r[p];
      if (f != value_type{0}) {
        const std::size_t a = aligned_start(p);
        Field::region_madd(r + a, row(i) + a, f, width_ - a);
      }
    }
  }

  /// Reduces the scratch row against the basis; if a remainder survives in
  /// the pivot columns, normalizes it, back-substitutes into the stored rows,
  /// and adopts it as basis row rank() (in place — the scratch row IS the
  /// arena slot). Returns whether the row was innovative. Performs no heap
  /// allocation.
  bool absorb() {
    value_type* r = scratch_row();
    reduce(r);
    std::size_t p = 0;
    while (p < pivot_cols_ && r[p] == value_type{0}) ++p;
    if (p == pivot_cols_) return false;  // dependent

    // r is zero left of p, so the aligned start-down below is a no-op on the
    // extra leading symbols for the mul and the madds alike.
    const std::size_t a = aligned_start(p);
    const value_type lead = r[p];
    if (lead != value_type{1}) {
      Field::region_mul(r + a, Field::inv(lead), width_ - a);
    }
    for (std::size_t i = 0; i < pivots_.size(); ++i) {
      value_type* ri = base_ + i * stride_;
      const value_type f = ri[p];
      if (f != value_type{0}) {
        Field::region_madd(ri + a, r + a, f, width_ - a);
      }
    }
    pivots_.push_back(p);  // ncast:allow(hot_path.alloc): capacity reserved at construction (pivot_cols_ entries)
    return true;
  }

  // ncast:hot-end

 private:
  static constexpr std::size_t kAlignBytes = 64;
  static constexpr std::size_t kAlign = kAlignBytes / sizeof(value_type);

  static std::size_t aligned_start(std::size_t p) { return p & ~(kAlign - 1); }

  void swap(ReducedBasis& other) {
    std::swap(width_, other.width_);
    std::swap(pivot_cols_, other.pivot_cols_);
    std::swap(stride_, other.stride_);
    arena_.swap(other.arena_);
    std::swap(base_, other.base_);
    pivots_.swap(other.pivots_);
  }

  std::size_t width_;
  std::size_t pivot_cols_;
  std::size_t stride_;               // row stride, width_ rounded up to 64B
  std::vector<value_type> arena_;    // pivot_cols_ + 1 rows (last = scratch)
  value_type* base_;                 // 64B-aligned first row, into arena_
  std::vector<std::size_t> pivots_;  // pivots_[i] = pivot column of row i
};

}  // namespace ncast::linalg
