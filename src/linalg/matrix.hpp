#pragma once
// Dense matrices over a finite field. Row-major contiguous storage; rows are
// exposed as raw spans so Gaussian elimination and packet mixing can use the
// field's bulk region operations.

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ncast::linalg {

/// Dense rows x cols matrix over `Field` (one of ncast::gf::Gf256 / Gf2_16 / Gf2).
template <typename Field>
class Matrix {
 public:
  using value_type = typename Field::value_type;

  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, value_type{0}) {}

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = value_type{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  value_type& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  value_type operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access.
  value_type& at(std::size_t r, std::size_t c) {
    check(r, c);
    return (*this)(r, c);
  }
  value_type at(std::size_t r, std::size_t c) const {
    check(r, c);
    return (*this)(r, c);
  }

  value_type* row(std::size_t r) { return data_.data() + r * cols_; }
  const value_type* row(std::size_t r) const { return data_.data() + r * cols_; }

  void swap_rows(std::size_t a, std::size_t b) {
    if (a == b) return;
    value_type* ra = row(a);
    std::swap_ranges(ra, ra + cols_, row(b));
  }

  /// Appends a row (must have exactly cols() entries).
  void append_row(const std::vector<value_type>& r) {
    if (r.size() != cols_) throw std::invalid_argument("Matrix::append_row: arity");
    data_.insert(data_.end(), r.begin(), r.end());
    ++rows_;
  }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

  /// Matrix product; requires this->cols() == rhs.rows().
  Matrix multiply(const Matrix& rhs) const {
    if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix::multiply: shape");
    Matrix out(rows_, rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t j = 0; j < cols_; ++j) {
        const value_type a = (*this)(i, j);
        if (a == value_type{0}) continue;
        Field::region_madd(out.row(i), rhs.row(j), a, rhs.cols_);
      }
    }
    return out;
  }

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<value_type> data_;
};

}  // namespace ncast::linalg
