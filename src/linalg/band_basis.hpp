#pragma once
// Arena-backed *banded* row basis — the elimination core beneath the band
// decoder (coding/band_decoder.hpp).
//
// For banded generation structures every coded packet mixes only a width-w
// contiguous run of source packets, so every row the decoder ever holds has
// coefficient support inside a width-w window. This basis exploits that:
//
//   - Rows are slot-addressed by pivot column (no pivot search, no arrival
//     order): slot p stores the row whose pivot is p, as a *compact* strip of
//     at most `band` coefficients starting at column p, plus the payload.
//     A row costs O(band + symbols) storage instead of O(g + symbols).
//   - absorb() is forward-only elimination. With every stored row normalized
//     to a unit leading coefficient and supported on [p, p + band), a
//     candidate reduced to lead L keeps support inside [L, L + band) — the
//     window never widens (each elimination step moves the lead right by at
//     least one while extending the end by at most band past the old lead).
//     So elimination touches O(band) coefficients per step, not O(g).
//   - Full RREF back-substitution would fill the band above each pivot and
//     destroy exactly the sparsity we are exploiting, so it is deferred: one
//     O(g * band) payload-only back_substitute() pass once the basis is
//     complete, instead of O(g^2) eagerly.
//
// Innovation verdicts are exact linear algebra (a candidate is adopted iff it
// is independent of the stored rows), so a band decoder over this basis gives
// bit-identical innovative/redundant sequences to the dense decoder on the
// same packets. Like ReducedBasis, the whole thing is one allocation at
// construction and absorb() allocates nothing.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ncast::linalg {

/// Banded basis over `cols` pivot columns with `payload_cols` augmented
/// payload symbols per row; all absorbed rows must have coefficient support
/// of width <= `band` (the caller's generation structure guarantees this).
template <typename Field>
class BandBasis {
 public:
  using value_type = typename Field::value_type;

  BandBasis(std::size_t cols, std::size_t payload_cols, std::size_t band)
      : cols_(cols),
        payload_cols_(payload_cols),
        band_(band),
        coeff_stride_(round_up(band)),
        row_stride_(round_up(coeff_stride_ + payload_cols)),
        scratch_stride_(round_up(cols)),
        arena_(cols * row_stride_ + scratch_stride_ + round_up(payload_cols) +
                   kAlign,
               value_type{0}),
        occupied_(cols, 0),
        extents_(cols, 0) {
    const auto addr = reinterpret_cast<std::uintptr_t>(arena_.data());
    const std::uintptr_t misfit = addr % kAlignBytes;
    base_ = arena_.data() +
            (misfit ? (kAlignBytes - misfit) / sizeof(value_type) : 0);
    scratch_coeffs_ = base_ + cols_ * row_stride_;
    scratch_payload_ = scratch_coeffs_ + scratch_stride_;
  }

  BandBasis(const BandBasis&) = delete;
  BandBasis& operator=(const BandBasis&) = delete;
  BandBasis(BandBasis&&) = default;
  BandBasis& operator=(BandBasis&&) = default;

  std::size_t cols() const { return cols_; }
  std::size_t payload_cols() const { return payload_cols_; }
  std::size_t band() const { return band_; }
  std::size_t rank() const { return rank_; }
  bool complete() const { return rank_ == cols_; }

  /// True iff a stored row pivots on column p.
  bool has_pivot(std::size_t p) const { return occupied_[p] != 0; }

  /// Compact coefficient strip of the row pivoting on p: extent(p) entries
  /// covering columns [p, p + extent(p)), entry 0 always 1.
  const value_type* coeff_row(std::size_t p) const {
    return base_ + p * row_stride_;
  }
  /// Support length of the stored row at slot p (<= band).
  std::size_t extent(std::size_t p) const { return extents_[p]; }

  /// Payload of the row pivoting on p. After back_substitute() on a complete
  /// basis this is the decoded source packet p.
  const value_type* payload_row(std::size_t p) const {
    return base_ + p * row_stride_ + coeff_stride_;
  }

  // ncast:hot-begin — per-packet banded elimination; allocation-free by
  // contract, enforced by ncast_lint and tests/test_codec_alloc.cpp.

  /// Absorbs a candidate row with coefficients `coeffs[0..width)` covering
  /// columns [offset, offset + width) and payload `payload[0..payload_cols)`.
  /// Requires width <= band and offset + width <= cols (the decoder validates
  /// packets against the structure before calling). Returns true iff the row
  /// was innovative (and was adopted).
  bool absorb(std::size_t offset, const value_type* coeffs, std::size_t width,
              const value_type* payload) {
    // Scratch coefficient row is all-zero outside [offset, end) by the
    // zero-on-exit discipline below, so a plain copy-in suffices.
    value_type* sc = scratch_coeffs_;
    value_type* sp = scratch_payload_;
    std::copy(coeffs, coeffs + width, sc + offset);
    std::copy(payload, payload + payload_cols_, sp);

    std::size_t lead = offset;
    std::size_t end = offset + width;
    while (true) {
      while (lead < end && sc[lead] == value_type{0}) ++lead;
      if (lead == end) return false;  // dependent; scratch already zero again
      if (!occupied_[lead]) {
        adopt(lead, end);
        return true;
      }
      // Eliminate the stored unit-lead row at slot `lead`. Its support ends
      // at lead + extents_[lead] <= lead + band, so the candidate's window
      // stays within band of its (advancing) lead.
      const value_type f = sc[lead];
      const value_type* rc = coeff_row(lead);
      const std::size_t ext = extents_[lead];
      Field::region_madd(sc + lead, rc, f, ext);
      Field::region_madd(sp, payload_row(lead), f, payload_cols_);
      if (lead + ext > end) end = lead + ext;
      ++lead;  // sc[lead] is now zero (unit leading coefficient times f)
    }
  }

  // ncast:hot-end

  /// Payload-only back-substitution: once complete(), rewrites every stored
  /// payload to the decoded source packet. One O(cols * band) pass, deferred
  /// here because doing it eagerly inside absorb() would densify the band.
  /// Idempotent.
  void back_substitute() {
    if (decoded_ || !complete()) return;
    for (std::size_t p = cols_; p-- > 0;) {
      value_type* rc = base_ + p * row_stride_;
      value_type* rp = rc + coeff_stride_;
      const std::size_t ext = extents_[p];
      // Rows right of p are already fully decoded (descending order), so
      // subtracting coeff-weighted decoded payloads isolates source packet p.
      for (std::size_t j = 1; j < ext; ++j) {
        const value_type f = rc[j];
        if (f != value_type{0}) {
          Field::region_madd(rp, payload_row(p + j), f, payload_cols_);
          rc[j] = value_type{0};
        }
      }
      extents_[p] = 1;
    }
    decoded_ = true;
  }

  bool decoded() const { return decoded_; }

 private:
  static constexpr std::size_t kAlignBytes = 64;
  static constexpr std::size_t kAlign = kAlignBytes / sizeof(value_type);
  static std::size_t round_up(std::size_t n) {
    return (n + kAlign - 1) / kAlign * kAlign;
  }

  // ncast:hot-begin — adoption path of absorb(), kept out-of-line for
  // readability; same no-allocation contract.

  /// Normalizes the scratch row (lead at `lead`, support ending at `end`) and
  /// stores it compactly in slot `lead`, then re-zeroes the scratch strip.
  void adopt(std::size_t lead, std::size_t end) {
    value_type* sc = scratch_coeffs_;
    value_type* sp = scratch_payload_;
    const std::size_t ext = end - lead;  // <= band by the window invariant
    const value_type f = sc[lead];
    if (f != value_type{1}) {
      const value_type finv = Field::inv(f);
      Field::region_mul(sc + lead, finv, ext);
      Field::region_mul(sp, finv, payload_cols_);
    }
    value_type* rc = base_ + lead * row_stride_;
    std::copy(sc + lead, sc + end, rc);
    std::copy(sp, sp + payload_cols_, rc + coeff_stride_);
    std::fill(sc + lead, sc + end, value_type{0});  // zero-on-exit
    occupied_[lead] = 1;
    extents_[lead] = ext;
    ++rank_;
  }

  // ncast:hot-end

  std::size_t cols_;
  std::size_t payload_cols_;
  std::size_t band_;
  std::size_t coeff_stride_;    // per-slot compact coeff capacity, 64B-rounded
  std::size_t row_stride_;      // coeff strip + payload, 64B-rounded
  std::size_t scratch_stride_;  // full-width scratch coeff row, 64B-rounded
  std::vector<value_type> arena_;
  std::vector<std::uint8_t> occupied_;  // slot p holds a row?
  std::vector<std::size_t> extents_;    // support length of slot p's row
  value_type* base_ = nullptr;
  value_type* scratch_coeffs_ = nullptr;   // cols_ wide, all-zero between calls
  value_type* scratch_payload_ = nullptr;  // payload_cols_ wide
  std::size_t rank_ = 0;
  bool decoded_ = false;
};

}  // namespace ncast::linalg
