#pragma once
// Chrome trace_event exporter: renders a TraceBuffer as the JSON Trace Event
// Format understood by Perfetto (ui.perfetto.dev) and chrome://tracing, so
// any sim or bench run can be opened in a real trace viewer. Mapping:
//
//   - kSpanBegin / kSpanEnd become async "b"/"e" events keyed by the span id
//     ("cat":"span"), so each protocol episode (a join, a complaint/repair
//     cycle) renders as one horizontal bar on its node's track;
//   - every other TraceKind becomes a thread-scoped instant event ("ph":"i")
//     with the numeric payloads, span, and parent in "args";
//   - pid is always 0 (one simulated process), tid is the node id, so the
//     viewer groups events per node;
//   - ts is sim-time scaled by 1000 (one sim time unit displays as 1 ms).
//
// The top-level object also carries "otherData" with the buffer's capacity,
// total_emitted, and dropped_events counters, so a truncated trace is
// detectable inside the viewer's metadata panel too.

#include <string>

#include "obs/trace.hpp"

namespace ncast::obs {

/// Sim-time -> trace_event timestamp scale (1 sim unit = 1000 "us" = 1 ms).
inline constexpr double kTraceEventTimeScale = 1000.0;

/// The full trace_event JSON document for the buffer's retained events.
std::string to_trace_event_json(const TraceBuffer& buffer);

/// Writes to_trace_event_json() to a file; returns false on I/O failure.
bool write_trace_event(const TraceBuffer& buffer, const std::string& path);

}  // namespace ncast::obs
