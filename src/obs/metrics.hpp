#pragma once
// Process-wide metrics registry: named Counter / Gauge / Histogram instances
// with near-zero-cost updates on hot paths. Hot operations are thread-safe
// so the sharded kernel's workers can land updates concurrently: counters
// and gauges are relaxed atomics, histograms take a per-instance spinlock,
// and registry lookups are mutex-guarded (hot paths cache the returned
// references, so lookups never sit on a hot loop). Readers (JSON snapshots,
// quantiles) are meant to run after workers have joined — the sharded
// engine's epoch barriers and thread joins provide that ordering.
//
// Compile-time kill switch: build with -DNCAST_OBS_ENABLED=0 (CMake option
// NCAST_OBS=OFF) and every mutating operation compiles to nothing while the
// registry, lookups, and accessors keep working, so instrumented code needs
// no #ifdefs. Updates simply stop landing.

#ifndef NCAST_OBS_ENABLED
#define NCAST_OBS_ENABLED 1
#endif

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ncast::obs {

class JsonWriter;

/// Monotone event count. Increments are relaxed atomics: cross-thread
/// counts merge correctly, but no ordering is implied — read totals only
/// after the writing threads have been joined.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
#if NCAST_OBS_ENABLED
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value (or high-water) measurement. Atomic like Counter: set() is a
/// relaxed store (last writer wins), add() a relaxed fetch_add, set_max() a
/// compare-exchange loop that never loses a larger value to a race.
class Gauge {
 public:
  void set(double v) {
#if NCAST_OBS_ENABLED
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  void add(double v) {
#if NCAST_OBS_ENABLED
    value_.fetch_add(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  /// High-water update: keeps the maximum of all values seen.
  void set_max(double v) {
#if NCAST_OBS_ENABLED
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }

  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram for non-negative measurements (durations in
/// nanoseconds, sizes, hop counts). Buckets are quarter-octaves: within each
/// power of two there are four linearly spaced buckets, so the relative
/// quantile error is bounded by ~12% while observe() stays allocation-free
/// and costs only a frexp plus an array increment. Values below 1 land in a
/// dedicated underflow bucket; values beyond 2^64 clamp into the top bucket.
class Histogram {
 public:
  static constexpr std::size_t kSubBuckets = 4;        // per octave
  static constexpr std::size_t kOctaves = 64;          // 1 .. 2^64
  static constexpr std::size_t kBuckets = kSubBuckets * kOctaves + 1;

  Histogram() : counts_(kBuckets, 0) {}

  void observe(double x) {
#if NCAST_OBS_ENABLED
    // Per-instance spinlock: observations are rare enough (sampled handler
    // profiling, per-message delay draws) that contention is negligible, and
    // a lock keeps (count, sum, min, max, bucket) mutually consistent.
    while (lock_.test_and_set(std::memory_order_acquire)) {
    }
    ++count_;
    sum_ += x;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    ++counts_[bucket_index(x)];
    lock_.clear(std::memory_order_release);
#else
    (void)x;
#endif
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Quantile estimate for q in [0, 1]. Returns 0 on an empty histogram (a
  /// deliberate "no data" sentinel — callers dump quantiles unconditionally).
  /// With a single sample, returns exactly that sample. Estimates are the
  /// geometric midpoint of the containing bucket, clamped to [min, max].
  double quantile(double q) const;

  void reset() {
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
    counts_.assign(kBuckets, 0);
  }

  /// Bucket index for a value; exposed for tests.
  static std::size_t bucket_index(double x);
  /// Inclusive lower bound of bucket `i` (0 for the underflow bucket).
  static double bucket_low(std::size_t i);

 private:
  std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::vector<std::uint64_t> counts_;
};

/// Name-indexed registry. Metrics are created on first lookup and live for
/// the lifetime of the registry — entries are never removed, so references
/// returned by counter()/gauge()/histogram() stay valid forever (hot paths
/// cache them). Re-using a name with a different metric kind throws.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Zeroes every metric's value, keeping all registrations (and therefore
  /// all cached references) intact. Used by tests and long-lived tools.
  void reset_values();

  /// Writes three keys — "counters", "gauges", "histograms" — into the
  /// currently open JSON object. Histograms are dumped as
  /// {count, sum, min, max, mean, p50, p90, p99}.
  void write_json(JsonWriter& w) const;

  /// Full snapshot as a standalone JSON object string.
  std::string snapshot_json() const;

 private:
  void check_collision(const std::string& name, const char* kind) const;

  mutable std::mutex mu_;  ///< guards the maps; entry values are stable
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry all instrumentation points use.
Registry& metrics();

/// RAII wall-clock probe: records the scope's duration in nanoseconds into a
/// histogram. With NCAST_OBS disabled, no clock is read at all.
class ScopeTimer {
 public:
  explicit ScopeTimer(Histogram& h)
      : h_(&h)
#if NCAST_OBS_ENABLED
        ,
        start_(std::chrono::steady_clock::now())
#endif
  {
  }

  ~ScopeTimer() {
#if NCAST_OBS_ENABLED
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    h_->observe(static_cast<double>(ns));
#endif
  }

  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  Histogram* h_;
#if NCAST_OBS_ENABLED
  std::chrono::steady_clock::time_point start_;
#endif
};

/// Manual wall-clock probe for call sites that cannot use RAII scoping —
/// e.g. the event engine's sampled handler profiling, where only every Nth
/// callback is timed. Lives in obs so the clock read stays behind the kill
/// switch (and so deterministic subsystems never touch a clock directly —
/// the lint determinism rules forbid steady_clock outside obs/).
class Stopwatch {
 public:
  Stopwatch()
#if NCAST_OBS_ENABLED
      : start_(std::chrono::steady_clock::now())
#endif
  {
  }

  /// Nanoseconds since construction; 0 with NCAST_OBS disabled.
  double elapsed_ns() const {
#if NCAST_OBS_ENABLED
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
#else
    return 0.0;
#endif
  }

 private:
#if NCAST_OBS_ENABLED
  std::chrono::steady_clock::time_point start_;
#endif
};

}  // namespace ncast::obs
