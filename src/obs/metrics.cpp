#include "obs/metrics.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/json.hpp"

namespace ncast::obs {

std::size_t Histogram::bucket_index(double x) {
  if (!(x >= 1.0)) return 0;  // underflow bucket; also catches NaN
  int exp = 0;
  const double m = std::frexp(x, &exp);  // x = m * 2^exp, m in [0.5, 1)
  if (exp > static_cast<int>(kOctaves)) return kBuckets - 1;
  const auto sub = static_cast<std::size_t>((2.0 * m - 1.0) *
                                            static_cast<double>(kSubBuckets));
  std::size_t idx = kSubBuckets * static_cast<std::size_t>(exp - 1) +
                    (sub < kSubBuckets ? sub : kSubBuckets - 1) + 1;
  return idx < kBuckets ? idx : kBuckets - 1;
}

double Histogram::bucket_low(std::size_t i) {
  if (i == 0) return 0.0;
  const std::size_t j = i - 1;
  const std::size_t octave = j / kSubBuckets;
  const std::size_t sub = j % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) /
                              static_cast<double>(kSubBuckets),
                    static_cast<int>(octave));
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // 0-based rank, matching SampleSet::quantile's order-statistic convention.
  const double rank = q * static_cast<double>(count_ - 1);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (static_cast<double>(cum) > rank) {
      // Geometric midpoint of the bucket, clamped to the observed range so
      // degenerate cases (single sample, all-equal samples) are exact.
      const double lo = bucket_low(i);
      const double hi = i + 1 < kBuckets ? bucket_low(i + 1) : max_;
      double rep = lo > 0.0 ? std::sqrt(lo * hi) : hi / 2.0;
      if (rep < min_) rep = min_;
      if (rep > max_) rep = max_;
      return rep;
    }
  }
  return max_;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    check_collision(name, "counter");
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    check_collision(name, "gauge");
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    check_collision(name, "histogram");
    it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

void Registry::check_collision(const std::string& name, const char* kind) const {
  const bool taken = counters_.count(name) != 0 || gauges_.count(name) != 0 ||
                     histograms_.count(name) != 0;
  if (taken) {
    throw std::invalid_argument("Registry: metric name '" + name +
                                "' already registered with a different kind "
                                "(requested " + kind + ")");
  }
}

void Registry::reset_values() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void Registry::write_json(JsonWriter& w) const {
  const std::lock_guard<std::mutex> lock(mu_);
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) {
    w.key(name).value(c->value());
  }
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name).value(g->value());
  }
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(h->count());
    w.key("sum").value(h->sum());
    w.key("min").value(h->min());
    w.key("max").value(h->max());
    w.key("mean").value(h->mean());
    w.key("p50").value(h->quantile(0.50));
    w.key("p90").value(h->quantile(0.90));
    w.key("p99").value(h->quantile(0.99));
    w.end_object();
  }
  w.end_object();
}

std::string Registry::snapshot_json() const {
  JsonWriter w;
  w.begin_object();
  write_json(w);
  w.end_object();
  return w.str();
}

Registry& metrics() {
  static Registry registry;
  return registry;
}

}  // namespace ncast::obs
