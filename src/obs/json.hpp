#pragma once
// Minimal dependency-free JSON writer used by the observability layer: the
// metrics registry snapshot, the trace JSONL export, and the bench telemetry
// files are all produced through it. Writer only — parsing lives in
// tools/bench_validate.cpp, which deliberately re-implements a reader so the
// validator cannot inherit a writer bug.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace ncast::obs {

/// Escapes a string for inclusion inside JSON double quotes per RFC 8259:
/// backslash, quote, and control characters (U+0000..U+001F) are escaped;
/// everything else (including UTF-8 bytes) passes through verbatim.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Renders a double as a JSON number. JSON has no NaN/Inf, so non-finite
/// values become null (the reader treats them as "unmeasured").
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // %.12g round-trips every value we emit (counters, nanoseconds, rates)
  // without trailing-zero noise.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

/// Streaming JSON writer with automatic comma placement. Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("bench");
///   w.key("params").begin_object();
///   w.key("k").value(std::uint64_t{16});
///   w.end_object();
///   w.end_object();
///   std::string s = w.str();
///
/// The writer does not validate nesting beyond what the comma logic needs;
/// callers are expected to balance begin/end (tests cover the shapes we use).
class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(const std::string& k) {
    comma();
    out_ += '"';
    out_ += json_escape(k);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& v) { return raw('"' + json_escape(v) + '"'); }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v) { return raw(json_number(v)); }
  JsonWriter& value(std::uint64_t v) { return raw(std::to_string(v)); }
  JsonWriter& value(std::int64_t v) { return raw(std::to_string(v)); }
  JsonWriter& value(bool v) { return raw(v ? "true" : "false"); }
  JsonWriter& null() { return raw("null"); }

  /// Emits an already-rendered JSON token (number, quoted string, ...).
  /// The caller is responsible for its validity.
  JsonWriter& raw_value(const std::string& token) { return raw(token); }

  const std::string& str() const { return out_; }

 private:
  JsonWriter& raw(const std::string& token) {
    comma();
    out_ += token;
    return *this;
  }

  JsonWriter& open(char c) {
    comma();
    out_ += c;
    first_.push_back(true);
    return *this;
  }

  JsonWriter& close(char c) {
    out_ += c;
    if (!first_.empty()) first_.pop_back();
    return *this;
  }

  // Emits a separating comma unless this is the first element of the current
  // container or the token directly follows its key.
  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (first_.empty()) return;
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ += ',';
    }
  }

  std::string out_;
  std::vector<bool> first_;
  bool pending_value_ = false;
};

}  // namespace ncast::obs
