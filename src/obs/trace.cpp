#include "obs/trace.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace ncast::obs {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kJoin: return "join";
    case TraceKind::kLeave: return "leave";
    case TraceKind::kCrash: return "crash";
    case TraceKind::kRepair: return "repair";
    case TraceKind::kDefect: return "defect";
    case TraceKind::kPacketSend: return "packet_send";
    case TraceKind::kRankAdvance: return "rank_advance";
    case TraceKind::kCongestionOffload: return "congestion_offload";
    case TraceKind::kCongestionRestore: return "congestion_restore";
    case TraceKind::kMsgSend: return "msg_send";
    case TraceKind::kMsgDeliver: return "msg_deliver";
    case TraceKind::kMsgDrop: return "msg_drop";
    case TraceKind::kMsgRetry: return "msg_retry";
    case TraceKind::kSpanBegin: return "span_begin";
    case TraceKind::kSpanEnd: return "span_end";
  }
  return "unknown";
}

TraceBuffer::TraceBuffer(std::size_t capacity) : ring_(capacity) {
  if (capacity == 0) throw std::invalid_argument("TraceBuffer: zero capacity");
}

void TraceBuffer::emit(TraceKind kind, std::uint64_t node, std::uint64_t a,
                       std::uint64_t b, std::string detail, SpanId span,
                       SpanId parent) {
#if NCAST_OBS_ENABLED
  while (lock_.test_and_set(std::memory_order_acquire)) {
  }
  if (size_ == ring_.size()) {
    // Overwriting the oldest retained event. The registry counter is the
    // cheap cross-check bench telemetry snapshots; dropped_ feeds the export
    // header so a truncated trace file carries its own warning.
    ++dropped_;
    static Counter& dropped_ctr = metrics().counter("trace.dropped_events");
    dropped_ctr.inc();
  }
  TraceEvent& e = ring_[next_];
  e.t = now_.load(std::memory_order_relaxed);
  e.kind = kind;
  e.node = node;
  e.a = a;
  e.b = b;
  e.span = span;
  e.parent = parent;
  e.detail = std::move(detail);
  next_ = (next_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  ++total_;
  lock_.clear(std::memory_order_release);
#else
  (void)kind; (void)node; (void)a; (void)b; (void)detail;
  (void)span; (void)parent;
#endif
}

std::vector<TraceEvent> TraceBuffer::events_in_order() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest retained event: when full, the slot about to be overwritten.
  const std::size_t start = size_ < ring_.size() ? 0 : next_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string TraceBuffer::to_jsonl() const {
  std::string out;
  {
    JsonWriter w;
    w.begin_object();
    w.key("schema").value("ncast.trace.v1");
    w.key("capacity").value(static_cast<std::uint64_t>(ring_.size()));
    w.key("total_emitted").value(total_);
    w.key("dropped_events").value(dropped_);
    w.end_object();
    out += w.str();
    out += '\n';
  }
  for (const TraceEvent& e : events_in_order()) {
    JsonWriter w;
    w.begin_object();
    w.key("t").value(e.t);
    w.key("kind").value(to_string(e.kind));
    w.key("node").value(e.node);
    w.key("a").value(e.a);
    w.key("b").value(e.b);
    if (e.span != kNoSpan) w.key("span").value(e.span);
    if (e.parent != kNoSpan) w.key("parent").value(e.parent);
    if (!e.detail.empty()) w.key("detail").value(e.detail);
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

bool TraceBuffer::write_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = to_jsonl();
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = written == body.size() && std::fclose(f) == 0;
  if (!ok && written != body.size()) std::fclose(f);
  return ok;
}

void TraceBuffer::clear() {
  for (TraceEvent& e : ring_) e = TraceEvent{};
  next_ = 0;
  size_ = 0;
  total_ = 0;
  dropped_ = 0;
}

TraceBuffer& trace() {
  static TraceBuffer buffer;
  return buffer;
}

}  // namespace ncast::obs
