#pragma once
// Structured trace: a bounded ring buffer of typed protocol events stamped
// with simulation time. The overlay server, the churn driver, and the
// packet-level simulators emit into the process-wide buffer; when it fills,
// the oldest events are overwritten (the tail of a run is what post-mortems
// need) and trace.dropped_events counts the loss so a truncated post-mortem
// is detectable. Export is JSONL — a schema header line followed by one JSON
// object per event — so runs can be grepped and diffed without a parser; the
// Chrome trace_event exporter (obs/trace_event.hpp) renders the same buffer
// for Perfetto / chrome://tracing.
//
// Causality: events may carry a span id and a parent span id. A span groups
// every event of one protocol episode — a join (hello, retransmissions,
// accept, first rank advances), a complaint/repair cycle — and the parent
// link turns related spans into a tree. Span ids are allocated from a
// process-wide sequence (new_span()) and never reused; 0 means "no span".

#ifndef NCAST_OBS_ENABLED
#define NCAST_OBS_ENABLED 1
#endif

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ncast::obs {

/// Span identifier. 0 is "no span"; real ids start at 1.
using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

/// Event vocabulary. Kept deliberately small: one enum across the stack so a
/// single trace interleaves overlay control events with data-plane progress
/// and message-plane lifecycle.
enum class TraceKind : std::uint8_t {
  kJoin,               ///< node joined the overlay (a = degree)
  kLeave,              ///< graceful good-bye (a = parents, b = children)
  kCrash,              ///< failure reported / node crashed
  kRepair,             ///< repair procedure completed for a failed node
  kDefect,             ///< defect (broken-thread deficiency) observation (a = defect)
  kPacketSend,         ///< coded packet sent (node = sender, a = receiver)
  kRankAdvance,        ///< receiver's decoder rank increased (a = new rank)
  kCongestionOffload,  ///< node dropped a thread under load (a = column)
  kCongestionRestore,  ///< node re-acquired a thread (a = column)
  // Message-plane lifecycle (PR 6): the causal skeleton of the event-driven
  // protocol. node/a/b = from/to/message type unless noted.
  kMsgSend,     ///< control message handed to the transport
  kMsgDeliver,  ///< control message delivered to its endpoint
  kMsgDrop,     ///< message lost (detail = reason: loss/partition/crash/...)
  kMsgRetry,    ///< sender retransmitted (a = attempt number, b = msg type)
  kSpanBegin,   ///< a protocol episode opened (detail = span name)
  kSpanEnd,     ///< the episode closed (detail = span name)
};

const char* to_string(TraceKind kind);

/// One trace record. `node`, `a`, `b` are kind-dependent numeric payloads
/// (see TraceKind comments); `detail` is optional free text, JSON-escaped on
/// export. `span`/`parent` carry the causal links (kNoSpan = unlinked).
/// Keeping the payload numeric keeps hot-path emission cheap.
struct TraceEvent {
  double t = 0.0;
  TraceKind kind = TraceKind::kJoin;
  std::uint64_t node = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  SpanId span = kNoSpan;
  SpanId parent = kNoSpan;
  std::string detail;
};

/// Fixed-capacity ring buffer of TraceEvents with a settable clock. The
/// simulation driver calls set_now() as virtual time advances; emitters
/// stamp events with the current reading. With NCAST_OBS disabled, emit()
/// is a no-op and the buffer stays empty.
///
/// Thread-safety: emit() takes a per-buffer spinlock and the clock/span
/// sequence are atomics, so sharded-kernel workers can emit concurrently.
/// Readers (to_jsonl, events_in_order) are meant to run after workers have
/// joined; the clock is a single value, so concurrent set_now() from lanes
/// at different virtual times makes stamps approximate under workers > 1.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 8192);

  /// Movable for by-value construction in tests/tools. Never move a buffer
  /// other threads are emitting into.
  TraceBuffer(TraceBuffer&& o) noexcept
      : ring_(std::move(o.ring_)),
        next_(o.next_),
        size_(o.size_),
        total_(o.total_),
        dropped_(o.dropped_),
        span_seq_(o.span_seq_.load(std::memory_order_relaxed)),
        now_(o.now_.load(std::memory_order_relaxed)) {}

  /// Sets the timestamp applied to subsequently emitted events.
  void set_now(double t) { now_.store(t, std::memory_order_relaxed); }
  double now() const { return now_.load(std::memory_order_relaxed); }

  void emit(TraceKind kind, std::uint64_t node = 0, std::uint64_t a = 0,
            std::uint64_t b = 0, std::string detail = {},
            SpanId span = kNoSpan, SpanId parent = kNoSpan);

  /// Allocates a fresh span id (never 0, never reused). Not gated by the
  /// kill switch: span ids ride protocol messages, so their allocation must
  /// not depend on whether telemetry is compiled in.
  SpanId new_span() { return span_seq_.fetch_add(1, std::memory_order_relaxed) + 1; }

  std::size_t capacity() const { return ring_.size(); }
  /// Events currently retained (<= capacity()).
  std::size_t size() const { return size_; }
  /// Events ever emitted, including overwritten ones.
  std::uint64_t total_emitted() const { return total_; }
  /// Events lost to ring overwrite since the last clear() — when nonzero,
  /// the head of any reconstructed span tree may be missing.
  std::uint64_t dropped_events() const { return dropped_; }

  /// Retained events, oldest first.
  std::vector<TraceEvent> events_in_order() const;

  /// JSONL export ("ncast.trace.v1"): a header line
  ///   {"schema":"ncast.trace.v1","capacity":..,"total_emitted":..,
  ///    "dropped_events":..}
  /// then one object per retained event, oldest first, '\n'-terminated:
  ///   {"t":..,"kind":"join","node":..,"a":..,"b":..,
  ///    "span":..,"parent":..,"detail":".."}
  /// ("span"/"parent" omitted when kNoSpan, "detail" omitted when empty).
  std::string to_jsonl() const;

  /// Writes to_jsonl() to a file; returns false on I/O failure.
  bool write_jsonl(const std::string& path) const;

  void clear();

 private:
  std::atomic_flag lock_ = ATOMIC_FLAG_INIT;  ///< guards ring/counters in emit
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  // slot the next event lands in
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
  std::atomic<SpanId> span_seq_{0};
  std::atomic<double> now_{0.0};
};

/// The process-wide trace buffer all instrumentation points use.
TraceBuffer& trace();

}  // namespace ncast::obs
