#include "obs/trace_event.hpp"

#include <cstdio>
#include <map>

#include "obs/json.hpp"

namespace ncast::obs {

namespace {

// Common fields every trace_event record carries. Keeping the field order
// fixed (name, cat, ph, ts, pid, tid, ...) makes the export golden-testable.
void common_fields(JsonWriter& w, const char* name, const char* cat,
                   const char* ph, double ts, std::uint64_t tid) {
  w.key("name").value(name);
  w.key("cat").value(cat);
  w.key("ph").value(ph);
  w.key("ts").value(ts);
  w.key("pid").value(std::uint64_t{0});
  w.key("tid").value(tid);
}

}  // namespace

std::string to_trace_event_json(const TraceBuffer& buffer) {
  const auto events = buffer.events_in_order();

  // Async begin/end pairs must agree on (cat, id, name) for the viewer to
  // close the bar; ends are emitted with whatever name their begin declared
  // (an end whose begin was overwritten falls back to "span").
  std::map<SpanId, std::string> span_names;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceKind::kSpanBegin && e.span != kNoSpan) {
      span_names[e.span] = e.detail.empty() ? "span" : e.detail;
    }
  }

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const TraceEvent& e : events) {
    const double ts = e.t * kTraceEventTimeScale;
    w.begin_object();
    if (e.kind == TraceKind::kSpanBegin || e.kind == TraceKind::kSpanEnd) {
      const bool begin = e.kind == TraceKind::kSpanBegin;
      const auto named = span_names.find(e.span);
      const std::string& name =
          named != span_names.end() ? named->second : std::string("span");
      common_fields(w, name.c_str(), "span", begin ? "b" : "e", ts, e.node);
      w.key("id").value(std::to_string(e.span));
      w.key("args").begin_object();
      w.key("span").value(e.span);
      if (e.parent != kNoSpan) w.key("parent").value(e.parent);
      if (e.a != 0) w.key("a").value(e.a);
      if (e.b != 0) w.key("b").value(e.b);
      w.end_object();
    } else {
      common_fields(w, to_string(e.kind), to_string(e.kind), "i", ts, e.node);
      w.key("s").value("t");  // thread-scoped instant: one tick per node row
      w.key("args").begin_object();
      w.key("a").value(e.a);
      w.key("b").value(e.b);
      if (e.span != kNoSpan) w.key("span").value(e.span);
      if (e.parent != kNoSpan) w.key("parent").value(e.parent);
      if (!e.detail.empty()) w.key("detail").value(e.detail);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.key("otherData").begin_object();
  w.key("schema").value("ncast.trace_event.v1");
  w.key("capacity").value(static_cast<std::uint64_t>(buffer.capacity()));
  w.key("total_emitted").value(buffer.total_emitted());
  w.key("dropped_events").value(buffer.dropped_events());
  w.end_object();
  w.end_object();
  return w.str();
}

bool write_trace_event(const TraceBuffer& buffer, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = to_trace_event_json(buffer);
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = written == body.size() && std::fclose(f) == 0;
  if (!ok && written != body.size()) std::fclose(f);
  return ok;
}

}  // namespace ncast::obs
