#pragma once
// The server endpoint: runs the hello / good-bye / repair protocols as real
// message exchanges, maintains the thread matrix, and streams a complete
// multi-generation content object on the threads it still feeds directly.
// This is the component a deployment would run on the content origin.
//
// Two execution modes over the same handlers:
//   - tick mode (process_messages/on_tick): the historical lock-step loop,
//     driven by TickDriver over an InMemoryNetwork;
//   - event mode (start): the endpoint schedules itself on the simulation
//     kernel's EventEngine — a periodic emit timer plus one cancellable
//     repair timer per complained-about node — and receives messages via
//     Endpoint::on_message from a KernelTransport.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "coding/file_codec.hpp"
#include "coding/null_keys.hpp"
#include "gf/gf256.hpp"
#include "node/message.hpp"
#include "node/network.hpp"
#include "node/transport.hpp"
#include "overlay/thread_matrix.hpp"
#include "sim/event_engine.hpp"
#include "util/rng.hpp"

namespace ncast::node {

struct ServerConfig {
  std::uint32_t k = 16;              ///< server threads
  std::uint32_t default_degree = 3;  ///< d assigned to joiners
  std::uint64_t repair_delay = 3;    ///< time units from complaint to repair
  std::size_t generation_size = 16;  ///< packets per generation
  std::size_t symbols = 16;          ///< payload bytes per packet
  std::size_t null_keys = 0;         ///< keys per generation (0 = off)
  /// Generation coding structure (dense/banded/overlapped). The join accept
  /// carries the resolved descriptor, so clients need no out-of-band setup.
  coding::StructureSpec structure;
  std::uint64_t seed = 1;
};

/// Content-origin endpoint.
class ServerNode : public Endpoint {
 public:
  /// `data` is the content being broadcast; it is segmented into
  /// generations per the config.
  ServerNode(ServerConfig config, std::vector<std::uint8_t> data);

  const overlay::ThreadMatrix& matrix() const { return matrix_; }
  const ServerConfig& config() const { return config_; }
  const coding::GenerationPlan& plan() const { return encoder_.plan(); }

  /// The original content (for end-to-end verification in tests).
  const std::vector<std::uint8_t>& data() const { return data_; }

  /// Event mode: attaches to the transport and schedules the emit loop.
  void start(sim::Scheduler& engine, AttachableTransport& net);

  /// Handles one protocol message (both modes route through here).
  void on_message(const Message& m) override;

  /// Tick mode: drains this endpoint's mailbox and handles each message.
  void process_messages(InMemoryNetwork& net);

  /// Tick mode: advances one time unit — executes due repairs, then emits
  /// one coded packet (random generation) on every directly-fed column.
  void on_tick(std::uint64_t tick, InMemoryNetwork& net);

  /// Number of repairs executed so far.
  std::uint64_t repairs_done() const { return repairs_done_; }
  /// Time the most recent repair completed (-1 if none yet) — the repair
  /// convergence measurement bench_control_loss sweeps.
  double last_repair_time() const { return last_repair_time_; }

 private:
  void handle_join(const Message& m);
  void handle_goodbye(const Message& m);
  void handle_complaint(const Message& m);
  void handle_offload(const Message& m);
  void handle_restore(const Message& m);
  /// `span` is the causal span the accept rides (the hello's span, so the
  /// join episode's request and response share one id).
  void send_accept(Address addr, overlay::ThreadSpan columns, obs::SpanId span);

  /// Performs the good-bye steps for `addr` (used by both graceful leaves
  /// and repairs): for each of its columns, rewires the previous clipper to
  /// the next one, then deletes the row. `span` tags the rewiring messages
  /// (the repair span during a repair, the good-bye's span on a leave).
  void splice_out(Address addr, obs::SpanId span = obs::kNoSpan);
  void finish_repair(Address addr);

  /// Emits one coded packet per directly-fed column.
  void emit_direct();
  void event_tick();
  double now() const;

  /// Previous clipper of `column` above the row of `addr` (server if none).
  Address parent_on_column(Address addr, overlay::ColumnId column) const;
  /// Next clipper of `column` below the row of `addr` (none if hanging).
  std::optional<Address> child_on_column(Address addr,
                                         overlay::ColumnId column) const;

  ServerConfig config_;
  overlay::ThreadMatrix matrix_;
  /// Membership draws only (join/offload/restore thread picks). Seeded with
  /// the raw config seed and touched by nothing else, so the pick sequence
  /// matches a CurtainServer built with Rng(seed) call for call — the
  /// cross-plane equivalence the Lemma 1 test pins down.
  Rng membership_rng_;
  /// Data-plane draws (generation choice + coding coefficients), decoupled
  /// from membership so emission volume cannot shift topology decisions.
  Rng emit_rng_;
  std::vector<std::uint8_t> data_;
  coding::FileEncoder encoder_;
  /// Serialized null-key bundles, one per generation (empty if disabled).
  std::vector<std::vector<std::uint8_t>> key_bundles_;
  /// Columns the server currently feeds directly: column -> child address.
  std::map<overlay::ColumnId, Address> direct_children_;
  /// Tick mode — scheduled repairs: address -> tick at which to execute.
  std::map<Address, std::uint64_t> pending_repairs_;
  /// Event mode — one cancellable repair timer per failed node.
  std::map<Address, sim::TimerHandle> repair_timers_;
  /// Open repair span per failed node (begun at the complaint that scheduled
  /// the repair, parented on the complaint's span, ended when the splice
  /// completes) — the server half of the complaint/repair span tree.
  std::map<Address, obs::SpanId> repair_spans_;
  Transport* net_ = nullptr;
  sim::Scheduler* engine_ = nullptr;
  sim::TimerHandle emit_timer_{};
  std::uint64_t now_ = 0;
  std::uint64_t repairs_done_ = 0;
  double last_repair_time_ = -1.0;
};

}  // namespace ncast::node
