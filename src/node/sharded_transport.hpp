#pragma once
// Sharded message fabric: the KernelTransport semantics re-partitioned for
// the sharded event kernel (sim/sharded_engine.hpp). The lane of an address
// is the address itself, so a message send runs on the sender's lane and
// its delivery is a cross-lane post to the receiver's lane.
//
// Shard-safety by ownership, not locks:
//   - Per-sender randomness: each sender address owns an independent Rng
//     (split from the run seed and the address alone) plus its own
//     Gilbert-Elliott channel states, so the draw sequence of one sender
//     can never depend on how other senders' traffic interleaves — the
//     sharded analogue of KernelTransport's send-order determinism.
//   - endpoints / crashed flags live in pre-sized vectors indexed by
//     address and are written only from the owning lane (attach on start,
//     crash from the fault event scheduled on the victim's lane) and read
//     only on that lane too: the receiver-side crash test happens at
//     delivery time (kBlackhole), not at send time, so no lane ever reads
//     another lane's flag. This shifts sends to already-crashed receivers
//     from kCrashed to kBlackhole relative to KernelTransport — the
//     message is counted dropped either way.
//   - The partition side of an address is a pure salted hash (same scheme
//     as KernelTransport), so both lanes agree on it without shared state.

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "node/transport.hpp"
#include "sim/sharded_engine.hpp"

namespace ncast::node {

class ShardedTransport final : public AttachableTransport {
 public:
  /// `max_addresses` pre-sizes every per-address table; traffic to or from
  /// addresses >= max_addresses is dropped as kUnattached. The lane of
  /// address a is a itself — callers lay out engine lanes accordingly.
  ShardedTransport(sim::ShardedEngine& engine, TransportSpec spec,
                   std::uint64_t seed, std::size_t max_addresses);

  void attach(Address addr, Endpoint* endpoint) override;
  void detach(Address addr) override;

  /// Owner-lane only (or setup phase): called from events scheduled on the
  /// address's own lane.
  void crash(Address addr) override;
  void revive(Address addr) override;
  bool crashed(Address addr) const override;

  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  std::size_t max_in_flight() const {
    return max_in_flight_.load(std::memory_order_relaxed);
  }
  std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

  const TransportSpec& spec() const { return spec_; }
  sim::ShardedEngine& engine() { return engine_; }

 protected:
  /// Runs on the sender's lane (m.from). Draw order per message is fixed —
  /// latency, then loss — from the sender's own stream.
  void route(Message m) override;

 private:
  using ChannelKey = std::pair<Address, bool>;  ///< (to, data_plane)

  /// Per-sender-address state, touched only by the owning lane.
  struct LaneNet {
    Rng rng;
    std::map<ChannelKey, bool> ge_bad;
  };

  void arrive(Message m);
  bool survives(LaneNet& ln, const Message& m);
  bool crossing_partition(Address a, Address b, double when) const;
  bool side_b(Address addr) const;

  sim::ShardedEngine& engine_;
  TransportSpec spec_;
  std::uint64_t partition_salt_;
  std::vector<LaneNet> lanes_;
  std::vector<Endpoint*> endpoints_;
  std::vector<std::uint8_t> crashed_flags_;
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::size_t> max_in_flight_{0};
  std::atomic<std::uint64_t> delivered_{0};
  obs::Gauge* in_flight_gauge_ = &obs::metrics().gauge("net.transport_in_flight");
  obs::Gauge* in_flight_hwm_ = &obs::metrics().gauge("net.transport_in_flight_hwm");
  obs::Histogram* delivery_delay_ = &obs::metrics().histogram("net.delivery_delay");
};

}  // namespace ncast::node
