#pragma once
// The protocol-plane scenario runner: the message-level analogue of
// sim::run_scenario. Where the packet-level runner replays a FaultPlan
// against a CurtainServer by direct calls, this one builds real endpoints —
// one ServerNode, ClientNodes arriving per the plan — on a KernelTransport
// over the simulation kernel, so joins ride actual hello messages, crashes
// are detected by silence-timer complaints, and repairs are redirect orders
// that can themselves be delayed, reordered, or lost. This is the harness
// that finally tests Section 3's robustness story under control-plane
// adversity (bench_control_loss) instead of assuming ideal control links.
//
// FaultPlan semantics on the message plane:
//   kJoin  -> a new ClientNode is constructed and starts its hello exchange
//             (join_ref targeting works as in the membership executor);
//   kLeave -> the client sends its good-bye;
//   kCrash -> the client goes dark and the fabric blackholes it;
//   kRepair, kBehavior -> ignored: on the message plane repair is emergent
//             (children complain, the server splices), and packet behaviors
//             belong to the packet-level runner.

#include <cstdint>
#include <vector>

#include "coding/structure.hpp"
#include "node/transport.hpp"
#include "overlay/thread_matrix.hpp"
#include "sim/fault_plan.hpp"

namespace ncast::node {

/// Message-plane scenario description. Fault targets address clients by
/// their protocol Address (initial client i has address i+1; join_ref j maps
/// to address initial_clients + j + 1).
struct ProtocolScenarioSpec {
  std::uint32_t k = 12;               ///< server threads
  std::uint32_t default_degree = 3;   ///< d assigned to joiners
  double repair_delay = 2.0;          ///< complaint -> splice-out delay
  std::size_t generation_size = 8;    ///< packets per generation
  std::size_t symbols = 8;            ///< payload bytes per packet
  std::size_t generations = 2;        ///< content generations
  std::size_t null_keys = 0;          ///< verification keys (0 = off)
  /// Generation coding structure (dense/banded/overlapped). Resolved against
  /// generation_size by the server; clients learn it from the join accept.
  coding::StructureSpec structure;
  std::uint64_t silence_timeout = 6;  ///< client complaint timeout
  double join_retry = 4.0;            ///< hello retransmit base delay
  std::uint32_t initial_clients = 0;  ///< clients that join at t = 0
  double horizon = 0.0;               ///< 0 = sized from plan + content
  std::uint64_t seed = 1;
  TransportSpec transport;            ///< latency/loss/partition model
  sim::FaultPlan faults;              ///< scheduled joins/leaves/crashes
};

/// Per-client outcome.
struct ProtocolOutcome {
  Address address = 0;
  bool joined = false;
  bool crashed = false;
  bool departed = false;
  bool decoded = false;
  double join_latency = -1.0;  ///< first hello -> accept (-1 if never joined)
  double decode_time = -1.0;   ///< full rank reached (-1 if not decoded)
  std::uint64_t join_retries = 0;
  std::uint64_t complaints = 0;
};

struct ProtocolScenarioReport {
  double horizon = 0.0;
  std::uint64_t events_executed = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t control_messages = 0;
  std::uint64_t data_messages = 0;
  std::uint64_t control_dropped = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t data_bytes = 0;  ///< real serialized wire bytes (v1 or v2)
  std::size_t max_in_flight = 0;
  std::uint64_t repairs_done = 0;
  double last_repair_time = -1.0;  ///< repair convergence measurement
  /// The server's final thread matrix (cross-plane equivalence checks).
  overlay::ThreadMatrix matrix{1};
  std::vector<ProtocolOutcome> outcomes;

  /// Fraction of live (non-crashed, non-departed) clients that decoded.
  double decoded_fraction() const;
  /// Mean hello->accept latency over clients that joined (-1 if none did).
  double mean_join_latency() const;
  std::uint64_t total_join_retries() const;
  std::uint64_t total_complaints() const;
};

/// Runs the message-plane scenario to its horizon and collects the report.
ProtocolScenarioReport run_scenario(const ProtocolScenarioSpec& spec);

/// Runs the same scenario on the sharded kernel (sim/sharded_engine.hpp):
/// the server on lane 0, client address a on lane a, deliveries as
/// cross-lane posts through ShardedTransport. The report is a pure function
/// of the spec — independent of `shards` and `workers` (the sharded
/// determinism contract) — with one exception: `max_in_flight` samples
/// instantaneous concurrency *during* a window, and the interleaving of
/// different lanes' equal-window events is unspecified, so the high-water
/// mark may vary with shard/worker count even though every per-lane
/// observable is identical. The report is NOT draw-for-draw identical to
/// run_scenario(), whose transport consumes one global RNG stream in send
/// order rather than per-sender streams. The epoch defaults to the spec's
/// minimum link latency, so no delivery is ever clamped.
ProtocolScenarioReport run_scenario_sharded(const ProtocolScenarioSpec& spec,
                                            std::uint32_t shards,
                                            std::uint32_t workers = 0);

}  // namespace ncast::node
