#pragma once
// Protocol messages. This is the concrete realization of Section 3's hello /
// good-bye / repair protocols: everything the paper describes as "the server
// asks the parents to redirect their streams" is an actual message here.

#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "overlay/thread_matrix.hpp"

namespace ncast::node {

/// Network address of a node. The server is always address 0.
using Address = std::uint32_t;
inline constexpr Address kServerAddress = 0;

enum class MessageType : std::uint8_t {
  kJoinRequest = 0,  ///< client -> server: hello protocol
  kJoinAccept = 1,   ///< server -> client: your thread columns
  kAttachChild = 2,  ///< server -> parent: start feeding `subject` on `column`
  kDetachChild = 3,  ///< server -> parent: stop feeding on `column`
  kGoodbye = 4,      ///< client -> server: graceful leave
  kComplaint = 5,    ///< client -> server: my feed on `column` went silent
  kData = 6,         ///< peer -> peer: one wire-encoded coded packet
  kKeepalive = 7,    ///< peer -> peer: "this feed is alive" (no data yet)
  // Congestion adaptation (Section 5): a loaded node sheds one thread (its
  // parent and child on that column are joined directly); when the pressure
  // passes, it asks for a thread back.
  kCongestionOffload = 8,  ///< client -> server: please shed one of my threads
  kCongestionRestore = 9,  ///< client -> server: please give me a thread back
  kColumnDropped = 10,     ///< server -> client: stop using `column`
  kColumnAdded = 11,       ///< server -> client: start using `column`
  // Decentralized membership (Section 7: "the role of the server can be
  // decreased still further or even eliminated"): peers find upload slots by
  // gossip instead of asking a tracker.
  kPeerSampleRequest = 12,  ///< peer -> peer: who do you know?
  kPeerSampleReply = 13,    ///< peer -> peer: `peers` = a random view sample
  kSlotRequest = 14,        ///< peer -> peer: may I become your child?
  kSlotGrant = 15,          ///< peer -> peer: yes; carries the stream plan
  kSlotDeny = 16,           ///< peer -> peer: full; carries a view sample
  kSlotRelease = 17,        ///< child -> parent: detach me
  kParentBye = 18,          ///< parent -> child: I am leaving; rewire
};

struct Message {
  MessageType type = MessageType::kData;
  Address from = 0;
  Address to = 0;
  overlay::ColumnId column = 0;           ///< attach/detach/data/complaint
  Address subject = 0;                    ///< attach: the child to feed
  std::vector<overlay::ColumnId> columns; ///< join accept: assigned threads
  std::vector<std::uint8_t> wire;         ///< data: serialized coded packet

  // Join-accept stream plan (how the server segmented the content).
  std::uint64_t data_size = 0;
  std::uint32_t gen_count = 0;
  std::uint16_t gen_size = 0;
  std::uint16_t symbols = 0;
  // Stream coding-structure descriptor (how each generation is mixed —
  // coding::StructureSpec on the wire). The zero values describe plain dense
  // RLNC (band_width 0 = full generation), so pre-structure senders and
  // receivers interoperate unchanged. Receivers rebuild the geometry through
  // coding::make_structure(), which treats nonsense as data and refuses it.
  std::uint8_t structure_kind = 0;   ///< coding::StructureKind byte
  std::uint16_t band_width = 0;      ///< band/class width; 0 = dense
  std::uint8_t structure_wrap = 0;   ///< banded: bands may wrap past g
  std::uint16_t class_overlap = 0;   ///< overlapped: shared boundary packets
  /// Serialized null-key sets, one per generation (empty = no verification).
  std::vector<std::vector<std::uint8_t>> key_bundles;
  /// Peer addresses (gossip sample replies / denial hints).
  std::vector<Address> peers;

  /// Causal trace context (out-of-band, like a W3C traceparent header): the
  /// span this message belongs to — a join exchange, a complaint/repair
  /// cycle. Replies and retransmissions inherit the originating span so the
  /// whole episode reconstructs from the trace by span id. Telemetry only:
  /// protocol decisions never read it and control_size() excludes it.
  obs::SpanId span = obs::kNoSpan;

  /// Approximate control-plane size in bytes (data payloads excluded): the
  /// fixed header (type + from + to + column + subject) plus every
  /// variable-length field the message actually carries — assigned thread
  /// columns, gossip peer samples, and for join accepts / slot grants the
  /// stream plan and the serialized null-key bundles (each with a length
  /// prefix). Earlier versions ignored peers/key_bundles/plan entirely,
  /// which made gossip and join-accept byte accounting silently optimistic.
  std::size_t control_size() const {
    if (type == MessageType::kData) return 0;
    std::size_t bytes = 1 + 4 * sizeof(std::uint32_t);  // type, from, to, column, subject
    bytes += columns.size() * sizeof(overlay::ColumnId);
    bytes += peers.size() * sizeof(Address);
    if (type == MessageType::kJoinAccept || type == MessageType::kSlotGrant) {
      bytes += sizeof(data_size) + sizeof(gen_count) + sizeof(gen_size) +
               sizeof(symbols);
      bytes += sizeof(structure_kind) + sizeof(band_width) +
               sizeof(structure_wrap) + sizeof(class_overlap);
      for (const auto& bundle : key_bundles) {
        bytes += sizeof(std::uint32_t) + bundle.size();
      }
    }
    return bytes;
  }
};

}  // namespace ncast::node
