#pragma once
// Per-endpoint stream state shared by the centralized client and the
// decentralized gossip peer: the generation plan, one recoding buffer per
// generation, optional null-key verification, and the random-generation
// upload policy.

#include <cstdint>
#include <optional>
#include <vector>

#include "coding/generation.hpp"
#include "coding/null_keys.hpp"
#include "coding/recoder.hpp"
#include "coding/wire.hpp"
#include "gf/gf256.hpp"
#include "sim/packet_pool.hpp"
#include "util/rng.hpp"

namespace ncast::node {

/// The receive/recode state for one content object.
class StreamState {
 public:
  bool initialized() const { return !buffers_.empty(); }
  const coding::GenerationPlan& plan() const { return plan_; }
  bool verification_enabled() const { return !keys_.empty(); }

  /// Sets up buffers from a stream plan. Returns false on nonsense geometry.
  bool initialize(std::uint64_t data_size, std::uint32_t gen_count,
                  std::uint16_t gen_size, std::uint16_t symbols) {
    if (gen_count == 0 || gen_size == 0 || symbols == 0) return false;
    plan_ = coding::plan_generations(data_size, gen_size, symbols);
    buffers_.clear();
    buffers_.reserve(gen_count);
    for (std::uint32_t g = 0; g < gen_count; ++g) {
      buffers_.emplace_back(g, gen_size, symbols);
    }
    return true;
  }

  /// Installs null keys from serialized bundles (all-or-nothing).
  void install_keys(const std::vector<std::vector<std::uint8_t>>& bundles) {
    keys_.clear();
    if (bundles.size() != buffers_.size()) return;
    std::vector<coding::NullKeySet<gf::Gf256>> parsed;
    for (const auto& bundle : bundles) {
      auto keys = coding::NullKeySet<gf::Gf256>::deserialize(bundle);
      if (!keys) return;
      parsed.push_back(std::move(*keys));
    }
    keys_ = std::move(parsed);
  }

  /// Absorbs a wire-encoded packet. Returns false if the packet was dropped
  /// (malformed, out of range, or failed verification).
  bool absorb_wire(const std::vector<std::uint8_t>& wire) {
    const auto packet = coding::deserialize<gf::Gf256>(wire);
    if (!packet) return false;
    if (packet->generation >= buffers_.size()) return false;
    if (!keys_.empty() && !keys_[packet->generation].verify(*packet)) {
      return false;
    }
    buffers_[packet->generation].absorb(*packet);
    return true;
  }

  /// A wire-encoded recoded packet from a uniformly random generation with
  /// data (random, not round-robin: deterministic rotations over a static
  /// edge order can starve descendants of whole generations). nullopt when
  /// every buffer is empty.
  std::optional<std::vector<std::uint8_t>> emit_wire(Rng& rng) {
    std::size_t with_data = 0;
    for (const auto& b : buffers_) {
      if (b.rank() > 0) ++with_data;
    }
    if (with_data == 0) return std::nullopt;
    std::size_t pick = rng.below(with_data);
    for (auto& b : buffers_) {
      if (b.rank() == 0 || pick-- != 0) continue;
      // The pooled packet recycles its buffers across emissions; only the
      // wire serialization below allocates.
      sim::PacketLease<gf::Gf256> scratch(pool_);
      if (b.emit_into(*scratch, rng)) return coding::serialize(*scratch);
      return std::nullopt;
    }
    return std::nullopt;
  }

  std::size_t rank() const {
    std::size_t r = 0;
    for (const auto& b : buffers_) r += b.rank();
    return r;
  }

  bool decoded() const {
    if (buffers_.empty()) return false;
    for (const auto& b : buffers_) {
      if (!b.complete()) return false;
    }
    return true;
  }

  /// Reconstructed content; requires decoded().
  std::vector<std::uint8_t> data() const {
    std::vector<std::vector<std::vector<std::uint8_t>>> decoded_gens;
    decoded_gens.reserve(buffers_.size());
    for (const auto& b : buffers_) {
      decoded_gens.push_back(b.decoder().source_packets());
    }
    return coding::reassemble(decoded_gens, plan_);
  }

 private:
  coding::GenerationPlan plan_;
  std::vector<coding::Recoder<gf::Gf256>> buffers_;
  std::vector<coding::NullKeySet<gf::Gf256>> keys_;
  sim::PacketPool<gf::Gf256> pool_;  // recycled emit_wire() scratch packets
};

}  // namespace ncast::node
