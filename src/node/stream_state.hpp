#pragma once
// Per-endpoint stream state shared by the centralized client and the
// decentralized gossip peer: the generation plan, structured receive buffers
// (one StructuredDecoder + StructuredRecoder per generation), optional
// null-key verification, and the random-generation upload policy.
//
// The stream's GenerationStructure arrives with the plan (join accept / slot
// grant) and governs every hop of the data plane:
//   - absorb validates wire frames against the *stream admission* rule
//     (coding/wire.hpp deserialize_stream): v2 strips must match the
//     structure exactly, v1 dense rows are admitted on dense and banded
//     streams (recoding densifies banded codes), never on overlapped ones;
//   - the decode side runs the policy select_stream_policy() picks (or the
//     caller's override) — dense elimination for dense/banded streams,
//     overlap propagation for overlapped ones;
//   - the recode side is structure-preserving where the mathematics allows
//     (overlapped classes) and densifying where it does not (bands), so an
//     upload is always a packet a downstream StreamState admits.

#include <cstdint>
#include <optional>
#include <vector>

#include "coding/generation.hpp"
#include "coding/null_keys.hpp"
#include "coding/structure.hpp"
#include "coding/structured_decoder.hpp"
#include "coding/structured_recoder.hpp"
#include "coding/wire.hpp"
#include "gf/gf256.hpp"
#include "sim/packet_pool.hpp"
#include "util/rng.hpp"

namespace ncast::node {

/// The receive/recode state for one content object.
class StreamState {
 public:
  bool initialized() const { return !decoders_.empty(); }
  const coding::GenerationPlan& plan() const { return plan_; }
  /// The stream's coding structure; meaningful only when initialized().
  const coding::GenerationStructure& structure() const { return structure_; }
  bool verification_enabled() const { return !keys_.empty(); }

  /// Sets up buffers from a stream plan. Returns false on nonsense geometry,
  /// on a `gen_count` that disagrees with the plan recomputed from
  /// `data_size` (a lying or corrupted announcement would otherwise silently
  /// build the wrong buffer count and the stream could never reassemble),
  /// and on a structure whose g is not the plan's generation size.
  /// `structure` defaults to dense; `policy` kAuto resolves to the cheapest
  /// policy sound for relayed traffic (select_stream_policy).
  bool initialize(
      std::uint64_t data_size, std::uint32_t gen_count, std::uint16_t gen_size,
      std::uint16_t symbols,
      std::optional<coding::GenerationStructure> structure = std::nullopt,
      coding::DecoderPolicy policy = coding::DecoderPolicy::kAuto) {
    if (gen_count == 0 || gen_size == 0 || symbols == 0) return false;
    const auto plan = coding::plan_generations(data_size, gen_size, symbols);
    if (plan.generations != gen_count) return false;
    const coding::GenerationStructure s =
        structure ? *structure : coding::GenerationStructure::dense(gen_size);
    if (s.g != gen_size) return false;
    plan_ = plan;
    structure_ = s;
    if (policy == coding::DecoderPolicy::kAuto) {
      policy = coding::select_stream_policy(structure_);
    }
    decoders_.clear();
    recoders_.clear();
    decoders_.reserve(gen_count);
    recoders_.reserve(gen_count);
    for (std::uint32_t g = 0; g < gen_count; ++g) {
      decoders_.emplace_back(g, structure_, symbols, policy);
      recoders_.emplace_back(g, structure_, symbols);
    }
    return true;
  }

  /// Installs null keys from serialized bundles (all-or-nothing).
  void install_keys(const std::vector<std::vector<std::uint8_t>>& bundles) {
    keys_.clear();
    if (bundles.size() != decoders_.size()) return;
    std::vector<coding::NullKeySet<gf::Gf256>> parsed;
    for (const auto& bundle : bundles) {
      auto keys = coding::NullKeySet<gf::Gf256>::deserialize(bundle);
      if (!keys) return;
      parsed.push_back(std::move(*keys));
    }
    keys_ = std::move(parsed);
  }

  /// Absorbs a wire-encoded packet into both the decode and the recode
  /// basis. Returns false if the packet was dropped (malformed, wrong shape
  /// for the stream's structure, out of range, or failed verification).
  bool absorb_wire(const std::vector<std::uint8_t>& wire) {
    const auto packet = coding::deserialize_stream<gf::Gf256>(wire, structure_);
    if (!packet) return false;
    if (packet->generation >= decoders_.size()) return false;
    if (!keys_.empty() && !verify_against_keys(*packet)) return false;
    decoders_[packet->generation].absorb(*packet);
    recoders_[packet->generation].absorb(*packet);
    return true;
  }

  /// A wire-encoded recoded packet from a uniformly random generation with
  /// data (random, not round-robin: deterministic rotations over a static
  /// edge order can starve descendants of whole generations). nullopt when
  /// every buffer is empty. Dense and banded streams upload dense rows
  /// (version-1 wire); overlapped streams upload class packets (version 2),
  /// so the structure's sparsity survives every hop.
  std::optional<std::vector<std::uint8_t>> emit_wire(Rng& rng) {
    std::size_t with_data = 0;
    for (const auto& r : recoders_) {
      if (r.rank() > 0) ++with_data;
    }
    if (with_data == 0) return std::nullopt;
    std::size_t pick = rng.below(with_data);
    for (auto& r : recoders_) {
      if (r.rank() == 0 || pick-- != 0) continue;
      // The pooled packet recycles its buffers across emissions; only the
      // wire serialization below allocates.
      sim::PacketLease<gf::Gf256> scratch(pool_);
      if (r.emit_into(*scratch, rng)) {
        return coding::serialize_stream(*scratch, structure_);
      }
      return std::nullopt;
    }
    return std::nullopt;
  }

  std::size_t rank() const {
    std::size_t r = 0;
    for (const auto& d : decoders_) r += d.rank();
    return r;
  }

  bool decoded() const {
    if (decoders_.empty()) return false;
    for (const auto& d : decoders_) {
      if (!d.complete()) return false;
    }
    return true;
  }

  /// Reconstructed content; requires decoded().
  std::vector<std::uint8_t> data() const {
    std::vector<std::vector<std::vector<std::uint8_t>>> decoded_gens;
    decoded_gens.reserve(decoders_.size());
    for (const auto& d : decoders_) {
      decoded_gens.push_back(d.source_packets());
    }
    return coding::reassemble(decoded_gens, plan_);
  }

 private:
  /// Null keys verify dense coefficient rows (validity commutes with
  /// recoding, so a key set generated from the source packets vouches for
  /// every linear combination — but only in dense coordinates). Compact
  /// strips are scatter-expanded first, cyclically, exactly as the dense
  /// decoder would absorb them.
  bool verify_against_keys(const coding::CodedPacket<gf::Gf256>& p) {
    if (p.coeffs.size() == structure_.g) {
      return keys_[p.generation].verify(p);
    }
    const std::size_t g = structure_.g;
    verify_scratch_.generation = p.generation;
    verify_scratch_.band_offset = 0;
    verify_scratch_.class_id = 0;
    verify_scratch_.coeffs.assign(g, 0);
    for (std::size_t j = 0; j < p.coeffs.size(); ++j) {
      const std::size_t i =
          p.band_offset + j < g ? p.band_offset + j : p.band_offset + j - g;
      verify_scratch_.coeffs[i] = p.coeffs[j];
    }
    verify_scratch_.payload.assign(p.payload.begin(), p.payload.end());
    return keys_[p.generation].verify(verify_scratch_);
  }

  coding::GenerationPlan plan_;
  coding::GenerationStructure structure_ =
      coding::GenerationStructure::dense(1);
  std::vector<coding::StructuredDecoder<gf::Gf256>> decoders_;
  std::vector<coding::StructuredRecoder<gf::Gf256>> recoders_;
  std::vector<coding::NullKeySet<gf::Gf256>> keys_;
  sim::PacketPool<gf::Gf256> pool_;  // recycled emit_wire() scratch packets
  coding::CodedPacket<gf::Gf256> verify_scratch_;  // key-check expansion row
};

}  // namespace ncast::node
