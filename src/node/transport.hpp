#pragma once
// The message-plane transport abstraction. A Transport carries node::Message
// traffic between addresses; every concrete fabric counts the same way (the
// base class owns the accounting), so benches and tests can swap fabrics
// without touching their assertions.
//
// Two implementations:
//   - InMemoryNetwork (network.hpp): the degenerate zero-adversity fabric —
//     FIFO per-destination mailboxes drained by the lock-step tick drivers.
//     Latency is exactly one tick, nothing is ever lost.
//   - KernelTransport (below): the event-driven fabric on the unified
//     simulation kernel. Every send becomes an EventEngine timer, with a
//     composable per-message link model — latency distributions, independent
//     Bernoulli / Gilbert-Elliott loss processes for the control and data
//     planes, and timed partitions. This is what finally exposes the
//     hello / good-bye / repair control plane of Section 3 to the same
//     adversity the data plane has always faced.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>

#include "node/message.hpp"
#include "obs/metrics.hpp"
#include "sim/event_engine.hpp"
#include "sim/link_model.hpp"
#include "util/rng.hpp"

namespace ncast::node {

/// A message consumer attached to a KernelTransport address.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  /// Delivers one message at the engine's current time.
  virtual void on_message(const Message& m) = 0;
};

/// Why a routed message never arrived. Dropped messages are traced as
/// kMsgDrop with the reason in the detail field (short strings — SSO, no
/// allocation), so a lossy run's post-mortem can tell a loss process from a
/// partition from a crash blackhole.
enum class DropReason : std::uint8_t {
  kCrashed,     ///< sender or receiver already marked crashed at send time
  kLoss,        ///< the plane's loss process fired
  kPartition,   ///< delivery would cross an active partition
  kBlackhole,   ///< receiver crashed while the message was in flight
  kUnattached,  ///< no endpoint bound to the destination address
};

const char* to_string(DropReason reason);

/// Declarative description of what the fabric does to messages. The control
/// and data planes get independent loss processes (the whole point of the
/// event-driven transport: control traffic can now be lossy too), but share
/// one latency distribution and one partition window.
struct TransportSpec {
  sim::LatencySpec latency = sim::LatencySpec::fixed_delay(1.0);
  sim::LossSpec control_loss = sim::LossSpec::none();  ///< everything but data/keepalive
  sim::LossSpec data_loss = sim::LossSpec::none();     ///< kData + kKeepalive
  sim::PartitionSpec partition;  ///< crossing deliveries dropped in the window
};

/// Abstract message fabric. Owns all traffic accounting: per-instance totals
/// behind the accessors (always counted, independent of the NCAST_OBS
/// switch), plus process-wide registry counters under net.* that bench
/// telemetry snapshots — see transport.cpp.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Counts the message, then hands it to the concrete fabric's route().
  void send(Message m);

  /// Marks an address as crashed: pending and future mail is dropped.
  virtual void crash(Address addr) = 0;
  /// Clears the crashed flag (a repaired address can be reused).
  virtual void revive(Address addr) = 0;
  virtual bool crashed(Address addr) const = 0;

  std::uint64_t messages_sent() const { return sent_; }
  std::uint64_t messages_dropped() const { return dropped_; }
  std::uint64_t control_messages() const { return control_; }
  std::uint64_t data_messages() const { return data_; }
  std::uint64_t keepalive_messages() const { return keepalive_; }
  /// Dropped messages that belonged to the control plane (the quantity the
  /// paper's robustness story silently assumed was zero).
  std::uint64_t control_dropped() const { return control_dropped_; }
  /// Total control_size() bytes sent (gossip-overhead accounting).
  std::uint64_t control_bytes() const { return control_bytes_; }
  /// Total serialized data-plane bytes sent — the real wire payload size
  /// (v1 or v2 framing), so structure sweeps can compare bytes-on-the-wire,
  /// not just packet counts.
  std::uint64_t data_bytes() const { return data_bytes_; }

 protected:
  /// Implementation hook: deliver (or drop) an already-counted message.
  virtual void route(Message m) = 0;

  /// Counts a message that will never arrive and traces the drop with its
  /// reason. Every implementation must call this for each
  /// routed-but-undelivered message.
  void note_dropped(const Message& m, DropReason reason);

 private:
  // Atomics so sharded-fabric lanes can count from worker threads; the
  // accessors above read them relaxed (totals are consumed post-run).
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> control_{0};
  std::atomic<std::uint64_t> data_{0};
  std::atomic<std::uint64_t> keepalive_{0};
  std::atomic<std::uint64_t> control_dropped_{0};
  std::atomic<std::uint64_t> control_bytes_{0};
  std::atomic<std::uint64_t> data_bytes_{0};
};

/// A Transport endpoints can bind to by address. ClientNode/ServerNode start
/// against this surface, so the same protocol code runs on KernelTransport
/// (single engine) or the sharded fabric without caring which.
class AttachableTransport : public Transport {
 public:
  /// Binds `endpoint` to `addr`; mail for unattached addresses is dropped.
  virtual void attach(Address addr, Endpoint* endpoint) = 0;
  virtual void detach(Address addr) = 0;
};

/// Event-driven fabric on the simulation kernel (Layer 1). Each send samples
/// a latency from the spec and schedules the delivery as an EventEngine
/// timer; the loss draw happens at send time (one draw per message, in send
/// order — deterministic for a fixed seed), the partition test at the
/// already-known arrival time, and crash state is re-checked at delivery so
/// mail in flight toward a node that dies mid-flight is lost like anything
/// else. Gilbert-Elliott channels keep per-directed-pair, per-plane state in
/// ordered maps (determinism: no unordered iteration anywhere).
class KernelTransport final : public AttachableTransport {
 public:
  KernelTransport(sim::Scheduler& engine, TransportSpec spec, Rng rng);

  void attach(Address addr, Endpoint* endpoint) override;
  void detach(Address addr) override;

  void crash(Address addr) override;
  void revive(Address addr) override;
  bool crashed(Address addr) const override;

  /// Messages currently riding a timer (the queue-depth gauge's source).
  std::size_t in_flight() const { return in_flight_; }
  std::size_t max_in_flight() const { return max_in_flight_; }
  std::uint64_t delivered() const { return delivered_; }

  const TransportSpec& spec() const { return spec_; }
  sim::Scheduler& engine() { return engine_; }

 protected:
  void route(Message m) override;

 private:
  /// Directed (from, to) channel key; the bool distinguishes the data plane
  /// from the control plane so each keeps its own Gilbert-Elliott chain.
  using ChannelKey = std::pair<std::pair<Address, Address>, bool>;

  void arrive(Message m);
  bool survives(const Message& m);
  bool crossing_partition(Address a, Address b, double when) const;
  bool side_b(Address addr) const;

  sim::Scheduler& engine_;
  TransportSpec spec_;
  Rng rng_;
  std::uint64_t partition_salt_;
  std::map<Address, Endpoint*> endpoints_;
  std::map<Address, bool> crashed_;
  std::map<ChannelKey, bool> ge_bad_;  ///< Gilbert-Elliott state per channel
  std::size_t in_flight_ = 0;
  std::size_t max_in_flight_ = 0;
  std::uint64_t delivered_ = 0;
  // Process-wide instrumentation, cached once (registry entries are never
  // deallocated): the in-flight queue-depth gauge pair under net.*, plus the
  // per-message delivery-delay distribution (sim-time units) — the quantity
  // real-time broadcast evaluation cares about (cf. DRAGONCAST), known at
  // schedule time because the latency draw happens at send.
  obs::Gauge* in_flight_gauge_ = &obs::metrics().gauge("net.transport_in_flight");
  obs::Gauge* in_flight_hwm_ = &obs::metrics().gauge("net.transport_in_flight_hwm");
  obs::Histogram* delivery_delay_ = &obs::metrics().histogram("net.delivery_delay");
};

}  // namespace ncast::node
