#include "node/server_node.hpp"

#include <algorithm>

#include "coding/wire.hpp"

namespace ncast::node {

ServerNode::ServerNode(ServerConfig config, std::vector<std::uint8_t> data)
    : config_(config),
      matrix_(config.k),
      membership_rng_(config.seed),
      emit_rng_(sim::RngStreams(config.seed).stream("node.server.emit")),
      data_(std::move(data)),
      encoder_(data_, config.generation_size, config.symbols,
               config.structure) {
  if (config_.null_keys > 0) {
    // One key set per generation, generated once and handed to every joiner
    // over the control channel. Key generation draws from its own derived
    // stream so enabling verification cannot shift membership picks.
    Rng key_rng = sim::RngStreams(config_.seed).stream("node.server.keys");
    key_bundles_.reserve(encoder_.generations());
    for (std::size_t g = 0; g < encoder_.generations(); ++g) {
      const auto source = coding::generation_packets(data_, encoder_.plan(), g);
      const auto keys = coding::NullKeySet<gf::Gf256>::generate(
          static_cast<std::uint32_t>(g), source, config_.null_keys, key_rng);
      key_bundles_.push_back(keys.serialize());
    }
  }
}

double ServerNode::now() const {
  return engine_ ? engine_->now() : static_cast<double>(now_);
}

void ServerNode::start(sim::Scheduler& engine, AttachableTransport& net) {
  engine_ = &engine;
  net_ = &net;
  net.attach(kServerAddress, this);
  emit_timer_ = engine.schedule_in(1.0, [this] { event_tick(); },
                                   sim::TimerClass::kEmit);
}

void ServerNode::event_tick() {
  emit_direct();
  emit_timer_ = engine_->schedule_in(1.0, [this] { event_tick(); },
                                     sim::TimerClass::kEmit);
}

Address ServerNode::parent_on_column(Address addr,
                                     overlay::ColumnId column) const {
  const overlay::NodeId p = matrix_.parent_on_column(addr, column);
  return p == overlay::kServerNode ? kServerAddress : p;
}

std::optional<Address> ServerNode::child_on_column(
    Address addr, overlay::ColumnId column) const {
  const overlay::NodeId c = matrix_.child_on_column(addr, column);
  if (c == overlay::kNoNode) return std::nullopt;
  return c;
}

void ServerNode::send_accept(Address addr, overlay::ThreadSpan columns,
                             obs::SpanId span) {
  Message accept;
  accept.type = MessageType::kJoinAccept;
  accept.from = kServerAddress;
  accept.to = addr;
  accept.span = span;
  accept.columns.assign(columns.begin(), columns.end());
  accept.data_size = data_.size();
  accept.gen_count = static_cast<std::uint32_t>(encoder_.generations());
  accept.gen_size = static_cast<std::uint16_t>(config_.generation_size);
  accept.symbols = static_cast<std::uint16_t>(config_.symbols);
  const coding::GenerationStructure& s = encoder_.structure();
  accept.structure_kind = static_cast<std::uint8_t>(s.kind);
  accept.band_width = static_cast<std::uint16_t>(s.band_width);
  accept.structure_wrap = s.wrap ? 1 : 0;
  accept.class_overlap = static_cast<std::uint16_t>(s.overlap);
  accept.key_bundles = key_bundles_;
  net_->send(std::move(accept));
}

void ServerNode::handle_join(const Message& m) {
  const Address addr = m.from;
  if (matrix_.contains(addr)) {
    // Duplicate hello: the accept was lost (or is still in flight) and the
    // client retried. Joining is idempotent — resend the accept with the
    // already-assigned columns instead of leaving the client stranded. The
    // resend rides the retried hello's span, so the retry chain stays whole.
    send_accept(addr, matrix_.row(addr).threads, m.span);
    return;
  }

  // Heterogeneous bandwidths (Section 5): the hello may carry a requested
  // degree in `subject`; 0 means "use the default".
  std::uint32_t degree = config_.default_degree;
  if (m.subject >= 1 && m.subject <= config_.k) {
    degree = static_cast<std::uint32_t>(m.subject);
  }
  const auto picks = membership_rng_.sample_without_replacement(config_.k, degree);
  std::vector<overlay::ColumnId> columns(picks.begin(), picks.end());
  std::sort(columns.begin(), columns.end());

  // Parents are the current hanging-end owners of the chosen columns.
  const auto ends = matrix_.hanging_ends();
  matrix_.append_row(addr, columns);
  obs::trace().emit(obs::TraceKind::kJoin, addr, degree, 0, {}, m.span);

  for (overlay::ColumnId c : columns) {
    const Address parent = ends[c].owner == overlay::kServerNode
                               ? kServerAddress
                               : ends[c].owner;
    if (parent == kServerAddress) {
      direct_children_[c] = addr;
    } else {
      Message attach;
      attach.type = MessageType::kAttachChild;
      attach.from = kServerAddress;
      attach.to = parent;
      attach.column = c;
      attach.subject = addr;
      attach.span = m.span;  // the rewiring belongs to the join episode
      net_->send(std::move(attach));
    }
  }

  send_accept(addr, columns, m.span);
}

void ServerNode::splice_out(Address addr, obs::SpanId span) {
  if (!matrix_.contains(addr)) return;
  // Materialize: `threads` is a borrowed span and erase_row() below frees it.
  const auto columns = matrix_.row(addr).threads.to_vector();

  for (overlay::ColumnId c : columns) {
    const Address parent = parent_on_column(addr, c);
    const auto next = child_on_column(addr, c);
    if (parent == kServerAddress) {
      if (next) {
        direct_children_[c] = *next;
      } else {
        direct_children_.erase(c);
      }
    } else {
      Message msg;
      msg.from = kServerAddress;
      msg.to = parent;
      msg.column = c;
      msg.span = span;
      if (next) {
        msg.type = MessageType::kAttachChild;
        msg.subject = *next;
      } else {
        msg.type = MessageType::kDetachChild;
      }
      net_->send(std::move(msg));
    }
  }
  matrix_.erase_row(addr);
  pending_repairs_.erase(addr);
  // A goodbye can race an already-scheduled repair of the same node; the
  // cancellable handle is what makes the race harmless in event mode.
  const auto timer = repair_timers_.find(addr);
  if (timer != repair_timers_.end()) {
    if (engine_) engine_->cancel(timer->second);
    repair_timers_.erase(timer);
  }
  // If a repair episode was open for this node and something else (a racing
  // good-bye) spliced it out, close the span here rather than leaking it.
  const auto open = repair_spans_.find(addr);
  if (open != repair_spans_.end()) {
    if (open->second != span) {
      obs::trace().emit(obs::TraceKind::kSpanEnd, addr, 0, 0, "repair",
                        open->second);
    }
    repair_spans_.erase(open);
  }
}

void ServerNode::finish_repair(Address addr) {
  repair_timers_.erase(addr);
  const auto it = repair_spans_.find(addr);
  const obs::SpanId span =
      it != repair_spans_.end() ? it->second : obs::kNoSpan;
  splice_out(addr, span);
  ++repairs_done_;
  last_repair_time_ = now();
  obs::trace().emit(obs::TraceKind::kRepair, addr, 0, 0, {}, span);
  obs::trace().emit(obs::TraceKind::kSpanEnd, addr, 0, 0, "repair", span);
}

void ServerNode::handle_goodbye(const Message& m) {
  splice_out(m.from, m.span);
}

void ServerNode::handle_complaint(const Message& m) {
  if (!matrix_.contains(m.from)) {
    // A complaint from a node the matrix no longer tracks: the node was
    // spliced out by a false-positive repair (a lost attach starved its
    // child, the child complained, and this node — alive all along, as the
    // complaint in hand proves — was presumed crashed). Without re-admission
    // it is a permanent orphan: nobody feeds it and every further complaint
    // lands right here. Re-admit it through the normal join path — fresh
    // columns, idempotent accept on the client side.
    Message rejoin;
    rejoin.type = MessageType::kJoinRequest;
    rejoin.from = m.from;
    rejoin.to = kServerAddress;
    rejoin.span = m.span;
    handle_join(rejoin);
    return;
  }
  const Address parent = parent_on_column(m.from, m.column);
  if (parent == kServerAddress) return;  // the server does not crash
  if (!matrix_.contains(parent)) return;
  if (matrix_.row(parent).failed) return;  // repair already scheduled
  matrix_.mark_failed(parent);
  // The repair episode: a child span of the triggering complaint, open from
  // here until the splice completes. Tick mode gets the same span tree —
  // only the scheduling mechanism differs.
  const obs::SpanId span = obs::trace().new_span();
  repair_spans_[parent] = span;
  obs::trace().emit(obs::TraceKind::kSpanBegin, parent, m.column, m.from,
                    "repair", span, m.span);
  if (engine_) {
    repair_timers_[parent] = engine_->schedule_in(
        static_cast<double>(config_.repair_delay),
        [this, parent] { finish_repair(parent); }, sim::TimerClass::kRepair);
  } else {
    pending_repairs_[parent] = now_ + config_.repair_delay;
  }
}

void ServerNode::handle_offload(const Message& m) {
  const Address addr = m.from;
  if (!matrix_.contains(addr)) return;
  const auto& threads = matrix_.row(addr).threads;
  if (threads.size() <= 1) return;  // cannot shed the last thread
  const overlay::ColumnId column =
      threads[membership_rng_.below(threads.size())];

  // Join the column's parent and child directly across the shedding node.
  const Address parent = parent_on_column(addr, column);
  const auto next = child_on_column(addr, column);
  matrix_.drop_thread(addr, column);

  // The shedding node stops receiving and stops serving this column.
  Message dropped;
  dropped.type = MessageType::kColumnDropped;
  dropped.from = kServerAddress;
  dropped.to = addr;
  dropped.column = column;
  net_->send(std::move(dropped));

  if (parent == kServerAddress) {
    if (next) {
      direct_children_[column] = *next;
    } else {
      direct_children_.erase(column);
    }
  } else {
    Message msg;
    msg.from = kServerAddress;
    msg.to = parent;
    msg.column = column;
    if (next) {
      msg.type = MessageType::kAttachChild;
      msg.subject = *next;
    } else {
      msg.type = MessageType::kDetachChild;
    }
    net_->send(std::move(msg));
  }
}

void ServerNode::handle_restore(const Message& m) {
  const Address addr = m.from;
  if (!matrix_.contains(addr)) return;
  const auto& threads = matrix_.row(addr).threads;
  if (threads.size() >= config_.k) return;  // already clipping everything

  // Turn a random zero of the row into a one.
  std::vector<overlay::ColumnId> zeros;
  for (overlay::ColumnId c = 0; c < config_.k; ++c) {
    if (!std::binary_search(threads.begin(), threads.end(), c)) zeros.push_back(c);
  }
  const overlay::ColumnId column = zeros[membership_rng_.below(zeros.size())];

  // Splice the node into the column at its curtain position: its parent now
  // feeds it, and it now feeds the next clipper below (if any).
  matrix_.add_thread(addr, column);
  const Address parent = parent_on_column(addr, column);
  const auto next = child_on_column(addr, column);

  Message added;
  added.type = MessageType::kColumnAdded;
  added.from = kServerAddress;
  added.to = addr;
  added.column = column;
  added.subject = next ? *next : kServerAddress;  // whom to feed (server = none)
  net_->send(std::move(added));

  if (parent == kServerAddress) {
    direct_children_[column] = addr;
  } else {
    Message attach;
    attach.type = MessageType::kAttachChild;
    attach.from = kServerAddress;
    attach.to = parent;
    attach.column = column;
    attach.subject = addr;
    net_->send(std::move(attach));
  }
}

void ServerNode::on_message(const Message& m) {
  switch (m.type) {
    case MessageType::kJoinRequest:
      handle_join(m);
      break;
    case MessageType::kGoodbye:
      handle_goodbye(m);
      break;
    case MessageType::kComplaint:
      handle_complaint(m);
      break;
    case MessageType::kCongestionOffload:
      handle_offload(m);
      break;
    case MessageType::kCongestionRestore:
      handle_restore(m);
      break;
    default:
      break;  // the server ignores data and stray control
  }
}

void ServerNode::process_messages(InMemoryNetwork& net) {
  net_ = &net;
  while (auto m = net.poll(kServerAddress)) {
    on_message(*m);
  }
}

void ServerNode::emit_direct() {
  // Emit one coded packet per directly-fed column, from a random generation
  // (random, not round-robin: a fixed edge order plus round-robin would lock
  // each edge into a residue class of generations).
  for (const auto& [column, child] : direct_children_) {
    Message data;
    data.type = MessageType::kData;
    data.from = kServerAddress;
    data.to = child;
    data.column = column;
    const auto gen = emit_rng_.below(encoder_.generations());
    data.wire = coding::serialize_stream(encoder_.emit(gen, emit_rng_),
                                         encoder_.structure());
    net_->send(std::move(data));
  }
}

void ServerNode::on_tick(std::uint64_t tick, InMemoryNetwork& net) {
  net_ = &net;
  now_ = tick;

  // Execute due repairs (finish_repair, same as event mode, so the trace's
  // repair spans close identically under both drivers).
  std::vector<Address> due;
  for (const auto& [addr, at] : pending_repairs_) {
    if (at <= now_) due.push_back(addr);
  }
  for (Address addr : due) {
    finish_repair(addr);
  }

  emit_direct();
}

}  // namespace ncast::node
