#include "node/server_node.hpp"

#include <algorithm>

#include "coding/wire.hpp"

namespace ncast::node {

ServerNode::ServerNode(ServerConfig config, std::vector<std::uint8_t> data)
    : config_(config),
      matrix_(config.k),
      rng_(config.seed),
      data_(std::move(data)),
      encoder_(data_, config.generation_size, config.symbols) {
  if (config_.null_keys > 0) {
    // One key set per generation, generated once and handed to every joiner
    // over the control channel.
    key_bundles_.reserve(encoder_.generations());
    for (std::size_t g = 0; g < encoder_.generations(); ++g) {
      const auto source = coding::generation_packets(data_, encoder_.plan(), g);
      const auto keys = coding::NullKeySet<gf::Gf256>::generate(
          static_cast<std::uint32_t>(g), source, config_.null_keys, rng_);
      key_bundles_.push_back(keys.serialize());
    }
  }
}

Address ServerNode::parent_on_column(Address addr,
                                     overlay::ColumnId column) const {
  const auto order = matrix_.nodes_in_order();
  Address parent = kServerAddress;
  for (overlay::NodeId n : order) {
    if (n == addr) return parent;
    const auto& threads = matrix_.row(n).threads;
    if (std::binary_search(threads.begin(), threads.end(), column)) {
      parent = n;
    }
  }
  return parent;
}

std::optional<Address> ServerNode::child_on_column(
    Address addr, overlay::ColumnId column) const {
  const auto order = matrix_.nodes_in_order();
  bool below = false;
  for (overlay::NodeId n : order) {
    if (n == addr) {
      below = true;
      continue;
    }
    if (!below) continue;
    const auto& threads = matrix_.row(n).threads;
    if (std::binary_search(threads.begin(), threads.end(), column)) {
      return n;
    }
  }
  return std::nullopt;
}

void ServerNode::handle_join(const Message& m, InMemoryNetwork& net) {
  const Address addr = m.from;
  if (matrix_.contains(addr)) return;  // duplicate hello

  // Heterogeneous bandwidths (Section 5): the hello may carry a requested
  // degree in `subject`; 0 means "use the default".
  std::uint32_t degree = config_.default_degree;
  if (m.subject >= 1 && m.subject <= config_.k) {
    degree = static_cast<std::uint32_t>(m.subject);
  }
  const auto picks = rng_.sample_without_replacement(config_.k, degree);
  std::vector<overlay::ColumnId> columns(picks.begin(), picks.end());
  std::sort(columns.begin(), columns.end());

  // Parents are the current hanging-end owners of the chosen columns.
  const auto ends = matrix_.hanging_ends();
  matrix_.append_row(addr, columns);

  for (overlay::ColumnId c : columns) {
    const Address parent = ends[c].owner == overlay::kServerNode
                               ? kServerAddress
                               : ends[c].owner;
    if (parent == kServerAddress) {
      direct_children_[c] = addr;
    } else {
      Message attach;
      attach.type = MessageType::kAttachChild;
      attach.from = kServerAddress;
      attach.to = parent;
      attach.column = c;
      attach.subject = addr;
      net.send(std::move(attach));
    }
  }

  Message accept;
  accept.type = MessageType::kJoinAccept;
  accept.from = kServerAddress;
  accept.to = addr;
  accept.columns = columns;
  accept.data_size = data_.size();
  accept.gen_count = static_cast<std::uint32_t>(encoder_.generations());
  accept.gen_size = static_cast<std::uint16_t>(config_.generation_size);
  accept.symbols = static_cast<std::uint16_t>(config_.symbols);
  accept.key_bundles = key_bundles_;
  net.send(std::move(accept));
}

void ServerNode::splice_out(Address addr, InMemoryNetwork& net) {
  if (!matrix_.contains(addr)) return;
  const auto columns = matrix_.row(addr).threads;

  for (overlay::ColumnId c : columns) {
    const Address parent = parent_on_column(addr, c);
    const auto next = child_on_column(addr, c);
    if (parent == kServerAddress) {
      if (next) {
        direct_children_[c] = *next;
      } else {
        direct_children_.erase(c);
      }
    } else {
      Message msg;
      msg.from = kServerAddress;
      msg.to = parent;
      msg.column = c;
      if (next) {
        msg.type = MessageType::kAttachChild;
        msg.subject = *next;
      } else {
        msg.type = MessageType::kDetachChild;
      }
      net.send(std::move(msg));
    }
  }
  matrix_.erase_row(addr);
  pending_repairs_.erase(addr);
}

void ServerNode::handle_goodbye(const Message& m, InMemoryNetwork& net) {
  splice_out(m.from, net);
}

void ServerNode::handle_complaint(const Message& m, InMemoryNetwork&) {
  if (!matrix_.contains(m.from)) return;
  const Address parent = parent_on_column(m.from, m.column);
  if (parent == kServerAddress) return;  // the server does not crash
  if (!matrix_.contains(parent)) return;
  if (matrix_.row(parent).failed) return;  // repair already scheduled
  matrix_.mark_failed(parent);
  pending_repairs_[parent] = now_ + config_.repair_delay;
}

void ServerNode::handle_offload(const Message& m, InMemoryNetwork& net) {
  const Address addr = m.from;
  if (!matrix_.contains(addr)) return;
  const auto& threads = matrix_.row(addr).threads;
  if (threads.size() <= 1) return;  // cannot shed the last thread
  const overlay::ColumnId column =
      threads[rng_.below(threads.size())];

  // Join the column's parent and child directly across the shedding node.
  const Address parent = parent_on_column(addr, column);
  const auto next = child_on_column(addr, column);
  matrix_.drop_thread(addr, column);

  // The shedding node stops receiving and stops serving this column.
  Message dropped;
  dropped.type = MessageType::kColumnDropped;
  dropped.from = kServerAddress;
  dropped.to = addr;
  dropped.column = column;
  net.send(std::move(dropped));

  if (parent == kServerAddress) {
    if (next) {
      direct_children_[column] = *next;
    } else {
      direct_children_.erase(column);
    }
  } else {
    Message msg;
    msg.from = kServerAddress;
    msg.to = parent;
    msg.column = column;
    if (next) {
      msg.type = MessageType::kAttachChild;
      msg.subject = *next;
    } else {
      msg.type = MessageType::kDetachChild;
    }
    net.send(std::move(msg));
  }
}

void ServerNode::handle_restore(const Message& m, InMemoryNetwork& net) {
  const Address addr = m.from;
  if (!matrix_.contains(addr)) return;
  const auto& threads = matrix_.row(addr).threads;
  if (threads.size() >= config_.k) return;  // already clipping everything

  // Turn a random zero of the row into a one.
  std::vector<overlay::ColumnId> zeros;
  for (overlay::ColumnId c = 0; c < config_.k; ++c) {
    if (!std::binary_search(threads.begin(), threads.end(), c)) zeros.push_back(c);
  }
  const overlay::ColumnId column = zeros[rng_.below(zeros.size())];

  // Splice the node into the column at its curtain position: its parent now
  // feeds it, and it now feeds the next clipper below (if any).
  matrix_.add_thread(addr, column);
  const Address parent = parent_on_column(addr, column);
  const auto next = child_on_column(addr, column);

  Message added;
  added.type = MessageType::kColumnAdded;
  added.from = kServerAddress;
  added.to = addr;
  added.column = column;
  added.subject = next ? *next : kServerAddress;  // whom to feed (server = none)
  net.send(std::move(added));

  if (parent == kServerAddress) {
    direct_children_[column] = addr;
  } else {
    Message attach;
    attach.type = MessageType::kAttachChild;
    attach.from = kServerAddress;
    attach.to = parent;
    attach.column = column;
    attach.subject = addr;
    net.send(std::move(attach));
  }
}

void ServerNode::process_messages(InMemoryNetwork& net) {
  while (auto m = net.poll(kServerAddress)) {
    switch (m->type) {
      case MessageType::kJoinRequest:
        handle_join(*m, net);
        break;
      case MessageType::kGoodbye:
        handle_goodbye(*m, net);
        break;
      case MessageType::kComplaint:
        handle_complaint(*m, net);
        break;
      case MessageType::kCongestionOffload:
        handle_offload(*m, net);
        break;
      case MessageType::kCongestionRestore:
        handle_restore(*m, net);
        break;
      default:
        break;  // the server ignores data and stray control
    }
  }
}

void ServerNode::on_tick(std::uint64_t tick, InMemoryNetwork& net) {
  now_ = tick;

  // Execute due repairs.
  std::vector<Address> due;
  for (const auto& [addr, at] : pending_repairs_) {
    if (at <= now_) due.push_back(addr);
  }
  for (Address addr : due) {
    splice_out(addr, net);
    ++repairs_done_;
  }

  // Emit one coded packet per directly-fed column, from a random generation
  // (random, not round-robin: a fixed edge order plus round-robin would lock
  // each edge into a residue class of generations).
  for (const auto& [column, child] : direct_children_) {
    Message data;
    data.type = MessageType::kData;
    data.from = kServerAddress;
    data.to = child;
    data.column = column;
    const auto gen = rng_.below(encoder_.generations());
    data.wire = coding::serialize(encoder_.emit(gen, rng_));
    net.send(std::move(data));
  }
}

}  // namespace ncast::node
