#include "node/transport.hpp"

#include "obs/trace.hpp"

namespace ncast::node {

namespace {

// Process-wide transport counters (aggregated across every Transport in the
// process; the per-instance accessors stay exact). Cached once — registry
// entries are never deallocated.
struct NetCounters {
  obs::Counter& sent = obs::metrics().counter("net.messages_sent");
  obs::Counter& dropped = obs::metrics().counter("net.messages_dropped");
  obs::Counter& control = obs::metrics().counter("net.messages_control");
  obs::Counter& data = obs::metrics().counter("net.messages_data");
  obs::Counter& keepalive = obs::metrics().counter("net.messages_keepalive");
  obs::Counter& control_dropped = obs::metrics().counter("net.control_dropped");
  obs::Counter& control_bytes = obs::metrics().counter("net.control_bytes");
  obs::Counter& data_bytes = obs::metrics().counter("net.data_bytes");

  static NetCounters& get() {
    // ncast:shared(holds internally synchronized obs::Counter references; magic-static init is thread-safe)
    static NetCounters c;
    return c;
  }
};

bool is_data_plane(const Message& m) {
  return m.type == MessageType::kData || m.type == MessageType::kKeepalive;
}

}  // namespace

const char* to_string(DropReason reason) {
  switch (reason) {
    case DropReason::kCrashed: return "crashed";
    case DropReason::kLoss: return "loss";
    case DropReason::kPartition: return "partition";
    case DropReason::kBlackhole: return "blackhole";
    case DropReason::kUnattached: return "unattached";
  }
  return "unknown";
}

namespace {

// splitmix64 finalizer: the partition side assignment must depend on the
// address alone (plus a per-run salt), not on first-contact order, so two
// runs of the same seed agree on sides no matter how traffic interleaves.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Transport::send(Message m) {
  NetCounters& reg = NetCounters::get();
  ++sent_;
  reg.sent.inc();
  if (m.type == MessageType::kData) {
    ++data_;
    reg.data.inc();
    // Real serialized size: m.wire holds the framed packet (v1 or v2), so
    // this is exact for every structure, unlike a header+coeffs estimate.
    const std::size_t bytes = m.wire.size();
    data_bytes_ += bytes;
    reg.data_bytes.inc(bytes);
    // Data-plane send event; the drivers keep the trace clock at the current
    // sim time, so these interleave with overlay control events.
    obs::trace().emit(obs::TraceKind::kPacketSend, m.from, m.to, 0, {},
                      m.span);
  } else if (m.type == MessageType::kKeepalive) {
    ++keepalive_;
    reg.keepalive.inc();
  } else {
    ++control_;
    reg.control.inc();
    const std::size_t bytes = m.control_size();
    control_bytes_ += bytes;
    reg.control_bytes.inc(bytes);
    // Control-plane lifecycle: send, then (in the concrete fabric) deliver
    // or drop-with-reason. Each carries the message's span so an episode's
    // wire traffic reconstructs by span id.
    obs::trace().emit(obs::TraceKind::kMsgSend, m.from, m.to,
                      static_cast<std::uint64_t>(m.type), {}, m.span);
  }
  route(std::move(m));
}

void Transport::note_dropped(const Message& m, DropReason reason) {
  NetCounters& reg = NetCounters::get();
  ++dropped_;
  reg.dropped.inc();
  if (!is_data_plane(m)) {
    ++control_dropped_;
    reg.control_dropped.inc();
  }
  // Reason strings are short (<= 15 chars): small-string optimized, so the
  // drop path stays allocation-free.
  obs::trace().emit(obs::TraceKind::kMsgDrop, m.from, m.to,
                    static_cast<std::uint64_t>(m.type), to_string(reason),
                    m.span);
}

KernelTransport::KernelTransport(sim::Scheduler& engine, TransportSpec spec,
                                 Rng rng)
    : engine_(engine),
      spec_(spec),
      rng_(rng),
      partition_salt_(rng_()) {}

void KernelTransport::attach(Address addr, Endpoint* endpoint) {
  endpoints_[addr] = endpoint;
}

void KernelTransport::detach(Address addr) { endpoints_.erase(addr); }

void KernelTransport::crash(Address addr) { crashed_[addr] = true; }

void KernelTransport::revive(Address addr) { crashed_[addr] = false; }

bool KernelTransport::crashed(Address addr) const {
  const auto it = crashed_.find(addr);
  return it != crashed_.end() && it->second;
}

bool KernelTransport::side_b(Address addr) const {
  if (!spec_.partition.active()) return false;
  if (addr == kServerAddress) return false;  // the source stays on side A
  const std::uint64_t z =
      mix64(partition_salt_ ^
            (static_cast<std::uint64_t>(addr) * 0x9e3779b97f4a7c15ULL));
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  return u < spec_.partition.side_b_fraction;
}

bool KernelTransport::crossing_partition(Address a, Address b,
                                         double when) const {
  if (!spec_.partition.active()) return false;
  if (when < spec_.partition.start || when >= spec_.partition.end) return false;
  return side_b(a) != side_b(b);
}

bool KernelTransport::survives(const Message& m) {
  const bool data_plane = is_data_plane(m);
  const sim::LossSpec& loss = data_plane ? spec_.data_loss : spec_.control_loss;
  switch (loss.kind) {
    case sim::LossSpec::Kind::kNone:
      return true;
    case sim::LossSpec::Kind::kBernoulli:
      return !(loss.p > 0.0 && rng_.chance(loss.p));
    case sim::LossSpec::Kind::kGilbertElliott: {
      bool& bad = ge_bad_[{{m.from, m.to}, data_plane}];
      bad = bad ? !rng_.chance(loss.p_exit_bad) : rng_.chance(loss.p_enter_bad);
      const double drop = bad ? loss.loss_bad : loss.loss_good;
      return !rng_.chance(drop);
    }
  }
  return true;
}

void KernelTransport::route(Message m) {
  if (crashed(m.from) || crashed(m.to)) {
    note_dropped(m, DropReason::kCrashed);
    return;
  }
  // Draw order per message is fixed — latency, then loss — so the stream of
  // transport draws depends only on the send sequence, never on queue state.
  const double delay = spec_.latency.sample(rng_);
  if (!survives(m)) {
    note_dropped(m, DropReason::kLoss);
    return;
  }
  if (crossing_partition(m.from, m.to, engine_.now() + delay)) {
    note_dropped(m, DropReason::kPartition);
    return;
  }
  ++in_flight_;
  if (in_flight_ > max_in_flight_) max_in_flight_ = in_flight_;
  in_flight_gauge_->set(static_cast<double>(in_flight_));
  in_flight_hwm_->set_max(static_cast<double>(in_flight_));
  delivery_delay_->observe(delay);
  engine_.schedule_in(
      delay,
      [this, msg = std::move(m)]() mutable { arrive(std::move(msg)); },
      sim::TimerClass::kDelivery);
}

void KernelTransport::arrive(Message m) {
  --in_flight_;
  in_flight_gauge_->set(static_cast<double>(in_flight_));
  if (crashed(m.to)) {  // died while the message was in flight
    note_dropped(m, DropReason::kBlackhole);
    return;
  }
  const auto it = endpoints_.find(m.to);
  if (it == endpoints_.end() || it->second == nullptr) {
    note_dropped(m, DropReason::kUnattached);
    return;
  }
  ++delivered_;
  if (!is_data_plane(m)) {
    obs::trace().emit(obs::TraceKind::kMsgDeliver, m.to, m.from,
                      static_cast<std::uint64_t>(m.type), {}, m.span);
  }
  it->second->on_message(m);
}

}  // namespace ncast::node
