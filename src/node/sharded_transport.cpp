#include "node/sharded_transport.hpp"

#include <utility>

#include "obs/trace.hpp"

namespace ncast::node {

namespace {

// splitmix64 finalizer, same scheme as KernelTransport: partition sides and
// per-sender streams must depend on address and run seed alone.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool is_data_plane(const Message& m) {
  return m.type == MessageType::kData || m.type == MessageType::kKeepalive;
}

}  // namespace

ShardedTransport::ShardedTransport(sim::ShardedEngine& engine,
                                   TransportSpec spec, std::uint64_t seed,
                                   std::size_t max_addresses)
    : engine_(engine), spec_(spec) {
  const sim::RngStreams streams(seed);
  partition_salt_ = streams.stream("transport.partition")();
  lanes_.resize(max_addresses);
  for (std::size_t a = 0; a < max_addresses; ++a) {
    // Independent per-sender stream keyed by (run seed, address) alone.
    lanes_[a].rng = streams.stream(0x73686172644e6574ULL ^
                                   (static_cast<std::uint64_t>(a) << 1));
  }
  endpoints_.assign(max_addresses, nullptr);
  crashed_flags_.assign(max_addresses, 0);
}

void ShardedTransport::attach(Address addr, Endpoint* endpoint) {
  if (addr < endpoints_.size()) endpoints_[addr] = endpoint;
}

void ShardedTransport::detach(Address addr) {
  if (addr < endpoints_.size()) endpoints_[addr] = nullptr;
}

void ShardedTransport::crash(Address addr) {
  if (addr < crashed_flags_.size()) crashed_flags_[addr] = 1;
}

void ShardedTransport::revive(Address addr) {
  if (addr < crashed_flags_.size()) crashed_flags_[addr] = 0;
}

bool ShardedTransport::crashed(Address addr) const {
  return addr < crashed_flags_.size() && crashed_flags_[addr] != 0;
}

bool ShardedTransport::side_b(Address addr) const {
  if (!spec_.partition.active()) return false;
  if (addr == kServerAddress) return false;  // the source stays on side A
  const std::uint64_t z =
      mix64(partition_salt_ ^
            (static_cast<std::uint64_t>(addr) * 0x9e3779b97f4a7c15ULL));
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  return u < spec_.partition.side_b_fraction;
}

bool ShardedTransport::crossing_partition(Address a, Address b,
                                          double when) const {
  if (!spec_.partition.active()) return false;
  if (when < spec_.partition.start || when >= spec_.partition.end) return false;
  return side_b(a) != side_b(b);
}

bool ShardedTransport::survives(LaneNet& ln, const Message& m) {
  const bool data_plane = is_data_plane(m);
  const sim::LossSpec& loss = data_plane ? spec_.data_loss : spec_.control_loss;
  switch (loss.kind) {
    case sim::LossSpec::Kind::kNone:
      return true;
    case sim::LossSpec::Kind::kBernoulli:
      return !(loss.p > 0.0 && ln.rng.chance(loss.p));
    case sim::LossSpec::Kind::kGilbertElliott: {
      bool& bad = ln.ge_bad[{m.to, data_plane}];
      bad = bad ? !ln.rng.chance(loss.p_exit_bad)
                : ln.rng.chance(loss.p_enter_bad);
      const double drop = bad ? loss.loss_bad : loss.loss_good;
      return !ln.rng.chance(drop);
    }
  }
  return true;
}

void ShardedTransport::route(Message m) {
  if (m.from >= lanes_.size() || m.to >= lanes_.size()) {
    note_dropped(m, DropReason::kUnattached);
    return;
  }
  if (crashed_flags_[m.from] != 0) {  // own-lane read; dest checked at arrival
    note_dropped(m, DropReason::kCrashed);
    return;
  }
  LaneNet& ln = lanes_[m.from];
  // Draw order per message is fixed — latency, then loss — so a sender's
  // stream depends only on its own send sequence.
  const double delay = spec_.latency.sample(ln.rng);
  if (!survives(ln, m)) {
    note_dropped(m, DropReason::kLoss);
    return;
  }
  const double at = engine_.now() + delay;
  if (crossing_partition(m.from, m.to, at)) {
    note_dropped(m, DropReason::kPartition);
    return;
  }
  const std::size_t now_in_flight =
      in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::size_t hwm = max_in_flight_.load(std::memory_order_relaxed);
  while (now_in_flight > hwm &&
         !max_in_flight_.compare_exchange_weak(hwm, now_in_flight,
                                               std::memory_order_relaxed)) {
  }
  in_flight_gauge_->set(static_cast<double>(now_in_flight));
  in_flight_hwm_->set_max(static_cast<double>(now_in_flight));
  delivery_delay_->observe(delay);
  const sim::LaneId dest = static_cast<sim::LaneId>(m.to);
  engine_.schedule_on(
      dest, at, [this, msg = std::move(m)]() mutable { arrive(std::move(msg)); },
      sim::TimerClass::kDelivery);
}

void ShardedTransport::arrive(Message m) {
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  if (crashed_flags_[m.to] != 0) {  // died before the message landed
    note_dropped(m, DropReason::kBlackhole);
    return;
  }
  Endpoint* endpoint = endpoints_[m.to];
  if (endpoint == nullptr) {
    note_dropped(m, DropReason::kUnattached);
    return;
  }
  delivered_.fetch_add(1, std::memory_order_relaxed);
  if (!is_data_plane(m)) {
    obs::trace().emit(obs::TraceKind::kMsgDeliver, m.to, m.from,
                      static_cast<std::uint64_t>(m.type), {}, m.span);
  }
  endpoint->on_message(m);
}

}  // namespace ncast::node
