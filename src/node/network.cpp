#include "node/network.hpp"

#include "obs/trace.hpp"

namespace ncast::node {

namespace {

// Process-wide transport counters (aggregated across all InMemoryNetwork
// instances in the process; the per-instance accessors stay exact). Cached
// once — registry entries are never deallocated.
struct NetCounters {
  obs::Counter& sent = obs::metrics().counter("net.messages_sent");
  obs::Counter& dropped = obs::metrics().counter("net.messages_dropped");
  obs::Counter& control = obs::metrics().counter("net.messages_control");
  obs::Counter& data = obs::metrics().counter("net.messages_data");
  obs::Counter& keepalive = obs::metrics().counter("net.messages_keepalive");

  static NetCounters& get() {
    static NetCounters c;
    return c;
  }
};

}  // namespace

void InMemoryNetwork::ensure(Address addr) {
  if (addr >= boxes_.size()) {
    boxes_.resize(addr + 1);
    crashed_.resize(addr + 1, false);
  }
}

void InMemoryNetwork::send(Message m) {
  ensure(m.to);
  ensure(m.from);
  NetCounters& reg = NetCounters::get();
  ++sent_;
  reg.sent.inc();
  if (m.type == MessageType::kData) {
    ++data_;
    reg.data.inc();
    // Data-plane send event; the tick drivers keep the trace clock at the
    // current tick, so these interleave with overlay control events.
    obs::trace().emit(obs::TraceKind::kPacketSend, m.from, m.to);
  } else if (m.type == MessageType::kKeepalive) {
    ++keepalive_;
    reg.keepalive.inc();
  } else {
    ++control_;
    reg.control.inc();
  }
  if (crashed_[m.to] || crashed_[m.from]) {
    ++dropped_;
    reg.dropped.inc();
    return;
  }
  boxes_[m.to].push_back(std::move(m));
}

std::optional<Message> InMemoryNetwork::poll(Address addr) {
  if (addr >= boxes_.size() || boxes_[addr].empty()) return std::nullopt;
  Message m = std::move(boxes_[addr].front());
  boxes_[addr].pop_front();
  return m;
}

bool InMemoryNetwork::idle() const {
  for (std::size_t a = 0; a < boxes_.size(); ++a) {
    if (!crashed_[a] && !boxes_[a].empty()) return false;
  }
  return true;
}

void InMemoryNetwork::crash(Address addr) {
  ensure(addr);
  crashed_[addr] = true;
  boxes_[addr].clear();
}

void InMemoryNetwork::revive(Address addr) {
  ensure(addr);
  crashed_[addr] = false;
}

bool InMemoryNetwork::crashed(Address addr) const {
  return addr < crashed_.size() && crashed_[addr];
}

}  // namespace ncast::node
