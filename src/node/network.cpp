#include "node/network.hpp"

namespace ncast::node {

void InMemoryNetwork::ensure(Address addr) {
  if (addr >= boxes_.size()) {
    boxes_.resize(addr + 1);
    crashed_.resize(addr + 1, false);
  }
}

void InMemoryNetwork::route(Message m) {
  ensure(m.to);
  ensure(m.from);
  if (crashed_[m.to] || crashed_[m.from]) {
    note_dropped(m, DropReason::kCrashed);
    return;
  }
  boxes_[m.to].push_back(std::move(m));
}

std::optional<Message> InMemoryNetwork::poll(Address addr) {
  if (addr >= boxes_.size() || boxes_[addr].empty()) return std::nullopt;
  Message m = std::move(boxes_[addr].front());
  boxes_[addr].pop_front();
  return m;
}

bool InMemoryNetwork::idle() const {
  for (std::size_t a = 0; a < boxes_.size(); ++a) {
    if (!crashed_[a] && !boxes_[a].empty()) return false;
  }
  return true;
}

void InMemoryNetwork::crash(Address addr) {
  ensure(addr);
  crashed_[addr] = true;
  boxes_[addr].clear();
}

void InMemoryNetwork::revive(Address addr) {
  ensure(addr);
  crashed_[addr] = false;
}

bool InMemoryNetwork::crashed(Address addr) const {
  return addr < crashed_.size() && crashed_[addr];
}

}  // namespace ncast::node
