#pragma once
// The degenerate zero-adversity Transport: FIFO per-destination mailboxes
// for the lock-step tick drivers. Delivery takes exactly one tick (sent this
// tick, polled next tick) and nothing is ever lost except mail touching a
// crashed address — a crashed box neither receives nor sends; its silence is
// what children detect. Counting lives in the Transport base, so assertions
// written against this fabric hold verbatim on the event-driven one.

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "node/message.hpp"
#include "node/transport.hpp"

namespace ncast::node {

/// Deterministic in-memory message fabric (poll-based).
class InMemoryNetwork final : public Transport {
 public:
  /// Next pending message for `addr`, if any.
  std::optional<Message> poll(Address addr);

  /// True if any mailbox (except crashed ones) is non-empty.
  bool idle() const;

  void crash(Address addr) override;
  void revive(Address addr) override;
  bool crashed(Address addr) const override;

 protected:
  /// Queues a counted message; mail touching a crashed address is dropped.
  void route(Message m) override;

 private:
  void ensure(Address addr);

  std::vector<std::deque<Message>> boxes_;
  std::vector<bool> crashed_;
};

}  // namespace ncast::node
