#pragma once
// In-memory transport for protocol-level simulation and testing. Delivery is
// FIFO per destination; crashed addresses blackhole their mail (a crashed
// box neither receives nor sends — its silence is what children detect).

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "node/message.hpp"
#include "obs/metrics.hpp"

namespace ncast::node {

/// Deterministic in-memory message fabric.
class InMemoryNetwork {
 public:
  /// Queues a message for delivery. Mail to crashed addresses is dropped
  /// (and counted).
  void send(Message m);

  /// Next pending message for `addr`, if any.
  std::optional<Message> poll(Address addr);

  /// True if any mailbox (except crashed ones) is non-empty.
  bool idle() const;

  /// Marks an address as crashed: pending and future mail is dropped.
  void crash(Address addr);

  /// Clears the crashed flag (a repaired address can be reused).
  void revive(Address addr);

  bool crashed(Address addr) const;

  std::uint64_t messages_sent() const { return sent_; }
  std::uint64_t messages_dropped() const { return dropped_; }
  std::uint64_t control_messages() const { return control_; }
  std::uint64_t data_messages() const { return data_; }
  std::uint64_t keepalive_messages() const { return keepalive_; }

 private:
  void ensure(Address addr);

  std::vector<std::deque<Message>> boxes_;
  std::vector<bool> crashed_;
  // Per-instance totals backing the accessors above (always counted, so the
  // API is independent of the NCAST_OBS switch). Every event additionally
  // lands in the process-wide registry under net.* — see struct Counters in
  // network.cpp — which is what bench telemetry snapshots.
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t control_ = 0;
  std::uint64_t data_ = 0;
  std::uint64_t keepalive_ = 0;
};

}  // namespace ncast::node
