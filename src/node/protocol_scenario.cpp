#include "node/protocol_scenario.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "node/client_node.hpp"
#include "node/server_node.hpp"
#include "sim/event_engine.hpp"

namespace ncast::node {

double ProtocolScenarioReport::decoded_fraction() const {
  std::size_t live = 0;
  std::size_t done = 0;
  for (const ProtocolOutcome& o : outcomes) {
    if (o.crashed || o.departed) continue;
    ++live;
    if (o.decoded) ++done;
  }
  return live == 0 ? 0.0
                   : static_cast<double>(done) / static_cast<double>(live);
}

double ProtocolScenarioReport::mean_join_latency() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const ProtocolOutcome& o : outcomes) {
    if (o.join_latency < 0.0) continue;
    sum += o.join_latency;
    ++n;
  }
  return n == 0 ? -1.0 : sum / static_cast<double>(n);
}

std::uint64_t ProtocolScenarioReport::total_join_retries() const {
  std::uint64_t total = 0;
  for (const ProtocolOutcome& o : outcomes) total += o.join_retries;
  return total;
}

std::uint64_t ProtocolScenarioReport::total_complaints() const {
  std::uint64_t total = 0;
  for (const ProtocolOutcome& o : outcomes) total += o.complaints;
  return total;
}

ProtocolScenarioReport run_scenario(const ProtocolScenarioSpec& spec) {
  sim::EventEngine engine;
  sim::RngStreams streams(spec.seed);

  // Deterministic content: a fixed byte pattern keyed by the seed, so two
  // runs of the same spec broadcast identical generations without spending
  // any RNG draws that could shift protocol decisions.
  const std::size_t content_bytes =
      spec.generations * spec.generation_size * spec.symbols;
  std::vector<std::uint8_t> content(content_bytes);
  for (std::size_t i = 0; i < content_bytes; ++i) {
    content[i] = static_cast<std::uint8_t>(
        (i * 131u) ^ (i >> 3) ^ static_cast<std::size_t>(spec.seed * 0x9e37u));
  }

  ServerConfig scfg;
  scfg.k = spec.k;
  scfg.default_degree = spec.default_degree;
  scfg.repair_delay = static_cast<std::uint64_t>(spec.repair_delay);
  scfg.generation_size = spec.generation_size;
  scfg.symbols = spec.symbols;
  scfg.null_keys = spec.null_keys;
  scfg.structure = spec.structure;
  scfg.seed = spec.seed;
  ServerNode server(scfg, content);

  KernelTransport net(engine, spec.transport,
                      streams.stream("protocol.transport"));
  server.start(engine, net);

  ClientConfig ccfg;
  ccfg.silence_timeout = spec.silence_timeout;
  ccfg.join_retry = spec.join_retry;
  ccfg.seed = spec.seed;

  std::vector<std::unique_ptr<ClientNode>> clients;
  std::set<Address> departed;
  const auto spawn = [&]() {
    const Address addr = static_cast<Address>(clients.size() + 1);
    clients.push_back(std::make_unique<ClientNode>(addr, ccfg));
    clients.back()->start(engine, net);
  };

  for (std::uint32_t i = 0; i < spec.initial_clients; ++i) spawn();

  // Replay the fault plan as kernel events. Targets resolve to addresses:
  // join_ref j is the (initial_clients + j)-th client, i.e. address
  // initial_clients + j + 1; explicit targets name the address directly.
  const auto target_of = [&spec](const sim::FaultEvent& e) -> Address {
    return e.targets_join()
               ? static_cast<Address>(spec.initial_clients + e.join_ref + 1)
               : static_cast<Address>(e.node);
  };
  const auto events = spec.faults.sorted();
  for (const sim::FaultEvent& e : events) {
    engine.schedule_at(
        e.at,
        [&, e] {
          switch (e.kind) {
            case sim::FaultKind::kJoin:
              spawn();
              break;
            case sim::FaultKind::kLeave:
            case sim::FaultKind::kCrash: {
              const Address addr = target_of(e);
              if (addr == kServerAddress || addr > clients.size()) break;
              ClientNode& c = *clients[addr - 1];
              if (e.kind == sim::FaultKind::kLeave) {
                if (!c.crashed()) {
                  c.leave(net);
                  departed.insert(addr);
                }
              } else {
                c.crash();
                net.crash(addr);
              }
              break;
            }
            case sim::FaultKind::kRepair:
            case sim::FaultKind::kBehavior:
              break;  // emergent / packet-level only — see header
          }
        },
        sim::TimerClass::kFault);
  }

  double horizon = spec.horizon;
  if (horizon <= 0.0) {
    // Time for a client to decode: ~generations * g / d packets per column
    // per unit time, padded for latency jitter, loss, and bootstrap depth.
    const double stream_time =
        30.0 + 3.0 * static_cast<double>(spec.generations) *
                   static_cast<double>(spec.generation_size);
    double last_event = 0.0;
    for (const sim::FaultEvent& e : events) {
      last_event = std::max(last_event, e.at);
    }
    horizon = last_event + stream_time +
              6.0 * static_cast<double>(spec.silence_timeout) +
              4.0 * spec.join_retry + spec.repair_delay;
  }

  ProtocolScenarioReport report;
  report.events_executed = engine.run_until(horizon);
  report.horizon = horizon;
  report.messages_sent = net.messages_sent();
  report.messages_dropped = net.messages_dropped();
  report.control_messages = net.control_messages();
  report.data_messages = net.data_messages();
  report.control_dropped = net.control_dropped();
  report.control_bytes = net.control_bytes();
  report.data_bytes = net.data_bytes();
  report.max_in_flight = net.max_in_flight();
  report.repairs_done = server.repairs_done();
  report.last_repair_time = server.last_repair_time();
  report.matrix = server.matrix();

  report.outcomes.reserve(clients.size());
  for (const auto& c : clients) {
    ProtocolOutcome o;
    o.address = c->address();
    o.joined = c->joined();
    o.crashed = c->crashed();
    o.departed = departed.count(c->address()) != 0;
    o.decoded = c->joined() && c->decoded();
    o.join_latency = c->joined() ? c->joined_time() - c->join_sent_time() : -1.0;
    o.decode_time = c->decode_time();
    o.join_retries = c->join_retries();
    o.complaints = c->complaints_sent();
    report.outcomes.push_back(o);
  }
  return report;
}

}  // namespace ncast::node
