#pragma once
// The client endpoint: joins via the hello protocol, learns the stream plan
// (and optional null keys) from the join acknowledgment, receives coded
// packets on its threads, recodes onto the children the server attaches to
// it, and complains when a feed goes silent. A crashed client simply stops —
// its children's complaints drive the repair path.
//
// Two execution modes over the same handlers:
//   - tick mode (process_messages/on_tick): the historical lock-step loop;
//     silence is checked by comparing ticks, and a lost control message is
//     impossible, so there is no retransmission machinery.
//   - event mode (start): the endpoint runs on the kernel's EventEngine with
//     cancellable timers — a periodic serve timer, a join-retry timer that
//     retransmits the hello with doubling backoff until the accept arrives
//     (control links can now drop it), and one silence timer per column that
//     fires a complaint and re-arms with doubling backoff until data flows
//     again. This is the protocol's first real retry logic.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "node/message.hpp"
#include "node/network.hpp"
#include "node/stream_state.hpp"
#include "node/transport.hpp"
#include "sim/event_engine.hpp"
#include "util/rng.hpp"

namespace ncast::node {

struct ClientConfig {
  std::uint64_t silence_timeout = 4;  ///< time without liveness -> complain
  double join_retry = 4.0;            ///< event mode: hello retransmit delay
  std::uint32_t max_backoff_exp = 4;  ///< cap retransmit doubling at 2^this
  /// Decoder policy for the stream buffers. kAuto resolves per the structure
  /// announced in the join accept (select_stream_policy — relay traffic on
  /// banded streams is densified, so kAuto never picks the band decoder).
  coding::DecoderPolicy decode_policy = coding::DecoderPolicy::kAuto;
  std::uint64_t seed = 1;
};

/// Peer endpoint. The stream geometry (generations, g, symbols) arrives in
/// the join acknowledgment, so the client needs no out-of-band setup.
class ClientNode : public Endpoint {
 public:
  ClientNode(Address address, ClientConfig config);

  Address address() const { return address_; }
  bool joined() const { return joined_; }
  bool crashed() const { return crashed_; }
  bool departed() const { return departed_; }

  /// Innovative packets accumulated, summed over generations.
  std::size_t rank() const { return stream_.rank(); }
  /// Full rank in every generation.
  bool decoded() const { return stream_.decoded(); }
  /// Reconstructed content; requires decoded().
  std::vector<std::uint8_t> data() const;

  std::uint64_t complaints_sent() const { return complaints_sent_; }
  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t packets_rejected() const { return packets_rejected_; }
  bool verification_enabled() const { return stream_.verification_enabled(); }

  /// Event mode — retry/latency observability.
  std::uint64_t join_retries() const { return join_retries_; }
  std::uint64_t complaint_retries() const { return complaint_retries_; }
  /// Causal span of this node's join episode (kNoSpan before the first
  /// hello): every hello retransmission, the accept, and the node's rank
  /// advances carry it, so the whole chain reconstructs from the trace.
  obs::SpanId join_span() const { return join_span_; }
  /// Hello-sent and accept-received times (-1 until they happen).
  double join_sent_time() const { return join_sent_time_; }
  double joined_time() const { return joined_time_; }
  /// Time the last generation reached full rank (-1 if not decoded).
  double decode_time() const { return decode_time_; }

  /// Sends the hello. `degree` requests that many threads (Section 5
  /// heterogeneity); 0 accepts the server's default.
  void join(Transport& net, std::uint32_t degree = 0);

  /// Sends the good-bye and retires the endpoint: the node stops serving,
  /// stops complaining (its feeds are about to be rewired around it), and
  /// cancels its event-mode timers. Good-bye means gone.
  void leave(Transport& net);

  /// Congestion adaptation (Section 5): ask the server to shed one of this
  /// node's threads / to hand one back.
  void request_offload(Transport& net);
  void request_restore(Transport& net);

  /// Current number of in-threads (degree after offloads/restores).
  std::size_t degree() const { return columns_.size(); }

  /// Non-ergodic failure: the node goes dark (pending timers are cancelled
  /// in event mode). Callers should also net.crash(address()) so in-flight
  /// mail is dropped.
  void crash();

  /// Event mode: attaches to the transport, sends the hello, and arms the
  /// join-retry and serve timers.
  void start(sim::Scheduler& engine, AttachableTransport& net,
             std::uint32_t degree = 0);

  /// Handles one protocol message (both modes route through here).
  void on_message(const Message& m) override;

  /// Tick mode: drains the mailbox.
  void process_messages(std::uint64_t tick, InMemoryNetwork& net);

  /// Tick mode: emits recoded packets (or keepalives) to attached children
  /// and checks feed liveness.
  void on_tick(std::uint64_t tick, InMemoryNetwork& net);

 private:
  void handle_accept(const Message& m);
  void handle_data(const Message& m);
  void serve_children();
  void event_tick();
  void note_liveness(overlay::ColumnId column);
  void arm_silence(overlay::ColumnId column);
  void disarm_silence(overlay::ColumnId column);
  void silence_fired(overlay::ColumnId column);
  void schedule_join_retry(double delay);
  double now() const;

  Address address_;
  ClientConfig config_;
  Rng rng_;
  bool joined_ = false;
  bool crashed_ = false;
  bool departed_ = false;

  StreamState stream_;

  std::vector<overlay::ColumnId> columns_;
  std::map<overlay::ColumnId, Address> children_;
  std::map<overlay::ColumnId, double> last_data_;
  std::uint64_t complaints_sent_ = 0;
  std::uint64_t packets_received_ = 0;
  std::uint64_t packets_rejected_ = 0;

  // Event-mode state.
  Transport* net_ = nullptr;
  sim::Scheduler* engine_ = nullptr;
  double now_ = 0.0;
  std::uint32_t join_degree_ = 0;
  sim::TimerHandle join_timer_{};
  sim::TimerHandle serve_timer_{};
  /// One cancellable silence timer per column (the keepalive/complaint
  /// clock), re-armed on every sign of life.
  std::map<overlay::ColumnId, sim::TimerHandle> silence_timers_;
  /// Consecutive unanswered complaints per column (backoff exponent).
  std::map<overlay::ColumnId, std::uint32_t> complaint_streak_;
  /// Open complaint span per column (one span per outage episode: begun on
  /// the first complaint, ended when data flows again).
  std::map<overlay::ColumnId, obs::SpanId> complaint_spans_;
  obs::SpanId join_span_ = obs::kNoSpan;
  std::uint64_t join_retries_ = 0;
  std::uint64_t complaint_retries_ = 0;
  double join_sent_time_ = -1.0;
  double joined_time_ = -1.0;
  double decode_time_ = -1.0;
};

}  // namespace ncast::node
