#pragma once
// The client endpoint: joins via the hello protocol, learns the stream plan
// (and optional null keys) from the join acknowledgment, receives coded
// packets on its threads, recodes onto the children the server attaches to
// it, and complains when a feed goes silent. A crashed client simply stops —
// its children's complaints drive the repair path.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "node/message.hpp"
#include "node/network.hpp"
#include "node/stream_state.hpp"
#include "util/rng.hpp"

namespace ncast::node {

struct ClientConfig {
  std::uint64_t silence_timeout = 4;  ///< ticks without liveness -> complain
  std::uint64_t seed = 1;
};

/// Peer endpoint. The stream geometry (generations, g, symbols) arrives in
/// the join acknowledgment, so the client needs no out-of-band setup.
class ClientNode {
 public:
  ClientNode(Address address, ClientConfig config);

  Address address() const { return address_; }
  bool joined() const { return joined_; }
  bool crashed() const { return crashed_; }

  /// Innovative packets accumulated, summed over generations.
  std::size_t rank() const { return stream_.rank(); }
  /// Full rank in every generation.
  bool decoded() const { return stream_.decoded(); }
  /// Reconstructed content; requires decoded().
  std::vector<std::uint8_t> data() const;

  std::uint64_t complaints_sent() const { return complaints_sent_; }
  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t packets_rejected() const { return packets_rejected_; }
  bool verification_enabled() const { return stream_.verification_enabled(); }

  /// Sends the hello. `degree` requests that many threads (Section 5
  /// heterogeneity); 0 accepts the server's default.
  void join(InMemoryNetwork& net, std::uint32_t degree = 0);

  /// Sends the good-bye.
  void leave(InMemoryNetwork& net);

  /// Congestion adaptation (Section 5): ask the server to shed one of this
  /// node's threads / to hand one back.
  void request_offload(InMemoryNetwork& net);
  void request_restore(InMemoryNetwork& net);

  /// Current number of in-threads (degree after offloads/restores).
  std::size_t degree() const { return columns_.size(); }

  /// Non-ergodic failure: the node goes dark. Callers should also
  /// net.crash(address()) so in-flight mail is dropped.
  void crash() { crashed_ = true; }

  /// Drains the mailbox.
  void process_messages(std::uint64_t tick, InMemoryNetwork& net);

  /// Emits recoded packets (or keepalives) to attached children and checks
  /// feed liveness.
  void on_tick(std::uint64_t tick, InMemoryNetwork& net);

 private:
  void handle_accept(const Message& m, std::uint64_t tick);
  void handle_data(const Message& m, std::uint64_t tick);

  Address address_;
  ClientConfig config_;
  Rng rng_;
  bool joined_ = false;
  bool crashed_ = false;

  StreamState stream_;

  std::vector<overlay::ColumnId> columns_;
  std::map<overlay::ColumnId, Address> children_;
  std::map<overlay::ColumnId, std::uint64_t> last_data_;
  std::uint64_t complaints_sent_ = 0;
  std::uint64_t packets_received_ = 0;
  std::uint64_t packets_rejected_ = 0;
};

}  // namespace ncast::node
