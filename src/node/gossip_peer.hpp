#pragma once
// Fully decentralized peer (Section 7: the server's membership role
// "decreased still further or even eliminated"; cf. the receiver-driven
// overlay framework of [12]). There is no thread matrix and no tracker:
//
//   - every peer offers `upload_slots` upload slots and wants
//     `want_parents` feeds;
//   - a joiner knows one introducer; it learns more peers by gossiping view
//     samples and acquires feeds by asking peers for slots (full peers deny
//     but include a sample of their view, so rejection still makes progress);
//   - a peer whose feed goes silent simply drops it and re-acquires a slot
//     elsewhere — repair without any central authority. The pending-request
//     expiry (request_timeout) is this protocol's retransmission: a slot
//     request whose grant or denial is lost is simply re-issued elsewhere;
//   - the source is just a peer that holds the content and never requests.
//
// Runs in lock-step tick mode under GossipDriver, or event-driven on the
// simulation kernel via start() — same handlers, so lossy/latent control
// links (KernelTransport) exercise exactly the logic the ideal fabric does.
//
// Trade-off vs the curtain (measured in bench_gossip / the protocol tests):
// the topology is only approximately the analyzed random model, join costs
// more messages, and nobody can prove Theorem 4's constants — but no single
// party needs global state.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "coding/file_codec.hpp"
#include "node/message.hpp"
#include "node/network.hpp"
#include "node/stream_state.hpp"
#include "node/transport.hpp"
#include "sim/event_engine.hpp"
#include "util/rng.hpp"

namespace ncast::node {

struct GossipPeerConfig {
  std::uint32_t want_parents = 3;     ///< feeds this peer tries to hold
  std::uint32_t upload_slots = 3;     ///< children this peer will serve
  std::uint64_t silence_timeout = 6;  ///< time before a feed counts as dead
  std::uint64_t request_timeout = 4;  ///< time before a slot request expires
  std::size_t view_limit = 32;        ///< bounded partial membership view
  std::size_t sample_size = 6;        ///< addresses per gossip reply
  std::uint64_t sample_period = 8;    ///< time between proactive samples
  std::size_t null_keys = 0;          ///< source only: keys per generation
  /// Source only: the stream's coding structure; non-sources learn it from
  /// the slot grant that initializes them and forward it in their own grants.
  coding::StructureSpec structure;
  std::uint64_t seed = 1;
};

/// A tracker-less endpoint: downloader, uploader, and membership gossip all
/// in one. Construct with content to act as the source.
class GossipPeer : public Endpoint {
 public:
  /// Regular peer; `introducer` is the one address it starts out knowing.
  GossipPeer(Address address, GossipPeerConfig config, Address introducer);

  /// Source peer: holds `content`, serves up to `upload_slots` children,
  /// never requests parents.
  GossipPeer(Address address, GossipPeerConfig config,
             std::vector<std::uint8_t> content, std::size_t generation_size,
             std::size_t symbols);

  Address address() const { return address_; }
  bool is_source() const { return encoder_.has_value(); }
  bool crashed() const { return crashed_; }
  bool departed() const { return departed_; }

  std::size_t parent_count() const { return parents_.size(); }
  std::size_t child_count() const { return children_.size(); }
  std::size_t view_size() const { return view_.size(); }
  std::uint64_t reacquisitions() const { return reacquisitions_; }

  bool decoded() const { return is_source() || stream_.decoded(); }
  bool verification_enabled() const {
    return is_source() ? !key_bundles_.empty() : stream_.verification_enabled();
  }
  std::size_t rank() const { return stream_.rank(); }
  /// Reconstructed (or original, for the source) content.
  std::vector<std::uint8_t> data() const;
  /// Time the stream reached full rank (-1 if not decoded; event mode).
  double decode_time() const { return decode_time_; }

  /// Non-ergodic failure; callers should also net.crash(address()).
  void crash();

  /// Graceful departure: releases parents, tells children to rewire.
  void leave(Transport& net);

  /// Event mode: attaches to the transport and schedules the periodic
  /// serve/repair/gossip timer on the kernel engine.
  void start(sim::Scheduler& engine, AttachableTransport& net);

  /// Handles one protocol message (both modes route through here).
  void on_message(const Message& m) override;

  void process_messages(std::uint64_t tick, InMemoryNetwork& net);
  void on_tick(std::uint64_t tick, InMemoryNetwork& net);

 private:
  bool active() const { return !crashed_ && !departed_; }
  void learn(Address peer);
  std::vector<Address> sample_view(std::size_t count, Address exclude);
  void handle_slot_request(const Message& m);
  void handle_slot_grant(const Message& m);
  void serve_children();
  void acquire_parents();
  void tick_body();
  void event_tick();
  double now() const;

  Address address_;
  GossipPeerConfig config_;
  Rng rng_;
  bool crashed_ = false;
  bool departed_ = false;

  std::vector<Address> view_;            // bounded partial membership
  std::map<Address, double> parents_;    // feed -> last liveness time
  std::set<Address> children_;
  std::map<Address, double> pending_;    // slot request -> sent time
  double last_sample_ = 0.0;
  std::uint64_t reacquisitions_ = 0;

  StreamState stream_;
  std::optional<coding::FileEncoder> encoder_;  // source role
  std::vector<std::uint8_t> content_;           // source role
  /// Serialized null-key bundles; generated by the source, then handed from
  /// parent to child inside every slot grant (trust flows with the slots).
  std::vector<std::vector<std::uint8_t>> key_bundles_;

  // Event-mode state.
  Transport* net_ = nullptr;
  sim::Scheduler* engine_ = nullptr;
  sim::TimerHandle tick_timer_{};
  double now_ = 0.0;
  double decode_time_ = -1.0;
};

}  // namespace ncast::node
