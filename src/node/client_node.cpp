#include "node/client_node.hpp"

#include <algorithm>
#include <stdexcept>

#include "coding/wire.hpp"

namespace ncast::node {

namespace {

// Process-wide retry counters (event mode only; tick mode cannot lose
// control messages, so it never retries). Cached once.
struct RetryCounters {
  obs::Counter& join_retries = obs::metrics().counter("protocol.join_retries");
  obs::Counter& complaint_retries =
      obs::metrics().counter("protocol.complaint_retries");

  static RetryCounters& get() {
    // ncast:shared(holds internally synchronized obs::Counter references; magic-static init is thread-safe)
    static RetryCounters c;
    return c;
  }
};

}  // namespace

ClientNode::ClientNode(Address address, ClientConfig config)
    : address_(address),
      config_(config),
      rng_(config.seed ^ (static_cast<std::uint64_t>(address) << 20)) {
  if (address == kServerAddress) {
    throw std::invalid_argument("ClientNode: address 0 is the server");
  }
}

double ClientNode::now() const { return engine_ ? engine_->now() : now_; }

std::vector<std::uint8_t> ClientNode::data() const {
  if (!decoded()) throw std::logic_error("ClientNode::data: incomplete");
  return stream_.data();
}

void ClientNode::crash() {
  crashed_ = true;
  if (engine_) {
    engine_->cancel(join_timer_);
    engine_->cancel(serve_timer_);
    for (const auto& [column, handle] : silence_timers_) {
      engine_->cancel(handle);
    }
    silence_timers_.clear();
  }
}

void ClientNode::join(Transport& net, std::uint32_t degree) {
  if (join_sent_time_ < 0.0) {
    join_sent_time_ = now();
    // The join episode's span: opened at the first hello, carried by every
    // retransmission and by the server's accept, referenced by the node's
    // rank advances — the trace's reconstruction key for this join.
    join_span_ = obs::trace().new_span();
    obs::trace().emit(obs::TraceKind::kSpanBegin, address_, 0, 0, "join",
                      join_span_);
  }
  Message m;
  m.type = MessageType::kJoinRequest;
  m.from = address_;
  m.to = kServerAddress;
  m.subject = degree;  // 0 = server default
  m.span = join_span_;
  net.send(std::move(m));
}

void ClientNode::leave(Transport& net) {
  Message m;
  m.type = MessageType::kGoodbye;
  m.from = address_;
  m.to = kServerAddress;
  net.send(std::move(m));
  // Retire: once the good-bye is out, the server splices us from the
  // curtain, our feeds legitimately stop, and our children are reattached
  // upstream — so neither a complaint nor another served packet from this
  // node is meaningful.
  departed_ = true;
  children_.clear();
  if (engine_) {
    engine_->cancel(join_timer_);
    for (const auto& [column, handle] : silence_timers_) {
      engine_->cancel(handle);
    }
    silence_timers_.clear();
    complaint_streak_.clear();
  }
}

void ClientNode::start(sim::Scheduler& engine, AttachableTransport& net,
                       std::uint32_t degree) {
  engine_ = &engine;
  net_ = &net;
  join_degree_ = degree;
  net.attach(address_, this);
  join(net, degree);
  schedule_join_retry(config_.join_retry);
  serve_timer_ = engine.schedule_in(1.0, [this] { event_tick(); },
                                    sim::TimerClass::kServe);
}

void ClientNode::schedule_join_retry(double delay) {
  join_timer_ = engine_->schedule_in(
      delay,
      [this, delay] {
        if (joined_ || crashed_) return;
        ++join_retries_;
        RetryCounters::get().join_retries.inc();
        obs::trace().emit(obs::TraceKind::kMsgRetry, address_, join_retries_,
                          static_cast<std::uint64_t>(MessageType::kJoinRequest),
                          {}, join_span_);
        join(*net_, join_degree_);
        // Doubling backoff, capped: a congested server is not helped by a
        // thundering herd of hellos, but the client must never give up.
        const double cap = config_.join_retry *
                           static_cast<double>(1u << config_.max_backoff_exp);
        schedule_join_retry(std::min(delay * 2.0, cap));
      },
      sim::TimerClass::kJoinRetry);
}

void ClientNode::event_tick() {
  if (crashed_ || departed_) return;  // the serve loop dies with the node
  serve_children();
  serve_timer_ = engine_->schedule_in(1.0, [this] { event_tick(); },
                                      sim::TimerClass::kServe);
}

void ClientNode::note_liveness(overlay::ColumnId column) {
  last_data_[column] = now();
  if (engine_ && joined_ && !departed_) {
    complaint_streak_[column] = 0;
    // Data flowing again closes the column's outage episode, if one is open.
    const auto span = complaint_spans_.find(column);
    if (span != complaint_spans_.end()) {
      obs::trace().emit(obs::TraceKind::kSpanEnd, address_, column, 0,
                        "complaint", span->second);
      complaint_spans_.erase(span);
    }
    arm_silence(column);
  }
}

void ClientNode::arm_silence(overlay::ColumnId column) {
  disarm_silence(column);
  const std::uint32_t exp =
      std::min(complaint_streak_[column], config_.max_backoff_exp);
  const double delay =
      static_cast<double>(config_.silence_timeout) * static_cast<double>(1u << exp);
  silence_timers_[column] =
      engine_->schedule_in(delay, [this, column] { silence_fired(column); },
                           sim::TimerClass::kSilence);
}

void ClientNode::disarm_silence(overlay::ColumnId column) {
  const auto it = silence_timers_.find(column);
  if (it != silence_timers_.end()) {
    engine_->cancel(it->second);
    silence_timers_.erase(it);
  }
}

void ClientNode::silence_fired(overlay::ColumnId column) {
  silence_timers_.erase(column);
  if (crashed_ || departed_ || !joined_) return;
  if (std::find(columns_.begin(), columns_.end(), column) == columns_.end()) {
    return;  // column was dropped while the timer was in flight
  }
  std::uint32_t& streak = complaint_streak_[column];
  obs::SpanId& span = complaint_spans_[column];
  if (streak == 0 || span == obs::kNoSpan) {
    // A fresh outage opens its own span, parented on the join span so the
    // node's whole history hangs off one tree.
    span = obs::trace().new_span();
    obs::trace().emit(obs::TraceKind::kSpanBegin, address_, column, 0,
                      "complaint", span, join_span_);
  }
  Message complaint;
  complaint.type = MessageType::kComplaint;
  complaint.from = address_;
  complaint.to = kServerAddress;
  complaint.column = column;
  complaint.span = span;
  net_->send(std::move(complaint));
  ++complaints_sent_;
  if (streak > 0) {
    // Same outage, another complaint: either the complaint or the repair's
    // effect got lost on the control plane — retransmit with backoff.
    ++complaint_retries_;
    RetryCounters::get().complaint_retries.inc();
    obs::trace().emit(obs::TraceKind::kMsgRetry, address_, streak,
                      static_cast<std::uint64_t>(MessageType::kComplaint), {},
                      span);
  }
  if (streak < config_.max_backoff_exp) ++streak;
  arm_silence(column);
}

void ClientNode::handle_accept(const Message& m) {
  if (joined_) {
    // Not necessarily a duplicate: the server re-admits an orphaned member
    // (evicted by a false-positive repair) by answering its complaint with
    // a fresh accept. Adopt the new columns and keep the decode progress; a
    // true duplicate accept (same columns) is a no-op through this path.
    // Timers armed for columns no longer ours self-cancel in silence_fired.
    columns_ = m.columns;
    for (overlay::ColumnId c : columns_) note_liveness(c);
    return;
  }
  // The structure descriptor is untrusted wire data: rebuild the geometry
  // defensively and treat nonsense like any other malformed accept.
  const auto structure =
      coding::make_structure(m.structure_kind, m.gen_size, m.band_width,
                             m.structure_wrap != 0, m.class_overlap);
  if (!structure) return;
  if (!stream_.initialize(m.data_size, m.gen_count, m.gen_size, m.symbols,
                          *structure, config_.decode_policy)) {
    return;
  }
  joined_ = true;
  joined_time_ = now();
  if (engine_) engine_->cancel(join_timer_);
  columns_ = m.columns;
  stream_.install_keys(m.key_bundles);
  // The accept closes the join episode the first hello opened.
  obs::trace().emit(obs::TraceKind::kSpanEnd, address_, 0, 0, "join",
                    join_span_);
  for (overlay::ColumnId c : columns_) note_liveness(c);
}

void ClientNode::handle_data(const Message& m) {
  // Any well-formed-enough frame proves the feed is alive, even if its
  // content turns out to be garbage; verification happens inside absorb.
  note_liveness(m.column);
  const std::size_t rank_before = stream_.rank();
  if (stream_.absorb_wire(m.wire)) {
    ++packets_received_;
    const std::size_t rank_after = stream_.rank();
    if (rank_after > rank_before) {
      // Rank advances reference the join span: the decode-to-full-rank path
      // hangs off the same tree as the hello/accept exchange.
      obs::trace().emit(obs::TraceKind::kRankAdvance, address_, rank_after, 0,
                        {}, join_span_);
    }
    if (decode_time_ < 0.0 && stream_.decoded()) {
      decode_time_ = now();
      if (joined_time_ >= 0.0) {
        // ncast:shared(reference to a registry histogram, which locks internally; magic-static init is thread-safe)
        static obs::Histogram& decode_delay =
            obs::metrics().histogram("protocol.decode_delay");
        decode_delay.observe(decode_time_ - joined_time_);
      }
    }
  } else {
    ++packets_rejected_;
  }
}

void ClientNode::request_offload(Transport& net) {
  Message m;
  m.type = MessageType::kCongestionOffload;
  m.from = address_;
  m.to = kServerAddress;
  net.send(std::move(m));
}

void ClientNode::request_restore(Transport& net) {
  Message m;
  m.type = MessageType::kCongestionRestore;
  m.from = address_;
  m.to = kServerAddress;
  net.send(std::move(m));
}

void ClientNode::on_message(const Message& m) {
  if (crashed_) return;  // drain silently
  switch (m.type) {
    case MessageType::kJoinAccept:
      handle_accept(m);
      break;
    case MessageType::kAttachChild:
      children_[m.column] = m.subject;
      break;
    case MessageType::kDetachChild:
      children_.erase(m.column);
      break;
    case MessageType::kData:
      handle_data(m);
      break;
    case MessageType::kKeepalive:
      // Liveness without payload: a healthy parent whose own buffer is
      // still empty. Resets the silence clock, carries no information.
      note_liveness(m.column);
      break;
    case MessageType::kColumnDropped: {
      // Congestion offload granted: stop receiving and serving the column.
      const auto it = std::find(columns_.begin(), columns_.end(), m.column);
      if (it != columns_.end()) columns_.erase(it);
      last_data_.erase(m.column);
      children_.erase(m.column);
      if (engine_) {
        disarm_silence(m.column);
        complaint_streak_.erase(m.column);
      }
      break;
    }
    case MessageType::kColumnAdded:
      // Congestion restore granted: start receiving on the column and, if
      // the server named a downstream clipper, start serving it.
      if (std::find(columns_.begin(), columns_.end(), m.column) ==
          columns_.end()) {
        columns_.push_back(m.column);
      }
      note_liveness(m.column);
      if (m.subject != kServerAddress) children_[m.column] = m.subject;
      break;
    default:
      break;
  }
}

void ClientNode::process_messages(std::uint64_t tick, InMemoryNetwork& net) {
  net_ = &net;
  now_ = static_cast<double>(tick);
  while (auto m = net.poll(address_)) {
    on_message(*m);
  }
}

void ClientNode::serve_children() {
  // Serve the children the server attached to us; a random generation per
  // child per tick (random, not round-robin — a deterministic rotation over
  // a fixed edge order can starve a descendant of entire generations). With
  // an empty buffer we still signal liveness so deep children don't mistake
  // a slow bootstrap for a dead parent.
  for (const auto& [column, child] : children_) {
    Message out;
    out.from = address_;
    out.to = child;
    out.column = column;
    if (auto wire = stream_.emit_wire(rng_)) {
      out.type = MessageType::kData;
      out.wire = std::move(*wire);
    } else {
      out.type = MessageType::kKeepalive;
    }
    net_->send(std::move(out));
  }
}

void ClientNode::on_tick(std::uint64_t tick, InMemoryNetwork& net) {
  if (crashed_ || departed_ || !joined_) return;
  net_ = &net;
  now_ = static_cast<double>(tick);

  serve_children();

  // Liveness: complain about columns that went silent.
  for (overlay::ColumnId c : columns_) {
    const auto last = last_data_.find(c);
    if (last == last_data_.end()) continue;
    if (now_ - last->second < static_cast<double>(config_.silence_timeout)) {
      continue;
    }
    // Re-complaints are allowed after another full timeout (the reset of
    // last_data_ below is the back-off); the server dedupes via the failed
    // tag, so a lost complaint is retried and a handled one is harmless.
    Message complaint;
    complaint.type = MessageType::kComplaint;
    complaint.from = address_;
    complaint.to = kServerAddress;
    complaint.column = c;
    net.send(std::move(complaint));
    ++complaints_sent_;
    last->second = now_;  // back off before re-complaining
  }
}

}  // namespace ncast::node
