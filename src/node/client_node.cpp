#include "node/client_node.hpp"

#include <algorithm>
#include <stdexcept>

#include "coding/wire.hpp"

namespace ncast::node {

ClientNode::ClientNode(Address address, ClientConfig config)
    : address_(address),
      config_(config),
      rng_(config.seed ^ (static_cast<std::uint64_t>(address) << 20)) {
  if (address == kServerAddress) {
    throw std::invalid_argument("ClientNode: address 0 is the server");
  }
}

std::vector<std::uint8_t> ClientNode::data() const {
  if (!decoded()) throw std::logic_error("ClientNode::data: incomplete");
  return stream_.data();
}

void ClientNode::join(InMemoryNetwork& net, std::uint32_t degree) {
  Message m;
  m.type = MessageType::kJoinRequest;
  m.from = address_;
  m.to = kServerAddress;
  m.subject = degree;  // 0 = server default
  net.send(std::move(m));
}

void ClientNode::leave(InMemoryNetwork& net) {
  Message m;
  m.type = MessageType::kGoodbye;
  m.from = address_;
  m.to = kServerAddress;
  net.send(std::move(m));
}

void ClientNode::handle_accept(const Message& m, std::uint64_t tick) {
  if (joined_) return;  // duplicate accept
  if (!stream_.initialize(m.data_size, m.gen_count, m.gen_size, m.symbols)) {
    return;
  }
  joined_ = true;
  columns_ = m.columns;
  stream_.install_keys(m.key_bundles);
  for (overlay::ColumnId c : columns_) last_data_[c] = tick;
}

void ClientNode::handle_data(const Message& m, std::uint64_t tick) {
  // Any well-formed-enough frame proves the feed is alive, even if its
  // content turns out to be garbage; verification happens inside absorb.
  last_data_[m.column] = tick;
  if (stream_.absorb_wire(m.wire)) {
    ++packets_received_;
  } else {
    ++packets_rejected_;
  }
}

void ClientNode::request_offload(InMemoryNetwork& net) {
  Message m;
  m.type = MessageType::kCongestionOffload;
  m.from = address_;
  m.to = kServerAddress;
  net.send(std::move(m));
}

void ClientNode::request_restore(InMemoryNetwork& net) {
  Message m;
  m.type = MessageType::kCongestionRestore;
  m.from = address_;
  m.to = kServerAddress;
  net.send(std::move(m));
}

void ClientNode::process_messages(std::uint64_t tick, InMemoryNetwork& net) {
  while (auto m = net.poll(address_)) {
    if (crashed_) continue;  // drain silently
    switch (m->type) {
      case MessageType::kJoinAccept:
        handle_accept(*m, tick);
        break;
      case MessageType::kAttachChild:
        children_[m->column] = m->subject;
        break;
      case MessageType::kDetachChild:
        children_.erase(m->column);
        break;
      case MessageType::kData:
        handle_data(*m, tick);
        break;
      case MessageType::kKeepalive:
        // Liveness without payload: a healthy parent whose own buffer is
        // still empty. Resets the silence clock, carries no information.
        last_data_[m->column] = tick;
        break;
      case MessageType::kColumnDropped: {
        // Congestion offload granted: stop receiving and serving the column.
        const auto it = std::find(columns_.begin(), columns_.end(), m->column);
        if (it != columns_.end()) columns_.erase(it);
        last_data_.erase(m->column);
        children_.erase(m->column);
        break;
      }
      case MessageType::kColumnAdded:
        // Congestion restore granted: start receiving on the column and, if
        // the server named a downstream clipper, start serving it.
        if (std::find(columns_.begin(), columns_.end(), m->column) ==
            columns_.end()) {
          columns_.push_back(m->column);
        }
        last_data_[m->column] = tick;
        if (m->subject != kServerAddress) children_[m->column] = m->subject;
        break;
      default:
        break;
    }
  }
}

void ClientNode::on_tick(std::uint64_t tick, InMemoryNetwork& net) {
  if (crashed_ || !joined_) return;

  // Serve the children the server attached to us; a random generation per
  // child per tick (random, not round-robin — a deterministic rotation over
  // a fixed edge order can starve a descendant of entire generations). With
  // an empty buffer we still signal liveness so deep children don't mistake
  // a slow bootstrap for a dead parent.
  for (const auto& [column, child] : children_) {
    Message out;
    out.from = address_;
    out.to = child;
    out.column = column;
    if (auto wire = stream_.emit_wire(rng_)) {
      out.type = MessageType::kData;
      out.wire = std::move(*wire);
    } else {
      out.type = MessageType::kKeepalive;
    }
    net.send(std::move(out));
  }

  // Liveness: complain about columns that went silent.
  for (overlay::ColumnId c : columns_) {
    const auto last = last_data_.find(c);
    if (last == last_data_.end()) continue;
    if (tick - last->second < config_.silence_timeout) continue;
    // Re-complaints are allowed after another full timeout (the reset of
    // last_data_ below is the back-off); the server dedupes via the failed
    // tag, so a lost complaint is retried and a handled one is harmless.
    Message complaint;
    complaint.type = MessageType::kComplaint;
    complaint.from = address_;
    complaint.to = kServerAddress;
    complaint.column = c;
    net.send(std::move(complaint));
    ++complaints_sent_;
    last->second = tick;  // back off before re-complaining
  }
}

}  // namespace ncast::node
