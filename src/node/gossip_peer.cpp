#include "node/gossip_peer.hpp"

#include <algorithm>

namespace ncast::node {

GossipPeer::GossipPeer(Address address, GossipPeerConfig config,
                       Address introducer)
    : address_(address),
      config_(config),
      rng_(config.seed ^ (static_cast<std::uint64_t>(address) << 18)) {
  learn(introducer);
}

GossipPeer::GossipPeer(Address address, GossipPeerConfig config,
                       std::vector<std::uint8_t> content,
                       std::size_t generation_size, std::size_t symbols)
    : address_(address),
      config_(config),
      rng_(config.seed ^ (static_cast<std::uint64_t>(address) << 18)),
      content_(std::move(content)) {
  encoder_.emplace(content_, generation_size, symbols, config_.structure);
  if (config_.null_keys > 0) {
    key_bundles_.reserve(encoder_->generations());
    for (std::size_t g = 0; g < encoder_->generations(); ++g) {
      const auto source =
          coding::generation_packets(content_, encoder_->plan(), g);
      const auto keys = coding::NullKeySet<gf::Gf256>::generate(
          static_cast<std::uint32_t>(g), source, config_.null_keys, rng_);
      key_bundles_.push_back(keys.serialize());
    }
  }
}

double GossipPeer::now() const { return engine_ ? engine_->now() : now_; }

std::vector<std::uint8_t> GossipPeer::data() const {
  if (is_source()) return content_;
  return stream_.data();
}

void GossipPeer::crash() {
  crashed_ = true;
  if (engine_) engine_->cancel(tick_timer_);
}

void GossipPeer::start(sim::Scheduler& engine, AttachableTransport& net) {
  engine_ = &engine;
  net_ = &net;
  net.attach(address_, this);
  tick_timer_ = engine.schedule_in(1.0, [this] { event_tick(); });
}

void GossipPeer::event_tick() {
  if (crashed_) return;  // the periodic loop dies with the peer
  if (active()) tick_body();
  tick_timer_ = engine_->schedule_in(1.0, [this] { event_tick(); });
}

void GossipPeer::learn(Address peer) {
  if (peer == address_) return;
  if (std::find(view_.begin(), view_.end(), peer) != view_.end()) return;
  if (view_.size() >= config_.view_limit) {
    // Evict a random old entry; churned-out addresses age away this way.
    view_[rng_.below(view_.size())] = peer;
    return;
  }
  view_.push_back(peer);
}

std::vector<Address> GossipPeer::sample_view(std::size_t count,
                                             Address exclude) {
  std::vector<Address> pool;
  for (Address a : view_) {
    if (a != exclude) pool.push_back(a);
  }
  rng_.shuffle(pool);
  if (pool.size() > count) pool.resize(count);
  return pool;
}

void GossipPeer::leave(Transport& net) {
  if (!active()) return;
  departed_ = true;
  for (const auto& [parent, last] : parents_) {
    Message m;
    m.type = MessageType::kSlotRelease;
    m.from = address_;
    m.to = parent;
    net.send(std::move(m));
  }
  for (Address child : children_) {
    Message m;
    m.type = MessageType::kParentBye;
    m.from = address_;
    m.to = child;
    net.send(std::move(m));
  }
  parents_.clear();
  children_.clear();
}

void GossipPeer::handle_slot_request(const Message& m) {
  learn(m.from);
  const bool can_serve = is_source() || stream_.initialized();
  if (can_serve && children_.size() < config_.upload_slots &&
      children_.find(m.from) == children_.end()) {
    children_.insert(m.from);
    Message grant;
    grant.type = MessageType::kSlotGrant;
    grant.from = address_;
    grant.to = m.from;
    const auto& plan = is_source() ? encoder_->plan() : stream_.plan();
    grant.data_size = plan.data_size;
    grant.gen_count = static_cast<std::uint32_t>(plan.generations);
    grant.gen_size = static_cast<std::uint16_t>(plan.generation_size);
    grant.symbols = static_cast<std::uint16_t>(plan.symbols);
    // Forward the stream's structure descriptor: a trackerless overlay has
    // no server to announce it, so it propagates grant to grant.
    const coding::GenerationStructure& s =
        is_source() ? encoder_->structure() : stream_.structure();
    grant.structure_kind = static_cast<std::uint8_t>(s.kind);
    grant.band_width = static_cast<std::uint16_t>(s.band_width);
    grant.structure_wrap = s.wrap ? 1 : 0;
    grant.class_overlap = static_cast<std::uint16_t>(s.overlap);
    grant.key_bundles = key_bundles_;
    net_->send(std::move(grant));
  } else {
    // Denials still help: they carry a sample of this peer's view, so the
    // requester's search fans out instead of stalling.
    Message deny;
    deny.type = MessageType::kSlotDeny;
    deny.from = address_;
    deny.to = m.from;
    deny.peers = sample_view(config_.sample_size, m.from);
    net_->send(std::move(deny));
  }
}

void GossipPeer::handle_slot_grant(const Message& m) {
  pending_.erase(m.from);
  learn(m.from);
  if (parents_.size() >= config_.want_parents ||
      parents_.count(m.from) != 0) {
    // Acquired elsewhere in the meantime: return the slot politely.
    Message release;
    release.type = MessageType::kSlotRelease;
    release.from = address_;
    release.to = m.from;
    net_->send(std::move(release));
    return;
  }
  if (!stream_.initialized()) {
    const auto structure =
        coding::make_structure(m.structure_kind, m.gen_size, m.band_width,
                               m.structure_wrap != 0, m.class_overlap);
    if (!structure ||
        !stream_.initialize(m.data_size, m.gen_count, m.gen_size, m.symbols,
                            *structure)) {
      return;  // nonsense plan or structure: ignore the grant entirely
    }
    stream_.install_keys(m.key_bundles);
    if (stream_.verification_enabled()) key_bundles_ = m.key_bundles;
  }
  parents_[m.from] = now();
}

void GossipPeer::on_message(const Message& m) {
  if (!active()) return;  // drain silently
  switch (m.type) {
    case MessageType::kSlotRequest:
      handle_slot_request(m);
      break;
    case MessageType::kSlotGrant:
      handle_slot_grant(m);
      break;
    case MessageType::kSlotDeny:
      pending_.erase(m.from);
      for (Address a : m.peers) learn(a);
      break;
    case MessageType::kSlotRelease:
      children_.erase(m.from);
      break;
    case MessageType::kParentBye:
      parents_.erase(m.from);
      learn(m.from);  // it still exists; it just stopped serving us
      break;
    case MessageType::kData: {
      const auto it = parents_.find(m.from);
      if (it != parents_.end()) it->second = now();
      if (!is_source()) {
        stream_.absorb_wire(m.wire);
        if (decode_time_ < 0.0 && stream_.decoded()) decode_time_ = now();
      }
      break;
    }
    case MessageType::kKeepalive: {
      const auto it = parents_.find(m.from);
      if (it != parents_.end()) it->second = now();
      break;
    }
    case MessageType::kPeerSampleRequest: {
      learn(m.from);
      Message reply;
      reply.type = MessageType::kPeerSampleReply;
      reply.from = address_;
      reply.to = m.from;
      reply.peers = sample_view(config_.sample_size, m.from);
      net_->send(std::move(reply));
      break;
    }
    case MessageType::kPeerSampleReply:
      for (Address a : m.peers) learn(a);
      break;
    default:
      break;  // centralized-protocol messages are not ours
  }
}

void GossipPeer::process_messages(std::uint64_t tick, InMemoryNetwork& net) {
  net_ = &net;
  now_ = static_cast<double>(tick);
  while (auto m = net.poll(address_)) {
    on_message(*m);
  }
}

void GossipPeer::serve_children() {
  for (Address child : children_) {
    Message out;
    out.from = address_;
    out.to = child;
    if (is_source()) {
      const auto gen = rng_.below(encoder_->generations());
      out.type = MessageType::kData;
      out.wire = coding::serialize_stream(encoder_->emit(gen, rng_),
                                          encoder_->structure());
    } else if (auto wire = stream_.emit_wire(rng_)) {
      out.type = MessageType::kData;
      out.wire = std::move(*wire);
    } else {
      out.type = MessageType::kKeepalive;
    }
    net_->send(std::move(out));
  }
}

void GossipPeer::acquire_parents() {
  // Expire stale slot requests (the target may be gone or overloaded; the
  // grant or denial may also have been lost on a lossy control plane —
  // expiry-then-reissue is this protocol's retransmission).
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now() - it->second >= static_cast<double>(config_.request_timeout)) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  const std::size_t have = parents_.size() + pending_.size();
  if (have >= config_.want_parents) return;

  // Candidates: known peers that are not us, not already feeding us, and
  // not already asked.
  std::vector<Address> candidates;
  for (Address a : view_) {
    if (parents_.count(a) != 0 || pending_.count(a) != 0) continue;
    candidates.push_back(a);
  }
  rng_.shuffle(candidates);
  const std::size_t need = config_.want_parents - have;
  for (std::size_t i = 0; i < candidates.size() && i < need; ++i) {
    Message req;
    req.type = MessageType::kSlotRequest;
    req.from = address_;
    req.to = candidates[i];
    net_->send(std::move(req));
    pending_[candidates[i]] = now();
  }
}

void GossipPeer::tick_body() {
  serve_children();

  if (!is_source()) {
    // Decentralized repair: drop silent feeds, look for replacements.
    for (auto it = parents_.begin(); it != parents_.end();) {
      if (now() - it->second >= static_cast<double>(config_.silence_timeout)) {
        // The feed is dead (or hopelessly congested): forget the peer too,
        // so we do not immediately re-request from a corpse.
        view_.erase(std::remove(view_.begin(), view_.end(), it->first),
                    view_.end());
        it = parents_.erase(it);
        ++reacquisitions_;
      } else {
        ++it;
      }
    }
    acquire_parents();
  }

  // Proactive view gossip keeps partitions from fossilizing.
  if (!view_.empty() &&
      now() - last_sample_ >= static_cast<double>(config_.sample_period)) {
    last_sample_ = now();
    Message req;
    req.type = MessageType::kPeerSampleRequest;
    req.from = address_;
    req.to = view_[rng_.below(view_.size())];
    net_->send(std::move(req));
  }
}

void GossipPeer::on_tick(std::uint64_t tick, InMemoryNetwork& net) {
  if (!active()) return;
  net_ = &net;
  now_ = static_cast<double>(tick);
  tick_body();
}

}  // namespace ncast::node
