#pragma once
// Compatibility drivers: the historical lock-step tick loop, re-expressed as
// integer-time events on the unified simulation kernel. Each tick is one
// EventEngine event that drains every mailbox of the degenerate
// InMemoryNetwork transport (fixed one-tick latency, loss-free), then lets
// every endpoint emit — exactly the old "everyone drains, then everyone
// emits" two-phase semantics, so pre-kernel seeds reproduce bit-identically.
// New code that wants latency/loss/partitions on the protocol plane should
// use node::run_scenario (protocol_scenario.hpp) over a KernelTransport
// instead; these wrappers exist so the historical tests and walkthroughs
// keep their exact behavior.

#include <cstdint>
#include <memory>
#include <vector>

#include "node/client_node.hpp"
#include "node/gossip_peer.hpp"
#include "node/network.hpp"
#include "node/server_node.hpp"
#include "obs/trace.hpp"
#include "sim/event_engine.hpp"

namespace ncast::node {

/// Owns the fabric and the endpoints' execution order.
class TickDriver {
 public:
  TickDriver(ServerNode& server, std::vector<ClientNode*> clients)
      : server_(server), clients_(std::move(clients)) {}

  InMemoryNetwork& network() { return net_; }
  sim::EventEngine& engine() { return engine_; }
  std::uint64_t now() const { return tick_; }

  void add_client(ClientNode* client) { clients_.push_back(client); }

  /// Crashes a client: it stops processing and the fabric blackholes it.
  void crash(ClientNode& client) {
    client.crash();
    net_.crash(client.address());
  }

  /// Runs `n` ticks, each scheduled as one kernel event at the next integer
  /// times: everyone drains mail, then everyone emits.
  void run(std::uint64_t n) {
    const std::uint64_t base = tick_;
    for (std::uint64_t i = 1; i <= n; ++i) {
      engine_.schedule_at(static_cast<sim::SimTime>(base + i),
                          [this] { step(); });
    }
    engine_.run_until(static_cast<sim::SimTime>(base + n));
  }

  /// Runs until every live, joined client decoded, or `max_ticks` elapse.
  /// Returns true if everyone decoded.
  bool run_until_decoded(std::uint64_t max_ticks) {
    for (std::uint64_t i = 0; i < max_ticks; ++i) {
      run(1);
      bool any = false;
      bool all = true;
      for (ClientNode* c : clients_) {
        if (c->crashed()) continue;
        if (!c->joined() || !c->decoded()) {
          all = false;
          break;
        }
        any = true;
      }
      if (any && all) return true;
    }
    return false;
  }

 private:
  void step() {
    ++tick_;
    obs::trace().set_now(static_cast<double>(tick_));
    server_.process_messages(net_);
    for (ClientNode* c : clients_) c->process_messages(tick_, net_);
    server_.on_tick(tick_, net_);
    for (ClientNode* c : clients_) c->on_tick(tick_, net_);
  }

  ServerNode& server_;
  std::vector<ClientNode*> clients_;
  InMemoryNetwork net_;
  sim::EventEngine engine_;
  std::uint64_t tick_ = 0;
};

/// Tick driver for the server-less gossip swarm: no special endpoint — the
/// source is just one of the peers.
class GossipDriver {
 public:
  explicit GossipDriver(std::vector<GossipPeer*> peers)
      : peers_(std::move(peers)) {}

  InMemoryNetwork& network() { return net_; }
  sim::EventEngine& engine() { return engine_; }
  std::uint64_t now() const { return tick_; }
  void add_peer(GossipPeer* peer) { peers_.push_back(peer); }

  void crash(GossipPeer& peer) {
    peer.crash();
    net_.crash(peer.address());
  }

  void run(std::uint64_t n) {
    const std::uint64_t base = tick_;
    for (std::uint64_t i = 1; i <= n; ++i) {
      engine_.schedule_at(static_cast<sim::SimTime>(base + i),
                          [this] { step(); });
    }
    engine_.run_until(static_cast<sim::SimTime>(base + n));
  }

  /// Runs until every live non-source peer decoded, or the budget runs out.
  bool run_until_decoded(std::uint64_t max_ticks) {
    for (std::uint64_t i = 0; i < max_ticks; ++i) {
      run(1);
      bool any = false;
      bool all = true;
      for (GossipPeer* p : peers_) {
        if (p->crashed() || p->departed() || p->is_source()) continue;
        if (!p->decoded()) {
          all = false;
          break;
        }
        any = true;
      }
      if (any && all) return true;
    }
    return false;
  }

 private:
  void step() {
    ++tick_;
    obs::trace().set_now(static_cast<double>(tick_));
    for (GossipPeer* p : peers_) p->process_messages(tick_, net_);
    for (GossipPeer* p : peers_) p->on_tick(tick_, net_);
  }

  std::vector<GossipPeer*> peers_;
  InMemoryNetwork net_;
  sim::EventEngine engine_;
  std::uint64_t tick_ = 0;
};

}  // namespace ncast::node
