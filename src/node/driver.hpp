#pragma once
// Tick driver: advances a server and a set of clients in lock-step over an
// in-memory network. One tick = one unit of bandwidth per thread segment.
// Message latency is one tick (sent this tick, processed next tick).

#include <cstdint>
#include <memory>
#include <vector>

#include "node/client_node.hpp"
#include "node/gossip_peer.hpp"
#include "node/network.hpp"
#include "node/server_node.hpp"
#include "obs/trace.hpp"

namespace ncast::node {

/// Owns the fabric and the endpoints' execution order.
class TickDriver {
 public:
  TickDriver(ServerNode& server, std::vector<ClientNode*> clients)
      : server_(server), clients_(std::move(clients)) {}

  InMemoryNetwork& network() { return net_; }
  std::uint64_t now() const { return tick_; }

  void add_client(ClientNode* client) { clients_.push_back(client); }

  /// Crashes a client: it stops processing and the fabric blackholes it.
  void crash(ClientNode& client) {
    client.crash();
    net_.crash(client.address());
  }

  /// Runs `n` ticks: everyone drains mail, then everyone emits.
  void run(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      ++tick_;
      obs::trace().set_now(static_cast<double>(tick_));
      server_.process_messages(net_);
      for (ClientNode* c : clients_) c->process_messages(tick_, net_);
      server_.on_tick(tick_, net_);
      for (ClientNode* c : clients_) c->on_tick(tick_, net_);
    }
  }

  /// Runs until every live, joined client decoded, or `max_ticks` elapse.
  /// Returns true if everyone decoded.
  bool run_until_decoded(std::uint64_t max_ticks) {
    for (std::uint64_t i = 0; i < max_ticks; ++i) {
      run(1);
      bool any = false;
      bool all = true;
      for (ClientNode* c : clients_) {
        if (c->crashed()) continue;
        if (!c->joined() || !c->decoded()) {
          all = false;
          break;
        }
        any = true;
      }
      if (any && all) return true;
    }
    return false;
  }

 private:
  ServerNode& server_;
  std::vector<ClientNode*> clients_;
  InMemoryNetwork net_;
  std::uint64_t tick_ = 0;
};

/// Tick driver for the server-less gossip swarm: no special endpoint — the
/// source is just one of the peers.
class GossipDriver {
 public:
  explicit GossipDriver(std::vector<GossipPeer*> peers)
      : peers_(std::move(peers)) {}

  InMemoryNetwork& network() { return net_; }
  std::uint64_t now() const { return tick_; }
  void add_peer(GossipPeer* peer) { peers_.push_back(peer); }

  void crash(GossipPeer& peer) {
    peer.crash();
    net_.crash(peer.address());
  }

  void run(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      ++tick_;
      obs::trace().set_now(static_cast<double>(tick_));
      for (GossipPeer* p : peers_) p->process_messages(tick_, net_);
      for (GossipPeer* p : peers_) p->on_tick(tick_, net_);
    }
  }

  /// Runs until every live non-source peer decoded, or the budget runs out.
  bool run_until_decoded(std::uint64_t max_ticks) {
    for (std::uint64_t i = 0; i < max_ticks; ++i) {
      run(1);
      bool any = false;
      bool all = true;
      for (GossipPeer* p : peers_) {
        if (p->crashed() || p->departed() || p->is_source()) continue;
        if (!p->decoded()) {
          all = false;
          break;
        }
        any = true;
      }
      if (any && all) return true;
    }
    return false;
  }

 private:
  std::vector<GossipPeer*> peers_;
  InMemoryNetwork net_;
  std::uint64_t tick_ = 0;
};

}  // namespace ncast::node
