// The sharded-kernel twin of protocol_scenario.cpp's run_scenario: same
// spec, same protocol endpoints, but every entity owns a lane and the run
// executes on ShardedEngine/ShardedTransport. Structural differences are
// all about lane ownership:
//   - every client is constructed up front (no shared clients vector to
//     mutate mid-run); a join fault merely *starts* its pre-built client,
//     on that client's own lane;
//   - fault events are scheduled on their target's lane, so crash/leave
//     state changes are owner-lane writes;
//   - per-client outcome flags live in per-address slots, never shared.

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "node/client_node.hpp"
#include "node/protocol_scenario.hpp"
#include "node/server_node.hpp"
#include "node/sharded_transport.hpp"
#include "sim/sharded_engine.hpp"

namespace ncast::node {

ProtocolScenarioReport run_scenario_sharded(const ProtocolScenarioSpec& spec,
                                            std::uint32_t shards,
                                            std::uint32_t workers) {
  // Epoch = the smallest cross-lane latency: conservative windows never
  // clamp a delivery, and the window grid is identical for every shard and
  // worker count.
  double epoch = spec.transport.latency.lower_bound();
  if (!(epoch > 0.0)) epoch = 0.5;
  sim::ShardedEngine engine(shards, workers, epoch);

  // Deterministic content: byte pattern keyed by the seed, exactly as in
  // run_scenario.
  const std::size_t content_bytes =
      spec.generations * spec.generation_size * spec.symbols;
  std::vector<std::uint8_t> content(content_bytes);
  for (std::size_t i = 0; i < content_bytes; ++i) {
    content[i] = static_cast<std::uint8_t>(
        (i * 131u) ^ (i >> 3) ^ static_cast<std::size_t>(spec.seed * 0x9e37u));
  }

  ServerConfig scfg;
  scfg.k = spec.k;
  scfg.default_degree = spec.default_degree;
  scfg.repair_delay = static_cast<std::uint64_t>(spec.repair_delay);
  scfg.generation_size = spec.generation_size;
  scfg.symbols = spec.symbols;
  scfg.null_keys = spec.null_keys;
  scfg.structure = spec.structure;
  scfg.seed = spec.seed;
  ServerNode server(scfg, content);

  // Address a lives on lane a; join events get addresses in sorted fault
  // order, matching run_scenario's spawn-on-execution numbering.
  const auto events = spec.faults.sorted();
  std::uint32_t join_events = 0;
  for (const sim::FaultEvent& e : events) {
    if (e.kind == sim::FaultKind::kJoin) ++join_events;
  }
  const std::size_t total_clients = spec.initial_clients + join_events;
  const std::size_t max_addresses = total_clients + 1;  // + server
  engine.reserve_lanes(max_addresses);

  ShardedTransport net(engine, spec.transport, spec.seed, max_addresses);
  server.start(engine.lane(kServerAddress), net);

  ClientConfig ccfg;
  ccfg.silence_timeout = spec.silence_timeout;
  ccfg.join_retry = spec.join_retry;
  ccfg.seed = spec.seed;

  std::vector<std::unique_ptr<ClientNode>> clients;
  clients.reserve(total_clients);
  std::vector<std::uint8_t> departed(max_addresses, 0);
  for (std::size_t i = 0; i < total_clients; ++i) {
    clients.push_back(
        std::make_unique<ClientNode>(static_cast<Address>(i + 1), ccfg));
  }
  for (std::uint32_t i = 0; i < spec.initial_clients; ++i) {
    clients[i]->start(engine.lane(static_cast<sim::LaneId>(i + 1)), net);
  }

  const auto target_of = [&spec](const sim::FaultEvent& e) -> Address {
    return e.targets_join()
               ? static_cast<Address>(spec.initial_clients + e.join_ref + 1)
               : static_cast<Address>(e.node);
  };
  std::uint32_t next_join = 0;
  for (const sim::FaultEvent& e : events) {
    switch (e.kind) {
      case sim::FaultKind::kJoin: {
        const Address addr =
            static_cast<Address>(spec.initial_clients + next_join + 1);
        ++next_join;
        ClientNode* c = clients[addr - 1].get();
        sim::Scheduler& lane = engine.lane(static_cast<sim::LaneId>(addr));
        engine.schedule_on(
            static_cast<sim::LaneId>(addr), e.at,
            [c, &lane, &net] { c->start(lane, net); }, sim::TimerClass::kFault);
        break;
      }
      case sim::FaultKind::kLeave:
      case sim::FaultKind::kCrash: {
        const Address addr = target_of(e);
        if (addr == kServerAddress || addr > clients.size()) break;
        ClientNode* c = clients[addr - 1].get();
        const bool is_leave = e.kind == sim::FaultKind::kLeave;
        engine.schedule_on(
            static_cast<sim::LaneId>(addr), e.at,
            [c, addr, is_leave, &net, &departed] {
              if (is_leave) {
                if (!c->crashed()) {
                  c->leave(net);
                  departed[addr] = 1;
                }
              } else {
                c->crash();
                net.crash(addr);
              }
            },
            sim::TimerClass::kFault);
        break;
      }
      case sim::FaultKind::kRepair:
      case sim::FaultKind::kBehavior:
        break;  // emergent / packet-level only — see protocol_scenario.hpp
    }
  }

  double horizon = spec.horizon;
  if (horizon <= 0.0) {
    const double stream_time =
        30.0 + 3.0 * static_cast<double>(spec.generations) *
                   static_cast<double>(spec.generation_size);
    double last_event = 0.0;
    for (const sim::FaultEvent& e : events) {
      last_event = std::max(last_event, e.at);
    }
    horizon = last_event + stream_time +
              6.0 * static_cast<double>(spec.silence_timeout) +
              4.0 * spec.join_retry + spec.repair_delay;
  }

  ProtocolScenarioReport report;
  report.events_executed = engine.run_until(horizon);
  report.horizon = horizon;
  report.messages_sent = net.messages_sent();
  report.messages_dropped = net.messages_dropped();
  report.control_messages = net.control_messages();
  report.data_messages = net.data_messages();
  report.control_dropped = net.control_dropped();
  report.control_bytes = net.control_bytes();
  report.data_bytes = net.data_bytes();
  report.max_in_flight = net.max_in_flight();
  report.repairs_done = server.repairs_done();
  report.last_repair_time = server.last_repair_time();
  report.matrix = server.matrix();

  report.outcomes.reserve(clients.size());
  for (const auto& c : clients) {
    ProtocolOutcome o;
    o.address = c->address();
    o.joined = c->joined();
    o.crashed = c->crashed();
    o.departed = departed[c->address()] != 0;
    o.decoded = c->joined() && c->decoded();
    o.join_latency = c->joined() ? c->joined_time() - c->join_sent_time() : -1.0;
    o.decode_time = c->decode_time();
    o.join_retries = c->join_retries();
    o.complaints = c->complaints_sent();
    report.outcomes.push_back(o);
  }
  return report;
}

}  // namespace ncast::node
