#include "baselines/trees.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ncast::baselines {

namespace {

/// Shared evaluation: node i's parent is parent(i); parent == SIZE_MAX means
/// the server. Nodes are numbered in breadth-first order so a parent always
/// precedes its children.
template <typename ParentFn>
TreeOutcome evaluate(std::size_t n, double p, Rng& rng, ParentFn parent) {
  TreeOutcome out;
  out.nodes = n;
  std::vector<bool> failed(n);
  std::vector<bool> receives(n);
  std::vector<std::size_t> depth(n);
  double depth_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    failed[i] = rng.chance(p);
    const std::size_t par = parent(i);
    if (par == static_cast<std::size_t>(-1)) {
      depth[i] = 1;
      receives[i] = !failed[i];
    } else {
      depth[i] = depth[par] + 1;
      receives[i] = !failed[i] && receives[par];
    }
    if (!failed[i]) {
      ++out.working;
      if (receives[i]) ++out.receiving;
    }
    out.max_depth = std::max(out.max_depth, depth[i]);
    depth_sum += static_cast<double>(depth[i]);
  }
  out.mean_depth = n == 0 ? 0.0 : depth_sum / static_cast<double>(n);
  return out;
}

}  // namespace

TreeOutcome evaluate_chain(std::size_t n, double p, Rng& rng) {
  return evaluate(n, p, rng, [](std::size_t i) {
    return i == 0 ? static_cast<std::size_t>(-1) : i - 1;
  });
}

TreeOutcome evaluate_tree(std::size_t n, std::size_t fanout, double p, Rng& rng) {
  if (fanout == 0) throw std::invalid_argument("evaluate_tree: fanout");
  return evaluate(n, p, rng, [fanout](std::size_t i) {
    return i == 0 ? static_cast<std::size_t>(-1) : (i - 1) / fanout;
  });
}

double analytic_receive_probability(std::size_t depth, double p) {
  return std::pow(1.0 - p, static_cast<double>(depth));
}

}  // namespace ncast::baselines
