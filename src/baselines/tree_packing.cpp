#include "baselines/tree_packing.hpp"

#include <stdexcept>

namespace ncast::baselines {

std::optional<TreePackingMulticast> TreePackingMulticast::build(
    const overlay::ThreadMatrix& m, std::size_t count) {
  // Packing is computed on the failure-free topology.
  overlay::ThreadMatrix clean = m;
  for (overlay::NodeId n : m.order()) clean.mark_working(n);
  overlay::FlowGraph fg = build_flow_graph(clean);
  auto packing = graph::pack_arborescences(fg.graph, overlay::FlowGraph::kServerVertex,
                                           count);
  if (!packing) return std::nullopt;
  return TreePackingMulticast(std::move(fg), std::move(*packing));
}

std::vector<std::uint32_t> TreePackingMulticast::rates_under_failures(
    const overlay::ThreadMatrix& m) const {
  const std::size_t n_vertices = fg_.graph.vertex_count();
  std::vector<bool> vertex_failed(n_vertices, false);
  for (overlay::NodeId n : m.order()) {
    if (m.row(n).failed) {
      const auto v = fg_.vertex_of(n);
      vertex_failed[v] = true;
    }
  }

  // For each tree, propagate root reachability down the arborescence: a
  // vertex is served by the tree iff it is working and its parent is served.
  std::vector<std::uint32_t> rate(n_vertices, 0);
  for (const graph::Arborescence& arb : packing_) {
    std::vector<std::int8_t> served(n_vertices, -1);  // -1 unknown, 0 no, 1 yes
    served[overlay::FlowGraph::kServerVertex] = 1;
    for (graph::Vertex v = 0; v < n_vertices; ++v) {
      // Resolve the path iteratively (parents may come later in numbering
      // only via random insertion; handle with an explicit walk).
      graph::Vertex cur = v;
      std::vector<graph::Vertex> chain;
      while (served[cur] == -1) {
        chain.push_back(cur);
        if (vertex_failed[cur]) {
          served[cur] = 0;
          break;
        }
        const graph::EdgeId pe = arb.parent_edge[cur];
        if (pe == graph::Arborescence::kNoEdge) {
          served[cur] = 0;  // disconnected in this tree (should not happen)
          break;
        }
        cur = fg_.graph.edge(pe).from;
      }
      const std::int8_t value = served[cur];
      for (graph::Vertex c : chain) {
        served[c] = (vertex_failed[c] || value == 0) ? 0 : 1;
      }
    }
    for (graph::Vertex v = 0; v < n_vertices; ++v) {
      if (served[v] == 1) ++rate[v];
    }
  }
  return rate;
}

}  // namespace ncast::baselines
