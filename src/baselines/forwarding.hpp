#pragma once
// Routing baselines the paper's introduction compares against.
//
// 1. Naive per-thread forwarding: column c always carries stream c; a break
//    anywhere upstream kills the stream for everyone below, even if the node
//    has spare connectivity. (The "distribution path" failure mode.)
// 2. Informed forwarding over a source-side MDS erasure code ([3]-style):
//    the server Reed–Solomon-codes the k streams; each node forwards, on each
//    out-thread, a fragment chosen to maximize diversity among what it holds.
//    Strictly better than naive forwarding, but nodes choose locally, so
//    duplicate fragments still collide downstream — the gap to max-flow is
//    exactly what network coding closes.

#include <cstdint>
#include <vector>

#include "overlay/thread_matrix.hpp"
#include "util/rng.hpp"

namespace ncast::baselines {

/// Per-node delivered rate (units of bandwidth) for each working node, in
/// curtain order, paired with the node id.
struct NodeRate {
  overlay::NodeId node = 0;
  std::uint32_t rate = 0;
};

/// Naive per-thread forwarding rates: streams received = clipped columns
/// alive end-to-end from the server.
std::vector<NodeRate> naive_forwarding_rates(const overlay::ThreadMatrix& m);

/// Informed-forwarding rates over an MDS code: distinct fragments received.
/// Each node assigns fragments to out-threads greedily (distinct first, in
/// random order); `rng` drives tie-breaking.
std::vector<NodeRate> informed_forwarding_rates(const overlay::ThreadMatrix& m,
                                                Rng& rng);

}  // namespace ncast::baselines
