#pragma once
// Edmonds tree-packing multicast: the theoretically optimal routing scheme
// the paper contrasts with network coding. On a static overlay it matches the
// min-cut, but the trees are global objects — when a node fails, every tree
// through it breaks for the whole subtree until a *global* recomputation,
// whereas network coding re-routes implicitly. This module makes that
// difference measurable.

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/arborescence.hpp"
#include "overlay/flow_graph.hpp"
#include "overlay/thread_matrix.hpp"

namespace ncast::baselines {

/// Multicast via a packing of edge-disjoint spanning arborescences computed
/// on the failure-free overlay.
class TreePackingMulticast {
 public:
  /// Packs `count` arborescences on the overlay's flow graph (all rows
  /// treated as working). Returns nullopt if connectivity is insufficient.
  static std::optional<TreePackingMulticast> build(
      const overlay::ThreadMatrix& m, std::size_t count);

  std::size_t tree_count() const { return packing_.size(); }

  /// Per working node: number of trees whose root path survives the failure
  /// tags currently set in `m` (must be the same topology the packing was
  /// built on, possibly with rows newly tagged failed). This is the
  /// delivered rate without recomputation.
  std::vector<std::uint32_t> rates_under_failures(
      const overlay::ThreadMatrix& m) const;

  const std::vector<graph::Arborescence>& packing() const { return packing_; }
  const overlay::FlowGraph& flow_graph() const { return fg_; }

 private:
  TreePackingMulticast(overlay::FlowGraph fg,
                       std::vector<graph::Arborescence> packing)
      : fg_(std::move(fg)), packing_(std::move(packing)) {}

  overlay::FlowGraph fg_;  // failure-free snapshot the packing lives on
  std::vector<graph::Arborescence> packing_;
};

}  // namespace ncast::baselines
