#include "baselines/forwarding.hpp"

#include <algorithm>

namespace ncast::baselines {

using overlay::ColumnId;
using overlay::NodeId;

std::vector<NodeRate> naive_forwarding_rates(const overlay::ThreadMatrix& m) {
  std::vector<NodeRate> out;
  std::vector<bool> alive(m.k(), true);  // stream c still flowing on column c
  for (NodeId n : m.order()) {
    const auto& row = m.row(n);
    std::uint32_t rate = 0;
    for (ColumnId c : row.threads) {
      if (alive[c]) ++rate;
      // Below this row, the stream survives only if the row is working and
      // actually received it.
      alive[c] = alive[c] && !row.failed;
    }
    if (!row.failed) out.push_back(NodeRate{n, rate});
  }
  return out;
}

std::vector<NodeRate> informed_forwarding_rates(const overlay::ThreadMatrix& m,
                                                Rng& rng) {
  constexpr std::uint32_t kNoFragment = static_cast<std::uint32_t>(-1);
  std::vector<NodeRate> out;
  // carried[c]: which MDS fragment the hanging segment of column c carries.
  // Initially the server puts fragment c on column c.
  std::vector<std::uint32_t> carried(m.k());
  for (ColumnId c = 0; c < m.k(); ++c) carried[c] = c;

  for (NodeId n : m.order()) {
    const auto& row = m.row(n);
    // Distinct fragments received on the clipped columns.
    std::vector<std::uint32_t> have;
    for (ColumnId c : row.threads) {
      if (carried[c] != kNoFragment &&
          std::find(have.begin(), have.end(), carried[c]) == have.end()) {
        have.push_back(carried[c]);
      }
    }
    if (row.failed) {
      for (ColumnId c : row.threads) carried[c] = kNoFragment;
      continue;
    }
    out.push_back(NodeRate{n, static_cast<std::uint32_t>(have.size())});

    // Forwarding assignment: spread the distinct fragments across the
    // out-threads (distinct first, then reuse round-robin).
    if (have.empty()) {
      for (ColumnId c : row.threads) carried[c] = kNoFragment;
    } else {
      rng.shuffle(have);
      std::size_t i = 0;
      for (ColumnId c : row.threads) {
        carried[c] = have[i % have.size()];
        ++i;
      }
    }
  }
  return out;
}

}  // namespace ncast::baselines
