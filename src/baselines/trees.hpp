#pragma once
// Tree-shaped overlays from the paper's introduction: the single distribution
// "path" (chain) that arises when every node forwards to exactly one other,
// and the classic d-ary application-layer multicast tree. Under iid failures
// a node receives the stream only if every ancestor is alive — reliability
// decays with depth, which is the motivating problem for the whole paper.

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ncast::baselines {

/// Result of evaluating a tree overlay under one failure sample.
struct TreeOutcome {
  std::size_t nodes = 0;
  std::size_t receiving = 0;       ///< working nodes with all ancestors alive
  std::size_t working = 0;         ///< nodes that did not themselves fail
  std::size_t max_depth = 0;
  double mean_depth = 0.0;

  double receiving_fraction() const {
    return working == 0 ? 0.0 : static_cast<double>(receiving) / static_cast<double>(working);
  }
};

/// Evaluates a chain (path) of `n` nodes hanging off the server under iid
/// node failure probability `p`.
TreeOutcome evaluate_chain(std::size_t n, double p, Rng& rng);

/// Evaluates a complete `fanout`-ary tree of `n` nodes (breadth-first fill,
/// root children attach to the server) under iid failure probability `p`.
TreeOutcome evaluate_tree(std::size_t n, std::size_t fanout, double p, Rng& rng);

/// Analytic P(node at depth h receives) = (1-p)^h for comparison with the
/// sampled outcomes.
double analytic_receive_probability(std::size_t depth, double p);

}  // namespace ncast::baselines
