#pragma once
// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in ncast draws from an explicitly seeded Rng so
// that each experiment is reproducible bit-for-bit. The generator is
// xoshiro256** (Blackman & Vigna), seeded through splitmix64 so that small or
// correlated seeds still yield well-mixed state.

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace ncast {

/// Deterministic 64-bit PRNG (xoshiro256**) with convenience distributions.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be handed
/// to <random> facilities, but the member helpers below are preferred since
/// they are stable across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; distinct seeds give independent-looking streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from `seed` via splitmix64.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's nearly-divisionless method (unbiased).
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument("Rng::below: bound must be > 0");
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::between: lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Exponentially distributed value with the given rate (for Poisson
  /// processes). Requires rate > 0.
  double exponential(double rate) {
    if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate <= 0");
    double u;
    do {
      u = uniform();
    } while (u == 0.0);
    return -std::log(u) / rate;
  }

  /// Fisher–Yates shuffle of the whole container.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `count` distinct values uniformly from [0, population), in
  /// selection order (not sorted). Requires count <= population.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t population,
                                                        std::uint32_t count) {
    if (count > population) {
      throw std::invalid_argument("Rng::sample_without_replacement: count > population");
    }
    // Floyd's algorithm: O(count) expected memory and time.
    std::vector<std::uint32_t> chosen;
    chosen.reserve(count);
    for (std::uint32_t j = population - count; j < population; ++j) {
      auto t = static_cast<std::uint32_t>(below(j + 1));
      bool seen = false;
      for (std::uint32_t c : chosen) {
        if (c == t) {
          seen = true;
          break;
        }
      }
      chosen.push_back(seen ? j : t);
    }
    return chosen;
  }

  /// Derives an independent child generator; useful for giving each simulated
  /// entity its own stream without coupling their consumption patterns.
  Rng split() { return Rng((*this)() ^ 0xa02bdbf7bb3c0a7ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ncast
