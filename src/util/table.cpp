#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace ncast {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c];
      out << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    out << '\n';
  };

  emit_row(header_);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(width[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print() const { std::cout << render() << std::flush; }

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string fmt_sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, value);
  return buf;
}

}  // namespace ncast
