#pragma once
// Console table rendering for the benchmark harness. Every experiment binary
// prints its results as aligned tables so the paper-claim vs. measured
// comparison is legible in a terminal and in captured bench_output.txt.

#include <cstddef>
#include <string>
#include <vector>

namespace ncast {

/// Accumulates rows of strings and renders them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) as a string.
  std::string render() const;

  /// Convenience: renders to stdout.
  void print() const;

  std::size_t row_count() const { return rows_.size(); }

  /// Raw cells, exposed so the bench telemetry can embed the same rows that
  /// are printed to the terminal into BENCH_<name>.json.
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimal places.
std::string fmt(double value, int decimals = 4);

/// Formats a double in scientific notation with the given precision.
std::string fmt_sci(double value, int precision = 3);

}  // namespace ncast
