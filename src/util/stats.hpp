#pragma once
// Streaming statistics helpers used by the simulators and benches.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace ncast {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Standard error of the mean; 0 with fewer than two samples.
  double stderr_mean() const {
    return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Collects raw samples for quantile queries; intended for bench-scale data
/// volumes (up to a few million doubles).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  /// q in [0,1]; linear interpolation between order statistics.
  double quantile(double q) {
    if (samples_.empty()) throw std::logic_error("SampleSet::quantile: empty");
    if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of range");
    sort_if_needed();
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double median() { return quantile(0.5); }

  const std::vector<double>& raw() const { return samples_; }

 private:
  void sort_if_needed() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bucket so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {
    if (buckets == 0) throw std::invalid_argument("Histogram: zero buckets");
    if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  }

  void add(double x) {
    const double t = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
    idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
  }

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::uint64_t total() const { return total_; }
  double bucket_low(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Ordinary least squares fit y = a + b*x; used by benches to check
/// linear/exponential scaling laws (fit on transformed coordinates).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};

LinearFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace ncast
