#include "util/stats.hpp"

namespace ncast {

LinearFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("fit_line: size mismatch");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("fit_line: need at least two points");
  }
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.intercept = sy / n;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double e = ys[i] - (fit.intercept + fit.slope * xs[i]);
      ss_res += e * e;
    }
    fit.r2 = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

}  // namespace ncast
