// Event-driven asynchronous broadcast tests: decoding under latency jitter,
// acyclic no-loss behavior, cyclic overlays, and failure handling.

#include "sim/async_broadcast.hpp"

#include <gtest/gtest.h>

#include "overlay/curtain_server.hpp"
#include "overlay/flow_graph.hpp"
#include "overlay/random_graph.hpp"

namespace ncast {
namespace {

using namespace sim;

graph::Digraph curtain_graph(std::uint32_t k, std::uint32_t d, int n,
                             std::uint64_t seed) {
  overlay::CurtainServer server(k, d, Rng(seed));
  for (int i = 0; i < n; ++i) server.join();
  return build_flow_graph(server.matrix()).graph;
}

TEST(AsyncBroadcast, Validation) {
  graph::Digraph g(2);
  g.add_edge(0, 1);
  AsyncConfig cfg;
  EXPECT_THROW(simulate_async_broadcast(g, 9, cfg), std::out_of_range);
  cfg.generation_size = 0;
  EXPECT_THROW(simulate_async_broadcast(g, 0, cfg), std::invalid_argument);
}

TEST(AsyncBroadcast, SingleLinkDelivers) {
  graph::Digraph g(2);
  g.add_edge(0, 1);
  AsyncConfig cfg;
  cfg.generation_size = 4;
  cfg.symbols = 4;
  cfg.seed = 1;
  const auto report = simulate_async_broadcast(g, 0, cfg);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_TRUE(report.outcomes[0].decoded);
  EXPECT_EQ(report.outcomes[0].max_flow, 1);
  EXPECT_GE(report.outcomes[0].first_arrival, 0.0);
  EXPECT_GT(report.outcomes[0].decode_time, report.outcomes[0].first_arrival);
}

TEST(AsyncBroadcast, CurtainDecodesEverywhereUnderJitter) {
  const auto g = curtain_graph(8, 3, 50, 2);
  AsyncConfig cfg;
  cfg.generation_size = 24;  // wide enough that the mid-window slope is
                             // jitter-insensitive
  cfg.symbols = 8;
  cfg.seed = 3;
  const auto report = simulate_async_broadcast(g, 0, cfg);
  EXPECT_DOUBLE_EQ(report.decoded_fraction(), 1.0);
  // Acyclic overlay: the achieved rate should approach the min-cut even with
  // heavy latency jitter (the Section 6 no-loss-from-delay-spread claim).
  EXPECT_GT(report.mean_rate_vs_cut(), 0.85);
}

TEST(AsyncBroadcast, InnovativeCountIsBounded) {
  const auto g = curtain_graph(6, 2, 20, 4);
  AsyncConfig cfg;
  cfg.generation_size = 6;
  cfg.symbols = 4;
  cfg.seed = 5;
  const auto report = simulate_async_broadcast(g, 0, cfg);
  // Each of the 20 receivers can absorb at most g innovative packets.
  EXPECT_LE(report.packets_innovative, 20u * 6u);
  EXPECT_GE(report.packets_sent, report.packets_innovative);
}

TEST(AsyncBroadcast, CyclicRandomGraphStillDecodes) {
  overlay::RandomGraphOverlay o(3, 3, Rng(6));
  for (int i = 0; i < 60; ++i) o.join();
  AsyncConfig cfg;
  cfg.generation_size = 8;
  cfg.symbols = 8;
  cfg.seed = 7;
  const auto report = simulate_async_broadcast(
      o.graph(), overlay::RandomGraphOverlay::kServer, cfg);
  // The seed children are sinks with min-cut 3; newcomers too. Everyone
  // reachable decodes despite cycles.
  EXPECT_DOUBLE_EQ(report.decoded_fraction(), 1.0);
}

TEST(AsyncBroadcast, DeadEdgesCarryNothing) {
  graph::Digraph g(3);
  const auto e01 = g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.remove_edge(e01);
  AsyncConfig cfg;
  cfg.generation_size = 3;
  cfg.symbols = 3;
  cfg.seed = 8;
  const auto report = simulate_async_broadcast(g, 0, cfg);
  for (const auto& o : report.outcomes) {
    EXPECT_EQ(o.max_flow, 1);
    EXPECT_TRUE(o.decoded);
  }
}

TEST(AsyncBroadcast, UnreachableVertexStaysEmpty) {
  graph::Digraph g(3);
  g.add_edge(0, 1);
  AsyncConfig cfg;
  cfg.generation_size = 2;
  cfg.symbols = 2;
  cfg.seed = 9;
  const auto report = simulate_async_broadcast(g, 0, cfg);
  for (const auto& o : report.outcomes) {
    if (o.vertex == 2) {
      EXPECT_FALSE(o.decoded);
      EXPECT_EQ(o.rank_achieved, 0u);
      EXPECT_LT(o.first_arrival, 0.0);
    }
  }
}

TEST(AsyncBroadcast, DeterministicGivenSeed) {
  const auto g = curtain_graph(6, 2, 15, 10);
  AsyncConfig cfg;
  cfg.generation_size = 4;
  cfg.symbols = 4;
  cfg.seed = 11;
  const auto a = simulate_async_broadcast(g, 0, cfg);
  const auto b = simulate_async_broadcast(g, 0, cfg);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_innovative, b.packets_innovative);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.outcomes[i].decode_time, b.outcomes[i].decode_time);
  }
}

}  // namespace
}  // namespace ncast
