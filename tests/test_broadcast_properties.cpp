// Parameterized property sweep for the packet-level broadcast simulator:
// across overlay shapes and failure rates, the network-coding invariants
// must hold node by node:
//   - min-cut 0  =>  rank stays 0 (no information without capacity)
//   - min-cut >= 1 => decodes with ample rounds (capacity is achievable)
//   - nobody is corrupted without a jammer
//   - achieved rank never exceeds what capacity allows in the time available

#include <gtest/gtest.h>

#include <tuple>

#include "overlay/curtain_server.hpp"
#include "sim/broadcast.hpp"

namespace ncast {
namespace {

using namespace sim;

class BroadcastProperties
    : public ::testing::TestWithParam<std::tuple<int, int, int, double, int>> {
};

TEST_P(BroadcastProperties, CapacityInvariantsHold) {
  const auto [k, d, n, p, seed] = GetParam();
  overlay::CurtainServer server(static_cast<std::uint32_t>(k),
                                static_cast<std::uint32_t>(d), Rng(seed));
  for (int i = 0; i < n; ++i) server.join();
  auto m = server.matrix();
  Rng rng(static_cast<std::uint64_t>(seed) * 131);
  for (auto node : m.nodes_in_order()) {
    if (rng.chance(p)) m.mark_failed(node);
  }

  BroadcastConfig cfg;
  cfg.generation_size = 8;
  cfg.symbols = 8;
  cfg.seed = static_cast<std::uint64_t>(seed) * 977 + 5;
  const auto report = simulate_broadcast(m, cfg);

  for (const auto& o : report.outcomes) {
    if (o.max_flow == 0) {
      EXPECT_EQ(o.rank_achieved, 0u) << "node " << o.node;
      EXPECT_FALSE(o.decoded);
    } else {
      EXPECT_TRUE(o.decoded) << "node " << o.node << " flow " << o.max_flow;
      // Cannot decode faster than capacity: g innovative packets need at
      // least ceil(g / max_flow) delivery rounds after the first arrival.
      const std::size_t active =
          o.decode_round - static_cast<std::size_t>(o.depth) + 1;
      EXPECT_GE(active * static_cast<std::size_t>(o.max_flow),
                cfg.generation_size)
          << "node " << o.node;
    }
    EXPECT_FALSE(o.corrupted) << "no jammers were configured";
    EXPECT_LE(o.max_flow, static_cast<std::int64_t>(d));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BroadcastProperties,
    ::testing::Values(std::make_tuple(6, 2, 40, 0.00, 1),
                      std::make_tuple(6, 2, 40, 0.10, 2),
                      std::make_tuple(8, 3, 60, 0.05, 3),
                      std::make_tuple(8, 3, 60, 0.20, 4),
                      std::make_tuple(12, 4, 80, 0.10, 5),
                      std::make_tuple(16, 2, 100, 0.05, 6),
                      std::make_tuple(10, 5, 50, 0.15, 7),
                      std::make_tuple(12, 3, 120, 0.30, 8)));

}  // namespace
}  // namespace ncast
