// Packet-level broadcast simulation tests: the network coding theorem in
// action (rank == max-flow), failure behavior, and the Section 5/7 attacks.

#include "sim/broadcast.hpp"

#include <gtest/gtest.h>

#include "overlay/curtain_server.hpp"

namespace ncast {
namespace {

using namespace sim;
using overlay::CurtainServer;
using overlay::InsertPolicy;
using overlay::NodeId;

overlay::ThreadMatrix grow_overlay(std::uint32_t k, std::uint32_t d, int n,
                                   std::uint64_t seed) {
  CurtainServer server(k, d, Rng(seed));
  for (int i = 0; i < n; ++i) server.join();
  return server.matrix();
}

TEST(Broadcast, FailureFreeEveryoneDecodesAtFullRate) {
  const auto m = grow_overlay(8, 3, 40, 1);
  BroadcastConfig cfg;
  cfg.generation_size = 8;
  cfg.symbols = 8;
  cfg.seed = 2;
  const auto report = simulate_broadcast(m, cfg);
  ASSERT_EQ(report.outcomes.size(), 40u);
  for (const auto& o : report.outcomes) {
    EXPECT_EQ(o.max_flow, 3);
    EXPECT_TRUE(o.decoded) << "node " << o.node;
    EXPECT_FALSE(o.corrupted);
    EXPECT_EQ(o.rank_achieved, 8u);
  }
  EXPECT_DOUBLE_EQ(report.decoded_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(report.corrupted_fraction(), 0.0);
}

TEST(Broadcast, DecodeRoundTracksDepth) {
  const auto m = grow_overlay(6, 2, 30, 3);
  BroadcastConfig cfg;
  cfg.generation_size = 4;
  cfg.symbols = 4;
  cfg.seed = 4;
  const auto report = simulate_broadcast(m, cfg);
  for (const auto& o : report.outcomes) {
    ASSERT_TRUE(o.decoded);
    // The first packet arrives at round == depth, and at most d=2 packets
    // arrive per round, so full rank g=4 needs at least depth + 1 rounds.
    EXPECT_GE(o.decode_round, static_cast<std::size_t>(o.depth) + 1);
  }
}

TEST(Broadcast, OfflineNodesCapDownstreamRankAtMaxflow) {
  const auto m = grow_overlay(8, 3, 60, 5);
  std::vector<NodeBehavior> behavior(60, NodeBehavior::kHonest);
  for (NodeId n : {5u, 11u, 17u, 23u}) behavior[n] = NodeBehavior::kOffline;

  BroadcastConfig cfg;
  cfg.generation_size = 8;
  cfg.symbols = 8;
  cfg.seed = 6;
  const auto report = simulate_broadcast(m, cfg, behavior);
  ASSERT_EQ(report.outcomes.size(), 56u);  // offline nodes not reported
  for (const auto& o : report.outcomes) {
    if (o.max_flow > 0) {
      // Positive min-cut: rank accumulates over rounds, so with ample
      // rounds the node decodes — but no faster than capacity allows:
      // rank can grow by at most max_flow per round after the first packet
      // arrives at round == depth.
      EXPECT_TRUE(o.decoded) << "node " << o.node;
      const std::size_t active_rounds =
          o.decode_round - static_cast<std::size_t>(o.depth) + 1;
      EXPECT_GE(active_rounds * static_cast<std::size_t>(o.max_flow),
                cfg.generation_size)
          << "node " << o.node << " decoded faster than its min-cut";
    } else {
      // Cut off entirely: nothing ever arrives.
      EXPECT_EQ(o.rank_achieved, 0u);
      EXPECT_FALSE(o.decoded);
    }
  }
}

TEST(Broadcast, MatrixFailedTagsActOffline) {
  auto m = grow_overlay(6, 2, 20, 7);
  m.mark_failed(0);
  BroadcastConfig cfg;
  cfg.generation_size = 4;
  cfg.symbols = 4;
  cfg.seed = 8;
  const auto report = simulate_broadcast(m, cfg);
  EXPECT_EQ(report.outcomes.size(), 19u);
  for (const auto& o : report.outcomes) EXPECT_NE(o.node, 0u);
}

TEST(Broadcast, RankMatchesMaxflowThroughput) {
  // The core claim of [1]/[5]: with ample rounds, achieved rank per node is
  // limited only by min-cut; nodes with max_flow == d decode fully even with
  // failures elsewhere.
  auto m = grow_overlay(10, 3, 80, 9);
  std::vector<NodeBehavior> behavior(80, NodeBehavior::kHonest);
  for (NodeId n = 0; n < 80; n += 13) behavior[n] = NodeBehavior::kOffline;

  BroadcastConfig cfg;
  cfg.generation_size = 12;
  cfg.symbols = 8;
  cfg.seed = 10;
  const auto report = simulate_broadcast(m, cfg, behavior);
  for (const auto& o : report.outcomes) {
    if (o.max_flow >= 3) {
      EXPECT_TRUE(o.decoded) << "node " << o.node << " flow " << o.max_flow;
    }
  }
}

TEST(Broadcast, EntropyAttackStarvesDownstream) {
  // Same topology, honest vs entropy-attacking relays: attacked run must
  // deliver strictly less rank downstream.
  const auto m = grow_overlay(6, 2, 50, 11);

  BroadcastConfig cfg;
  cfg.generation_size = 8;
  cfg.symbols = 8;
  cfg.seed = 12;
  const auto honest = simulate_broadcast(m, cfg);

  std::vector<NodeBehavior> behavior(50, NodeBehavior::kHonest);
  for (NodeId n = 0; n < 50; n += 3) behavior[n] = NodeBehavior::kEntropyAttack;
  const auto attacked = simulate_broadcast(m, cfg, behavior);

  std::size_t honest_rank = 0, attacked_rank = 0;
  for (const auto& o : honest.outcomes) honest_rank += o.rank_achieved;
  for (const auto& o : attacked.outcomes) attacked_rank += o.rank_achieved;
  EXPECT_LT(attacked_rank, honest_rank);
  EXPECT_LT(attacked.decoded_fraction(), honest.decoded_fraction());
  // Entropy attacks are not corruption: whatever decodes, decodes correctly.
  EXPECT_DOUBLE_EQ(attacked.corrupted_fraction(), 0.0);
}

TEST(Broadcast, JammerContaminatesAlmostEveryone) {
  // Section 7: a few jammers injecting garbage contaminate almost every
  // packet of almost every user once mixed.
  const auto m = grow_overlay(8, 3, 60, 13);
  std::vector<NodeBehavior> behavior(60, NodeBehavior::kHonest);
  behavior[2] = NodeBehavior::kJammer;
  behavior[9] = NodeBehavior::kJammer;

  BroadcastConfig cfg;
  cfg.generation_size = 8;
  cfg.symbols = 8;
  cfg.seed = 14;
  const auto report = simulate_broadcast(m, cfg, behavior);
  std::size_t corrupted = 0, decoded = 0, jammer_outcomes = 0;
  for (const auto& o : report.outcomes) {
    if (o.node == 2 || o.node == 9) {
      ++jammer_outcomes;
      continue;
    }
    if (o.decoded) {
      ++decoded;
      if (o.corrupted) ++corrupted;
    }
  }
  EXPECT_EQ(jammer_outcomes, 2u);
  ASSERT_GT(decoded, 0u);
  // The vast majority of deep nodes end up with garbage.
  EXPECT_GT(static_cast<double>(corrupted) / static_cast<double>(decoded), 0.5);
}

TEST(Broadcast, ErgodicPacketLossOnlySlowsThingsDown) {
  // Section 2's ergodic failures: packet loss costs rate, never correctness.
  const auto m = grow_overlay(8, 3, 40, 21);
  BroadcastConfig cfg;
  cfg.generation_size = 8;
  cfg.symbols = 8;
  cfg.seed = 22;
  const auto clean = simulate_broadcast(m, cfg);

  cfg.loss_p = 0.3;
  cfg.rounds = clean.rounds * 4;  // ample budget
  const auto lossy = simulate_broadcast(m, cfg);
  EXPECT_DOUBLE_EQ(lossy.decoded_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(lossy.corrupted_fraction(), 0.0);

  // ...but decoding takes longer under loss.
  double clean_sum = 0, lossy_sum = 0;
  for (const auto& o : clean.outcomes) clean_sum += static_cast<double>(o.decode_round);
  for (const auto& o : lossy.outcomes) lossy_sum += static_cast<double>(o.decode_round);
  EXPECT_GT(lossy_sum, clean_sum);
}

TEST(Broadcast, ExplicitRoundBudgetHonored) {
  const auto m = grow_overlay(4, 2, 10, 15);
  BroadcastConfig cfg;
  cfg.generation_size = 4;
  cfg.symbols = 4;
  cfg.rounds = 3;  // too few to decode
  cfg.seed = 16;
  const auto report = simulate_broadcast(m, cfg);
  EXPECT_EQ(report.rounds, 3u);
  for (const auto& o : report.outcomes) {
    if (o.depth > 2) {
      EXPECT_FALSE(o.decoded);
    }
  }
}

}  // namespace
}  // namespace ncast
