// Structured codec family: round trips for every generation structure, and —
// the load-bearing part — bit-for-bit parity between decoder policies. Every
// policy is exact linear algebra, so on the same packet sequence the
// innovative/redundant verdicts and the decoded bytes must be identical
// across the dense Decoder, BandDecoder, ScatterDecoder, and OverlapDecoder
// wherever more than one is sound. The ctest suite re-runs this binary with
// NCAST_FORCE_SCALAR=1 (tests/CMakeLists.txt), so parity also holds under
// the portable GF kernels.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "coding/band_decoder.hpp"
#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "coding/overlap_decoder.hpp"
#include "coding/recoder.hpp"
#include "coding/structure.hpp"
#include "coding/structured_decoder.hpp"
#include "coding/structured_recoder.hpp"
#include "gf/gf256.hpp"
#include "gf/gf2_16.hpp"
#include "util/rng.hpp"

namespace ncast {
namespace {

using coding::DecoderPolicy;
using coding::GenerationStructure;
using coding::StructureKind;

template <typename Field>
std::vector<typename Field::value_type> random_flat(std::size_t n, Rng& rng) {
  std::vector<typename Field::value_type> v(n);
  for (auto& x : v) {
    x = static_cast<typename Field::value_type>(rng.below(Field::order));
  }
  return v;
}

template <typename Field>
std::vector<std::vector<typename Field::value_type>> rows_of(
    const std::vector<typename Field::value_type>& flat, std::size_t symbols) {
  std::vector<std::vector<typename Field::value_type>> rows;
  for (std::size_t i = 0; i * symbols < flat.size(); ++i) {
    rows.emplace_back(flat.begin() + i * symbols,
                      flat.begin() + (i + 1) * symbols);
  }
  return rows;
}

/// Encode-until-complete round trip through the auto-selected policy.
template <typename Field>
void run_round_trip(const GenerationStructure& s, std::size_t symbols,
                    std::uint64_t seed, DecoderPolicy want_policy) {
  Rng rng(seed);
  const auto flat = random_flat<Field>(s.g * symbols, rng);
  const coding::SourceEncoder<Field> enc(0, s, flat, symbols);
  coding::StructuredDecoder<Field> dec(0, s, symbols);
  EXPECT_EQ(dec.policy(), want_policy);
  EXPECT_EQ(dec.structure(), s);
  EXPECT_EQ(dec.generation_size(), s.g);
  EXPECT_EQ(dec.symbols(), symbols);

  coding::CodedPacket<Field> p;
  std::size_t sent = 0;
  while (!dec.complete()) {
    ASSERT_LT(sent, 50 * s.g) << "structure failed to converge";
    enc.emit_into(p, rng);
    EXPECT_TRUE(s.matches_packet(p.band_offset, p.coeffs.size(), p.class_id));
    dec.absorb(p);
    ++sent;
  }
  EXPECT_EQ(dec.rank(), s.g);
  EXPECT_EQ(dec.packets_received(), sent);
  EXPECT_EQ(dec.packets_innovative() + dec.packets_redundant(), sent);
  EXPECT_EQ(dec.source_packets(), rows_of<Field>(flat, symbols));
}

TEST(StructuredCodec, DenseRoundTrip) {
  run_round_trip<gf::Gf256>(GenerationStructure::dense(24), 40, 1,
                            DecoderPolicy::kDense);
}

TEST(StructuredCodec, BandedRoundTrip) {
  run_round_trip<gf::Gf256>(GenerationStructure::banded(32, 8), 40, 2,
                            DecoderPolicy::kBand);
}

TEST(StructuredCodec, BandedWrapRoundTripDecodesDense) {
  run_round_trip<gf::Gf256>(GenerationStructure::banded(32, 8, true), 40, 3,
                            DecoderPolicy::kDense);
}

TEST(StructuredCodec, OverlappedRoundTrip) {
  run_round_trip<gf::Gf256>(GenerationStructure::overlapping(32, 8, 2), 40, 4,
                            DecoderPolicy::kOverlap);
}

TEST(StructuredCodec, BandedRoundTripGf2_16) {
  run_round_trip<gf::Gf2_16>(GenerationStructure::banded(16, 4), 24, 5,
                             DecoderPolicy::kBand);
}

TEST(StructuredCodec, OverlappedRoundTripGf2_16) {
  run_round_trip<gf::Gf2_16>(GenerationStructure::overlapping(16, 6, 2), 24, 6,
                             DecoderPolicy::kOverlap);
}

TEST(StructuredCodec, PolicySelection) {
  EXPECT_EQ(coding::select_policy(GenerationStructure::dense(8)),
            DecoderPolicy::kDense);
  EXPECT_EQ(coding::select_policy(GenerationStructure::banded(8, 4)),
            DecoderPolicy::kBand);
  EXPECT_EQ(coding::select_policy(GenerationStructure::banded(8, 4, true)),
            DecoderPolicy::kDense);
  EXPECT_EQ(coding::select_policy(GenerationStructure::overlapping(8, 4, 1)),
            DecoderPolicy::kOverlap);
  EXPECT_STREQ(coding::to_string(DecoderPolicy::kAuto), "auto");
  EXPECT_STREQ(coding::to_string(DecoderPolicy::kBand), "band");
  EXPECT_STREQ(coding::to_string(DecoderPolicy::kOverlap), "overlap");
}

// The dense-equivalence parity pin: one dense packet stream (with redundant
// tail) through every decoder that is sound for it. Verdict sequences and
// decoded outputs must be bit-identical — the sparse decoders are exact, not
// approximate.
TEST(StructuredCodec, DensePacketStreamParityAcrossAllDecoders) {
  using Field = gf::Gf256;
  const std::size_t g = 20, symbols = 48;
  Rng rng(7);
  const auto flat = random_flat<Field>(g * symbols, rng);
  const auto dense = GenerationStructure::dense(g);
  const coding::SourceEncoder<Field> enc(0, dense, flat, symbols);
  std::vector<coding::CodedPacket<Field>> packets;
  for (std::size_t i = 0; i < g + 8; ++i) packets.push_back(enc.emit(rng));

  coding::Decoder<Field> legacy(0, g, symbols);
  coding::BandDecoder<Field> band_dense(0, dense, symbols);
  // width == g banded is dense in all but wire kind; same elimination.
  coding::BandDecoder<Field> band_full(0, GenerationStructure::banded(g, g),
                                       symbols);
  coding::StructuredDecoder<Field> scatter(0, dense, symbols,
                                           DecoderPolicy::kDense);
  // A single full-width class with no overlap is the dense decoder too.
  coding::OverlapDecoder<Field> overlap(
      0, GenerationStructure::overlapping(g, g, 0), symbols);

  for (const auto& p : packets) {
    const bool want = legacy.absorb(p);
    EXPECT_EQ(band_dense.absorb(p), want);
    EXPECT_EQ(band_full.absorb(p), want);
    EXPECT_EQ(scatter.absorb(p), want);
    EXPECT_EQ(overlap.absorb(p), want);
  }
  ASSERT_TRUE(legacy.complete());
  const auto want = legacy.source_packets();
  EXPECT_EQ(want, rows_of<Field>(flat, symbols));
  EXPECT_EQ(band_dense.source_packets(), want);
  EXPECT_EQ(band_full.source_packets(), want);
  EXPECT_EQ(scatter.source_packets(), want);
  EXPECT_EQ(overlap.source_packets(), want);
}

// Same idea on a genuinely banded stream: the band policy against the dense
// (scatter) policy. Both are exact, so verdicts match packet for packet.
TEST(StructuredCodec, BandedStreamParityBandVsDensePolicy) {
  using Field = gf::Gf256;
  const std::size_t g = 32, symbols = 40;
  const auto s = GenerationStructure::banded(g, 8);
  Rng rng(8);
  const auto flat = random_flat<Field>(g * symbols, rng);
  const coding::SourceEncoder<Field> enc(0, s, flat, symbols);

  coding::StructuredDecoder<Field> band(0, s, symbols, DecoderPolicy::kBand);
  coding::StructuredDecoder<Field> dense(0, s, symbols, DecoderPolicy::kDense);
  coding::CodedPacket<Field> p;
  std::size_t sent = 0;
  while (!band.complete() || !dense.complete()) {
    ASSERT_LT(sent, 50 * g);
    enc.emit_into(p, rng);
    EXPECT_EQ(band.absorb(p), dense.absorb(p));
    ++sent;
  }
  EXPECT_EQ(band.rank(), dense.rank());
  const auto want = rows_of<Field>(flat, symbols);
  EXPECT_EQ(band.source_packets(), want);
  EXPECT_EQ(dense.source_packets(), want);
}

// The legacy per-row constructor and the flat dense constructor are the same
// encoder: identical RNG stream, identical packets.
TEST(StructuredCodec, LegacyAndFlatDenseEncodersEmitIdenticalStreams) {
  using Field = gf::Gf256;
  const std::size_t g = 12, symbols = 32;
  Rng rng(9);
  const auto flat = random_flat<Field>(g * symbols, rng);
  const coding::SourceEncoder<Field> legacy(0, rows_of<Field>(flat, symbols));
  const coding::SourceEncoder<Field> dense(
      0, GenerationStructure::dense(g), flat, symbols);
  EXPECT_EQ(legacy.structure(), dense.structure());

  Rng a(10), b(10);
  for (int i = 0; i < 20; ++i) {
    const auto pa = legacy.emit(a);
    const auto pb = dense.emit(b);
    EXPECT_EQ(pa.coeffs, pb.coeffs);
    EXPECT_EQ(pa.payload, pb.payload);
    EXPECT_EQ(pa.band_offset, pb.band_offset);
    EXPECT_EQ(pa.class_id, pb.class_id);
  }
}

// g systematic packets complete any structure: placement puts each unit
// vector in a legal band/class, and for overlapped structures the boundary
// propagation carries decoded packets into classes that never saw them.
template <typename Field>
void run_systematic_round_trip(const GenerationStructure& s,
                               std::size_t symbols, std::uint64_t seed) {
  Rng rng(seed);
  const auto flat = random_flat<Field>(s.g * symbols, rng);
  const coding::SourceEncoder<Field> enc(0, s, flat, symbols);
  coding::StructuredDecoder<Field> dec(0, s, symbols);
  for (std::size_t i = 0; i < s.g; ++i) {
    const auto p = enc.emit_systematic(i);
    EXPECT_TRUE(s.matches_packet(p.band_offset, p.coeffs.size(), p.class_id))
        << "index " << i;
    EXPECT_EQ(p.payload, std::vector<typename Field::value_type>(
                             flat.begin() + i * symbols,
                             flat.begin() + (i + 1) * symbols));
    dec.absorb(p);
  }
  ASSERT_TRUE(dec.complete());
  EXPECT_EQ(dec.source_packets(), rows_of<Field>(flat, symbols));
  EXPECT_THROW(enc.emit_systematic(s.g), std::out_of_range);
}

TEST(StructuredCodec, SystematicCompletesBanded) {
  run_systematic_round_trip<gf::Gf256>(GenerationStructure::banded(24, 7), 16,
                                       11);
}

TEST(StructuredCodec, SystematicCompletesOverlapped) {
  run_systematic_round_trip<gf::Gf256>(GenerationStructure::overlapping(24, 8, 3),
                                       16, 12);
}

TEST(StructuredCodec, StrayPacketsAreDataNotErrors) {
  using Field = gf::Gf256;
  const std::size_t g = 16, symbols = 24;
  const auto banded = GenerationStructure::banded(g, 4);
  const auto over = GenerationStructure::overlapping(g, 8, 2);
  Rng rng(13);
  const auto flat = random_flat<Field>(g * symbols, rng);
  const coding::SourceEncoder<Field> enc(0, banded, flat, symbols);

  coding::BandDecoder<Field> band(0, banded, symbols);
  coding::StructuredDecoder<Field> scatter(0, banded, symbols,
                                           DecoderPolicy::kDense);
  coding::OverlapDecoder<Field> overlap(0, over, symbols);

  auto p = enc.emit(rng);
  auto stray = p;
  stray.generation = 99;  // wrong generation
  EXPECT_FALSE(band.absorb(stray));
  EXPECT_FALSE(scatter.absorb(stray));
  stray = p;
  stray.payload.resize(symbols - 1);  // wrong payload size
  EXPECT_FALSE(band.absorb(stray));
  stray = p;
  stray.band_offset = static_cast<std::uint16_t>(g);  // offset out of range
  EXPECT_FALSE(band.absorb(stray));
  stray = p;
  stray.band_offset = static_cast<std::uint16_t>(g - 2);  // runs past g
  EXPECT_FALSE(band.absorb(stray));
  stray = p;
  stray.class_id = 1;  // bands carry no class id
  EXPECT_FALSE(band.absorb(stray));

  // Overlap decoder: class id out of range must not index out of bounds.
  auto bad = p;
  bad.band_offset = 0;
  bad.coeffs.resize(8);
  bad.class_id = static_cast<std::uint16_t>(over.num_classes());
  EXPECT_FALSE(overlap.absorb(bad));

  EXPECT_EQ(band.rank(), 0u);
  EXPECT_EQ(scatter.rank(), 0u);
  // Rejects count as received + redundant, never innovative.
  EXPECT_EQ(band.packets_received(), 5u);
  EXPECT_EQ(band.packets_redundant(), 5u);
  EXPECT_EQ(scatter.packets_received(), 1u);
  EXPECT_EQ(overlap.packets_received(), 1u);
  EXPECT_EQ(overlap.packets_redundant(), 1u);

  // Still healthy after the abuse.
  EXPECT_TRUE(band.absorb(p));
  EXPECT_TRUE(scatter.absorb(p));
}

TEST(StructuredCodec, ConstructorValidation) {
  using Field = gf::Gf256;
  // Wrap bands and overlapping classes break the band decoder's window
  // invariant: configuration errors, so they throw (unlike stray packets).
  EXPECT_THROW(coding::BandDecoder<Field>(
                   0, GenerationStructure::banded(16, 4, true), 8),
               std::invalid_argument);
  EXPECT_THROW(coding::BandDecoder<Field>(
                   0, GenerationStructure::overlapping(16, 4, 1), 8),
               std::invalid_argument);
  EXPECT_THROW(
      coding::OverlapDecoder<Field>(0, GenerationStructure::dense(16), 8),
      std::invalid_argument);
  EXPECT_THROW(
      coding::OverlapDecoder<Field>(0, GenerationStructure::banded(16, 4), 8),
      std::invalid_argument);
  // A forced policy that is unsound for the structure fails at construction.
  EXPECT_THROW(coding::StructuredDecoder<Field>(0, GenerationStructure::dense(16),
                                                8, DecoderPolicy::kOverlap),
               std::invalid_argument);
  EXPECT_THROW(
      coding::StructuredDecoder<Field>(0, GenerationStructure::banded(16, 4, true),
                                       8, DecoderPolicy::kBand),
      std::invalid_argument);
}

TEST(StructuredCodec, IncompleteDecoderRefusesReadOff) {
  using Field = gf::Gf256;
  coding::BandDecoder<Field> band(0, GenerationStructure::banded(16, 4), 8);
  EXPECT_THROW(band.source_packet(0), std::logic_error);
  coding::OverlapDecoder<Field> over(
      0, GenerationStructure::overlapping(16, 8, 2), 8);
  EXPECT_THROW(over.source_packet(0), std::logic_error);
}

// Deferred back-substitution is idempotent: repeated read-offs (each of which
// may re-enter back_substitute) keep returning the same decoded bytes.
TEST(StructuredCodec, BandDecoderReadOffIsIdempotent) {
  using Field = gf::Gf256;
  const std::size_t g = 16, symbols = 24;
  const auto s = GenerationStructure::banded(g, 5);
  Rng rng(14);
  const auto flat = random_flat<Field>(g * symbols, rng);
  const coding::SourceEncoder<Field> enc(0, s, flat, symbols);
  coding::BandDecoder<Field> dec(0, s, symbols);
  coding::CodedPacket<Field> p;
  std::size_t sent = 0;
  while (!dec.complete()) {
    ASSERT_LT(sent++, 50 * g);
    enc.emit_into(p, rng);
    dec.absorb(p);
  }
  const auto want = rows_of<Field>(flat, symbols);
  EXPECT_EQ(dec.source_packet(3), want[3]);  // triggers back_substitute
  EXPECT_EQ(dec.source_packets(), want);     // re-enters it; must be a no-op
  EXPECT_EQ(dec.source_packet(g - 1), want[g - 1]);
  EXPECT_THROW(dec.source_packet(g), std::out_of_range);
  // Absorbing after read-off stays sound: the space is full, so everything
  // is redundant.
  enc.emit_into(p, rng);
  EXPECT_FALSE(dec.absorb(p));
  EXPECT_EQ(dec.source_packets(), want);
}

TEST(StructuredCodec, OverlapDecoderProgressTracking) {
  using Field = gf::Gf256;
  const std::size_t g = 24, symbols = 16;
  const auto s = GenerationStructure::overlapping(g, 8, 2);
  Rng rng(15);
  const auto flat = random_flat<Field>(g * symbols, rng);
  const coding::SourceEncoder<Field> enc(0, s, flat, symbols);
  coding::OverlapDecoder<Field> dec(0, s, symbols);
  EXPECT_EQ(dec.num_classes(), s.num_classes());
  EXPECT_EQ(dec.decoded_count(), 0u);
  coding::CodedPacket<Field> p;
  std::size_t sent = 0, last_rank = 0;
  while (!dec.complete()) {
    ASSERT_LT(sent++, 50 * g);
    enc.emit_into(p, rng);
    dec.absorb(p);
    EXPECT_LE(dec.rank(), g);
    EXPECT_GE(dec.rank(), last_rank);  // the lower bound never regresses
    last_rank = dec.rank();
  }
  EXPECT_EQ(dec.rank(), g);
  EXPECT_EQ(dec.decoded_count(), g);
  EXPECT_EQ(dec.source_packets(), rows_of<Field>(flat, symbols));
}

// Dense structured recoding is the original recoder draw for draw.
TEST(StructuredRecoding, DenseDelegatesDrawForDraw) {
  using Field = gf::Gf256;
  const std::size_t g = 12, symbols = 32;
  Rng rng(16);
  const auto flat = random_flat<Field>(g * symbols, rng);
  const coding::SourceEncoder<Field> enc(0, GenerationStructure::dense(g), flat,
                                         symbols);
  coding::Recoder<Field> plain(0, g, symbols);
  coding::StructuredRecoder<Field> structured(0, GenerationStructure::dense(g),
                                              symbols);
  for (std::size_t i = 0; i < g / 2; ++i) {
    const auto p = enc.emit(rng);
    EXPECT_EQ(plain.absorb(p), structured.absorb(p));
  }
  EXPECT_EQ(plain.rank(), structured.rank());
  Rng a(17), b(17);
  coding::CodedPacket<Field> pa, pb;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(plain.emit_into(pa, a));
    ASSERT_TRUE(structured.emit_into(pb, b));
    EXPECT_EQ(pa.coeffs, pb.coeffs);
    EXPECT_EQ(pa.payload, pb.payload);
    EXPECT_EQ(pb.band_offset, 0);
    EXPECT_EQ(pb.class_id, 0);
  }
}

// Banded recoding densifies (mixing bands at different offsets widens the
// support): the recoder absorbs compact strips but emits dense packets, and
// downstream must decode with the dense structure.
TEST(StructuredRecoding, BandedRecodingDensifies) {
  using Field = gf::Gf256;
  const std::size_t g = 24, symbols = 32;
  const auto s = GenerationStructure::banded(g, 6);
  Rng rng(18);
  const auto flat = random_flat<Field>(g * symbols, rng);
  const coding::SourceEncoder<Field> enc(0, s, flat, symbols);
  coding::StructuredRecoder<Field> rec(0, s, symbols);
  coding::CodedPacket<Field> p;
  std::size_t fed = 0;
  while (!rec.complete()) {
    ASSERT_LT(fed++, 50 * g);
    enc.emit_into(p, rng);
    rec.absorb(p);
  }
  // Emissions are dense packets; a dense-structure decoder absorbs them.
  coding::StructuredDecoder<Field> dec(0, GenerationStructure::dense(g),
                                       symbols);
  std::size_t sent = 0;
  while (!dec.complete()) {
    ASSERT_LT(sent++, 50 * g);
    ASSERT_TRUE(rec.emit_into(p, rng));
    EXPECT_EQ(p.band_offset, 0);
    EXPECT_EQ(p.class_id, 0);
    EXPECT_EQ(p.coeffs.size(), g);
    dec.absorb(p);
  }
  EXPECT_EQ(dec.source_packets(), rows_of<Field>(flat, symbols));
  // A recoder may also sit behind another recoder: densified packets are
  // themselves absorbable.
  coding::StructuredRecoder<Field> second(0, s, symbols);
  ASSERT_TRUE(rec.emit_into(p, rng));
  EXPECT_TRUE(second.absorb(p));
}

// Overlapped recoding is class-local and structure-preserving: emissions are
// valid class packets and a downstream OverlapDecoder absorbs them unchanged.
TEST(StructuredRecoding, OverlappedRecodingPreservesStructure) {
  using Field = gf::Gf256;
  const std::size_t g = 24, symbols = 32;
  const auto s = GenerationStructure::overlapping(g, 8, 2);
  Rng rng(19);
  const auto flat = random_flat<Field>(g * symbols, rng);
  const coding::SourceEncoder<Field> enc(0, s, flat, symbols);
  coding::StructuredRecoder<Field> rec(0, s, symbols);
  coding::CodedPacket<Field> p;
  std::size_t fed = 0;
  while (!rec.complete()) {
    ASSERT_LT(fed++, 50 * g);
    enc.emit_into(p, rng);
    rec.absorb(p);
  }
  EXPECT_EQ(rec.rank(), g);
  coding::StructuredDecoder<Field> dec(0, s, symbols);
  EXPECT_EQ(dec.policy(), DecoderPolicy::kOverlap);
  std::size_t sent = 0;
  while (!dec.complete()) {
    ASSERT_LT(sent++, 100 * g);
    ASSERT_TRUE(rec.emit_into(p, rng));
    EXPECT_TRUE(s.matches_packet(p.band_offset, p.coeffs.size(), p.class_id));
    dec.absorb(p);
  }
  EXPECT_EQ(dec.source_packets(), rows_of<Field>(flat, symbols));
}

TEST(StructuredRecoding, RejectsMalformedAndStaysSilentWhenEmpty) {
  using Field = gf::Gf256;
  const std::size_t g = 16, symbols = 8;
  const auto over = GenerationStructure::overlapping(g, 8, 2);
  coding::StructuredRecoder<Field> rec(0, over, symbols);
  Rng rng(20);
  coding::CodedPacket<Field> out;
  EXPECT_FALSE(rec.emit_into(out, rng));  // nothing absorbed yet

  coding::CodedPacket<Field> bad;
  bad.generation = 0;
  bad.coeffs.assign(8, 1);
  bad.payload.assign(symbols, 1);
  bad.class_id = static_cast<std::uint16_t>(over.num_classes());  // out of range
  EXPECT_FALSE(rec.absorb(bad));
  bad.class_id = 0;
  bad.band_offset = 3;  // class 0 starts at 0
  EXPECT_FALSE(rec.absorb(bad));

  const auto banded = GenerationStructure::banded(g, 4);
  coding::StructuredRecoder<Field> brec(0, banded, symbols);
  coding::CodedPacket<Field> strip;
  strip.generation = 0;
  strip.coeffs.assign(3, 1);  // wrong width: neither a strip nor densified
  strip.payload.assign(symbols, 1);
  EXPECT_FALSE(brec.absorb(strip));
  EXPECT_EQ(brec.rank(), 0u);
}

}  // namespace
}  // namespace ncast
