// Layering tests for tools/lint — the pass-1 include-graph index and the
// declared module DAG (tools/lint/lint_index.cpp).
//
// Two targets:
//   * the REAL tree (NCAST_REPO_ROOT): the include graph must be cycle-free
//     and every observed module dependency must sit inside the allowed
//     transitive closure — this is the ctest that keeps the declared DAG and
//     the code from drifting apart;
//   * the fixture tree: cycles and forbidden includes (direct and
//     transitive) are detected, reported with their include chains, and
//     deduplicated.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint_engine.hpp"
#include "lint/lint_index.hpp"

namespace {

using ncast::lint::Finding;
using ncast::lint::Options;
using ncast::lint::Report;

std::vector<const Finding*> layering_findings(const Report& report) {
  std::vector<const Finding*> out;
  for (const auto& f : report.findings) {
    if (f.rule.rfind("layering.", 0) == 0) out.push_back(&f);
  }
  return out;
}

TEST(LintLayering, ModuleOf) {
  EXPECT_EQ(ncast::lint::module_of("src/sim/engine.hpp"), "sim");
  EXPECT_EQ(ncast::lint::module_of("src/gf/tables.cpp"), "gf");
  EXPECT_EQ(ncast::lint::module_of("bench/bench_scale.cpp"), "");
  EXPECT_EQ(ncast::lint::module_of("tools/ncast_lint.cpp"), "");
  EXPECT_EQ(ncast::lint::module_of("src/orphan.cpp"), "");
}

TEST(LintLayering, ClosureFollowsThePipeline) {
  const std::set<std::string> sim = ncast::lint::allowed_closure("sim");
  for (const char* m :
       {"sim", "coding", "linalg", "gf", "overlay", "graph", "obs", "util"}) {
    EXPECT_TRUE(sim.count(m)) << "sim closure should contain " << m;
  }
  EXPECT_FALSE(sim.count("node")) << "closure must not look upward";

  const std::set<std::string> gf = ncast::lint::allowed_closure("gf");
  EXPECT_EQ(gf, (std::set<std::string>{"gf", "obs", "util"}));

  const std::set<std::string> baselines =
      ncast::lint::allowed_closure("baselines");
  EXPECT_TRUE(baselines.count("overlay"));
  EXPECT_TRUE(baselines.count("graph"));
  EXPECT_FALSE(baselines.count("sim"));
  EXPECT_FALSE(baselines.count("coding"));
}

TEST(LintLayering, EveryDeclaredModuleIsAcyclic) {
  // The declared DAG itself must be a DAG: the closure of a module may not
  // re-reach the module through a real dependency chain (self is seeded).
  for (const auto& [module, deps] : ncast::lint::allowed_direct_deps()) {
    for (const std::string& dep : deps) {
      const std::set<std::string> closure = ncast::lint::allowed_closure(dep);
      EXPECT_FALSE(closure.count(module))
          << "declared cycle: " << module << " <-> " << dep;
    }
  }
}

// The contract this binary exists to enforce: the real tree fits the DAG.
TEST(LintLayering, RealTreeIsCycleFreeAndInsideTheDag) {
  Options opts;
  opts.repo_root = NCAST_REPO_ROOT;
  opts.roots = {"src"};
  const Report report = ncast::lint::lint_tree(opts);
  ASSERT_GT(report.files_scanned, 0u);

  EXPECT_EQ(report.graph.cycles, 0u) << "include cycle in src/";
  for (const Finding* f : layering_findings(report)) {
    ADD_FAILURE() << f->file << ":" << f->line << " [" << f->rule << "] "
                  << f->message
                  << (f->suppressed ? " (suppressed — layering violations "
                                      "should be fixed, not suppressed)"
                                    : "");
  }

  // Belt and braces: re-check the observed module edges directly against
  // the closure, independent of the finding-generation path.
  for (const auto& [module, deps] : report.graph.module_deps) {
    const std::set<std::string> closure = ncast::lint::allowed_closure(module);
    for (const std::string& dep : deps) {
      EXPECT_TRUE(closure.count(dep))
          << "observed dependency " << module << " -> " << dep
          << " is outside the declared closure";
    }
  }
}

TEST(LintLayering, FixtureCyclesAreFoundAndDeduplicated) {
  Options opts;
  opts.repo_root = std::string(NCAST_LINT_FIXTURE_DIR) + "/tree";
  opts.roots = {"src"};
  const Report report = ncast::lint::lint_tree(opts);

  EXPECT_EQ(report.graph.cycles, 2u);
  std::size_t cycle_findings = 0;
  bool suppressed_cycle = false;
  for (const Finding* f : layering_findings(report)) {
    if (f->rule != "layering.cycle") continue;
    ++cycle_findings;
    EXPECT_NE(f->message.find("include cycle: "), std::string::npos);
    if (f->suppressed) suppressed_cycle = true;
  }
  // One finding per distinct cycle (a->b->a reported once, not twice).
  EXPECT_EQ(cycle_findings, 2u);
  EXPECT_TRUE(suppressed_cycle) << "the cycle_c/cycle_d back edge carries an "
                                   "allow annotation";
}

TEST(LintLayering, FixtureForbiddenIncludesCarryChains) {
  Options opts;
  opts.repo_root = std::string(NCAST_LINT_FIXTURE_DIR) + "/tree";
  opts.roots = {"src"};
  const Report report = ncast::lint::lint_tree(opts);

  bool direct = false;
  bool transitive = false;
  bool suppressed = false;
  for (const Finding* f : layering_findings(report)) {
    if (f->rule != "layering.forbidden_include") continue;
    if (f->file == "src/coding/uses_node.hpp") {
      direct = true;
      EXPECT_NE(f->message.find("must not depend on 'node'"),
                std::string::npos);
      EXPECT_NE(f->message.find("include chain: src/coding/uses_node.hpp -> "
                                "src/node/api.hpp"),
                std::string::npos);
    }
    if (f->file == "src/gf/deep.hpp") {
      transitive = true;
      // The violation is two hops away; the chain names every hop.
      EXPECT_NE(f->message.find("src/gf/deep.hpp -> src/gf/via.hpp -> "
                                "src/coding/hot.hpp"),
                std::string::npos);
    }
    if (f->file == "src/coding/uses_node_ok.hpp") {
      suppressed = true;
      EXPECT_TRUE(f->suppressed);
    }
  }
  EXPECT_TRUE(direct);
  EXPECT_TRUE(transitive);
  EXPECT_TRUE(suppressed);
}

}  // namespace
