// Tests for the deterministic RNG: reproducibility, bounds, and the
// statistical sanity every simulation in this repo depends on.

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace ncast {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), first[i]);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowRoughlyUniform) {
  Rng rng(5);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BetweenBadRangeThrows) {
  Rng rng(9);
  EXPECT_THROW(rng.between(2, 1), std::invalid_argument);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(23);
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.exponential(2.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
}

TEST(Rng, ExponentialBadRateThrows) {
  Rng rng(23);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleMovesElements) {
  Rng rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.shuffle(v);
  int moved = 0;
  for (int i = 0; i < 100; ++i) moved += (v[i] != i) ? 1 : 0;
  EXPECT_GT(moved, 50);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  for (int trial = 0; trial < 200; ++trial) {
    const auto s = rng.sample_without_replacement(20, 5);
    ASSERT_EQ(s.size(), 5u);
    std::set<std::uint32_t> set(s.begin(), s.end());
    EXPECT_EQ(set.size(), 5u);
    for (auto x : s) EXPECT_LT(x, 20u);
  }
}

TEST(Rng, SampleFullPopulation) {
  Rng rng(41);
  const auto s = rng.sample_without_replacement(8, 8);
  std::set<std::uint32_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 8u);
}

TEST(Rng, SampleTooManyThrows) {
  Rng rng(41);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, SampleUniformMarginals) {
  // Each element of [0,10) should appear in a 3-sample with probability 3/10.
  Rng rng(43);
  std::vector<int> counts(10, 0);
  constexpr int kTrials = 30000;
  for (int t = 0; t < kTrials; ++t) {
    for (auto x : rng.sample_without_replacement(10, 3)) ++counts[x];
  }
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(kTrials), 0.3, 0.02);
  }
}

TEST(Rng, SplitProducesDistinctStream) {
  Rng a(47);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace ncast
