// Routing-baseline tests: naive per-thread forwarding and informed MDS
// forwarding, including the dominance chain
//   naive <= informed <= max-flow (network coding).

#include "baselines/forwarding.hpp"

#include <gtest/gtest.h>

#include <map>

#include "overlay/curtain_server.hpp"
#include "overlay/flow_graph.hpp"

namespace ncast {
namespace {

using namespace baselines;
using overlay::ColumnId;
using overlay::NodeId;
using overlay::ThreadMatrix;

TEST(NaiveForwarding, FailureFreeDeliversFullDegree) {
  ThreadMatrix m(4);
  m.append_row(0, {0, 1});
  m.append_row(1, {1, 2});
  m.append_row(2, {0, 3});
  const auto rates = naive_forwarding_rates(m);
  ASSERT_EQ(rates.size(), 3u);
  for (const auto& r : rates) EXPECT_EQ(r.rate, 2u);
}

TEST(NaiveForwarding, BreakKillsColumnForever) {
  ThreadMatrix m(2);
  m.append_row(0, {0});
  m.append_row(1, {0, 1});  // below the break on column 0
  m.append_row(2, {0});     // below node 1 on column 0
  m.mark_failed(0);
  const auto rates = naive_forwarding_rates(m);
  // Node 1: column 0 dead, column 1 alive -> 1. Node 2: column 0 dead
  // (naive forwarding cannot re-inject across columns) -> 0.
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_EQ(rates[0].node, 1u);
  EXPECT_EQ(rates[0].rate, 1u);
  EXPECT_EQ(rates[1].node, 2u);
  EXPECT_EQ(rates[1].rate, 0u);
}

TEST(InformedForwarding, ReinjectsAcrossColumns) {
  // Same topology: informed forwarding lets node 1 put its column-1 fragment
  // onto column 0, so node 2 receives 1 unit instead of 0.
  ThreadMatrix m(2);
  m.append_row(0, {0});
  m.append_row(1, {0, 1});
  m.append_row(2, {0});
  m.mark_failed(0);
  Rng rng(1);
  const auto rates = informed_forwarding_rates(m, rng);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_EQ(rates[1].node, 2u);
  EXPECT_EQ(rates[1].rate, 1u);
}

TEST(InformedForwarding, DuplicateFragmentsDoNotCount) {
  // A node whose two in-threads carry the same fragment has rate 1.
  ThreadMatrix m(2);
  m.append_row(0, {0, 1});  // will forward one fragment on both columns if
                            // its own feed is degraded
  m.append_row(1, {0, 1});
  m.mark_failed(0);
  // Node 0 failed: node 1 gets nothing at all (both columns broken).
  Rng rng(2);
  const auto rates = informed_forwarding_rates(m, rng);
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_EQ(rates[0].rate, 0u);
}

TEST(Forwarding, DominanceChainOnRandomOverlays) {
  // naive <= informed <= max-flow, node by node, across random failures.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    overlay::CurtainServer server(10, 3, Rng(seed));
    for (int i = 0; i < 60; ++i) server.join();
    auto m = server.matrix();
    Rng frng(seed * 100);
    for (NodeId n : m.nodes_in_order()) {
      if (frng.chance(0.12)) m.mark_failed(n);
    }

    const auto naive = naive_forwarding_rates(m);
    Rng irng(seed * 200);
    const auto informed = informed_forwarding_rates(m, irng);
    ASSERT_EQ(naive.size(), informed.size());

    const auto fg = build_flow_graph(m);
    std::map<NodeId, std::uint32_t> naive_by_node;
    std::uint64_t naive_total = 0, informed_total = 0;
    for (const auto& r : naive) {
      naive_by_node[r.node] = r.rate;
      naive_total += r.rate;
    }

    for (const auto& r : informed) {
      const auto flow = node_connectivity(fg, r.node);
      informed_total += r.rate;
      // Both routing schemes are information-theoretically capped by the
      // min-cut (which network coding achieves).
      EXPECT_LE(naive_by_node[r.node], static_cast<std::uint32_t>(flow))
          << "seed " << seed << " node " << r.node;
      EXPECT_LE(r.rate, static_cast<std::uint32_t>(flow))
          << "seed " << seed << " node " << r.node;
    }
    // Informed forwarding can lose to naive at individual nodes (fragment
    // collisions) but must win in aggregate: re-injection across columns
    // strictly dominates letting broken columns stay dark.
    EXPECT_GE(informed_total, naive_total) << "seed " << seed;
  }
}

TEST(Forwarding, OnlyWorkingNodesReported) {
  ThreadMatrix m(3);
  m.append_row(0, {0, 1});
  m.append_row(1, {1, 2});
  m.mark_failed(1);
  EXPECT_EQ(naive_forwarding_rates(m).size(), 1u);
  Rng rng(3);
  EXPECT_EQ(informed_forwarding_rates(m, rng).size(), 1u);
}

}  // namespace
}  // namespace ncast
