// Churn simulation tests: event conservation, population control, policy
// plumbing, and overlay health after sustained membership turnover.

#include "sim/churn.hpp"

#include <gtest/gtest.h>

#include "overlay/flow_graph.hpp"

namespace ncast {
namespace {

using namespace sim;

TEST(Churn, EventConservation) {
  ChurnConfig cfg;
  cfg.arrival_rate = 20.0;
  cfg.mean_lifetime = 20.0;
  cfg.failure_fraction = 0.3;
  cfg.horizon = 100.0;
  overlay::CurtainServer server(16, 3, Rng(0));
  const auto report = run_churn(16, 3, overlay::InsertPolicy::kAppend, cfg, 42,
                                &server);

  EXPECT_GT(report.joins, 0u);
  EXPECT_GT(report.graceful_leaves, 0u);
  EXPECT_GT(report.failures, 0u);
  // Every join is eventually a leave, a repair, or still present.
  EXPECT_EQ(report.joins,
            report.graceful_leaves + report.repairs + report.final_population);
  // Failures pending repair are tagged in the final matrix.
  EXPECT_EQ(report.failures - report.repairs, report.final_failed_tagged);
  EXPECT_EQ(server.stats().joins, report.joins);
}

TEST(Churn, PopulationCapRespected) {
  ChurnConfig cfg;
  cfg.arrival_rate = 50.0;
  cfg.mean_lifetime = 1000.0;  // essentially nobody leaves
  cfg.horizon = 20.0;
  cfg.max_population = 37;
  const auto report = run_churn(16, 3, overlay::InsertPolicy::kAppend, cfg, 7);
  EXPECT_LE(report.peak_population, 37.0);
  EXPECT_EQ(report.final_population, 37u);
}

TEST(Churn, DeterministicGivenSeed) {
  ChurnConfig cfg;
  cfg.horizon = 50.0;
  const auto a = run_churn(8, 2, overlay::InsertPolicy::kAppend, cfg, 99);
  const auto b = run_churn(8, 2, overlay::InsertPolicy::kAppend, cfg, 99);
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.server_stats.control_messages, b.server_stats.control_messages);
  const auto c = run_churn(8, 2, overlay::InsertPolicy::kAppend, cfg, 100);
  EXPECT_NE(a.server_stats.control_messages, c.server_stats.control_messages);
}

TEST(Churn, OverlayHealthyAfterChurn) {
  // After heavy churn (with all failures repaired), every remaining working
  // node must have full connectivity d.
  ChurnConfig cfg;
  cfg.arrival_rate = 15.0;
  cfg.mean_lifetime = 15.0;
  cfg.failure_fraction = 0.25;
  cfg.horizon = 80.0;
  overlay::CurtainServer server(12, 3, Rng(0));
  run_churn(12, 3, overlay::InsertPolicy::kAppend, cfg, 5, &server);

  // Repair anything still tagged, as the protocol eventually would.
  for (overlay::NodeId n : server.matrix().nodes_in_order()) {
    if (server.matrix().row(n).failed) server.repair(n);
  }
  const auto fg = build_flow_graph(server.matrix());
  for (overlay::NodeId n : server.matrix().nodes_in_order()) {
    EXPECT_EQ(node_connectivity(fg, n), 3) << "node " << n;
  }
  EXPECT_TRUE(server.matrix().check_invariants());
}

TEST(Churn, RandomInsertPolicyWorksUnderChurn) {
  ChurnConfig cfg;
  cfg.arrival_rate = 10.0;
  cfg.mean_lifetime = 25.0;
  cfg.failure_fraction = 0.2;
  cfg.horizon = 60.0;
  overlay::CurtainServer server(12, 2, Rng(0));
  const auto report =
      run_churn(12, 2, overlay::InsertPolicy::kRandomPosition, cfg, 11, &server);
  EXPECT_GT(report.joins, 0u);
  EXPECT_TRUE(server.matrix().check_invariants());
  EXPECT_EQ(server.policy(), overlay::InsertPolicy::kRandomPosition);
}

TEST(Churn, PopulationSamplesCollected) {
  ChurnConfig cfg;
  cfg.horizon = 30.0;
  const auto report = run_churn(8, 2, overlay::InsertPolicy::kAppend, cfg, 3);
  EXPECT_GE(report.population_samples.count(), 29u);
}

}  // namespace
}  // namespace ncast
