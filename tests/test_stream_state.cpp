// Unit tests for the shared endpoint stream state (plan bootstrap, wire
// absorb/emit, verification hooks, reassembly).

#include "node/stream_state.hpp"

#include <gtest/gtest.h>

#include "coding/file_codec.hpp"
#include "util/rng.hpp"

namespace ncast {
namespace {

using node::StreamState;

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.below(256));
  return v;
}

TEST(StreamState, StartsUninitialized) {
  StreamState s;
  EXPECT_FALSE(s.initialized());
  EXPECT_FALSE(s.decoded());
  EXPECT_EQ(s.rank(), 0u);
  Rng rng(1);
  EXPECT_FALSE(s.emit_wire(rng).has_value());
}

TEST(StreamState, RejectsNonsensePlans) {
  StreamState s;
  EXPECT_FALSE(s.initialize(64, 0, 8, 8));
  EXPECT_FALSE(s.initialize(64, 2, 0, 8));
  EXPECT_FALSE(s.initialize(64, 2, 8, 0));
  EXPECT_FALSE(s.initialized());
  EXPECT_TRUE(s.initialize(64, 1, 8, 8));
  EXPECT_TRUE(s.initialized());
}

TEST(StreamState, EndToEndRoundTrip) {
  Rng rng(2);
  const auto content = random_bytes(300, rng);
  coding::FileEncoder encoder(content, 8, 16);  // 128 B/gen -> 3 generations
  StreamState s;
  ASSERT_TRUE(s.initialize(content.size(), 3, 8, 16));

  std::size_t fed = 0;
  while (!s.decoded()) {
    const auto gen = rng.below(encoder.generations());
    ASSERT_TRUE(s.absorb_wire(coding::serialize(encoder.emit(gen, rng))));
    ASSERT_LT(++fed, 500u);
  }
  EXPECT_EQ(s.data(), content);
  EXPECT_EQ(s.rank(), 24u);
}

TEST(StreamState, DropsMalformedAndForeignWire) {
  StreamState s;
  ASSERT_TRUE(s.initialize(64, 1, 8, 8));
  EXPECT_FALSE(s.absorb_wire({1, 2, 3}));
  // Well-formed packet from an out-of-range generation.
  coding::CodedPacket<gf::Gf256> p;
  p.generation = 5;
  p.coeffs.assign(8, 1);
  p.payload.assign(8, 1);
  EXPECT_FALSE(s.absorb_wire(coding::serialize(p)));
  EXPECT_EQ(s.rank(), 0u);
}

TEST(StreamState, RelayRoundTripThroughEmit) {
  // A relay that has absorbed part of a generation must emit wire packets
  // that a downstream state accepts and can finish decoding from.
  Rng rng(3);
  const auto content = random_bytes(128, rng);
  coding::FileEncoder encoder(content, 8, 16);
  StreamState relay, sink;
  ASSERT_TRUE(relay.initialize(content.size(), 1, 8, 16));
  ASSERT_TRUE(sink.initialize(content.size(), 1, 8, 16));

  while (!relay.decoded()) {
    relay.absorb_wire(coding::serialize(encoder.emit(0, rng)));
  }
  std::size_t hops = 0;
  while (!sink.decoded()) {
    const auto wire = relay.emit_wire(rng);
    ASSERT_TRUE(wire.has_value());
    sink.absorb_wire(*wire);
    ASSERT_LT(++hops, 200u);
  }
  EXPECT_EQ(sink.data(), content);
}

TEST(StreamState, KeyedStateRejectsForgeries) {
  Rng rng(4);
  const auto content = random_bytes(128, rng);
  coding::FileEncoder encoder(content, 8, 16);
  const auto source = coding::generation_packets(content, encoder.plan(), 0);
  const auto keys = coding::NullKeySet<gf::Gf256>::generate(0, source, 3, rng);

  StreamState s;
  ASSERT_TRUE(s.initialize(content.size(), 1, 8, 16));
  s.install_keys({keys.serialize()});
  EXPECT_TRUE(s.verification_enabled());

  // Honest packets pass...
  EXPECT_TRUE(s.absorb_wire(coding::serialize(encoder.emit(0, rng))));
  // ...forgeries do not.
  auto forged = encoder.emit(0, rng);
  forged.payload[0] ^= 0x77;
  EXPECT_FALSE(s.absorb_wire(coding::serialize(forged)));
}

TEST(StreamState, PartialKeyBundlesDisableVerification) {
  StreamState s;
  ASSERT_TRUE(s.initialize(128, 2, 8, 16));
  s.install_keys({{1, 2, 3}});  // wrong count AND malformed
  EXPECT_FALSE(s.verification_enabled());
  s.install_keys({{1, 2, 3}, {4, 5, 6}});  // right count, malformed
  EXPECT_FALSE(s.verification_enabled());
}

}  // namespace
}  // namespace ncast
