// Unit tests for the shared endpoint stream state (plan bootstrap, wire
// absorb/emit, verification hooks, reassembly).

#include "node/stream_state.hpp"

#include <gtest/gtest.h>

#include "coding/file_codec.hpp"
#include "util/rng.hpp"

namespace ncast {
namespace {

using node::StreamState;

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.below(256));
  return v;
}

TEST(StreamState, StartsUninitialized) {
  StreamState s;
  EXPECT_FALSE(s.initialized());
  EXPECT_FALSE(s.decoded());
  EXPECT_EQ(s.rank(), 0u);
  Rng rng(1);
  EXPECT_FALSE(s.emit_wire(rng).has_value());
}

TEST(StreamState, RejectsNonsensePlans) {
  StreamState s;
  EXPECT_FALSE(s.initialize(64, 0, 8, 8));
  EXPECT_FALSE(s.initialize(64, 2, 0, 8));
  EXPECT_FALSE(s.initialize(64, 2, 8, 0));
  EXPECT_FALSE(s.initialized());
  EXPECT_TRUE(s.initialize(64, 1, 8, 8));
  EXPECT_TRUE(s.initialized());
}

TEST(StreamState, EndToEndRoundTrip) {
  Rng rng(2);
  const auto content = random_bytes(300, rng);
  coding::FileEncoder encoder(content, 8, 16);  // 128 B/gen -> 3 generations
  StreamState s;
  ASSERT_TRUE(s.initialize(content.size(), 3, 8, 16));

  std::size_t fed = 0;
  while (!s.decoded()) {
    const auto gen = rng.below(encoder.generations());
    ASSERT_TRUE(s.absorb_wire(coding::serialize(encoder.emit(gen, rng))));
    ASSERT_LT(++fed, 500u);
  }
  EXPECT_EQ(s.data(), content);
  EXPECT_EQ(s.rank(), 24u);
}

TEST(StreamState, DropsMalformedAndForeignWire) {
  StreamState s;
  ASSERT_TRUE(s.initialize(64, 1, 8, 8));
  EXPECT_FALSE(s.absorb_wire({1, 2, 3}));
  // Well-formed packet from an out-of-range generation.
  coding::CodedPacket<gf::Gf256> p;
  p.generation = 5;
  p.coeffs.assign(8, 1);
  p.payload.assign(8, 1);
  EXPECT_FALSE(s.absorb_wire(coding::serialize(p)));
  EXPECT_EQ(s.rank(), 0u);
}

TEST(StreamState, RelayRoundTripThroughEmit) {
  // A relay that has absorbed part of a generation must emit wire packets
  // that a downstream state accepts and can finish decoding from.
  Rng rng(3);
  const auto content = random_bytes(128, rng);
  coding::FileEncoder encoder(content, 8, 16);
  StreamState relay, sink;
  ASSERT_TRUE(relay.initialize(content.size(), 1, 8, 16));
  ASSERT_TRUE(sink.initialize(content.size(), 1, 8, 16));

  while (!relay.decoded()) {
    relay.absorb_wire(coding::serialize(encoder.emit(0, rng)));
  }
  std::size_t hops = 0;
  while (!sink.decoded()) {
    const auto wire = relay.emit_wire(rng);
    ASSERT_TRUE(wire.has_value());
    sink.absorb_wire(*wire);
    ASSERT_LT(++hops, 200u);
  }
  EXPECT_EQ(sink.data(), content);
}

TEST(StreamState, KeyedStateRejectsForgeries) {
  Rng rng(4);
  const auto content = random_bytes(128, rng);
  coding::FileEncoder encoder(content, 8, 16);
  const auto source = coding::generation_packets(content, encoder.plan(), 0);
  const auto keys = coding::NullKeySet<gf::Gf256>::generate(0, source, 3, rng);

  StreamState s;
  ASSERT_TRUE(s.initialize(content.size(), 1, 8, 16));
  s.install_keys({keys.serialize()});
  EXPECT_TRUE(s.verification_enabled());

  // Honest packets pass...
  EXPECT_TRUE(s.absorb_wire(coding::serialize(encoder.emit(0, rng))));
  // ...forgeries do not.
  auto forged = encoder.emit(0, rng);
  forged.payload[0] ^= 0x77;
  EXPECT_FALSE(s.absorb_wire(coding::serialize(forged)));
}

TEST(StreamState, RejectsGenCountDisagreeingWithPlan) {
  // The announced generation count must agree with the plan recomputed from
  // data_size — a mismatched accept would build buffers that can never
  // reassemble the content.
  StreamState s;
  EXPECT_FALSE(s.initialize(300, 2, 8, 16));  // plan says 3
  EXPECT_FALSE(s.initialize(300, 4, 8, 16));
  EXPECT_FALSE(s.initialize(128, 2, 8, 16));  // plan says 1
  EXPECT_FALSE(s.initialized());
  EXPECT_TRUE(s.initialize(300, 3, 8, 16));
  EXPECT_TRUE(s.initialized());
}

TEST(StreamState, RejectsStructureWithWrongGenerationSize) {
  StreamState s;
  EXPECT_FALSE(
      s.initialize(128, 1, 8, 16, coding::GenerationStructure::banded(16, 4)));
  EXPECT_TRUE(
      s.initialize(128, 1, 8, 16, coding::GenerationStructure::banded(8, 4)));
}

TEST(StreamState, BandedEndToEndWithRelayDensification) {
  // A banded stream carries mixed traffic: compact strips straight from the
  // encoder plus dense rows from relays (recoding densifies bands). Both
  // must be admitted, and the sink must still reconstruct exactly.
  Rng rng(5);
  const auto content = random_bytes(256, rng);
  coding::FileEncoder encoder(content, 16, 8,
                              coding::StructureSpec::banded(4, true));
  StreamState relay, sink;
  ASSERT_TRUE(relay.initialize(content.size(), 2, 16, 8, encoder.structure()));
  ASSERT_TRUE(sink.initialize(content.size(), 2, 16, 8, encoder.structure()));

  std::size_t fed = 0;
  while (!sink.decoded()) {
    ASSERT_LT(++fed, 2000u);
    const auto gen = rng.below(encoder.generations());
    // Encoder-direct strip to both endpoints (v2 compact framing).
    const auto wire = coding::serialize_stream(encoder.emit(gen, rng),
                                               encoder.structure());
    relay.absorb_wire(wire);
    sink.absorb_wire(wire);
    // Relay-recoded row to the sink (dense v1 framing after densification).
    if (const auto relayed = relay.emit_wire(rng)) sink.absorb_wire(*relayed);
  }
  EXPECT_EQ(sink.data(), content);
}

TEST(StreamState, OverlappedEndToEndStructurePreserving) {
  // Overlapped recoding is class-local, so every hop — encoder-direct or
  // relayed — stays within the structure and the v2 compact framing.
  Rng rng(6);
  const auto content = random_bytes(256, rng);
  coding::FileEncoder encoder(content, 16, 8,
                              coding::StructureSpec::overlapping(6, 2));
  StreamState relay, sink;
  ASSERT_TRUE(relay.initialize(content.size(), 2, 16, 8, encoder.structure()));
  ASSERT_TRUE(sink.initialize(content.size(), 2, 16, 8, encoder.structure()));

  std::size_t fed = 0;
  while (!sink.decoded()) {
    ASSERT_LT(++fed, 4000u);
    const auto gen = rng.below(encoder.generations());
    relay.absorb_wire(coding::serialize_stream(encoder.emit(gen, rng),
                                               encoder.structure()));
    if (const auto relayed = relay.emit_wire(rng)) {
      ASSERT_TRUE(sink.absorb_wire(*relayed));
    }
  }
  EXPECT_EQ(sink.data(), content);
}

TEST(StreamState, StructuredStreamRejectsForeignShapes) {
  // A banded stream rejects strips whose width disagrees with the announced
  // structure, even when the packet would be well-formed under some other
  // structure.
  Rng rng(7);
  const auto content = random_bytes(128, rng);
  coding::FileEncoder wide(content, 16, 8, coding::StructureSpec::banded(8));
  StreamState s;
  ASSERT_TRUE(s.initialize(content.size(), 1, 16, 8,
                           coding::GenerationStructure::banded(16, 4)));
  EXPECT_FALSE(s.absorb_wire(
      coding::serialize_stream(wide.emit(0, rng), wide.structure())));
  EXPECT_EQ(s.rank(), 0u);
}

TEST(StreamState, KeyedBandedStateVerifiesStrips) {
  // Null-key verification must work on compact band strips: validity
  // commutes with scatter-expansion, so a strip is checked by expanding it
  // onto the dense basis first.
  Rng rng(8);
  const auto content = random_bytes(128, rng);
  coding::FileEncoder encoder(content, 16, 8,
                              coding::StructureSpec::banded(4, true));
  const auto source = coding::generation_packets(content, encoder.plan(), 0);
  const auto keys = coding::NullKeySet<gf::Gf256>::generate(0, source, 3, rng);

  StreamState s;
  ASSERT_TRUE(s.initialize(content.size(), 1, 16, 8, encoder.structure()));
  s.install_keys({keys.serialize()});
  EXPECT_TRUE(s.verification_enabled());

  EXPECT_TRUE(s.absorb_wire(
      coding::serialize_stream(encoder.emit(0, rng), encoder.structure())));
  auto forged = encoder.emit(0, rng);
  forged.payload[0] ^= 0x77;
  EXPECT_FALSE(s.absorb_wire(
      coding::serialize_stream(forged, encoder.structure())));
}

TEST(StreamState, PartialKeyBundlesDisableVerification) {
  StreamState s;
  ASSERT_TRUE(s.initialize(256, 2, 8, 16));
  s.install_keys({{1, 2, 3}});  // wrong count AND malformed
  EXPECT_FALSE(s.verification_enabled());
  s.install_keys({{1, 2, 3}, {4, 5, 6}});  // right count, malformed
  EXPECT_FALSE(s.verification_enabled());
}

}  // namespace
}  // namespace ncast
