// Tests for streaming statistics, quantiles, histograms and the least-squares
// fitter used to check scaling laws.

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ncast {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);  // no-op
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);  // adopt
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(SampleSet, QuantilesOfKnownData) {
  SampleSet s;
  for (int i = 10; i >= 1; --i) s.add(i);  // 1..10 reversed
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.5);
  EXPECT_NEAR(s.quantile(0.25), 3.25, 1e-12);
}

TEST(SampleSet, QuantileValidation) {
  SampleSet s;
  EXPECT_THROW(s.quantile(0.5), std::logic_error);
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(s.quantile(1.1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 1.0);
}

TEST(SampleSet, MeanAndCount) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(2.0);
  s.add(4.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Histogram, BasicBinning) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bucket(b), 1u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, ClampsOutliers) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BucketLowEdges) {
  Histogram h(0.0, 8.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_low(2), 4.0);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(FitLine, ExactLine) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys{3, 5, 7, 9, 11};  // y = 1 + 2x
  const auto fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineHasLowerR2) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + ((i % 2 == 0) ? 5.0 : -5.0));
  }
  const auto fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.05);
  EXPECT_LT(fit.r2, 1.0);
  EXPECT_GT(fit.r2, 0.9);
}

TEST(FitLine, Validation) {
  EXPECT_THROW(fit_line({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_line({1.0, 2.0}, {1.0}), std::invalid_argument);
}

TEST(FitLine, VerticalDataDegenerates) {
  // All x equal: slope undefined; fitter returns mean as intercept.
  const auto fit = fit_line({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

}  // namespace
}  // namespace ncast
