// Reed–Solomon (Cauchy MDS) erasure code tests, including the MDS property:
// any k of n fragments reconstruct the data.

#include "coding/reed_solomon.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "util/rng.hpp"

namespace ncast {
namespace {

std::vector<std::vector<std::uint8_t>> random_data(std::size_t k, std::size_t len,
                                                   Rng& rng) {
  std::vector<std::vector<std::uint8_t>> data(k, std::vector<std::uint8_t>(len));
  for (auto& d : data) {
    for (auto& b : d) b = static_cast<std::uint8_t>(rng.below(256));
  }
  return data;
}

TEST(ReedSolomon, Validation) {
  EXPECT_THROW(coding::ReedSolomon(4, 0), std::invalid_argument);
  EXPECT_THROW(coding::ReedSolomon(3, 4), std::invalid_argument);
  EXPECT_THROW(coding::ReedSolomon(257, 4), std::invalid_argument);
  EXPECT_NO_THROW(coding::ReedSolomon(256, 100));
  EXPECT_NO_THROW(coding::ReedSolomon(4, 4));
}

TEST(ReedSolomon, SystematicPrefix) {
  Rng rng(1);
  const auto data = random_data(3, 10, rng);
  coding::ReedSolomon rs(6, 3);
  const auto frags = rs.encode(data);
  ASSERT_EQ(frags.size(), 6u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(frags[i], data[i]);
}

TEST(ReedSolomon, EncodeFragmentMatchesEncode) {
  Rng rng(2);
  const auto data = random_data(4, 7, rng);
  coding::ReedSolomon rs(9, 4);
  const auto frags = rs.encode(data);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(rs.encode_fragment(data, i), frags[i]);
  }
  EXPECT_THROW(rs.encode_fragment(data, 9), std::out_of_range);
}

TEST(ReedSolomon, EncodeValidation) {
  Rng rng(3);
  coding::ReedSolomon rs(6, 3);
  auto bad_count = random_data(2, 4, rng);
  EXPECT_THROW(rs.encode(bad_count), std::invalid_argument);
  auto ragged = random_data(3, 4, rng);
  ragged[1].pop_back();
  EXPECT_THROW(rs.encode(ragged), std::invalid_argument);
}

class RsMds : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RsMds, AnyKFragmentsReconstruct) {
  const auto [n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 100 + k));
  const auto data = random_data(k, 16, rng);
  coding::ReedSolomon rs(n, k);
  const auto frags = rs.encode(data);

  // Try many random k-subsets (exhaustive for tiny n).
  for (int trial = 0; trial < 60; ++trial) {
    const auto picks = rng.sample_without_replacement(
        static_cast<std::uint32_t>(n), static_cast<std::uint32_t>(k));
    std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> received;
    for (auto idx : picks) received.emplace_back(idx, frags[idx]);
    EXPECT_EQ(rs.decode(received), data);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RsMds,
                         ::testing::Values(std::make_tuple(2, 1),
                                           std::make_tuple(4, 2),
                                           std::make_tuple(6, 3),
                                           std::make_tuple(10, 4),
                                           std::make_tuple(16, 8),
                                           std::make_tuple(32, 24),
                                           std::make_tuple(255, 4),
                                           std::make_tuple(100, 1),
                                           std::make_tuple(64, 63),
                                           std::make_tuple(256, 8)));

TEST(ReedSolomon, ParityOnlyReconstruction) {
  // Worst case: all data fragments lost, decode from parity alone.
  Rng rng(4);
  const auto data = random_data(4, 8, rng);
  coding::ReedSolomon rs(8, 4);
  const auto frags = rs.encode(data);
  std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> received;
  for (std::size_t i = 4; i < 8; ++i) received.emplace_back(i, frags[i]);
  EXPECT_EQ(rs.decode(received), data);
}

TEST(ReedSolomon, DecodeValidation) {
  Rng rng(5);
  const auto data = random_data(3, 4, rng);
  coding::ReedSolomon rs(6, 3);
  const auto frags = rs.encode(data);

  // Wrong count.
  EXPECT_THROW(rs.decode({{0, frags[0]}, {1, frags[1]}}), std::invalid_argument);
  // Duplicate index.
  EXPECT_THROW(rs.decode({{0, frags[0]}, {0, frags[0]}, {1, frags[1]}}),
               std::invalid_argument);
  // Out-of-range index.
  EXPECT_THROW(rs.decode({{0, frags[0]}, {1, frags[1]}, {6, frags[2]}}),
               std::invalid_argument);
  // Ragged sizes.
  auto short_frag = frags[2];
  short_frag.pop_back();
  EXPECT_THROW(rs.decode({{0, frags[0]}, {1, frags[1]}, {2, short_frag}}),
               std::invalid_argument);
}

TEST(ReedSolomon, KEqualsNIsPlainCopy) {
  Rng rng(6);
  const auto data = random_data(5, 3, rng);
  coding::ReedSolomon rs(5, 5);
  const auto frags = rs.encode(data);
  EXPECT_EQ(frags, data);
  std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> received;
  for (std::size_t i = 0; i < 5; ++i) received.emplace_back(i, frags[i]);
  EXPECT_EQ(rs.decode(received), data);
}

}  // namespace
}  // namespace ncast
