// End-to-end structure-aware streaming on the sharded protocol plane: a
// ServerNode announcing a banded (w = g/8) or overlapped structure, real
// clients joining over the hello protocol on ShardedEngine/ShardedTransport,
// and — the acceptance bar the scenario report cannot check — every client's
// reconstructed bytes IDENTICAL to the server's content. This is the direct
// proof that the v2 compact framing, the mixed banded traffic (encoder
// strips + densified relay rows), the structure descriptor handshake, and
// the structured recode path compose into a correct broadcast.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "coding/structure.hpp"
#include "node/client_node.hpp"
#include "node/protocol_scenario.hpp"
#include "node/server_node.hpp"
#include "node/sharded_transport.hpp"
#include "sim/link_model.hpp"
#include "sim/sharded_engine.hpp"

namespace ncast {
namespace {

// The scenario runners' content pattern: keyed by the seed, no RNG draws.
std::vector<std::uint8_t> pattern_content(std::size_t bytes,
                                          std::uint64_t seed) {
  std::vector<std::uint8_t> content(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    content[i] = static_cast<std::uint8_t>(
        (i * 131u) ^ (i >> 3) ^ static_cast<std::size_t>(seed * 0x9e37u));
  }
  return content;
}

// Runs `clients` ClientNodes against a ServerNode with the given structure
// on the sharded kernel and returns true iff every client reconstructed the
// content byte for byte.
void expect_byte_identical_broadcast(const coding::StructureSpec& structure,
                                     const char* what) {
  constexpr std::size_t kClients = 5;
  constexpr std::size_t kGenerations = 2;
  constexpr std::size_t kGenSize = 16;
  constexpr std::size_t kSymbols = 8;
  constexpr std::uint64_t kSeed = 0x51;

  const auto content =
      pattern_content(kGenerations * kGenSize * kSymbols, kSeed);

  sim::ShardedEngine engine(4, 2, 0.5);
  engine.reserve_lanes(kClients + 1);

  node::ServerConfig scfg;
  scfg.k = 6;
  scfg.default_degree = 2;
  scfg.generation_size = kGenSize;
  scfg.symbols = kSymbols;
  scfg.null_keys = 2;  // verification must survive the structured plane too
  scfg.structure = structure;
  scfg.seed = kSeed;
  node::ServerNode server(scfg, content);

  node::TransportSpec tspec;
  tspec.latency = sim::LatencySpec::uniform(0.5, 1.5);
  node::ShardedTransport net(engine, tspec, kSeed, kClients + 1);
  server.start(engine.lane(node::kServerAddress), net);

  node::ClientConfig ccfg;
  ccfg.seed = kSeed;
  std::vector<std::unique_ptr<node::ClientNode>> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<node::ClientNode>(
        static_cast<node::Address>(i + 1), ccfg));
    clients.back()->start(engine.lane(static_cast<sim::LaneId>(i + 1)), net);
  }

  engine.run_until(400.0);

  for (const auto& c : clients) {
    ASSERT_TRUE(c->joined()) << what << " client " << c->address();
    ASSERT_TRUE(c->decoded()) << what << " client " << c->address();
    EXPECT_EQ(c->data(), content) << what << " client " << c->address();
    EXPECT_TRUE(c->verification_enabled()) << what;
  }
}

TEST(StructuredProtocol, DenseStreamDecodesByteIdentical) {
  expect_byte_identical_broadcast(coding::StructureSpec::dense(), "dense");
}

TEST(StructuredProtocol, BandedStreamDecodesByteIdentical) {
  // w = g/8 = 2, wrapping: the thinnest band the issue's sweep names.
  expect_byte_identical_broadcast(coding::StructureSpec::banded(2, true),
                                  "banded");
}

TEST(StructuredProtocol, OverlappedStreamDecodesByteIdentical) {
  expect_byte_identical_broadcast(coding::StructureSpec::overlapping(6, 2),
                                  "overlapped");
}

// The join handshake carries the resolved descriptor; a client that asked
// for nothing special must end up with the server's structure, and the
// decoded-fraction gates must hold for all three structures on the sharded
// scenario runner (the acceptance criterion's harness-level form).
TEST(StructuredProtocol, ScenarioGatesHoldForAllStructures) {
  const struct {
    const char* name;
    coding::StructureSpec structure;
  } lanes[] = {
      {"dense", coding::StructureSpec::dense()},
      {"banded", coding::StructureSpec::banded(2, true)},
      {"overlapped", coding::StructureSpec::overlapping(6, 2)},
  };
  for (const auto& lane : lanes) {
    node::ProtocolScenarioSpec spec;
    spec.k = 6;
    spec.default_degree = 2;
    spec.generations = 2;
    spec.generation_size = 16;
    spec.symbols = 8;
    spec.seed = 11;
    spec.structure = lane.structure;
    spec.transport.latency = sim::LatencySpec::uniform(0.5, 1.5);
    spec.initial_clients = 6;
    const auto report = node::run_scenario_sharded(spec, 4, 2);
    EXPECT_EQ(report.decoded_fraction(), 1.0) << lane.name;
    EXPECT_GT(report.data_bytes, 0u) << lane.name;
    for (const auto& o : report.outcomes) {
      EXPECT_TRUE(o.joined) << lane.name << " client " << o.address;
    }
  }
}

}  // namespace
}  // namespace ncast
