// Fixture: bench/ is inside the scan roots — determinism applies there too.

#include <cstdlib>

inline int jitter() { return rand(); }
