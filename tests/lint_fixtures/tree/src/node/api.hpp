#pragma once
// Fixture: a top-of-pipeline (node) header for the layering fixtures to
// reach into. Clean on its own.

namespace fix {

inline int node_api_version() { return 1; }

}  // namespace fix
