// Fixture: the determinism family — libc PRNG, hardware entropy, wall-clock
// reads, and monotonic clocks outside src/obs — plus suppression.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fix {

inline unsigned bad_entropy() {
  std::srand(42);
  std::random_device rd;
  return static_cast<unsigned>(rd()) + static_cast<unsigned>(std::rand());
}

inline long bad_clocks() {
  const auto wall = std::time(nullptr);
  const auto sys = std::chrono::system_clock::now().time_since_epoch().count();
  const auto mono = std::chrono::steady_clock::now().time_since_epoch().count();
  return static_cast<long>(wall) + static_cast<long>(sys) +
         static_cast<long>(mono);
}

inline long allowed_wall() {
  return static_cast<long>(std::time(nullptr));  // ncast:allow(determinism.wall_clock): fixture demonstrates suppression
}

inline unsigned allowed_entropy() {
  std::srand(7);  // ncast:allow(determinism.libc_rand): fixture demonstrates suppression
  std::random_device rd2;  // ncast:allow(determinism.random_device): fixture demonstrates suppression
  // ncast:allow(determinism.steady_clock): fixture demonstrates suppression
  const auto m2 = std::chrono::steady_clock::now().time_since_epoch().count();
  return static_cast<unsigned>(rd2()) + static_cast<unsigned>(m2);
}

}  // namespace fix
