// Fixture: concurrency.thread_ambient (thread identity read in worker
// scope) and determinism.unseeded_rng (std engines / default-constructed
// Rng bypass RngStreams), each with a suppressed twin.

#include <random>
#include <thread>

namespace fix {

inline unsigned long ambient_token() {
  const auto id = std::this_thread::get_id();
  std::mt19937 gen;
  (void)id;
  return gen();
}

inline unsigned long allowed_twin() {
  // ncast:allow(concurrency.thread_ambient): fixture demonstrates suppression
  const auto id = std::this_thread::get_id();
  // ncast:allow(determinism.unseeded_rng): fixture demonstrates suppression
  std::mt19937 seeded(12345);
  (void)id;
  return seeded();
}

}  // namespace fix
