#pragma once
// Fixture: a fully clean file — resolvable include, clean hot region, string
// and comment contents that must NOT trip token rules (masking test).

#include "obs/clock_ok.hpp"

#include <cstddef>

namespace fix {

// The tokens below live in literals/comments only: srand(, system_clock,
// push_back( in a comment must never fire.
inline const char* decoy() { return "std::rand() system_clock throw"; }

// ncast:hot-begin
inline void region_add(unsigned char* dst, const unsigned char* src,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}
// ncast:hot-end

}  // namespace fix
