#pragma once
// Fixture: layering.forbidden_include through the transitive closure — this
// header only includes another gf header, but that header reaches coding,
// so the violation is reported here with the full include chain.

#include "gf/via.hpp"
