#pragma once
// Fixture: the middle hop of a transitive layering chain — gf itself must
// not depend on coding (direct violation reported here).

#include "coding/hot.hpp"
