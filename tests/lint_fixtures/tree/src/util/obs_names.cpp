// Fixture: obs.metric_name — the dotted snake_case convention for registry
// lookups, non-literal names, wrapped literals, and suppression.

#include <string>

namespace fix {

struct Registry {
  int& counter(const std::string& name);
  int& gauge(const std::string& name);
  int& histogram(const std::string& name);
};

Registry& metrics();

inline void good_names() {
  metrics().counter("node.packets_sent");
  metrics().histogram(
      "decoder.absorb_ns");
}

inline void bad_camel() { metrics().counter("NodePacketsSent"); }

inline void bad_dotless() { metrics().gauge("depth"); }

inline void bad_dynamic(const std::string& n) { metrics().histogram(n); }

inline void allowed_dynamic(const std::string& n) {
  metrics().counter(n);  // ncast:allow(obs.metric_name): fixture demonstrates suppression
}

}  // namespace fix
