// Fixture: the merge-region family — determinism.merge_region for
// unbalanced markers, determinism.float_accum for order-sensitive summation
// inside a region, and concurrency.pointer_keyed for address-ordered
// containers; each suppressible.

#include <map>
#include <vector>

// ncast:merge-end

namespace fix {

struct Obj {
  double w = 0.0;
};

inline double settle(std::vector<Obj>& items) {
  std::map<Obj*, int> order;
  // ncast:allow(concurrency.pointer_keyed): fixture demonstrates suppression
  std::map<Obj*, int> order_ok;
  double total = 0.0;
  double tare = 0.0;
  // ncast:merge-begin
  for (auto& it : items) {
    total += it.w;
    order[&it] = 1;
    order_ok[&it] = 1;
  }
  tare += total;  // ncast:allow(determinism.float_accum): fixture demonstrates suppression
  // ncast:merge-end
  return total + tare;
}

}  // namespace fix

// ncast:merge-begin  ncast:allow(determinism.merge_region): fixture demonstrates suppression
