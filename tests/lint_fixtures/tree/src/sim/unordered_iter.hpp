#pragma once
// Fixture: determinism.unordered_iteration fires on the range-for and the
// explicit begin() walk, stays quiet on pure lookups, and is suppressible.

#include <unordered_map>
#include <unordered_set>

namespace fix {

inline int sum_order_dependent(const std::unordered_map<int, int>& m) {
  int acc = 0;
  for (const auto& [k, v] : m) acc += k ^ v;
  return acc;
}

inline bool lookup_is_fine(const std::unordered_set<int>& s) {
  return s.count(3) > 0;
}

inline int first_bucket(const std::unordered_set<int>& s) {
  return s.empty() ? 0 : *s.begin();
}

inline int allowed_sum(const std::unordered_map<int, int>& m) {
  int acc = 0;
  // ncast:allow(determinism.unordered_iteration): XOR reduction is order-invariant
  for (const auto& [k, v] : m) acc ^= k ^ v;
  return acc;
}

}  // namespace fix
