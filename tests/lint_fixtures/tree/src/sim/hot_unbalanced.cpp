// Fixture: hot_path.region — an end marker without a begin, then a begin
// that is never closed before end of file.

namespace fix {

inline int noop() { return 0; }

}  // namespace fix

// ncast:hot-end

// ncast:hot-end  ncast:allow(hot_path.region): fixture demonstrates suppression

// ncast:hot-begin
