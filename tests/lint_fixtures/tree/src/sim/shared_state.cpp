// Fixture: concurrency.shared_mutable_state — unguarded static and
// namespace-scope state in shard scope fires; guarded (atomic/mutex/const/
// thread_local) state stays quiet; the shared annotation suppresses with a
// justification, and an empty justification is itself a finding.

#include <atomic>
#include <mutex>

namespace fix {

int bare_hits = 0;

static double drift = 0.0;

constexpr int kLimit = 8;
const double kScale = 2.0;
thread_local int tls_scratch = 0;
std::atomic<int> guarded_hits{0};
static std::mutex state_mu;

// ncast:shared(accumulated under state_mu by every caller of bump below)
static long shared_total = 0;

inline void bump(int n) {
  static int calls = 0;
  const std::lock_guard<std::mutex> lock(state_mu);
  shared_total += n;
  calls += 1;
  bare_hits += calls;
  drift += kScale;
  tls_scratch += kLimit;
  guarded_hits.fetch_add(1);
}

// ncast:shared()
inline int read_total() { return static_cast<int>(shared_total); }

}  // namespace fix
