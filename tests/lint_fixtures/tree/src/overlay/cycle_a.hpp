#pragma once
// Fixture: half of an include cycle. The cycle is reported once, at the
// back edge the depth-first search closes (in cycle_b).

#include "overlay/cycle_b.hpp"
