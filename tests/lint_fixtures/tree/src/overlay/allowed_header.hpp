// ncast:allow(header.pragma_once): fixture demonstrates suppression
// Fixture: every header rule suppressed — this file must yield only
// suppressed findings, plus the suppressed unterminated hot region below.

#include <vector>

using namespace std;  // ncast:allow(header.using_namespace): fixture demonstrates suppression

inline vector<int> four() { return {4}; }

// ncast:allow(totally.bogus) ncast:allow(lint.bad_annotation): fixture demonstrates suppression

// ncast:hot-begin  ncast:allow(hot_path.region): fixture demonstrates suppression
