#pragma once
// Fixture: half of a second include cycle, suppressed at the back edge in
// cycle_d.

#include "overlay/cycle_d.hpp"
