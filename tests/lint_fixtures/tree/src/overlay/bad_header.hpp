// Fixture: header hygiene — this header is missing #pragma once, injects a
// namespace, has an unresolvable quoted include, and carries a typo'd allow.

#include "overlay/no_such_header.hpp"
#include "overlay/also_missing.hpp"  // ncast:allow(header.include_resolves): fixture demonstrates suppression
#include <vector>

using namespace std;

// ncast:allow(nonexistent.rule): typo'd rule ids must be reported, not ignored
inline vector<int> three() { return {1, 2, 3}; }
