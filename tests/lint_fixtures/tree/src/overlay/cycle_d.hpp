#pragma once
// Fixture: the suppressed back edge of the cycle_c/cycle_d cycle.

// ncast:allow(layering.cycle): fixture demonstrates suppression
#include "overlay/cycle_c.hpp"
