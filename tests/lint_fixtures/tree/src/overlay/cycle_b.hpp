#pragma once
// Fixture: the other half of the cycle — the back edge lives here.

#include "overlay/cycle_a.hpp"
