#pragma once
// Fixture: layering.forbidden_include — coding reaching up into node
// inverts the pipeline (direct include, chain of length two).

#include "node/api.hpp"
