#pragma once
// Fixture: a forbidden include suppressed on the offending line.

// ncast:allow(layering.forbidden_include): fixture demonstrates suppression
#include "node/api.hpp"
