#pragma once
// Fixture: hot_path rules fire inside the marked region, stay quiet outside
// it, and are suppressible with a justification.

#include <cstdlib>
#include <string>
#include <vector>

namespace fix {

inline void cold_path(std::vector<int>& v) {
  v.push_back(1);
  v.resize(8);
}

// ncast:hot-begin
inline int hot_violations(std::vector<int>& v) {
  v.push_back(2);
  v.resize(16);
  int* p = new int(3);
  void* q = std::malloc(4);
  std::string s = "boom";
  if (v.empty()) throw 1;
  std::free(q);
  delete p;
  return static_cast<int>(s.size());
}

inline void hot_allowed(std::vector<int>& v) {
  v.push_back(3);  // ncast:allow(hot_path.alloc): capacity reserved by the caller
  std::string tag = "x";  // ncast:allow(hot_path.string): fixture demonstrates suppression
  if (tag.empty()) throw 2;  // ncast:allow(hot_path.throw): fixture demonstrates suppression
}
// ncast:hot-end

inline void cold_again(std::vector<int>& v) { v.push_back(4); }

}  // namespace fix
