#pragma once
// Fixture: monotonic clocks are legal inside src/obs — no finding expected.

#include <chrono>

namespace fix {

inline std::chrono::steady_clock::time_point probe_now() {
  return std::chrono::steady_clock::now();
}

}  // namespace fix
