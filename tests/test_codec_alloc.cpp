// Proof that the codec hot path is allocation-free in steady state: global
// operator new/new[] are replaced with counting versions, and the count must
// not move across Decoder::absorb, Recoder::emit_into, and
// SourceEncoder::emit_into loops once construction and first-use metric
// registration are behind us. This is the enforcement half of the contract
// documented in coding/decoder.hpp and linalg/reduced_basis.hpp.
//
// The counter is bumped in the replaced operators themselves, so ANY heap
// allocation on the measured path — vector growth, metric registration, a
// stray temporary — fails the test. gtest assertions allocate, so the
// measured regions contain no EXPECT/ASSERT; deltas are checked after.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "coding/recoder.hpp"
#include "gf/gf256.hpp"
#include "gf/gf2_16.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ncast {
namespace {

template <typename Field>
std::vector<std::vector<typename Field::value_type>> random_source(
    std::size_t g, std::size_t symbols, Rng& rng) {
  std::vector<std::vector<typename Field::value_type>> src(
      g, std::vector<typename Field::value_type>(symbols));
  for (auto& row : src) {
    for (auto& v : row) {
      v = static_cast<typename Field::value_type>(rng.below(Field::order));
    }
  }
  return src;
}

template <typename Field>
void run_absorb_alloc_free(std::uint64_t seed) {
  const std::size_t g = 16, symbols = 128;
  Rng rng(seed);
  const auto source = random_source<Field>(g, symbols, rng);
  const coding::SourceEncoder<Field> enc(0, source);
  std::vector<coding::CodedPacket<Field>> packets;
  for (std::size_t i = 0; i < g + 8; ++i) packets.push_back(enc.emit(rng));

  coding::Decoder<Field> dec(0, g, symbols);
  // Warm-up: the first absorb registers the decode metrics (one-time heap
  // work behind a static) and faults in the GF kernel tables.
  dec.absorb(packets[0]);
  dec.absorb(packets[1]);

  const std::uint64_t before = g_news.load();
  for (std::size_t i = 2; i < packets.size(); ++i) dec.absorb(packets[i]);
  const std::uint64_t delta = g_news.load() - before;

  ASSERT_TRUE(dec.complete());
  // Innovative, redundant, AND shape-rejected packets must all be free.
  EXPECT_EQ(delta, 0u);
}

TEST(CodecAllocFree, DecoderAbsorbGf256) {
  run_absorb_alloc_free<gf::Gf256>(31);
}

TEST(CodecAllocFree, DecoderAbsorbGf2_16) {
  run_absorb_alloc_free<gf::Gf2_16>(32);
}

TEST(CodecAllocFree, RecoderEmitIntoSteadyState) {
  using Field = gf::Gf256;
  const std::size_t g = 16, symbols = 128;
  Rng rng(33);
  const auto source = random_source<Field>(g, symbols, rng);
  const coding::SourceEncoder<Field> enc(0, source);
  coding::Recoder<Field> rec(0, g, symbols);
  while (!rec.complete()) rec.absorb(enc.emit(rng));

  // Warm-up sizes the packet's buffers and registers recoder.emit_ns.
  coding::CodedPacket<Field> out;
  ASSERT_TRUE(rec.emit_into(out, rng));

  const std::uint64_t before = g_news.load();
  bool ok = true;
  for (int i = 0; i < 200; ++i) ok = rec.emit_into(out, rng) && ok;
  const std::uint64_t delta = g_news.load() - before;

  EXPECT_TRUE(ok);
  EXPECT_EQ(delta, 0u);
  // The recycled packet still carries a decodable combination.
  coding::Decoder<Field> check(0, g, symbols);
  EXPECT_TRUE(check.absorb(out));
}

TEST(CodecAllocFree, EncoderEmitIntoSteadyState) {
  using Field = gf::Gf256;
  const std::size_t g = 8, symbols = 64;
  Rng rng(34);
  const auto source = random_source<Field>(g, symbols, rng);
  const coding::SourceEncoder<Field> enc(0, source);

  coding::CodedPacket<Field> out;
  enc.emit_into(out, rng);  // warm-up sizes the buffers

  const std::uint64_t before = g_news.load();
  for (int i = 0; i < 200; ++i) enc.emit_into(out, rng);
  const std::uint64_t delta = g_news.load() - before;

  EXPECT_EQ(delta, 0u);
}

// A rank-0 recoder declines without touching the heap either.
TEST(CodecAllocFree, EmptyRecoderEmitIntoIsFreeAndSilent) {
  using Field = gf::Gf256;
  Rng rng(35);
  coding::Recoder<Field> rec(0, 8, 64);
  coding::CodedPacket<Field> out;
  const std::uint64_t before = g_news.load();
  const bool emitted = rec.emit_into(out, rng);
  const std::uint64_t delta = g_news.load() - before;
  EXPECT_FALSE(emitted);
  EXPECT_EQ(delta, 0u);
}

}  // namespace
}  // namespace ncast
