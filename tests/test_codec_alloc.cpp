// Proof that the codec hot path is allocation-free in steady state: global
// operator new/new[] are replaced with counting versions, and the count must
// not move across Decoder::absorb, Recoder::emit_into, and
// SourceEncoder::emit_into loops once construction and first-use metric
// registration are behind us. This is the enforcement half of the contract
// documented in coding/decoder.hpp and linalg/reduced_basis.hpp.
//
// The counter is bumped in the replaced operators themselves, so ANY heap
// allocation on the measured path — vector growth, metric registration, a
// stray temporary — fails the test. gtest assertions allocate, so the
// measured regions contain no EXPECT/ASSERT; deltas are checked after.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "coding/band_decoder.hpp"
#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "coding/overlap_decoder.hpp"
#include "coding/recoder.hpp"
#include "coding/structure.hpp"
#include "coding/structured_recoder.hpp"
#include "gf/gf256.hpp"
#include "gf/gf2_16.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ncast {
namespace {

template <typename Field>
std::vector<std::vector<typename Field::value_type>> random_source(
    std::size_t g, std::size_t symbols, Rng& rng) {
  std::vector<std::vector<typename Field::value_type>> src(
      g, std::vector<typename Field::value_type>(symbols));
  for (auto& row : src) {
    for (auto& v : row) {
      v = static_cast<typename Field::value_type>(rng.below(Field::order));
    }
  }
  return src;
}

template <typename Field>
void run_absorb_alloc_free(std::uint64_t seed) {
  const std::size_t g = 16, symbols = 128;
  Rng rng(seed);
  const auto source = random_source<Field>(g, symbols, rng);
  const coding::SourceEncoder<Field> enc(0, source);
  std::vector<coding::CodedPacket<Field>> packets;
  for (std::size_t i = 0; i < g + 8; ++i) packets.push_back(enc.emit(rng));

  coding::Decoder<Field> dec(0, g, symbols);
  // Warm-up: the first absorb registers the decode metrics (one-time heap
  // work behind a static) and faults in the GF kernel tables.
  dec.absorb(packets[0]);
  dec.absorb(packets[1]);

  const std::uint64_t before = g_news.load();
  for (std::size_t i = 2; i < packets.size(); ++i) dec.absorb(packets[i]);
  const std::uint64_t delta = g_news.load() - before;

  ASSERT_TRUE(dec.complete());
  // Innovative, redundant, AND shape-rejected packets must all be free.
  EXPECT_EQ(delta, 0u);
}

TEST(CodecAllocFree, DecoderAbsorbGf256) {
  run_absorb_alloc_free<gf::Gf256>(31);
}

TEST(CodecAllocFree, DecoderAbsorbGf2_16) {
  run_absorb_alloc_free<gf::Gf2_16>(32);
}

TEST(CodecAllocFree, RecoderEmitIntoSteadyState) {
  using Field = gf::Gf256;
  const std::size_t g = 16, symbols = 128;
  Rng rng(33);
  const auto source = random_source<Field>(g, symbols, rng);
  const coding::SourceEncoder<Field> enc(0, source);
  coding::Recoder<Field> rec(0, g, symbols);
  while (!rec.complete()) rec.absorb(enc.emit(rng));

  // Warm-up sizes the packet's buffers and registers recoder.emit_ns.
  coding::CodedPacket<Field> out;
  ASSERT_TRUE(rec.emit_into(out, rng));

  const std::uint64_t before = g_news.load();
  bool ok = true;
  for (int i = 0; i < 200; ++i) ok = rec.emit_into(out, rng) && ok;
  const std::uint64_t delta = g_news.load() - before;

  EXPECT_TRUE(ok);
  EXPECT_EQ(delta, 0u);
  // The recycled packet still carries a decodable combination.
  coding::Decoder<Field> check(0, g, symbols);
  EXPECT_TRUE(check.absorb(out));
}

TEST(CodecAllocFree, EncoderEmitIntoSteadyState) {
  using Field = gf::Gf256;
  const std::size_t g = 8, symbols = 64;
  Rng rng(34);
  const auto source = random_source<Field>(g, symbols, rng);
  const coding::SourceEncoder<Field> enc(0, source);

  coding::CodedPacket<Field> out;
  enc.emit_into(out, rng);  // warm-up sizes the buffers

  const std::uint64_t before = g_news.load();
  for (int i = 0; i < 200; ++i) enc.emit_into(out, rng);
  const std::uint64_t delta = g_news.load() - before;

  EXPECT_EQ(delta, 0u);
}

template <typename Field>
std::vector<typename Field::value_type> random_flat(std::size_t n, Rng& rng) {
  std::vector<typename Field::value_type> v(n);
  for (auto& x : v) {
    x = static_cast<typename Field::value_type>(rng.below(Field::order));
  }
  return v;
}

// The band decoder inherits the contract: innovative, redundant, AND
// rejected packets all absorb without heap traffic (the BandBasis arena is
// allocated once at construction).
TEST(CodecAllocFree, BandDecoderAbsorbSteadyState) {
  using Field = gf::Gf256;
  const std::size_t g = 32, symbols = 128;
  const auto s = coding::GenerationStructure::banded(g, 8);
  Rng rng(36);
  const coding::SourceEncoder<Field> enc(0, s, random_flat<Field>(g * symbols, rng),
                                         symbols);
  std::vector<coding::CodedPacket<Field>> packets;
  for (std::size_t i = 0; i < 3 * g; ++i) packets.push_back(enc.emit(rng));
  packets.push_back(packets.front());
  packets.back().generation = 99;  // reject path inside the measured loop

  coding::BandDecoder<Field> dec(0, s, symbols);
  // Warm-up registers the decode metrics and faults in the kernel tables.
  dec.absorb(packets[0]);
  dec.absorb(packets[1]);

  const std::uint64_t before = g_news.load();
  for (std::size_t i = 2; i < packets.size(); ++i) dec.absorb(packets[i]);
  const std::uint64_t delta = g_news.load() - before;

  ASSERT_TRUE(dec.complete());
  EXPECT_EQ(delta, 0u);
}

// The overlap decoder's absorb — including the boundary-propagation cascade
// (recovered_payload reads, absorb_unit injections, the worklist) — runs on
// buffers preallocated at construction.
TEST(CodecAllocFree, OverlapDecoderAbsorbAndPropagate) {
  using Field = gf::Gf256;
  const std::size_t g = 32, symbols = 128;
  const auto s = coding::GenerationStructure::overlapping(g, 8, 2);
  Rng rng(37);
  const coding::SourceEncoder<Field> enc(0, s, random_flat<Field>(g * symbols, rng),
                                         symbols);
  std::vector<coding::CodedPacket<Field>> packets;
  for (std::size_t i = 0; i < 8 * g; ++i) packets.push_back(enc.emit(rng));
  packets.push_back(packets.front());
  packets.back().class_id = static_cast<std::uint16_t>(s.num_classes());

  coding::OverlapDecoder<Field> dec(0, s, symbols);
  // Warm-up: one reject (registers the early-reject counters) plus two
  // routed packets (register the class decoders' metrics).
  dec.absorb(packets.back());
  dec.absorb(packets[0]);
  dec.absorb(packets[1]);

  const std::uint64_t before = g_news.load();
  for (std::size_t i = 2; i < packets.size(); ++i) dec.absorb(packets[i]);
  const std::uint64_t delta = g_news.load() - before;

  ASSERT_TRUE(dec.complete());
  EXPECT_EQ(delta, 0u);
}

// Structured recoding: scattering banded strips into the dense basis reuses
// one scratch packet, and class-routed overlapped emission reuses the
// nonempty-class list. Both are free once the buffers are sized.
TEST(CodecAllocFree, StructuredRecoderSteadyState) {
  using Field = gf::Gf256;
  const std::size_t g = 16, symbols = 64;
  Rng rng(38);

  const auto banded = coding::GenerationStructure::banded(g, 4);
  const coding::SourceEncoder<Field> benc(
      0, banded, random_flat<Field>(g * symbols, rng), symbols);
  std::vector<coding::CodedPacket<Field>> strips;
  for (std::size_t i = 0; i < 3 * g; ++i) strips.push_back(benc.emit(rng));
  coding::StructuredRecoder<Field> brec(0, banded, symbols);
  brec.absorb(strips[0]);
  brec.absorb(strips[1]);  // warm-up sizes the scatter scratch packet

  std::uint64_t before = g_news.load();
  for (std::size_t i = 2; i < strips.size(); ++i) brec.absorb(strips[i]);
  std::uint64_t delta = g_news.load() - before;
  ASSERT_TRUE(brec.complete());
  EXPECT_EQ(delta, 0u);

  const auto over = coding::GenerationStructure::overlapping(g, 8, 2);
  const coding::SourceEncoder<Field> oenc(
      0, over, random_flat<Field>(g * symbols, rng), symbols);
  coding::StructuredRecoder<Field> orec(0, over, symbols);
  std::size_t fed = 0;
  while (!orec.complete()) {
    ASSERT_LT(fed++, 50 * g);
    orec.absorb(oenc.emit(rng));
  }
  // Warm-up long enough for the recycled packet to have seen every class
  // width (classes differ, and assign() only reuses existing capacity).
  coding::CodedPacket<Field> out;
  bool ok = true;
  for (int i = 0; i < 20; ++i) ok = orec.emit_into(out, rng) && ok;

  before = g_news.load();
  for (int i = 0; i < 200; ++i) ok = orec.emit_into(out, rng) && ok;
  delta = g_news.load() - before;
  EXPECT_TRUE(ok);
  EXPECT_EQ(delta, 0u);
}

// A rank-0 recoder declines without touching the heap either.
TEST(CodecAllocFree, EmptyRecoderEmitIntoIsFreeAndSilent) {
  using Field = gf::Gf256;
  Rng rng(35);
  coding::Recoder<Field> rec(0, 8, 64);
  coding::CodedPacket<Field> out;
  const std::uint64_t before = g_news.load();
  const bool emitted = rec.emit_into(out, rng);
  const std::uint64_t delta = g_news.load() - before;
  EXPECT_FALSE(emitted);
  EXPECT_EQ(delta, 0u);
}

}  // namespace
}  // namespace ncast
