// Proof that the event-kernel hot loop is allocation-free in steady state:
// the sharded-kernel counterpart of test_codec_alloc.cpp. Global operator
// new/new[] are replaced with counting versions; once the callback slab,
// queue storage, and free lists reach their high-water marks, a
// schedule -> fire -> reschedule -> cancel cycle must not touch the heap.
// This enforces two contracts at once: InlineFunction (sim/
// inline_function.hpp) keeps small callbacks out of the heap entirely, and
// the slab engines (sim/event_engine.hpp, sim/sharded_engine.hpp) recycle
// slots instead of allocating per event.
//
// gtest assertions allocate, so the measured regions contain no
// EXPECT/ASSERT; deltas are checked after.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "sim/event_engine.hpp"
#include "sim/inline_function.hpp"
#include "sim/sharded_engine.hpp"

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ncast {
namespace {

// A capture comfortably under kCallbackInlineBytes must stay inline; one
// past the cap must take the heap fallback exactly once.
TEST(EngineAllocFree, InlineFunctionSmallCapturesAreHeapFree) {
  int sink = 0;
  std::uint64_t before = g_news.load();
  {
    sim::InlineFunction<sim::kCallbackInlineBytes> f(
        [&sink] { sink = 7; });
    f();
  }
  EXPECT_EQ(g_news.load() - before, 0u);
  EXPECT_EQ(sink, 7);

  struct Big {
    unsigned char pad[sim::kCallbackInlineBytes + 8];
  };
  Big big{};
  big.pad[0] = 3;
  before = g_news.load();
  {
    sim::InlineFunction<sim::kCallbackInlineBytes> f(
        [big, &sink] { sink = big.pad[0]; });
    f();
  }
  EXPECT_EQ(g_news.load() - before, 1u);  // the fallback heap box, only
  EXPECT_EQ(sink, 3);
}

TEST(EngineAllocFree, EventEngineScheduleFireCancelSteadyState) {
  sim::EventEngine e;  // construction registers the engine metrics
  std::uint64_t fired = 0;
  // Warm-up: more concurrent timers than the measured loop ever holds, and
  // enough total events to pass the profiling sample stride.
  for (int round = 0; round < 3; ++round) {
    std::vector<sim::TimerHandle> handles;
    for (int i = 0; i < 256; ++i) {
      handles.push_back(
          e.schedule_in(0.1 + 0.01 * i, [&fired] { ++fired; }));
    }
    for (int i = 0; i < 256; i += 2) e.cancel(handles[i]);
    e.run_until(e.now() + 100.0);
  }
  ASSERT_EQ(fired, 3u * 128u);

  const std::uint64_t before = g_news.load();
  for (int round = 0; round < 20; ++round) {
    // Steady state: schedule, cancel half, fire the rest, re-schedule from
    // inside handlers.
    sim::TimerHandle cancels[64];
    for (int i = 0; i < 64; ++i) {
      cancels[i] = e.schedule_in(0.2, [&fired] { ++fired; });
    }
    for (int i = 0; i < 64; i += 2) e.cancel(cancels[i]);
    for (int i = 0; i < 64; ++i) {
      e.schedule_in(0.1 + 0.01 * i, [&e, &fired] {
        ++fired;
        e.schedule_in(0.5, [&fired] { ++fired; });
      });
    }
    e.run_until(e.now() + 100.0);
  }
  const std::uint64_t delta = g_news.load() - before;
  EXPECT_EQ(delta, 0u);
  EXPECT_EQ(fired, 3u * 128u + 20u * (32u + 64u + 64u));
}

TEST(EngineAllocFree, ShardedEngineWindowLoopSteadyState) {
  sim::ShardedEngine e(2, 0, 0.5);  // inline execution: the measured path
  e.reserve_lanes(4);
  std::uint64_t fired = 0;
  // Warm-up: grow each shard's slab/queue, the outboxes, and the merge
  // scratch past the measured loop's high-water marks.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 128; ++i) {
      const sim::LaneId lane = static_cast<sim::LaneId>(i % 4);
      e.schedule_on(lane, e.now() + 0.1 + 0.01 * i, [&e, &fired, lane] {
        ++fired;
        // Cross-lane post through the outbox + barrier merge.
        e.schedule_on((lane + 1) % 4, e.now() + 1.0, [&fired] { ++fired; });
      });
    }
    e.run_until(e.now() + 100.0);
  }
  ASSERT_EQ(fired, 3u * 256u);

  const std::uint64_t before = g_news.load();
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 64; ++i) {
      const sim::LaneId lane = static_cast<sim::LaneId>(i % 4);
      e.schedule_on(lane, e.now() + 0.1 + 0.01 * i, [&e, &fired, lane] {
        ++fired;
        e.schedule_on((lane + 1) % 4, e.now() + 1.0, [&fired] { ++fired; });
      });
    }
    e.run_until(e.now() + 100.0);
  }
  const std::uint64_t delta = g_news.load() - before;
  EXPECT_EQ(delta, 0u);
  EXPECT_EQ(fired, 3u * 256u + 20u * 128u);
}

}  // namespace
}  // namespace ncast
