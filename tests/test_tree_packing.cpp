// Tree-packing multicast baseline tests: optimality on static graphs and
// brittleness under failures (the paper's argument for network coding).

#include "baselines/tree_packing.hpp"

#include <gtest/gtest.h>

#include "graph/maxflow.hpp"
#include "overlay/curtain_server.hpp"

namespace ncast {
namespace {

using namespace baselines;
using overlay::CurtainServer;
using overlay::NodeId;

overlay::ThreadMatrix grow(std::uint32_t k, std::uint32_t d, int n,
                           std::uint64_t seed) {
  CurtainServer server(k, d, Rng(seed));
  for (int i = 0; i < n; ++i) server.join();
  return server.matrix();
}

TEST(TreePacking, BuildsDTreesOnHealthyOverlay) {
  const auto m = grow(8, 3, 25, 1);
  const auto mc = TreePackingMulticast::build(m, 3);
  ASSERT_TRUE(mc.has_value());
  EXPECT_EQ(mc->tree_count(), 3u);
  EXPECT_TRUE(graph::validate_packing(mc->flow_graph().graph,
                                      overlay::FlowGraph::kServerVertex,
                                      mc->packing()));
}

TEST(TreePacking, TooManyTreesFails) {
  const auto m = grow(8, 3, 25, 2);
  EXPECT_FALSE(TreePackingMulticast::build(m, 4).has_value());
}

TEST(TreePacking, FailureFreeRateEqualsTreeCount) {
  const auto m = grow(6, 2, 20, 3);
  const auto mc = TreePackingMulticast::build(m, 2);
  ASSERT_TRUE(mc.has_value());
  const auto rates = mc->rates_under_failures(m);
  for (NodeId n : m.nodes_in_order()) {
    EXPECT_EQ(rates[mc->flow_graph().vertex_of(n)], 2u);
  }
}

TEST(TreePacking, StaticTreesUnderperformMaxflowUnderFailures) {
  // Kill a few nodes: static trees lose entire subtrees, while max-flow
  // (what RLNC achieves) re-routes. Summed over nodes, trees <= flow, and
  // typically strictly less.
  auto m = grow(8, 3, 60, 4);
  const auto mc = TreePackingMulticast::build(m, 3);
  ASSERT_TRUE(mc.has_value());

  Rng rng(5);
  for (NodeId n : m.nodes_in_order()) {
    if (rng.chance(0.1)) m.mark_failed(n);
  }
  const auto rates = mc->rates_under_failures(m);
  const auto fg = build_flow_graph(m);

  std::uint64_t tree_total = 0, flow_total = 0;
  for (NodeId n : m.nodes_in_order()) {
    if (m.row(n).failed) continue;
    const auto tree_rate = rates[mc->flow_graph().vertex_of(n)];
    const auto flow = node_connectivity(fg, n);
    EXPECT_LE(tree_rate, static_cast<std::uint32_t>(flow)) << "node " << n;
    tree_total += tree_rate;
    flow_total += static_cast<std::uint64_t>(flow);
  }
  EXPECT_LT(tree_total, flow_total);
}

TEST(TreePacking, FailedNodesGetZero) {
  auto m = grow(6, 2, 15, 6);
  const auto mc = TreePackingMulticast::build(m, 2);
  ASSERT_TRUE(mc.has_value());
  m.mark_failed(3);
  const auto rates = mc->rates_under_failures(m);
  EXPECT_EQ(rates[mc->flow_graph().vertex_of(3)], 0u);
}

TEST(TreePacking, PackingBuiltOnTaggedMatrixIgnoresTags) {
  // build() must treat tagged rows as working (packing is recomputed from
  // scratch on repair in a real system).
  auto m = grow(6, 2, 15, 7);
  m.mark_failed(2);
  const auto mc = TreePackingMulticast::build(m, 2);
  ASSERT_TRUE(mc.has_value());
  // Under the tags, node 2 and its dependents are degraded...
  const auto rates = mc->rates_under_failures(m);
  EXPECT_EQ(rates[mc->flow_graph().vertex_of(2)], 0u);
  // ...but untag and everyone is served at 2 again.
  m.mark_working(2);
  const auto healthy = mc->rates_under_failures(m);
  for (overlay::NodeId n : m.nodes_in_order()) {
    EXPECT_EQ(healthy[mc->flow_graph().vertex_of(n)], 2u);
  }
}

}  // namespace
}  // namespace ncast
