// Thread matrix (the server's data structure M) tests: row life cycle,
// derived topology, failure tags, congestion edits, and invariants.

#include "overlay/thread_matrix.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ncast {
namespace {

using namespace overlay;

TEST(ThreadMatrix, EmptyCurtain) {
  ThreadMatrix m(4);
  EXPECT_EQ(m.k(), 4u);
  EXPECT_EQ(m.row_count(), 0u);
  const auto ends = m.hanging_ends();
  ASSERT_EQ(ends.size(), 4u);
  for (const auto& e : ends) {
    EXPECT_EQ(e.owner, kServerNode);
    EXPECT_FALSE(e.owner_failed);
  }
  EXPECT_TRUE(m.edges().empty());
  EXPECT_TRUE(m.check_invariants());
}

TEST(ThreadMatrix, ZeroKThrows) {
  EXPECT_THROW(ThreadMatrix(0), std::invalid_argument);
}

TEST(ThreadMatrix, AppendAndDeriveEdges) {
  ThreadMatrix m(3);
  m.append_row(10, {0, 1});
  m.append_row(20, {1, 2});
  // Column 0: server->10. Column 1: server->10->20. Column 2: server->20.
  const auto edges = m.edges();
  ASSERT_EQ(edges.size(), 4u);
  int server_edges = 0, relay_edges = 0;
  for (const auto& e : edges) {
    if (e.from == kServerNode) ++server_edges;
    if (e.from == 10 && e.to == 20 && e.column == 1) ++relay_edges;
  }
  EXPECT_EQ(server_edges, 3);
  EXPECT_EQ(relay_edges, 1);
  EXPECT_TRUE(m.check_invariants());
}

TEST(ThreadMatrix, HangingEndsTrackLastClipper) {
  ThreadMatrix m(3);
  m.append_row(1, {0, 1});
  m.append_row(2, {1, 2});
  const auto ends = m.hanging_ends();
  EXPECT_EQ(ends[0].owner, 1u);
  EXPECT_EQ(ends[1].owner, 2u);
  EXPECT_EQ(ends[2].owner, 2u);
}

TEST(ThreadMatrix, ParentsAndChildren) {
  ThreadMatrix m(3);
  m.append_row(1, {0, 1});
  m.append_row(2, {1, 2});
  m.append_row(3, {0, 2});
  // Node 3 taps column 0 (fed by 1) and column 2 (fed by 2).
  const auto parents = m.parents(3);
  EXPECT_EQ(parents.size(), 2u);
  EXPECT_NE(std::find(parents.begin(), parents.end(), 1u), parents.end());
  EXPECT_NE(std::find(parents.begin(), parents.end(), 2u), parents.end());
  // Node 1's children: 2 (column 1) and 3 (column 0).
  const auto children = m.children(1);
  EXPECT_EQ(children.size(), 2u);
  // Server is the parent of node 1 on both columns; deduplicated.
  EXPECT_EQ(m.parents(1), (std::vector<NodeId>{kServerNode}));
}

TEST(ThreadMatrix, InsertRowAtPosition) {
  ThreadMatrix m(2);
  m.append_row(1, {0});
  m.append_row(2, {0});
  m.insert_row(1, 5, {0});  // between 1 and 2
  EXPECT_EQ(m.nodes_in_order(), (std::vector<NodeId>{1, 5, 2}));
  EXPECT_EQ(m.position(5), 1u);
  // Column 0 chain is now server->1->5->2.
  EXPECT_EQ(m.parents(2), (std::vector<NodeId>{5}));
  EXPECT_THROW(m.insert_row(9, 6, {0}), std::out_of_range);
}

TEST(ThreadMatrix, EraseRowReconnectsChain) {
  ThreadMatrix m(2);
  m.append_row(1, {0, 1});
  m.append_row(2, {0, 1});
  m.append_row(3, {0, 1});
  m.erase_row(2);
  EXPECT_EQ(m.row_count(), 2u);
  EXPECT_FALSE(m.contains(2));
  EXPECT_EQ(m.parents(3), (std::vector<NodeId>{1}));
  EXPECT_TRUE(m.check_invariants());
}

TEST(ThreadMatrix, FailureTags) {
  ThreadMatrix m(2);
  m.append_row(1, {0});
  EXPECT_EQ(m.failed_count(), 0u);
  m.mark_failed(1);
  EXPECT_EQ(m.failed_count(), 1u);
  EXPECT_EQ(m.working_count(), 0u);
  m.mark_failed(1);  // idempotent
  EXPECT_EQ(m.failed_count(), 1u);
  m.mark_working(1);
  EXPECT_EQ(m.failed_count(), 0u);
  m.mark_failed(1);
  m.erase_row(1);
  EXPECT_EQ(m.failed_count(), 0u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(ThreadMatrix, FailedOwnerTaintsHangingEnd) {
  ThreadMatrix m(2);
  m.append_row(1, {0, 1});
  m.mark_failed(1);
  const auto ends = m.hanging_ends();
  EXPECT_TRUE(ends[0].owner_failed);
  EXPECT_TRUE(ends[1].owner_failed);
}

TEST(ThreadMatrix, RowValidation) {
  ThreadMatrix m(3);
  EXPECT_THROW(m.append_row(1, {}), std::invalid_argument);
  EXPECT_THROW(m.append_row(1, {0, 0}), std::invalid_argument);
  EXPECT_THROW(m.append_row(1, {3}), std::invalid_argument);
  EXPECT_THROW(m.append_row(kServerNode, {0}), std::invalid_argument);
  m.append_row(1, {2, 0});  // unsorted input is sorted internally
  EXPECT_EQ(m.row(1).threads, (std::vector<ColumnId>{0, 2}));
  EXPECT_THROW(m.append_row(1, {1}), std::invalid_argument);  // duplicate id
}

TEST(ThreadMatrix, UnknownNodeThrows) {
  ThreadMatrix m(2);
  EXPECT_THROW(m.row(9), std::out_of_range);
  EXPECT_THROW(m.erase_row(9), std::out_of_range);
  EXPECT_THROW(m.mark_failed(9), std::out_of_range);
  EXPECT_THROW(m.position(9), std::out_of_range);
}

TEST(ThreadMatrix, AddAndDropThread) {
  ThreadMatrix m(3);
  m.append_row(1, {0});
  m.add_thread(1, 2);
  EXPECT_EQ(m.row(1).threads, (std::vector<ColumnId>{0, 2}));
  EXPECT_THROW(m.add_thread(1, 2), std::invalid_argument);
  EXPECT_THROW(m.add_thread(1, 7), std::invalid_argument);
  m.drop_thread(1, 0);
  EXPECT_EQ(m.row(1).threads, (std::vector<ColumnId>{2}));
  EXPECT_THROW(m.drop_thread(1, 0), std::invalid_argument);
  EXPECT_THROW(m.drop_thread(1, 2), std::logic_error);  // last thread
}

TEST(ThreadMatrix, DropThreadReconnectsChain) {
  ThreadMatrix m(1);
  m.append_row(1, {0});
  m.append_row(2, {0});
  m.append_row(3, {0});
  // Node 2 offloads column 0: chain becomes server->1->3.
  ThreadMatrix m2(2);
  m2.append_row(1, {0, 1});
  m2.append_row(2, {0, 1});
  m2.append_row(3, {0, 1});
  m2.drop_thread(2, 0);
  EXPECT_EQ(m2.parents(3),
            (std::vector<NodeId>{1, 2}));  // col 0 from 1, col 1 from 2
}

TEST(ThreadMatrix, HeterogeneousDegrees) {
  ThreadMatrix m(4);
  m.append_row(1, {0});
  m.append_row(2, {0, 1, 2, 3});
  EXPECT_EQ(m.row(1).threads.size(), 1u);
  EXPECT_EQ(m.row(2).threads.size(), 4u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(ThreadMatrix, EdgeDerivationSkipsNothing) {
  // Total edges == total ones in the matrix.
  ThreadMatrix m(5);
  m.append_row(1, {0, 1, 2});
  m.append_row(2, {2, 3});
  m.append_row(3, {0, 4});
  EXPECT_EQ(m.edges().size(), 7u);
}

}  // namespace
}  // namespace ncast
