// Thread matrix (the server's data structure M) tests: row life cycle,
// derived topology, failure tags, congestion edits, and invariants.

#include "overlay/thread_matrix.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ncast {
namespace {

using namespace overlay;

TEST(ThreadMatrix, EmptyCurtain) {
  ThreadMatrix m(4);
  EXPECT_EQ(m.k(), 4u);
  EXPECT_EQ(m.row_count(), 0u);
  const auto ends = m.hanging_ends();
  ASSERT_EQ(ends.size(), 4u);
  for (const auto& e : ends) {
    EXPECT_EQ(e.owner, kServerNode);
    EXPECT_FALSE(e.owner_failed);
  }
  EXPECT_TRUE(m.edges().empty());
  EXPECT_TRUE(m.check_invariants());
}

TEST(ThreadMatrix, ZeroKThrows) {
  EXPECT_THROW(ThreadMatrix(0), std::invalid_argument);
}

TEST(ThreadMatrix, AppendAndDeriveEdges) {
  ThreadMatrix m(3);
  m.append_row(10, {0, 1});
  m.append_row(20, {1, 2});
  // Column 0: server->10. Column 1: server->10->20. Column 2: server->20.
  const auto edges = m.edges();
  ASSERT_EQ(edges.size(), 4u);
  int server_edges = 0, relay_edges = 0;
  for (const auto& e : edges) {
    if (e.from == kServerNode) ++server_edges;
    if (e.from == 10 && e.to == 20 && e.column == 1) ++relay_edges;
  }
  EXPECT_EQ(server_edges, 3);
  EXPECT_EQ(relay_edges, 1);
  EXPECT_TRUE(m.check_invariants());
}

TEST(ThreadMatrix, HangingEndsTrackLastClipper) {
  ThreadMatrix m(3);
  m.append_row(1, {0, 1});
  m.append_row(2, {1, 2});
  const auto ends = m.hanging_ends();
  EXPECT_EQ(ends[0].owner, 1u);
  EXPECT_EQ(ends[1].owner, 2u);
  EXPECT_EQ(ends[2].owner, 2u);
}

TEST(ThreadMatrix, ParentsAndChildren) {
  ThreadMatrix m(3);
  m.append_row(1, {0, 1});
  m.append_row(2, {1, 2});
  m.append_row(3, {0, 2});
  // Node 3 taps column 0 (fed by 1) and column 2 (fed by 2).
  const auto parents = m.parents(3);
  EXPECT_EQ(parents.size(), 2u);
  EXPECT_NE(std::find(parents.begin(), parents.end(), 1u), parents.end());
  EXPECT_NE(std::find(parents.begin(), parents.end(), 2u), parents.end());
  // Node 1's children: 2 (column 1) and 3 (column 0).
  const auto children = m.children(1);
  EXPECT_EQ(children.size(), 2u);
  // Server is the parent of node 1 on both columns; deduplicated.
  EXPECT_EQ(m.parents(1), (std::vector<NodeId>{kServerNode}));
}

TEST(ThreadMatrix, InsertRowAtPosition) {
  ThreadMatrix m(2);
  m.append_row(1, {0});
  m.append_row(2, {0});
  m.insert_row(1, 5, {0});  // between 1 and 2
  EXPECT_EQ(m.nodes_in_order(), (std::vector<NodeId>{1, 5, 2}));
  EXPECT_EQ(m.position(5), 1u);
  // Column 0 chain is now server->1->5->2.
  EXPECT_EQ(m.parents(2), (std::vector<NodeId>{5}));
  EXPECT_THROW(m.insert_row(9, 6, {0}), std::out_of_range);
}

TEST(ThreadMatrix, EraseRowReconnectsChain) {
  ThreadMatrix m(2);
  m.append_row(1, {0, 1});
  m.append_row(2, {0, 1});
  m.append_row(3, {0, 1});
  m.erase_row(2);
  EXPECT_EQ(m.row_count(), 2u);
  EXPECT_FALSE(m.contains(2));
  EXPECT_EQ(m.parents(3), (std::vector<NodeId>{1}));
  EXPECT_TRUE(m.check_invariants());
}

TEST(ThreadMatrix, FailureTags) {
  ThreadMatrix m(2);
  m.append_row(1, {0});
  EXPECT_EQ(m.failed_count(), 0u);
  m.mark_failed(1);
  EXPECT_EQ(m.failed_count(), 1u);
  EXPECT_EQ(m.working_count(), 0u);
  m.mark_failed(1);  // idempotent
  EXPECT_EQ(m.failed_count(), 1u);
  m.mark_working(1);
  EXPECT_EQ(m.failed_count(), 0u);
  m.mark_failed(1);
  m.erase_row(1);
  EXPECT_EQ(m.failed_count(), 0u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(ThreadMatrix, FailedOwnerTaintsHangingEnd) {
  ThreadMatrix m(2);
  m.append_row(1, {0, 1});
  m.mark_failed(1);
  const auto ends = m.hanging_ends();
  EXPECT_TRUE(ends[0].owner_failed);
  EXPECT_TRUE(ends[1].owner_failed);
}

TEST(ThreadMatrix, RowValidation) {
  ThreadMatrix m(3);
  EXPECT_THROW(m.append_row(1, {}), std::invalid_argument);
  EXPECT_THROW(m.append_row(1, {0, 0}), std::invalid_argument);
  EXPECT_THROW(m.append_row(1, {3}), std::invalid_argument);
  EXPECT_THROW(m.append_row(kServerNode, {0}), std::invalid_argument);
  m.append_row(1, {2, 0});  // unsorted input is sorted internally
  EXPECT_EQ(m.row(1).threads, (std::vector<ColumnId>{0, 2}));
  EXPECT_THROW(m.append_row(1, {1}), std::invalid_argument);  // duplicate id
}

TEST(ThreadMatrix, UnknownNodeThrows) {
  ThreadMatrix m(2);
  EXPECT_THROW(m.row(9), std::out_of_range);
  EXPECT_THROW(m.erase_row(9), std::out_of_range);
  EXPECT_THROW(m.mark_failed(9), std::out_of_range);
  EXPECT_THROW(m.position(9), std::out_of_range);
}

TEST(ThreadMatrix, AddAndDropThread) {
  ThreadMatrix m(3);
  m.append_row(1, {0});
  m.add_thread(1, 2);
  EXPECT_EQ(m.row(1).threads, (std::vector<ColumnId>{0, 2}));
  EXPECT_THROW(m.add_thread(1, 2), std::invalid_argument);
  EXPECT_THROW(m.add_thread(1, 7), std::invalid_argument);
  m.drop_thread(1, 0);
  EXPECT_EQ(m.row(1).threads, (std::vector<ColumnId>{2}));
  EXPECT_THROW(m.drop_thread(1, 0), std::invalid_argument);
  EXPECT_THROW(m.drop_thread(1, 2), std::logic_error);  // last thread
}

TEST(ThreadMatrix, DropThreadReconnectsChain) {
  ThreadMatrix m(1);
  m.append_row(1, {0});
  m.append_row(2, {0});
  m.append_row(3, {0});
  // Node 2 offloads column 0: chain becomes server->1->3.
  ThreadMatrix m2(2);
  m2.append_row(1, {0, 1});
  m2.append_row(2, {0, 1});
  m2.append_row(3, {0, 1});
  m2.drop_thread(2, 0);
  EXPECT_EQ(m2.parents(3),
            (std::vector<NodeId>{1, 2}));  // col 0 from 1, col 1 from 2
}

TEST(ThreadMatrix, HeterogeneousDegrees) {
  ThreadMatrix m(4);
  m.append_row(1, {0});
  m.append_row(2, {0, 1, 2, 3});
  EXPECT_EQ(m.row(1).threads.size(), 1u);
  EXPECT_EQ(m.row(2).threads.size(), 4u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(ThreadMatrix, EdgeDerivationSkipsNothing) {
  // Total edges == total ones in the matrix.
  ThreadMatrix m(5);
  m.append_row(1, {0, 1, 2});
  m.append_row(2, {2, 3});
  m.append_row(3, {0, 4});
  EXPECT_EQ(m.edges().size(), 7u);
}

// Randomized parity against a naive reference model: the SoA/CSR matrix
// (arena + order-statistic index + link planes) must agree, after every
// operation, with the obvious list-of-rows implementation the original
// ThreadMatrix amounted to. This is the property-test half of the SoA
// migration: the unit tests above pin behaviors, this pins *equivalence*
// across long random edit histories including span reallocation, freelist
// reuse, and link-plane splicing.
struct NaiveMatrix {
  struct NaiveRow {
    NodeId node;
    std::vector<ColumnId> threads;  // sorted, distinct
    bool failed = false;
  };
  std::uint32_t k;
  std::vector<NaiveRow> rows;  // curtain order, top to bottom

  explicit NaiveMatrix(std::uint32_t k_) : k(k_) {}

  NaiveRow* find(NodeId n) {
    for (auto& r : rows) {
      if (r.node == n) return &r;
    }
    return nullptr;
  }
  std::size_t position(NodeId n) const {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].node == n) return i;
    }
    return rows.size();
  }
  void insert(std::size_t pos, NodeId n, std::vector<ColumnId> t) {
    std::sort(t.begin(), t.end());
    rows.insert(rows.begin() + static_cast<std::ptrdiff_t>(pos),
                NaiveRow{n, std::move(t), false});
  }
  void erase(NodeId n) {
    rows.erase(rows.begin() + static_cast<std::ptrdiff_t>(position(n)));
  }
  NodeId parent_on(NodeId n, ColumnId c) const {
    const std::size_t pos = position(n);
    for (std::size_t i = pos; i-- > 0;) {
      const auto& t = rows[i].threads;
      if (std::find(t.begin(), t.end(), c) != t.end()) return rows[i].node;
    }
    return kServerNode;
  }
  NodeId child_on(NodeId n, ColumnId c) const {
    for (std::size_t i = position(n) + 1; i < rows.size(); ++i) {
      const auto& t = rows[i].threads;
      if (std::find(t.begin(), t.end(), c) != t.end()) return rows[i].node;
    }
    return kNoNode;
  }
  NodeId tail_of(ColumnId c) const {
    for (std::size_t i = rows.size(); i-- > 0;) {
      const auto& t = rows[i].threads;
      if (std::find(t.begin(), t.end(), c) != t.end()) return rows[i].node;
    }
    return kServerNode;
  }
};

TEST(ThreadMatrix, RandomEditHistoryMatchesNaiveModel) {
  constexpr std::uint32_t kCols = 7;
  constexpr int kOps = 800;
  Rng rng(4242);
  ThreadMatrix m(kCols);
  NaiveMatrix ref(kCols);
  NodeId next_node = 1;

  const auto check_equal = [&] {
    ASSERT_EQ(m.row_count(), ref.rows.size());
    std::size_t failed = 0;
    const auto order = m.nodes_in_order();
    ASSERT_EQ(order.size(), ref.rows.size());
    for (std::size_t i = 0; i < ref.rows.size(); ++i) {
      const auto& want = ref.rows[i];
      ASSERT_EQ(order[i], want.node);
      ASSERT_EQ(m.position(want.node), i);
      const auto got = m.row(want.node);
      ASSERT_TRUE(got.threads == want.threads) << "node " << want.node;
      ASSERT_EQ(got.failed, want.failed);
      if (want.failed) ++failed;
      for (ColumnId c : want.threads) {
        ASSERT_EQ(m.parent_on_column(want.node, c), ref.parent_on(want.node, c))
            << "node " << want.node << " col " << c;
        ASSERT_EQ(m.child_on_column(want.node, c), ref.child_on(want.node, c))
            << "node " << want.node << " col " << c;
      }
    }
    ASSERT_EQ(m.failed_count(), failed);
    for (ColumnId c = 0; c < kCols; ++c) {
      ASSERT_EQ(m.tail_of_column(c), ref.tail_of(c)) << "col " << c;
    }
  };

  for (int op = 0; op < kOps; ++op) {
    const std::uint64_t dice = rng.below(100);
    if (ref.rows.empty() || dice < 35) {
      // Insert at a random position with a random distinct column set.
      const NodeId n = next_node++;
      std::vector<ColumnId> cols;
      for (ColumnId c = 0; c < kCols; ++c) {
        if (rng.chance(0.4)) cols.push_back(c);
      }
      if (cols.empty()) cols.push_back(static_cast<ColumnId>(rng.below(kCols)));
      const std::size_t pos = rng.below(ref.rows.size() + 1);
      ref.insert(pos, n, cols);
      if (pos == ref.rows.size() - 1) {
        m.append_row(n, cols);  // exercise the append path too
      } else {
        m.insert_row(pos, n, cols);
      }
    } else {
      auto& victim = ref.rows[rng.below(ref.rows.size())];
      const NodeId n = victim.node;
      if (dice < 55) {
        ref.erase(n);
        m.erase_row(n);
      } else if (dice < 65) {
        victim.failed = true;
        m.mark_failed(n);
      } else if (dice < 72) {
        victim.failed = false;
        m.mark_working(n);
      } else if (dice < 86) {
        // Add a thread the row doesn't have (if any column is free).
        std::vector<ColumnId> missing;
        for (ColumnId c = 0; c < kCols; ++c) {
          if (std::find(victim.threads.begin(), victim.threads.end(), c) ==
              victim.threads.end()) {
            missing.push_back(c);
          }
        }
        if (!missing.empty()) {
          const ColumnId c = missing[rng.below(missing.size())];
          victim.threads.push_back(c);
          std::sort(victim.threads.begin(), victim.threads.end());
          m.add_thread(n, c);
        }
      } else if (victim.threads.size() > 1) {
        const ColumnId c = victim.threads[rng.below(victim.threads.size())];
        victim.threads.erase(
            std::find(victim.threads.begin(), victim.threads.end(), c));
        m.drop_thread(n, c);
      }
    }
    if (op % 50 == 0) check_equal();
  }
  check_equal();
  EXPECT_TRUE(m.check_invariants());
  EXPECT_GE(m.row_count() + 0u, 1u);
}

}  // namespace
}  // namespace ncast
