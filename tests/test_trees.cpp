// Tree/chain baseline tests (the paper's motivating failure modes).

#include "baselines/trees.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace ncast {
namespace {

using namespace baselines;

TEST(Chain, NoFailuresEveryoneReceives) {
  Rng rng(1);
  const auto out = evaluate_chain(100, 0.0, rng);
  EXPECT_EQ(out.nodes, 100u);
  EXPECT_EQ(out.working, 100u);
  EXPECT_EQ(out.receiving, 100u);
  EXPECT_EQ(out.max_depth, 100u);
  EXPECT_DOUBLE_EQ(out.mean_depth, 50.5);
}

TEST(Chain, CertainFailureStopsEverything) {
  Rng rng(2);
  const auto out = evaluate_chain(50, 1.0, rng);
  EXPECT_EQ(out.working, 0u);
  EXPECT_EQ(out.receiving, 0u);
}

TEST(Chain, ReceivingFractionDecaysWithDepth) {
  // With p = 0.02 and 200 nodes, deep nodes rarely receive; the average
  // receive fraction over working nodes is far below 1.
  Rng rng(3);
  RunningStats frac;
  for (int trial = 0; trial < 200; ++trial) {
    frac.add(evaluate_chain(200, 0.02, rng).receiving_fraction());
  }
  // Analytic mean fraction: (1/N) sum_h (1-p)^(h-1) ~ (1-(1-p)^N)/(Np).
  const double analytic = (1.0 - std::pow(0.98, 200)) / (200 * 0.02);
  EXPECT_NEAR(frac.mean(), analytic, 0.05);
  EXPECT_LT(frac.mean(), 0.35);
}

TEST(Tree, DepthIsLogarithmic) {
  Rng rng(4);
  const auto out = evaluate_tree(1000, 4, 0.0, rng);
  EXPECT_EQ(out.receiving, 1000u);
  EXPECT_LE(out.max_depth, 6u);  // 4-ary tree of 1000 nodes
}

TEST(Tree, FanoutOneIsAChain) {
  Rng rng(5);
  const auto chain = evaluate_chain(64, 0.0, rng);
  const auto tree = evaluate_tree(64, 1, 0.0, rng);
  EXPECT_EQ(tree.max_depth, chain.max_depth);
}

TEST(Tree, ShallowTreesMoreReliableThanChains) {
  Rng rng(6);
  RunningStats chain_frac, tree_frac;
  for (int trial = 0; trial < 100; ++trial) {
    chain_frac.add(evaluate_chain(500, 0.01, rng).receiving_fraction());
    tree_frac.add(evaluate_tree(500, 8, 0.01, rng).receiving_fraction());
  }
  EXPECT_GT(tree_frac.mean(), chain_frac.mean() + 0.2);
}

TEST(Tree, Validation) {
  Rng rng(7);
  EXPECT_THROW(evaluate_tree(10, 0, 0.1, rng), std::invalid_argument);
}

TEST(AnalyticReceiveProbability, MatchesSimulatedDepthBuckets) {
  EXPECT_DOUBLE_EQ(analytic_receive_probability(0, 0.1), 1.0);
  EXPECT_DOUBLE_EQ(analytic_receive_probability(1, 0.1), 0.9);
  EXPECT_NEAR(analytic_receive_probability(10, 0.05), std::pow(0.95, 10), 1e-12);

  // Empirical check: fraction of working depth-3 tree nodes receiving
  // should be near (1-p)^2 (two working ancestors above a working node
  // at depth 3... ancestors are depths 1 and 2).
  Rng rng(8);
  std::size_t receiving = 0, total = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    const auto out = evaluate_tree(7, 2, 0.2, rng);  // 3 levels: 1+2+4
    // Last 4 nodes are at depth 3; count via receiving fraction at... the
    // evaluate API aggregates, so use a micro-tree where all nodes at the
    // deepest level dominate: total receiving among working approximates it.
    receiving += out.receiving;
    total += out.working;
  }
  // Coarse check: the aggregate is between the depth-1 and depth-3 analytic
  // probabilities.
  const double frac = static_cast<double>(receiving) / static_cast<double>(total);
  EXPECT_LT(frac, 1.0);
  EXPECT_GT(frac, analytic_receive_probability(3, 0.2) - 0.05);
}

TEST(Trees, DeterministicForFixedSeed) {
  Rng a(9), b(9);
  const auto x = evaluate_chain(100, 0.1, a);
  const auto y = evaluate_chain(100, 0.1, b);
  EXPECT_EQ(x.receiving, y.receiving);
  EXPECT_EQ(x.working, y.working);
}

}  // namespace
}  // namespace ncast
