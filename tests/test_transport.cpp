// KernelTransport: the event-driven message fabric. Latency scheduling,
// plane-separated loss, partitions, crash semantics (including mail lost in
// flight), the in-flight queue-depth gauge, and the counter contract shared
// with InMemoryNetwork through the Transport base.

#include <gtest/gtest.h>

#include <vector>

#include "node/network.hpp"
#include "node/transport.hpp"
#include "sim/event_engine.hpp"

namespace ncast::node {
namespace {

/// Records every delivery with its arrival time.
struct Sink final : Endpoint {
  struct Arrival {
    Message msg;
    double at = 0.0;
  };
  explicit Sink(sim::EventEngine& engine) : engine_(engine) {}
  void on_message(const Message& m) override {
    arrivals.push_back({m, engine_.now()});
  }
  sim::EventEngine& engine_;
  std::vector<Arrival> arrivals;
};

Message control(Address from, Address to) {
  Message m;
  m.type = MessageType::kComplaint;
  m.from = from;
  m.to = to;
  return m;
}

Message data(Address from, Address to) {
  Message m;
  m.type = MessageType::kData;
  m.from = from;
  m.to = to;
  m.wire = {1, 2, 3};
  return m;
}

TEST(KernelTransport, DeliversAtSampledLatency) {
  sim::EventEngine engine;
  TransportSpec spec;
  spec.latency = sim::LatencySpec::fixed_delay(2.5);
  KernelTransport net(engine, spec, Rng(1));
  Sink sink(engine);
  net.attach(7, &sink);

  net.send(control(3, 7));
  EXPECT_EQ(net.in_flight(), 1u);
  engine.run_until(10.0);

  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_DOUBLE_EQ(sink.arrivals[0].at, 2.5);
  EXPECT_EQ(net.in_flight(), 0u);
  EXPECT_EQ(net.max_in_flight(), 1u);
  EXPECT_EQ(net.delivered(), 1u);
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.control_messages(), 1u);
  EXPECT_EQ(net.messages_dropped(), 0u);
}

TEST(KernelTransport, EqualTimeDeliveriesKeepSendOrder) {
  sim::EventEngine engine;
  TransportSpec spec;
  spec.latency = sim::LatencySpec::fixed_delay(1.0);
  KernelTransport net(engine, spec, Rng(1));
  Sink sink(engine);
  net.attach(1, &sink);

  for (overlay::ColumnId c = 0; c < 5; ++c) {
    Message m = control(2, 1);
    m.column = c;
    net.send(std::move(m));
  }
  engine.run_until(2.0);

  ASSERT_EQ(sink.arrivals.size(), 5u);
  for (overlay::ColumnId c = 0; c < 5; ++c) {
    EXPECT_EQ(sink.arrivals[c].msg.column, c);
  }
}

TEST(KernelTransport, ControlLossLeavesDataPlaneAlone) {
  sim::EventEngine engine;
  TransportSpec spec;
  spec.control_loss = sim::LossSpec::bernoulli(1.0);  // drop all control
  KernelTransport net(engine, spec, Rng(1));
  Sink sink(engine);
  net.attach(1, &sink);

  net.send(control(2, 1));
  net.send(data(2, 1));
  Message keep;
  keep.type = MessageType::kKeepalive;
  keep.from = 2;
  keep.to = 1;
  net.send(std::move(keep));
  engine.run_until(5.0);

  ASSERT_EQ(sink.arrivals.size(), 2u);  // data + keepalive survive
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_EQ(net.control_dropped(), 1u);
}

TEST(KernelTransport, DataLossLeavesControlPlaneAlone) {
  sim::EventEngine engine;
  TransportSpec spec;
  spec.data_loss = sim::LossSpec::bernoulli(1.0);
  KernelTransport net(engine, spec, Rng(1));
  Sink sink(engine);
  net.attach(1, &sink);

  net.send(data(2, 1));
  net.send(control(2, 1));
  engine.run_until(5.0);

  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].msg.type, MessageType::kComplaint);
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_EQ(net.control_dropped(), 0u);
}

TEST(KernelTransport, BernoulliLossRateIsRoughlyHonored) {
  sim::EventEngine engine;
  TransportSpec spec;
  spec.control_loss = sim::LossSpec::bernoulli(0.3);
  KernelTransport net(engine, spec, Rng(99));
  Sink sink(engine);
  net.attach(1, &sink);

  const int n = 2000;
  for (int i = 0; i < n; ++i) net.send(control(2, 1));
  engine.run_until(5.0);

  const double loss =
      static_cast<double>(net.messages_dropped()) / static_cast<double>(n);
  EXPECT_NEAR(loss, 0.3, 0.05);
  EXPECT_EQ(net.control_dropped(), net.messages_dropped());
  EXPECT_EQ(sink.arrivals.size(), n - net.messages_dropped());
}

TEST(KernelTransport, GilbertElliottLossIsBursty) {
  sim::EventEngine engine;
  TransportSpec spec;
  // Sticky bad state: once bad, stays bad for ~10 deliveries.
  spec.data_loss = sim::LossSpec::gilbert_elliott(0.05, 0.1, 0.0, 1.0);
  KernelTransport net(engine, spec, Rng(5));
  Sink sink(engine);
  net.attach(1, &sink);

  const int n = 4000;
  for (int i = 0; i < n; ++i) net.send(data(2, 1));
  engine.run_until(5.0);

  const double loss =
      static_cast<double>(net.messages_dropped()) / static_cast<double>(n);
  // Stationary loss = p_enter / (p_enter + p_exit) = 1/3.
  EXPECT_NEAR(loss, 1.0 / 3.0, 0.08);
}

TEST(KernelTransport, CrashedDestinationDropsIncludingInFlight) {
  sim::EventEngine engine;
  TransportSpec spec;
  spec.latency = sim::LatencySpec::fixed_delay(3.0);
  KernelTransport net(engine, spec, Rng(1));
  Sink sink(engine);
  net.attach(1, &sink);

  net.send(control(2, 1));   // in flight, arrives t=3
  engine.run_until(1.0);
  net.crash(1);              // dies at t=1 with mail inbound
  net.send(control(2, 1));   // dropped at send
  engine.run_until(10.0);

  EXPECT_TRUE(sink.arrivals.empty());
  EXPECT_EQ(net.messages_dropped(), 2u);
  EXPECT_EQ(net.in_flight(), 0u);  // the flight unwound on arrival

  net.revive(1);
  net.send(control(2, 1));
  engine.run_until(20.0);
  EXPECT_EQ(sink.arrivals.size(), 1u);
}

TEST(KernelTransport, UnattachedAddressDrops) {
  sim::EventEngine engine;
  KernelTransport net(engine, TransportSpec{}, Rng(1));
  net.send(control(2, 42));
  engine.run_until(5.0);
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_EQ(net.delivered(), 0u);
}

TEST(KernelTransport, PartitionDropsCrossingDeliveriesDuringWindow) {
  sim::EventEngine engine;
  TransportSpec spec;
  spec.latency = sim::LatencySpec::fixed_delay(1.0);
  spec.partition = sim::PartitionSpec::window(10.0, 20.0, 0.5);
  KernelTransport net(engine, spec, Rng(3));
  Sink sink(engine);
  net.attach(1, &sink);

  // Find an address on the other side from 1 by probing during the window.
  engine.run_until(10.0);
  Address other = 0;
  std::uint64_t dropped_before = net.messages_dropped();
  for (Address a = 2; a < 64; ++a) {
    net.send(control(a, 1));
    if (net.messages_dropped() > dropped_before) {
      other = a;
      break;
    }
    dropped_before = net.messages_dropped();
  }
  ASSERT_NE(other, 0u) << "no cross-side pair found in 62 addresses";

  // Crossing delivery inside the window: dropped. After it closes: delivered.
  engine.run_until(25.0);
  const std::size_t before = sink.arrivals.size();
  net.send(control(other, 1));
  engine.run_until(30.0);
  EXPECT_EQ(sink.arrivals.size(), before + 1);
}

TEST(KernelTransport, SameSeedSameDropPattern) {
  const auto run = [](std::uint64_t seed) {
    sim::EventEngine engine;
    TransportSpec spec;
    spec.latency = sim::LatencySpec::uniform(0.5, 1.5);
    spec.control_loss = sim::LossSpec::bernoulli(0.25);
    KernelTransport net(engine, spec, Rng(seed));
    Sink sink(engine);
    net.attach(1, &sink);
    for (int i = 0; i < 500; ++i) {
      Message m = control(2, 1);
      m.column = static_cast<overlay::ColumnId>(i);
      net.send(std::move(m));
    }
    engine.run_until(5.0);
    std::vector<overlay::ColumnId> got;
    for (const auto& a : sink.arrivals) got.push_back(a.msg.column);
    return got;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));  // and the seed actually matters
}

TEST(TransportBase, InMemoryNetworkCountsThroughSharedBase) {
  InMemoryNetwork net;
  Transport& base = net;  // the benches/tests talk to the base interface
  base.send(data(1, 2));
  base.send(control(1, 2));
  net.crash(3);
  base.send(control(1, 3));
  EXPECT_EQ(base.messages_sent(), 3u);
  EXPECT_EQ(base.data_messages(), 1u);
  EXPECT_EQ(base.control_messages(), 2u);
  EXPECT_EQ(base.messages_dropped(), 1u);
  EXPECT_EQ(base.control_dropped(), 1u);
  EXPECT_GT(base.control_bytes(), 0u);
  EXPECT_TRUE(net.poll(2).has_value());
}

TEST(TransportBase, ControlBytesUseControlSize) {
  InMemoryNetwork net;
  Message m = control(1, 2);
  const std::size_t expect = m.control_size();
  net.send(std::move(m));
  EXPECT_EQ(net.control_bytes(), expect);

  // The satellite fix: accepts carry plan + key bundles + columns now.
  Message accept;
  accept.type = MessageType::kJoinAccept;
  accept.columns = {1, 2, 3};
  accept.key_bundles = {std::vector<std::uint8_t>(40), std::vector<std::uint8_t>(40)};
  accept.peers = {};
  const std::size_t accept_bytes = accept.control_size();
  EXPECT_GT(accept_bytes, 17u + 3 * sizeof(overlay::ColumnId) + 16u + 80u);
  net.send(std::move(accept));
  EXPECT_EQ(net.control_bytes(), expect + accept_bytes);
}

}  // namespace
}  // namespace ncast::node
