// Tracker-less swarm tests: joins by gossip, decentralized silence-driven
// repair, graceful departures, source-only seeding — Section 7's "role of
// the server ... even eliminated", exercised message by message.

#include <gtest/gtest.h>

#include <memory>

#include "node/driver.hpp"
#include "util/rng.hpp"

namespace ncast {
namespace {

using namespace node;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
  return bytes;
}

struct Swarm {
  GossipPeerConfig cfg;
  std::unique_ptr<GossipPeer> source;
  std::vector<std::unique_ptr<GossipPeer>> peers;
  std::unique_ptr<GossipDriver> driver;

  explicit Swarm(std::size_t n_peers, std::uint32_t source_slots = 6,
                 std::uint64_t seed = 1) {
    cfg.want_parents = 3;
    cfg.upload_slots = 3;
    cfg.silence_timeout = 6;
    cfg.seed = seed;
    GossipPeerConfig source_cfg = cfg;
    source_cfg.upload_slots = source_slots;
    source = std::make_unique<GossipPeer>(
        1, source_cfg, random_bytes(8 * 8 * 2, seed ^ 0x99), 8, 8);

    std::vector<GossipPeer*> ptrs{source.get()};
    for (std::size_t i = 0; i < n_peers; ++i) {
      // Early peers are introduced to the source; later ones to a random
      // earlier peer — nobody else ever learns the membership centrally.
      const Address addr = static_cast<Address>(i + 2);
      const Address introducer =
          i == 0 ? 1 : static_cast<Address>(2 + (seed + i * 7) % i);
      peers.push_back(std::make_unique<GossipPeer>(addr, cfg, introducer));
      ptrs.push_back(peers.back().get());
    }
    driver = std::make_unique<GossipDriver>(ptrs);
  }
};

TEST(GossipPeer, SwarmBootstrapsAndDecodes) {
  Swarm s(20);
  ASSERT_TRUE(s.driver->run_until_decoded(600));
  for (auto& p : s.peers) {
    EXPECT_TRUE(p->decoded());
    EXPECT_EQ(p->data(), s.source->data());
    EXPECT_LE(p->parent_count(), 3u);
  }
}

TEST(GossipPeer, ViewsStayBoundedAndUseful) {
  Swarm s(30);
  s.driver->run(100);
  for (auto& p : s.peers) {
    EXPECT_LE(p->view_size(), s.cfg.view_limit);
    EXPECT_GE(p->view_size(), 1u);
  }
}

TEST(GossipPeer, DecentralizedRepairAfterCrash) {
  Swarm s(18);
  s.driver->run(30);  // everyone wired up and streaming

  // Crash a peer that is serving children; its children must notice the
  // silence, drop it, and re-acquire feeds from elsewhere — no server.
  GossipPeer* victim = nullptr;
  for (auto& p : s.peers) {
    if (p->child_count() > 0) {
      victim = p.get();
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  s.driver->crash(*victim);

  ASSERT_TRUE(s.driver->run_until_decoded(800));
  // Decoding often finishes before the silence timeout even fires (the
  // redundancy covers the outage); run on so the repair machinery itself is
  // observable: the children must drop the corpse and re-acquire.
  s.driver->run(s.cfg.silence_timeout * 2 + s.cfg.request_timeout + 6);
  std::uint64_t reacquisitions = 0;
  for (auto& p : s.peers) {
    if (p->crashed()) continue;
    reacquisitions += p->reacquisitions();
    EXPECT_TRUE(p->decoded());
    EXPECT_EQ(p->data(), s.source->data());
  }
  EXPECT_GE(reacquisitions, 1u);
}

TEST(GossipPeer, GracefulLeaveReleasesSlotsAndRewires) {
  Swarm s(16);
  s.driver->run(30);
  auto& leaver = *s.peers[3];
  const auto parents = leaver.parent_count();
  ASSERT_GT(parents, 0u);
  leaver.leave(s.driver->network());
  EXPECT_TRUE(leaver.departed());
  s.driver->run(20);
  // Its former children must have re-acquired (or already held) full feeds
  // and everyone still completes.
  ASSERT_TRUE(s.driver->run_until_decoded(600));
  for (auto& p : s.peers) {
    if (p->departed()) continue;
    EXPECT_TRUE(p->decoded());
  }
}

TEST(GossipPeer, SourceNeverRequestsAndServesItsSlots) {
  Swarm s(12, /*source_slots=*/4);
  s.driver->run(60);
  EXPECT_TRUE(s.source->is_source());
  EXPECT_EQ(s.source->parent_count(), 0u);
  EXPECT_LE(s.source->child_count(), 4u);
  EXPECT_GE(s.source->child_count(), 1u);
}

TEST(GossipPeer, LateJoinerFindsTheSwarmViaGossip) {
  Swarm s(15);
  ASSERT_TRUE(s.driver->run_until_decoded(600));
  // The latecomer is introduced to a random old peer, never the source.
  auto late = std::make_unique<GossipPeer>(200, s.cfg, /*introducer=*/9);
  s.driver->add_peer(late.get());
  s.driver->run(400);
  EXPECT_TRUE(late->decoded());
  EXPECT_EQ(late->data(), s.source->data());
}

TEST(GossipPeer, DenialsCarrySamplesSoSearchProgresses) {
  // A tiny source (1 slot) forces most requests to be denied; the swarm must
  // still complete because denials fan the search out.
  Swarm s(10, /*source_slots=*/1);
  EXPECT_TRUE(s.driver->run_until_decoded(1500));
}

TEST(GossipPeer, NullKeysPropagateTransitively) {
  // The source generates keys; every grant hands them down, so a peer many
  // hops from the source still verifies packets.
  GossipPeerConfig cfg;
  cfg.want_parents = 2;
  cfg.upload_slots = 2;
  cfg.null_keys = 3;
  GossipPeerConfig source_cfg = cfg;
  source_cfg.upload_slots = 2;
  GossipPeer source(1, source_cfg, random_bytes(8 * 8, 11), 8, 8);
  std::vector<std::unique_ptr<GossipPeer>> peers;
  std::vector<GossipPeer*> ptrs{&source};
  for (Address a = 2; a <= 13; ++a) {
    peers.push_back(std::make_unique<GossipPeer>(a, cfg, a - 1));
    ptrs.push_back(peers.back().get());
  }
  GossipDriver driver(ptrs);
  ASSERT_TRUE(driver.run_until_decoded(800));
  for (auto& p : peers) {
    EXPECT_TRUE(p->verification_enabled()) << "peer " << p->address();
    EXPECT_EQ(p->data(), source.data());
  }
}

TEST(GossipPeer, SustainedChurnSelfHeals) {
  Swarm s(24, 6, /*seed=*/5);
  Rng rng(77);
  s.driver->run(30);
  std::size_t crashes = 0, leaves = 0;
  for (int step = 0; step < 30; ++step) {
    s.driver->run(8);
    std::vector<GossipPeer*> live;
    for (auto& p : s.peers) {
      if (!p->crashed() && !p->departed()) live.push_back(p.get());
    }
    if (live.size() <= 12) break;  // keep a viable swarm
    const auto roll = rng.below(10);
    if (roll < 3) {
      s.driver->crash(*live[rng.below(live.size())]);
      ++crashes;
    } else if (roll < 5) {
      live[rng.below(live.size())]->leave(s.driver->network());
      ++leaves;
    }
  }
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(leaves, 0u);
  ASSERT_TRUE(s.driver->run_until_decoded(1500));
  for (auto& p : s.peers) {
    if (p->crashed() || p->departed()) continue;
    EXPECT_TRUE(p->decoded());
    EXPECT_EQ(p->data(), s.source->data());
  }
}

}  // namespace
}  // namespace ncast
