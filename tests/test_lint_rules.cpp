// Tests for tools/lint — the project-specific static analysis pass.
//
// Two layers:
//   * unit tests drive lint_source() on in-memory buffers (empty repo_root
//     disables include resolution) and pin down each rule's firing and
//     suppression semantics, including the comment/string masking that keeps
//     the scanner from chasing decoys;
//   * a golden test runs lint_tree() over tests/lint_fixtures/tree and
//     compares the serialized report byte-for-byte against
//     tests/lint_fixtures/golden.json, proving every rule fires somewhere in
//     the corpus and that every rule is suppressible.
//
// The fixture markers below are assembled from fragments so this test file
// itself stays clean under the repo-wide lint_tree ctest run.

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint_engine.hpp"

namespace {

using ncast::lint::Finding;
using ncast::lint::Options;
using ncast::lint::Report;

// Marker fragments: concatenated at runtime so the real linter does not see
// literal annotations inside this (scanned) test file.
const std::string kAllow = std::string("// ncast:") + "allow(";
const std::string kHotBegin = std::string("// ncast:") + "hot-begin";
const std::string kHotEnd = std::string("// ncast:") + "hot-end";

std::vector<Finding> lint(const std::string& path, const std::string& text) {
  std::vector<Finding> out;
  ncast::lint::lint_source(path, text, /*repo_root=*/"", out);
  return out;
}

std::vector<std::string> rules_of(const std::vector<Finding>& fs,
                                  bool suppressed) {
  std::vector<std::string> out;
  for (const auto& f : fs) {
    if (f.suppressed == suppressed) out.push_back(f.rule);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(LintDeterminism, LibcRandFires) {
  const auto fs = lint("src/node/x.cpp", "int f() { return rand(); }\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "determinism.libc_rand");
  EXPECT_EQ(fs[0].line, 1u);
  EXPECT_FALSE(fs[0].suppressed);
}

TEST(LintDeterminism, WallClockVariantsFire) {
  const std::string text =
      "#include <ctime>\n"
      "long a() { return std::time(nullptr); }\n"
      "long b();  // uses system_clock::now() eventually\n"
      "auto c = std::chrono::system_clock::now();\n";
  const auto fs = lint("src/sim/x.cpp", text);
  const auto v = rules_of(fs, /*suppressed=*/false);
  EXPECT_EQ(v, (std::vector<std::string>{"determinism.wall_clock",
                                         "determinism.wall_clock"}));
}

TEST(LintDeterminism, SteadyClockExemptUnderObs) {
  const std::string text = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint("src/obs/timer.cpp", text).empty());
  const auto fs = lint("src/sim/timer.cpp", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "determinism.steady_clock");
}

TEST(LintDeterminism, UnorderedIterationScopedToSimOverlayNode) {
  const std::string text =
      "#pragma once\n"
      "#include <unordered_map>\n"
      "int sum(const std::unordered_map<int, int>& m) {\n"
      "  int acc = 0;\n"
      "  for (const auto& kv : m) acc += kv.second;\n"
      "  return acc;\n"
      "}\n";
  const auto fs = lint("src/sim/x.hpp", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "determinism.unordered_iteration");
  EXPECT_EQ(fs[0].line, 5u);
  // The same code is fine outside the scoped directories (util, gf, ...).
  EXPECT_TRUE(lint("src/util/x.hpp", text).empty());
}

TEST(LintDeterminism, UnorderedLookupIsQuiet) {
  const std::string text =
      "#pragma once\n"
      "#include <unordered_map>\n"
      "int get(const std::unordered_map<int, int>& m) {\n"
      "  auto it = m.find(3);\n"
      "  return it == m.end() ? 0 : it->second + static_cast<int>(m.size());\n"
      "}\n";
  EXPECT_TRUE(lint("src/overlay/x.hpp", text).empty());
}

TEST(LintHotPath, RulesOnlyFireInsideRegion) {
  const std::string text =
      "void cold(std::vector<int>& v) { v.push_back(1); }\n" +
      kHotBegin + "\n" +
      "void hot(std::vector<int>& v) { v.push_back(2); }\n" +
      kHotEnd + "\n";
  const auto fs = lint("src/coding/x.cpp", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "hot_path.alloc");
  EXPECT_EQ(fs[0].line, 3u);
}

TEST(LintHotPath, StringAndThrowFire) {
  const std::string text = kHotBegin + "\n" +
                           "void f() { std::string s; if (s.empty()) throw 1; }\n" +
                           kHotEnd + "\n";
  const auto fs = lint("src/linalg/x.cpp", text);
  EXPECT_EQ(rules_of(fs, false),
            (std::vector<std::string>{"hot_path.string", "hot_path.throw"}));
}

TEST(LintHotPath, UnbalancedRegionFires) {
  const auto end_only = lint("src/gf/x.cpp", kHotEnd + "\n");
  ASSERT_EQ(end_only.size(), 1u);
  EXPECT_EQ(end_only[0].rule, "hot_path.region");

  const auto begin_only = lint("src/gf/x.cpp", kHotBegin + "\n");
  ASSERT_EQ(begin_only.size(), 1u);
  EXPECT_EQ(begin_only[0].rule, "hot_path.region");
  EXPECT_EQ(begin_only[0].line, 1u);
}

TEST(LintHeader, PragmaOnceAndUsingNamespace) {
  const std::string text = "using namespace std;\nint x = 0;\n";
  const auto fs = lint("src/overlay/x.hpp", text);
  EXPECT_EQ(rules_of(fs, false),
            (std::vector<std::string>{"header.pragma_once",
                                      "header.using_namespace"}));
  // Source files are exempt from header hygiene.
  EXPECT_TRUE(lint("src/overlay/x.cpp", text).empty());
}

TEST(LintObs, MetricNamesMustBeDottedSnakeCase) {
  const std::string text =
      "void f() {\n"
      "  metrics().counter(\"node.packets_sent\").add(1);\n"
      "  metrics().gauge(\"BadName\").set(2);\n"
      "  metrics().histogram(\n"
      "      \"decode.rank_delta\");\n"
      "}\n";
  const auto fs = lint("src/node/x.cpp", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "obs.metric_name");
  EXPECT_EQ(fs[0].line, 3u);
}

TEST(LintAnnotations, InlineAllowSuppressesOwnLine) {
  const std::string text = "int f() { return rand(); }  " + kAllow +
                           "determinism.libc_rand): unit test\n";
  const auto fs = lint("src/node/x.cpp", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(fs[0].suppressed);
  EXPECT_EQ(fs[0].justification, "unit test");
}

TEST(LintAnnotations, StandaloneAllowCoversNextCodeLine) {
  const std::string text = kAllow + "determinism.libc_rand): unit test\n" +
                           "int f() { return rand(); }\n";
  const auto fs = lint("src/node/x.cpp", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(fs[0].suppressed);
  // ...but not the line after that.
  const auto far = lint("src/node/x.cpp",
                        kAllow + "determinism.libc_rand): unit test\n" +
                            "int g = 0;\n" + "int f() { return rand(); }\n");
  ASSERT_EQ(far.size(), 1u);
  EXPECT_FALSE(far[0].suppressed);
}

TEST(LintAnnotations, UnknownRuleIsReportedAndSuppressible) {
  const auto bad = lint("src/node/x.cpp", kAllow + "no.such_rule): why\n");
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].rule, "lint.bad_annotation");
  EXPECT_FALSE(bad[0].suppressed);

  const auto ok = lint("src/node/x.cpp",
                       kAllow + "no.such_rule): why  " + kAllow +
                           "lint.bad_annotation): unit test\n");
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_TRUE(ok[0].suppressed);
}

TEST(LintMasking, CommentsAndStringsAreInert) {
  const std::string text =
      "// calls rand() and std::random_device in prose only\n"
      "const char* s = \"system_clock and malloc( and throw\";\n"
      "/* using namespace std; time(nullptr) */\n"
      "const char* r = R\"(rand() push_back()\";\n";
  EXPECT_TRUE(lint("src/sim/x.cpp", text).empty());
}

TEST(LintTree, GoldenReportIsByteStable) {
  Options opts;
  opts.repo_root = std::string(NCAST_LINT_FIXTURE_DIR) + "/tree";
  opts.roots = {"src", "bench"};
  const Report report = ncast::lint::lint_tree(opts);

  std::ifstream in(std::string(NCAST_LINT_FIXTURE_DIR) + "/golden.json",
                   std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing tests/lint_fixtures/golden.json";
  std::ostringstream golden;
  golden << in.rdbuf();

  EXPECT_EQ(ncast::lint::report_json(report), golden.str());
}

TEST(LintTree, EveryRuleFiresAndIsSuppressedInFixtures) {
  Options opts;
  opts.repo_root = std::string(NCAST_LINT_FIXTURE_DIR) + "/tree";
  opts.roots = {"src", "bench"};
  const Report report = ncast::lint::lint_tree(opts);

  std::set<std::string> fired;
  std::set<std::string> suppressed;
  for (const auto& f : report.findings) {
    (f.suppressed ? suppressed : fired).insert(f.rule);
  }
  for (const auto& rule : ncast::lint::rule_ids()) {
    EXPECT_TRUE(fired.count(rule)) << rule << " never fires in the fixtures";
    EXPECT_TRUE(suppressed.count(rule))
        << rule << " is never suppressed in the fixtures";
  }
}

}  // namespace
