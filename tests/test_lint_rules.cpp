// Tests for tools/lint — the project-specific static analysis pass.
//
// Two layers:
//   * unit tests drive lint_source() on in-memory buffers (empty repo_root
//     disables include resolution) and pin down each rule's firing and
//     suppression semantics, including the comment/string masking that keeps
//     the scanner from chasing decoys;
//   * a golden test runs lint_tree() over tests/lint_fixtures/tree and
//     compares the serialized report byte-for-byte against
//     tests/lint_fixtures/golden.json, proving every rule fires somewhere in
//     the corpus and that every rule is suppressible.
//
// The fixture markers below are assembled from fragments so this test file
// itself stays clean under the repo-wide lint_tree ctest run.

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint_baseline.hpp"
#include "lint/lint_engine.hpp"

namespace {

using ncast::lint::Baseline;
using ncast::lint::BaselineEntry;
using ncast::lint::Finding;
using ncast::lint::Options;
using ncast::lint::Report;

// Marker fragments: concatenated at runtime so the real linter does not see
// literal annotations inside this (scanned) test file.
const std::string kAllow = std::string("// ncast:") + "allow(";
const std::string kHotBegin = std::string("// ncast:") + "hot-begin";
const std::string kHotEnd = std::string("// ncast:") + "hot-end";
const std::string kShared = std::string("// ncast:") + "shared(";
const std::string kMergeBegin = std::string("// ncast:") + "merge-begin";
const std::string kMergeEnd = std::string("// ncast:") + "merge-end";

Finding make_finding(const std::string& rule, const std::string& file,
                     std::size_t line, const std::string& message) {
  Finding f;
  f.rule = rule;
  f.file = file;
  f.line = line;
  f.message = message;
  return f;
}

std::vector<Finding> lint(const std::string& path, const std::string& text) {
  std::vector<Finding> out;
  ncast::lint::lint_source(path, text, /*repo_root=*/"", out);
  return out;
}

std::vector<std::string> rules_of(const std::vector<Finding>& fs,
                                  bool suppressed) {
  std::vector<std::string> out;
  for (const auto& f : fs) {
    if (f.suppressed == suppressed) out.push_back(f.rule);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(LintDeterminism, LibcRandFires) {
  const auto fs = lint("src/node/x.cpp", "int f() { return rand(); }\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "determinism.libc_rand");
  EXPECT_EQ(fs[0].line, 1u);
  EXPECT_FALSE(fs[0].suppressed);
}

TEST(LintDeterminism, WallClockVariantsFire) {
  const std::string text =
      "#include <ctime>\n"
      "long a() { return std::time(nullptr); }\n"
      "long b();  // uses system_clock::now() eventually\n"
      "auto c = std::chrono::system_clock::now();\n";
  const auto fs = lint("src/coding/x.cpp", text);
  const auto v = rules_of(fs, /*suppressed=*/false);
  EXPECT_EQ(v, (std::vector<std::string>{"determinism.wall_clock",
                                         "determinism.wall_clock"}));
}

TEST(LintDeterminism, SteadyClockExemptUnderObs) {
  const std::string text = "auto probe() { return std::chrono::steady_clock::now(); }\n";
  EXPECT_TRUE(lint("src/obs/timer.cpp", text).empty());
  const auto fs = lint("src/sim/timer.cpp", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "determinism.steady_clock");
}

TEST(LintDeterminism, UnorderedIterationScopedToSimOverlayNode) {
  const std::string text =
      "#pragma once\n"
      "#include <unordered_map>\n"
      "int sum(const std::unordered_map<int, int>& m) {\n"
      "  int acc = 0;\n"
      "  for (const auto& kv : m) acc += kv.second;\n"
      "  return acc;\n"
      "}\n";
  const auto fs = lint("src/sim/x.hpp", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "determinism.unordered_iteration");
  EXPECT_EQ(fs[0].line, 5u);
  // The same code is fine outside the scoped directories (util, gf, ...).
  EXPECT_TRUE(lint("src/util/x.hpp", text).empty());
}

TEST(LintDeterminism, UnorderedLookupIsQuiet) {
  const std::string text =
      "#pragma once\n"
      "#include <unordered_map>\n"
      "int get(const std::unordered_map<int, int>& m) {\n"
      "  auto it = m.find(3);\n"
      "  return it == m.end() ? 0 : it->second + static_cast<int>(m.size());\n"
      "}\n";
  EXPECT_TRUE(lint("src/overlay/x.hpp", text).empty());
}

TEST(LintHotPath, RulesOnlyFireInsideRegion) {
  const std::string text =
      "void cold(std::vector<int>& v) { v.push_back(1); }\n" +
      kHotBegin + "\n" +
      "void hot(std::vector<int>& v) { v.push_back(2); }\n" +
      kHotEnd + "\n";
  const auto fs = lint("src/coding/x.cpp", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "hot_path.alloc");
  EXPECT_EQ(fs[0].line, 3u);
}

TEST(LintHotPath, StringAndThrowFire) {
  const std::string text = kHotBegin + "\n" +
                           "void f() { std::string s; if (s.empty()) throw 1; }\n" +
                           kHotEnd + "\n";
  const auto fs = lint("src/linalg/x.cpp", text);
  EXPECT_EQ(rules_of(fs, false),
            (std::vector<std::string>{"hot_path.string", "hot_path.throw"}));
}

TEST(LintHotPath, UnbalancedRegionFires) {
  const auto end_only = lint("src/gf/x.cpp", kHotEnd + "\n");
  ASSERT_EQ(end_only.size(), 1u);
  EXPECT_EQ(end_only[0].rule, "hot_path.region");

  const auto begin_only = lint("src/gf/x.cpp", kHotBegin + "\n");
  ASSERT_EQ(begin_only.size(), 1u);
  EXPECT_EQ(begin_only[0].rule, "hot_path.region");
  EXPECT_EQ(begin_only[0].line, 1u);
}

TEST(LintHeader, PragmaOnceAndUsingNamespace) {
  const std::string text = "using namespace std;\nint x = 0;\n";
  const auto fs = lint("src/overlay/x.hpp", text);
  EXPECT_EQ(rules_of(fs, false),
            (std::vector<std::string>{"header.pragma_once",
                                      "header.using_namespace"}));
  // Source files are exempt from header hygiene.
  EXPECT_TRUE(lint("src/overlay/x.cpp", text).empty());
}

TEST(LintObs, MetricNamesMustBeDottedSnakeCase) {
  const std::string text =
      "void f() {\n"
      "  metrics().counter(\"node.packets_sent\").add(1);\n"
      "  metrics().gauge(\"BadName\").set(2);\n"
      "  metrics().histogram(\n"
      "      \"decode.rank_delta\");\n"
      "}\n";
  const auto fs = lint("src/node/x.cpp", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "obs.metric_name");
  EXPECT_EQ(fs[0].line, 3u);
}

TEST(LintAnnotations, InlineAllowSuppressesOwnLine) {
  const std::string text = "int f() { return rand(); }  " + kAllow +
                           "determinism.libc_rand): unit test\n";
  const auto fs = lint("src/node/x.cpp", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(fs[0].suppressed);
  EXPECT_EQ(fs[0].justification, "unit test");
}

TEST(LintAnnotations, StandaloneAllowCoversNextCodeLine) {
  const std::string text = kAllow + "determinism.libc_rand): unit test\n" +
                           "int f() { return rand(); }\n";
  const auto fs = lint("src/node/x.cpp", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(fs[0].suppressed);
  // ...but not the line after that.
  const auto far = lint("src/node/x.cpp",
                        kAllow + "determinism.libc_rand): unit test\n" +
                            "const int g = 0;\n" +
                            "int f() { return rand(); }\n");
  ASSERT_EQ(far.size(), 1u);
  EXPECT_FALSE(far[0].suppressed);
}

TEST(LintAnnotations, UnknownRuleIsReportedAndSuppressible) {
  const auto bad = lint("src/node/x.cpp", kAllow + "no.such_rule): why\n");
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].rule, "lint.bad_annotation");
  EXPECT_FALSE(bad[0].suppressed);

  const auto ok = lint("src/node/x.cpp",
                       kAllow + "no.such_rule): why  " + kAllow +
                           "lint.bad_annotation): unit test\n");
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_TRUE(ok[0].suppressed);
}

TEST(LintMasking, CommentsAndStringsAreInert) {
  const std::string text =
      "// calls rand() and std::random_device in prose only\n"
      "const char* s = \"system_clock and malloc( and throw\";\n"
      "/* using namespace std; time(nullptr) */\n"
      "const char* r = R\"(rand() push_back()\";\n";
  EXPECT_TRUE(lint("src/sim/x.cpp", text).empty());
}

TEST(LintConcurrency, SharedMutableStaticFires) {
  const auto fs =
      lint("src/sim/x.cpp", "void f() { static int calls = 0; ++calls; }\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "concurrency.shared_mutable_state");
  // The same code is fine outside shard scope (not worker-executed).
  EXPECT_TRUE(
      lint("src/coding/x.cpp", "void f() { static int c = 0; ++c; }\n")
          .empty());
}

TEST(LintConcurrency, GuardedOrImmutableStaticsAreQuiet) {
  const std::string text =
      "#include <atomic>\n"
      "#include <mutex>\n"
      "void f() {\n"
      "  static const int kTries = 3;\n"
      "  static constexpr double kEps = 1e-9;\n"
      "  static thread_local int scratch = 0;\n"
      "  static std::atomic<int> hits{0};\n"
      "  static std::mutex mu;\n"
      "  static int helper();\n"
      "  (void)kTries; (void)kEps; (void)scratch;\n"
      "}\n";
  EXPECT_TRUE(lint("src/sim/x.cpp", text).empty());
}

TEST(LintConcurrency, NamespaceScopeMutableFires) {
  const std::string text =
      "namespace ncast {\n"
      "int hits = 0;\n"
      "const int kCap = 4;\n"
      "int peek();\n"
      "}\n";
  const auto fs = lint("src/node/x.cpp", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "concurrency.shared_mutable_state");
  EXPECT_EQ(fs[0].line, 2u);
}

TEST(LintConcurrency, ParameterListsAreNotNamespaceState) {
  // Multi-line declarations with default arguments were the classic false
  // positive: the continuation line ends in "= 0);".
  const std::string text =
      "namespace ncast {\n"
      "int run(int a,\n"
      "        int b = 0);\n"
      "}\n";
  EXPECT_TRUE(lint("src/sim/x.cpp", text).empty());
}

TEST(LintConcurrency, SharedAnnotationSuppressesWithReason) {
  const std::string text =
      kShared + "guarded by the registry mutex)\n" +
      "static long total = 0;\n";
  const auto fs = lint("src/sim/x.cpp", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(fs[0].suppressed);
  EXPECT_EQ(fs[0].justification, "guarded by the registry mutex");

  // An empty reason is not a suppression — it is a finding of its own.
  const auto bad = lint("src/sim/x.cpp", kShared + ")\nstatic long t = 0;\n");
  const auto v = rules_of(bad, /*suppressed=*/false);
  EXPECT_EQ(v, (std::vector<std::string>{"concurrency.shared_mutable_state",
                                         "lint.bad_annotation"}));
}

TEST(LintConcurrency, PointerKeyedContainersFire) {
  const auto fs = lint("src/sim/x.cpp",
                       "void f() { std::map<Node*, int> order; }\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "concurrency.pointer_keyed");
  // Pointer VALUES are fine — only the key drives iteration order.
  EXPECT_TRUE(lint("src/sim/x.cpp",
                   "void f() { std::map<Address, Endpoint*> peers; }\n")
                  .empty());
  // set<T*> counts too (class members included).
  EXPECT_EQ(
      lint("src/node/x.cpp", "struct S { std::set<Obj*> live_; };\n").size(),
      1u);
  // Out of shard scope: quiet.
  EXPECT_TRUE(
      lint("src/graph/x.cpp", "void f() { std::map<Node*, int> m; }\n")
          .empty());
}

TEST(LintConcurrency, ThreadAmbientScopedToSimAndNode) {
  const std::string text =
      "void f() { auto id = std::this_thread::get_id(); (void)id; }\n";
  const auto fs = lint("src/sim/x.cpp", text);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "concurrency.thread_ambient");
  EXPECT_TRUE(lint("src/obs/x.cpp", text).empty());
}

TEST(LintDeterminism, UnseededRngConstructionFires) {
  const auto empty_parens =
      lint("src/sim/x.cpp", "void f() { auto r = util::Rng(); }\n");
  ASSERT_EQ(empty_parens.size(), 1u);
  EXPECT_EQ(empty_parens[0].rule, "determinism.unseeded_rng");

  const auto std_engine = lint("src/coding/x.cpp", "std::mt19937 gen;\n");
  ASSERT_EQ(std_engine.size(), 1u);
  EXPECT_EQ(std_engine[0].rule, "determinism.unseeded_rng");

  // A seeded Rng is the idiom the rule steers toward.
  EXPECT_TRUE(
      lint("src/sim/x.cpp", "void f() { auto r = util::Rng(seed); }\n")
          .empty());
  // src/util defines Rng itself and is exempt.
  EXPECT_TRUE(lint("src/util/rng_impl.cpp", "Rng make() { return Rng(); }\n")
                  .empty());
}

TEST(LintDeterminism, FloatAccumOnlyInsideMergeRegions) {
  const std::string body =
      "void merge(double w) {\n"
      "  double total = 0.0;\n"
      "  long count = 0;\n"
      "  total += w;\n"
      "  count += 1;\n"
      "}\n";
  // Outside a merge region: quiet.
  EXPECT_TRUE(lint("src/sim/x.cpp", body).empty());
  // Inside: the double accumulation fires, the integer one does not.
  const auto fs =
      lint("src/sim/x.cpp", kMergeBegin + "\n" + body + kMergeEnd + "\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "determinism.float_accum");
  EXPECT_EQ(fs[0].line, 5u);
}

TEST(LintDeterminism, MergeRegionMarkersMustBalance) {
  const auto end_only = lint("src/sim/x.cpp", kMergeEnd + "\n");
  ASSERT_EQ(end_only.size(), 1u);
  EXPECT_EQ(end_only[0].rule, "determinism.merge_region");

  const auto begin_only = lint("src/sim/x.cpp", kMergeBegin + "\n");
  ASSERT_EQ(begin_only.size(), 1u);
  EXPECT_EQ(begin_only[0].rule, "determinism.merge_region");
  EXPECT_EQ(begin_only[0].line, 1u);

  const auto balanced =
      lint("src/sim/x.cpp", kMergeBegin + "\n" + kMergeEnd + "\n");
  EXPECT_TRUE(balanced.empty());
}

TEST(LintFingerprints, StableAcrossLinesDistinctAcrossDuplicates) {
  Report a;
  a.findings.push_back(
      make_finding("determinism.libc_rand", "src/sim/x.cpp", 10, "'rand(': no"));
  ncast::lint::assign_fingerprints(a);

  Report b = a;
  b.findings[0].line = 99;  // an edit moved the finding
  b.findings[0].fingerprint.clear();
  ncast::lint::assign_fingerprints(b);
  EXPECT_EQ(a.findings[0].fingerprint, b.findings[0].fingerprint)
      << "fingerprints must not depend on line numbers";

  // Two identical findings stay individually addressable via the ordinal.
  Report c = a;
  c.findings.push_back(c.findings[0]);
  ncast::lint::assign_fingerprints(c);
  EXPECT_EQ(c.findings[0].fingerprint, a.findings[0].fingerprint);
  EXPECT_NE(c.findings[1].fingerprint, c.findings[0].fingerprint);
}

TEST(LintBaseline, MatchingFingerprintIsBaselined) {
  Report report;
  report.findings.push_back(
      make_finding("determinism.libc_rand", "src/sim/x.cpp", 3, "'rand(': no"));
  ncast::lint::assign_fingerprints(report);

  Baseline baseline;
  baseline.budgets["determinism.libc_rand"] = 1;
  baseline.entries.push_back(BaselineEntry{
      "determinism.libc_rand", "src/sim/x.cpp", report.findings[0].fingerprint});

  const auto errors = ncast::lint::apply_baseline(report, baseline);
  EXPECT_TRUE(errors.empty());
  EXPECT_TRUE(report.findings[0].baselined);
  EXPECT_EQ(ncast::lint::violation_count(report), 0u);
  EXPECT_EQ(ncast::lint::baselined_count(report), 1u);
}

TEST(LintBaseline, StaleAndOverBudgetEntriesAreErrors) {
  Report report;  // no findings at all
  Baseline baseline;
  baseline.budgets["determinism.libc_rand"] = 1;
  baseline.entries.push_back(
      BaselineEntry{"determinism.libc_rand", "src/sim/gone.cpp", "deadbeef"});
  const auto stale = ncast::lint::apply_baseline(report, baseline);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_NE(stale[0].find("stale"), std::string::npos);

  Baseline fat;
  fat.budgets["determinism.libc_rand"] = 1;
  fat.entries.push_back(
      BaselineEntry{"determinism.libc_rand", "a.cpp", "fp1"});
  fat.entries.push_back(
      BaselineEntry{"determinism.libc_rand", "b.cpp", "fp2"});
  const auto over = ncast::lint::apply_baseline(report, fat);
  bool budget_error = false;
  for (const auto& e : over) {
    if (e.find("exceed the budget") != std::string::npos) budget_error = true;
  }
  EXPECT_TRUE(budget_error);
}

TEST(LintBaseline, WriteRefusesToGrowTheBudget) {
  Report report;
  report.findings.push_back(make_finding("determinism.libc_rand", "a.cpp", 1, "one"));
  report.findings.push_back(make_finding("determinism.libc_rand", "b.cpp", 1, "two"));
  ncast::lint::assign_fingerprints(report);

  Baseline previous;
  previous.budgets["determinism.libc_rand"] = 1;
  EXPECT_THROW(ncast::lint::write_baseline_json(report, &previous),
               std::runtime_error);
  // Without a previous baseline the two findings are simply recorded.
  const std::string fresh = ncast::lint::write_baseline_json(report, nullptr);
  EXPECT_NE(fresh.find("\"determinism.libc_rand\": 2"), std::string::npos);
  // Round-trip: the writer's output parses and applies cleanly.
  Baseline parsed = ncast::lint::parse_baseline(fresh);
  EXPECT_EQ(parsed.entries.size(), 2u);
  EXPECT_TRUE(ncast::lint::apply_baseline(report, parsed).empty());
}

TEST(LintBaseline, ParserRejectsMalformedDocuments) {
  EXPECT_THROW(ncast::lint::parse_baseline("not json"), std::exception);
  EXPECT_THROW(ncast::lint::parse_baseline(
                   "{\"schema\": \"ncast.bench.v1\", \"entries\": []}"),
               std::runtime_error);
  EXPECT_THROW(
      ncast::lint::parse_baseline(
          "{\"schema\": \"ncast.lint.baseline.v1\", \"entries\": [{}]}"),
      std::runtime_error);
}

TEST(LintTree, GoldenReportIsByteStable) {
  Options opts;
  opts.repo_root = std::string(NCAST_LINT_FIXTURE_DIR) + "/tree";
  opts.roots = {"src", "bench"};
  const Report report = ncast::lint::lint_tree(opts);

  std::ifstream in(std::string(NCAST_LINT_FIXTURE_DIR) + "/golden.json",
                   std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing tests/lint_fixtures/golden.json";
  std::ostringstream golden;
  golden << in.rdbuf();

  EXPECT_EQ(ncast::lint::report_json(report), golden.str());
}

TEST(LintTree, EveryRuleFiresAndIsSuppressedInFixtures) {
  Options opts;
  opts.repo_root = std::string(NCAST_LINT_FIXTURE_DIR) + "/tree";
  opts.roots = {"src", "bench"};
  const Report report = ncast::lint::lint_tree(opts);

  std::set<std::string> fired;
  std::set<std::string> suppressed;
  for (const auto& f : report.findings) {
    (f.suppressed ? suppressed : fired).insert(f.rule);
  }
  for (const auto& rule : ncast::lint::rule_ids()) {
    EXPECT_TRUE(fired.count(rule)) << rule << " never fires in the fixtures";
    EXPECT_TRUE(suppressed.count(rule))
        << rule << " is never suppressed in the fixtures";
  }
}

}  // namespace
