// Generation segmentation and whole-file codec tests.

#include "coding/generation.hpp"

#include <gtest/gtest.h>

#include "coding/file_codec.hpp"
#include "util/rng.hpp"

namespace ncast {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.below(256));
  return v;
}

TEST(GenerationPlan, ExactFit) {
  const auto plan = coding::plan_generations(64, 4, 8);  // 2 generations of 32
  EXPECT_EQ(plan.generations, 2u);
  EXPECT_EQ(plan.bytes_per_generation(), 32u);
}

TEST(GenerationPlan, PartialLastGeneration) {
  const auto plan = coding::plan_generations(65, 4, 8);
  EXPECT_EQ(plan.generations, 3u);
}

TEST(GenerationPlan, EmptyDataStillOneGeneration) {
  const auto plan = coding::plan_generations(0, 4, 8);
  EXPECT_EQ(plan.generations, 1u);
}

TEST(GenerationPlan, Validation) {
  EXPECT_THROW(coding::plan_generations(10, 0, 8), std::invalid_argument);
  EXPECT_THROW(coding::plan_generations(10, 4, 0), std::invalid_argument);
}

TEST(GenerationPackets, SegmentationAndPadding) {
  Rng rng(1);
  const auto data = random_bytes(20, rng);
  const auto plan = coding::plan_generations(20, 2, 8);  // 16 bytes/gen, 2 gens
  ASSERT_EQ(plan.generations, 2u);

  const auto g0 = coding::generation_packets(data, plan, 0);
  ASSERT_EQ(g0.size(), 2u);
  EXPECT_EQ(g0[0], std::vector<std::uint8_t>(data.begin(), data.begin() + 8));
  EXPECT_EQ(g0[1], std::vector<std::uint8_t>(data.begin() + 8, data.begin() + 16));

  const auto g1 = coding::generation_packets(data, plan, 1);
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_EQ(g1[0][s], s < 4 ? data[16 + s] : 0);  // padded past data end
    EXPECT_EQ(g1[1][s], 0);
  }
  EXPECT_THROW(coding::generation_packets(data, plan, 2), std::out_of_range);
}

TEST(GenerationPackets, FlatVariantMatchesPerPacket) {
  // generation_packets_into() is the allocation-light path FileEncoder and
  // the benches use; byte for byte it must agree with the per-packet
  // variant, including zero padding in the partial last generation.
  Rng rng(7);
  std::vector<std::uint8_t> flat;
  for (std::size_t size : {0u, 1u, 20u, 31u, 32u, 33u, 100u}) {
    const auto data = random_bytes(size, rng);
    const auto plan = coding::plan_generations(size, 4, 8);
    for (std::size_t g = 0; g < plan.generations; ++g) {
      coding::generation_packets_into(data, plan, g, flat);  // reuses `flat`
      ASSERT_EQ(flat.size(), plan.bytes_per_generation());
      const auto packets = coding::generation_packets(data, plan, g);
      for (std::size_t p = 0; p < packets.size(); ++p) {
        for (std::size_t s = 0; s < plan.symbols; ++s) {
          ASSERT_EQ(flat[p * plan.symbols + s], packets[p][s])
              << "size " << size << " gen " << g << " packet " << p;
        }
      }
    }
    EXPECT_THROW(
        coding::generation_packets_into(data, plan, plan.generations, flat),
        std::out_of_range);
  }
}

TEST(GenerationPackets, ReassembleRoundTrip) {
  Rng rng(2);
  for (std::size_t size : {0u, 1u, 31u, 32u, 33u, 100u}) {
    const auto data = random_bytes(size, rng);
    const auto plan = coding::plan_generations(size, 4, 8);
    std::vector<std::vector<std::vector<std::uint8_t>>> gens;
    for (std::size_t g = 0; g < plan.generations; ++g) {
      gens.push_back(coding::generation_packets(data, plan, g));
    }
    EXPECT_EQ(coding::reassemble(gens, plan), data) << "size " << size;
  }
}

TEST(Reassemble, Validation) {
  const auto plan = coding::plan_generations(16, 2, 8);
  EXPECT_THROW(coding::reassemble({}, plan), std::invalid_argument);
  std::vector<std::vector<std::vector<std::uint8_t>>> wrong_packets(
      1, std::vector<std::vector<std::uint8_t>>(1));
  EXPECT_THROW(coding::reassemble(wrong_packets, plan), std::invalid_argument);
}

TEST(FileCodec, RoundTripSingleGeneration) {
  Rng rng(3);
  const auto data = random_bytes(100, rng);
  coding::FileEncoder enc(data, 8, 16);  // 128 bytes/gen -> 1 generation
  ASSERT_EQ(enc.generations(), 1u);
  coding::FileDecoder dec(enc.plan());
  while (!dec.complete()) dec.absorb(enc.emit(0, rng));
  EXPECT_EQ(dec.data(), data);
}

TEST(FileCodec, RoundTripMultiGenerationRoundRobin) {
  Rng rng(4);
  const auto data = random_bytes(1000, rng);
  coding::FileEncoder enc(data, 4, 32);  // 128 bytes/gen -> 8 generations
  ASSERT_EQ(enc.generations(), 8u);
  coding::FileDecoder dec(enc.plan());
  std::size_t packets = 0;
  while (!dec.complete()) {
    dec.absorb(enc.emit_round_robin(rng));
    ASSERT_LT(++packets, 1000u);
  }
  EXPECT_EQ(dec.data(), data);
  EXPECT_EQ(dec.total_rank(), dec.needed_rank());
}

TEST(FileCodec, ProgressTracking) {
  Rng rng(5);
  const auto data = random_bytes(64, rng);
  coding::FileEncoder enc(data, 4, 16);
  coding::FileDecoder dec(enc.plan());
  EXPECT_EQ(dec.total_rank(), 0u);
  EXPECT_EQ(dec.needed_rank(), 4u);
  dec.absorb(enc.emit(0, rng));
  EXPECT_EQ(dec.total_rank(), 1u);
  EXPECT_FALSE(dec.complete());
  EXPECT_THROW(dec.data(), std::logic_error);
}

TEST(FileCodec, IgnoresOutOfRangeGenerations) {
  Rng rng(6);
  coding::FileEncoder enc(random_bytes(32, rng), 4, 8);
  coding::FileDecoder dec(enc.plan());
  auto p = enc.emit(0, rng);
  p.generation = 99;
  EXPECT_FALSE(dec.absorb(p));
}

}  // namespace
}  // namespace ncast
